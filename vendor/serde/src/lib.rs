//! Vendored offline stand-in for the `serde` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides the subset of serde's surface that `real-rs` uses: the
//! [`Serialize`] / [`Deserialize`] traits (derivable via the companion
//! `serde_derive` proc-macro) plus a JSON-shaped [`Value`] data model that
//! the vendored `serde_json` serializes and parses.
//!
//! The API is intentionally simpler than upstream serde: serialization goes
//! through an owned [`Value`] tree rather than a streaming `Serializer`.
//! Every type `real-rs` serializes is small (plans, profile databases,
//! metric snapshots, traces), so the intermediate tree is cheap and keeps
//! the vendored code auditable.

use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON number: integer-preserving like `serde_json`'s `Number`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U(u64),
    /// A negative integer.
    I(i64),
    /// A finite float.
    F(f64),
}

impl Number {
    /// The number as an `f64` (lossy above 2^53).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    /// The number as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(i) => u64::try_from(i).ok(),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            Number::F(_) => None,
        }
    }

    /// The number as an `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            Number::F(_) => None,
        }
    }
}

/// An owned JSON value. Objects preserve insertion order so snapshots are
/// deterministic and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as an ordered key/value list.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as `&str` when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64` when it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64` when it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `bool` when it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an ordered object slice.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup (first match), `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Array element lookup, `None` for non-arrays or out-of-range.
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        self.as_array()?.get(index)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.get_index(index).unwrap_or(&NULL)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Number(Number::F(f))
    }
}
impl From<u64> for Value {
    fn from(u: u64) -> Self {
        Value::Number(Number::U(u))
    }
}
impl From<u32> for Value {
    fn from(u: u32) -> Self {
        Value::Number(Number::U(u64::from(u)))
    }
}
impl From<usize> for Value {
    fn from(u: usize) -> Self {
        Value::Number(Number::U(u as u64))
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        if i >= 0 {
            Value::Number(Number::U(i as u64))
        } else {
            Value::Number(Number::I(i))
        }
    }
}
impl From<Vec<Value>> for Value {
    fn from(a: Vec<Value>) -> Self {
        Value::Array(a)
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types convertible to a JSON [`Value`].
pub trait Serialize {
    /// Converts `self` to a JSON value tree.
    fn to_value(&self) -> Value;
}

/// Types constructible from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of a JSON value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Blanket and primitive impls.
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(u64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::custom("expected unsigned integer"))?;
                <$t>::try_from(u).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Number(Number::U(*self as u64))
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let u = v
            .as_u64()
            .ok_or_else(|| Error::custom("expected unsigned integer"))?;
        usize::try_from(u).map_err(|_| Error::custom("integer out of range"))
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::from(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::custom("expected integer"))?;
                <$t>::try_from(i).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64);

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

/// Hash sets serialize as a *sorted* array so output is deterministic.
impl<T: Serialize + Ord> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($n:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::custom("expected array"))?;
                if a.len() != $n {
                    return Err(Error::custom("tuple arity mismatch"));
                }
                Ok(($($t::from_value(&a[$idx])?,)+))
            }
        }
    };
}
impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

/// Looks up a named field in an object slice and deserializes it; missing
/// fields deserialize from `null` (so `Option` fields tolerate absence).
///
/// Used by the `serde_derive` expansion — not public API upstream, but kept
/// `pub` because generated code must reach it.
///
/// # Errors
///
/// Returns [`Error`] when the field is missing (for non-optional types) or
/// has the wrong shape.
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
        None => T::from_value(&Value::Null)
            .map_err(|_| Error::custom(format!("missing field `{name}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        assert_eq!(Vec::<(f64, f64)>::from_value(&v.to_value()).unwrap(), v);
        let mut s = HashSet::new();
        s.insert("b".to_string());
        s.insert("a".to_string());
        // Deterministic (sorted) serialization.
        assert_eq!(
            s.to_value(),
            Value::Array(vec![Value::from("a"), Value::from("b")])
        );
        assert_eq!(HashSet::<String>::from_value(&s.to_value()).unwrap(), s);
    }

    #[test]
    fn field_lookup_handles_missing_options() {
        let obj = vec![("x".to_string(), Value::from(1u64))];
        assert_eq!(field::<u64>(&obj, "x").unwrap(), 1);
        assert_eq!(field::<Option<u64>>(&obj, "y").unwrap(), None);
        assert!(field::<u64>(&obj, "y").is_err());
    }

    #[test]
    fn value_indexing() {
        let v = Value::Object(vec![(
            "a".to_string(),
            Value::Array(vec![Value::from(5u64)]),
        )]);
        assert_eq!(v["a"][0].as_u64(), Some(5));
        assert!(v["missing"].is_null());
    }
}
