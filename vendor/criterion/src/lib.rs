//! Vendored offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock benchmark harness with criterion's macro surface
//! (`criterion_group!` / `criterion_main!` / `bench_function` / `iter`).
//! No statistics beyond mean/min/max over the sample set — enough to compare
//! before/after on the same machine, which is all the in-repo benches need.

use std::time::{Duration, Instant};

/// Benchmark harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before sampling.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Runs `f` repeatedly and prints mean/min/max per-iteration time.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        // Warm-up: run until the warm-up budget is spent.
        let warm_start = Instant::now();
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        while warm_start.elapsed() < self.warm_up {
            f(&mut bencher);
            if bencher.iters == 0 {
                break; // closure never called iter(); avoid spinning
            }
        }

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        if samples.is_empty() {
            println!("{name:<40} no samples (closure never called iter())");
            return self;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{name:<40} mean {:>12} min {:>12} max {:>12} ({} samples)",
            format_time(mean),
            format_time(min),
            format_time(max),
            samples.len()
        );
        self
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs one timed iteration of the benchmark body.
    pub fn iter<R>(&mut self, mut body: impl FnMut() -> R) {
        let start = Instant::now();
        let out = body();
        self.elapsed += start.elapsed();
        self.iters += 1;
        std::hint::black_box(out);
    }
}

/// Declares a benchmark group (criterion-compatible syntax).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point (criterion-compatible syntax).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
