//! Vendored offline derive macros for the stand-in `serde` crate.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! item shapes `real-rs` uses, without `syn`/`quote` (unavailable offline):
//!
//! - structs with named fields,
//! - tuple structs (newtypes serialize transparently, larger tuples as
//!   arrays),
//! - enums with unit, newtype, and struct variants (externally tagged, as
//!   upstream serde's default representation).
//!
//! Generics and `#[serde(...)]` attributes are not supported; deriving on
//! such an item produces a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the derive input item.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// One enum variant.
enum Variant {
    Unit(String),
    Newtype(String),
    Tuple(String, usize),
    Struct(String, Vec<String>),
}

struct Parser {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Parser {
    fn new(ts: TokenStream) -> Self {
        Self {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Skips `#[...]` attributes (including doc comments).
    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
            if let Some(TokenTree::Group(_)) = self.peek() {
                self.pos += 1; // [...]
            }
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(super)`, ….
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Skips a type (everything up to a top-level `,`), tracking `<...>`
    /// angle-bracket depth so generic arguments don't terminate the field.
    fn skip_type(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    angle += 1;
                    self.pos += 1;
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle -= 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }
}

/// Parses named fields inside a brace group, returning their names.
fn parse_named_fields(group: TokenStream) -> Result<Vec<String>, String> {
    let mut p = Parser::new(group);
    let mut fields = Vec::new();
    while !p.at_end() {
        p.skip_attributes();
        if p.at_end() {
            break;
        }
        p.skip_visibility();
        let name = p.expect_ident()?;
        match p.next() {
            Some(TokenTree::Punct(pc)) if pc.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        p.skip_type();
        fields.push(name);
        // Consume the trailing comma if present.
        if let Some(TokenTree::Punct(pc)) = p.peek() {
            if pc.as_char() == ',' {
                p.pos += 1;
            }
        }
    }
    Ok(fields)
}

/// Counts the top-level comma-separated types in a paren group.
fn count_tuple_fields(group: TokenStream) -> usize {
    let mut p = Parser::new(group);
    if p.at_end() {
        return 0;
    }
    let mut arity = 1;
    let mut angle: i32 = 0;
    while let Some(t) = p.next() {
        match t {
            TokenTree::Punct(pc) if pc.as_char() == '<' => angle += 1,
            TokenTree::Punct(pc) if pc.as_char() == '>' => angle -= 1,
            TokenTree::Punct(pc)
                if pc.as_char() == ',' && angle == 0
                // A trailing comma does not add a field.
                && !p.at_end() =>
            {
                arity += 1;
            }
            _ => {}
        }
    }
    arity
}

fn parse_variants(group: TokenStream) -> Result<Vec<Variant>, String> {
    let mut p = Parser::new(group);
    let mut variants = Vec::new();
    while !p.at_end() {
        p.skip_attributes();
        if p.at_end() {
            break;
        }
        let name = p.expect_ident()?;
        let variant = match p.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                p.pos += 1;
                Variant::Struct(name, fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                p.pos += 1;
                if arity == 1 {
                    Variant::Newtype(name)
                } else {
                    Variant::Tuple(name, arity)
                }
            }
            _ => Variant::Unit(name),
        };
        variants.push(variant);
        if let Some(TokenTree::Punct(pc)) = p.peek() {
            if pc.as_char() == ',' {
                p.pos += 1;
            }
        }
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut p = Parser::new(input);
    p.skip_attributes();
    p.skip_visibility();
    let kind = p.expect_ident()?;
    let name = p.expect_ident()?;
    if let Some(TokenTree::Punct(pc)) = p.peek() {
        if pc.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }
    match kind.as_str() {
        "struct" => match p.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                })
            }
            other => Err(format!("unsupported struct shape for `{name}`: {other:?}")),
        },
        "enum" => match p.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("unsupported enum shape for `{name}`: {other:?}")),
        },
        other => Err(format!("cannot derive for item kind `{other}`")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});")
        .parse()
        .expect("valid error expansion")
}

/// Derives the stand-in `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let code = match &item {
        Item::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{pushes}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: String = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{items}])")
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| match v {
                    Variant::Unit(vn) => format!(
                        "{name}::{vn} => ::serde::Value::String(::std::string::String::from({vn:?})),"
                    ),
                    Variant::Newtype(vn) => format!(
                        "{name}::{vn}(__x0) => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from({vn:?}), ::serde::Serialize::to_value(__x0))]),"
                    ),
                    Variant::Tuple(vn, arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__x{i}")).collect();
                        let items: String = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b}),"))
                            .collect();
                        format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from({vn:?}), \
                             ::serde::Value::Array(::std::vec![{items}]))]),",
                            binds.join(", ")
                        )
                    }
                    Variant::Struct(vn, fields) => {
                        let binds = fields.join(", ");
                        let pushes: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), \
                                     ::serde::Serialize::to_value({f})),"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from({vn:?}), \
                             ::serde::Value::Object(::std::vec![{pushes}]))]),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives the stand-in `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let code = match &item {
        Item::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(__obj, {f:?})?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __obj = __v.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for `{name}`\"))?;\n\
                         ::std::result::Result::Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(__v)?))"
                    .to_string()
            } else {
                let items: String = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?,"))
                    .collect();
                format!(
                    "let __a = __v.as_array().ok_or_else(|| \
                         ::serde::Error::custom(\"expected array for `{name}`\"))?;\n\
                     if __a.len() != {arity} {{\n\
                         return ::std::result::Result::Err(\
                             ::serde::Error::custom(\"tuple arity mismatch for `{name}`\"));\n\
                     }}\n\
                     ::std::result::Result::Ok(Self({items}))"
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(vn) => Some(format!(
                        "{vn:?} => return ::std::result::Result::Ok({name}::{vn}),"
                    )),
                    _ => None,
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(_) => None,
                    Variant::Newtype(vn) => Some(format!(
                        "{vn:?} => ::std::result::Result::Ok(\
                         {name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    Variant::Tuple(vn, arity) => {
                        let items: String = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?,"))
                            .collect();
                        Some(format!(
                            "{vn:?} => {{\n\
                                 let __a = __inner.as_array().ok_or_else(|| \
                                     ::serde::Error::custom(\"expected array\"))?;\n\
                                 if __a.len() != {arity} {{\n\
                                     return ::std::result::Result::Err(\
                                         ::serde::Error::custom(\"variant arity mismatch\"));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({items}))\n\
                             }},"
                        ))
                    }
                    Variant::Struct(vn, fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::field(__fields, {f:?})?,"))
                            .collect();
                        Some(format!(
                            "{vn:?} => {{\n\
                                 let __fields = __inner.as_object().ok_or_else(|| \
                                     ::serde::Error::custom(\"expected object variant\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{ {inits} }})\n\
                             }},"
                        ))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                             match __s {{\n\
                                 {unit_arms}\n\
                                 __other => return ::std::result::Result::Err(\
                                     ::serde::Error::custom(::std::format!(\
                                     \"unknown variant `{{__other}}` of `{name}`\"))),\n\
                             }}\n\
                         }}\n\
                         let __obj = __v.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected variant object for `{name}`\"))?;\n\
                         if __obj.len() != 1 {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                                 \"expected single-key variant object for `{name}`\"));\n\
                         }}\n\
                         let (__tag, __inner) = &__obj[0];\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\n\
                             __other => ::std::result::Result::Err(\
                                 ::serde::Error::custom(::std::format!(\
                                 \"unknown variant `{{__other}}` of `{name}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
