//! Vendored offline stand-in for the `serde_json` crate.
//!
//! Serializes and parses the [`serde::Value`] tree used by the vendored
//! `serde` facade. Covers the surface `real-rs` uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`], [`from_value`], and the
//! [`Error`] type, plus [`Value`]/[`Number`] re-exports.
//!
//! Strings are escaped per RFC 8259 (quotes, backslashes, control
//! characters), which is what makes this exporter immune to the
//! JSON-injection bug the hand-rolled `to_chrome_trace` had. Non-finite
//! floats serialize as `null`, matching upstream `serde_json`'s `Value`
//! behaviour.

use std::fmt;

pub use serde::{Number, Value};

/// JSON serialization / parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// Byte offset of the parse failure, when the error came from the
    /// tokenizer (shape mismatches discovered after parsing carry `None`).
    offset: Option<usize>,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
            offset: None,
        }
    }

    /// Byte offset into the parsed input where the tokenizer failed, if the
    /// error is positional. Callers (e.g. `real-cli`) turn this into a
    /// `line:column` prefix; the `Display` message is unchanged and still
    /// ends in `at byte N` for positional errors.
    pub fn byte_offset(&self) -> Option<usize> {
        self.offset
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e)
    }
}

/// Converts any serializable type to a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Builds a `T` back out of a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] when the value's shape does not match `T`.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Serializes to a compact JSON string.
///
/// # Errors
///
/// Infallible for the tree-based model; the `Result` mirrors upstream.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to an indented (2-space) JSON string.
///
/// # Errors
///
/// Infallible for the tree-based model; the `Result` mirrors upstream.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_str(s)?;
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    use std::fmt::Write as _;
    match n {
        Number::U(u) => {
            let _ = write!(out, "{u}");
        }
        Number::I(i) => {
            let _ = write!(out, "{i}");
        }
        Number::F(f) if f.is_finite() => {
            let _ = write!(out, "{f}");
        }
        // JSON has no NaN/Infinity; match upstream Value behaviour.
        Number::F(_) => out.push_str("null"),
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_str(s: &str) -> Result<Value, Error> {
    let mut p = JsonParser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> JsonParser<'a> {
    fn err(&self, msg: impl fmt::Display) -> Error {
        Error {
            msg: format!("{msg} at byte {}", self.pos),
            offset: Some(self.pos),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("JSON nesting too deep"));
        }
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            // hex4 advanced past the digits; skip the +1 below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char (input is a &str, so
                    // slicing at a char boundary is safe via chars()).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Object(vec![
            (
                "a".to_string(),
                Value::Array(vec![Value::from(1u64), Value::from(-2i64)]),
            ),
            ("b".to_string(), Value::from("x\"y\\z\n")),
            ("c".to_string(), Value::Null),
            ("d".to_string(), Value::from(1.5f64)),
        ]);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn escapes_injection_attempts() {
        let hostile = "\",\"pid\":999,\"x\":\"";
        let s = to_string(&hostile.to_string()).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, hostile);
        // The hostile payload must stay inside one string token.
        let v: Value = from_str(&format!("{{\"label\":{s}}}")).unwrap();
        assert_eq!(v["label"].as_str(), Some(hostile));
        assert!(v.get("pid").is_none());
    }

    #[test]
    fn parses_unicode_escapes() {
        let s: String = from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(s, "é😀");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn parse_errors_carry_byte_offsets() {
        let err = from_str::<Value>("{\"a\":}").unwrap_err();
        assert_eq!(err.byte_offset(), Some(5));
        assert!(err.to_string().ends_with("at byte 5"), "{err}");
        // Shape mismatches after a successful parse are not positional.
        let err = from_str::<u64>("\"text\"").unwrap_err();
        assert_eq!(err.byte_offset(), None);
    }

    #[test]
    fn integers_stay_integers() {
        let v: Value = from_str("[18446744073709551615,-3,2.5]").unwrap();
        assert_eq!(v[0].as_u64(), Some(u64::MAX));
        assert_eq!(v[1].as_i64(), Some(-3));
        assert_eq!(v[2].as_f64(), Some(2.5));
    }
}
