//! Vendored offline stand-in for the `proptest` crate.
//!
//! Implements the subset `real-rs` uses: the [`Strategy`] trait with range,
//! tuple, [`Just`], `prop_map`, `prop_oneof!` and `collection::vec`
//! strategies, plus the `proptest!` / `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted for an offline build:
//! cases are seeded deterministically from the test's module path (every run
//! explores the same inputs — failures are always reproducible), there is no
//! shrinking (the failing input is printed as-is by the assertion message),
//! and `prop_assume!` skips the case without regression-count bookkeeping.

use std::ops::Range;
use std::rc::Rc;

/// Number of cases each `proptest!` test executes.
pub const CASES: usize = 128;

/// Deterministic per-test random source (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// FNV-1a, used to derive a stable seed from the test name.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives the cases of one `proptest!`-generated test.
pub struct TestRunner {
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner seeded from the test's fully qualified name.
    pub fn new(name: &str) -> Self {
        Self {
            rng: TestRng::new(fnv1a(name)),
        }
    }

    /// The case-generation random source.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Rc<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.sample(rng))
    }
}

/// Uniform choice among equally weighted alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Rc<dyn Strategy<Value = T>>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self {
            options: self.options.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Builds a union; panics when `options` is empty.
    pub fn new(options: Vec<Rc<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.uniform()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.uniform() as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count bounds for [`vec`]: `min..max` (exclusive) or exact.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// Strategy producing vectors of values drawn from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors whose length is drawn from `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a `proptest!` test module needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, Strategy,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __runner = $crate::TestRunner::new(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..$crate::CASES {
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome = (|| -> ::std::ops::ControlFlow<()> {
                        $(let $arg = $crate::Strategy::sample(&($strat), __runner.rng());)*
                        $body
                        ::std::ops::ControlFlow::Continue(())
                    })();
                    let _ = (__case, __outcome);
                }
            }
        )*
    };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::ops::ControlFlow::Break(());
        }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(::std::rc::Rc::new($strat) as ::std::rc::Rc<dyn $crate::Strategy<Value = _>>,)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = crate::Strategy::sample(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = crate::Strategy::sample(&(-2.0..5.0f64), &mut rng);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::new(9);
        for _ in 0..200 {
            let v = crate::Strategy::sample(&crate::collection::vec(0u32..4, 1..6), &mut rng);
            assert!((1..6).contains(&v.len()));
            let exact = crate::Strategy::sample(&crate::collection::vec(0.0..1.0f64, 3), &mut rng);
            assert_eq!(exact.len(), 3);
        }
    }

    #[test]
    fn determinism_across_runners() {
        let mut a = crate::TestRunner::new("x");
        let mut b = crate::TestRunner::new("x");
        for _ in 0..32 {
            assert_eq!(a.rng().next_u64(), b.rng().next_u64());
        }
    }

    proptest! {
        #[test]
        fn macro_compiles_and_draws(x in 0u32..10, (a, b) in (0.0..1.0f64, 0usize..3)) {
            prop_assume!(x != 9);
            prop_assert!(x < 9);
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert_eq!(b.min(2), b);
        }

        #[test]
        fn oneof_and_map_work(v in prop_oneof![Just(1u32), Just(2u32)].prop_map(|x: u32| x * 10)) {
            prop_assert!(v == 10 || v == 20);
        }
    }
}
