//! Defining a *custom* RLHF-like workflow with the dataflow API (§4 "Beyond
//! PPO"): any algorithm expressible as a DAG of generation / inference /
//! training function calls gets automatic planning for free.
//!
//! This example builds a two-critic ensemble variant of PPO: two reward
//! models score the generations independently (they can run concurrently on
//! disjoint meshes), and the actor trains on the averaged reward.
//!
//! ```sh
//! cargo run --release --example custom_algorithm
//! ```

use real_core::prelude::*;
use std::time::Duration;

fn main() {
    let cluster = ClusterSpec::h100(2);
    let actor = ModelSpec::llama3_7b();
    let reward = ModelSpec::llama3_7b().critic();

    let batch = 256;
    let (prompt_len, gen_len) = (1024, 1024);
    let ctx = prompt_len + gen_len;

    // The workflow as a list of ModelFunctionCallDef — the same shape as the
    // paper's Appendix-B user interface.
    let calls = vec![
        ModelFunctionCallDef::new(
            "actor_gen",
            "actor",
            actor.clone(),
            CallType::Generate {
                batch,
                prompt_len,
                gen_len,
            },
            &["prompts"],
            &["seq", "logp"],
        ),
        ModelFunctionCallDef::new(
            "reward_a_inf",
            "reward_a",
            reward.clone(),
            CallType::Inference {
                batch,
                seq_len: ctx,
            },
            &["seq"],
            &["rewards_a"],
        ),
        ModelFunctionCallDef::new(
            "reward_b_inf",
            "reward_b",
            reward.clone(),
            CallType::Inference {
                batch,
                seq_len: ctx,
            },
            &["seq"],
            &["rewards_b"],
        ),
        ModelFunctionCallDef::new(
            "ref_inf",
            "reference",
            actor.clone(),
            CallType::Inference {
                batch,
                seq_len: ctx,
            },
            &["seq"],
            &["ref_logp"],
        ),
        ModelFunctionCallDef::new(
            "actor_train",
            "actor",
            actor.clone(),
            CallType::TrainStep {
                batch,
                seq_len: ctx,
                n_minibatches: 4,
            },
            &["seq", "logp", "rewards_a", "rewards_b", "ref_logp"],
            &[],
        ),
    ];
    let graph = DataflowGraph::new(calls).expect("workflow is a valid DAG");
    println!(
        "workflow: {} calls over models {:?}",
        graph.n_calls(),
        graph.model_names()
    );
    // The two reward inferences share no data edge: the planner may overlap
    // them on disjoint meshes.
    let a = graph.find("reward_a_inf").unwrap();
    let b = graph.find("reward_b_inf").unwrap();
    assert!(!graph.deps(b).contains(&a));

    let experiment = Experiment::new(cluster, graph).with_seed(11);
    let search_cfg = McmcConfig {
        max_steps: 20_000,
        time_limit: Duration::from_secs(15),
        ..McmcConfig::default()
    };
    let planned = experiment.plan_auto(&search_cfg).expect("feasible plan");
    let report = experiment.run(&planned.plan, 2).expect("plan fits");
    println!("\n{}", report.render(experiment.graph()));

    let ra = planned.plan.assignment(a);
    let rb = planned.plan.assignment(b);
    println!("reward A on {}, reward B on {}", ra.mesh, rb.mesh);
    if !ra.mesh.overlaps(&rb.mesh) {
        println!("→ the planner placed the ensemble rewards on disjoint meshes (concurrent)");
    }
}
