//! Runs the four §8.1 baseline systems plus ReaL on one workload — a
//! single-row version of the paper's Fig. 7.
//!
//! ```sh
//! cargo run --release --example baseline_shootout
//! ```

use real_core::prelude::*;
use real_core::real_util::Table;
use std::time::Duration;

fn main() {
    let cluster = ClusterSpec::h100(2);
    let actor = ModelSpec::llama3_7b();
    let critic = actor.critic();
    let cfg = RlhfConfig::instruct_gpt(512);
    let experiment = Experiment::ppo(cluster.clone(), actor, critic, cfg).with_seed(3);
    let graph = experiment.graph().clone();

    let mut table = Table::new(vec!["system", "tokens/s", "iteration (s)"]);
    let base = EngineConfig::default();
    for (name, setup) in baselines::all(&cluster, &graph, &base) {
        match setup {
            Ok(b) => {
                let engine = RuntimeEngine::new(cluster.clone(), graph.clone(), b.config);
                match engine.run(&b.plan, 2) {
                    Ok(run) => {
                        let tput = run.tokens_per_sec(cfg.batch_size * cfg.context_len());
                        table.row(vec![
                            name.into(),
                            format!("{tput:.0}"),
                            format!("{:.1}", run.iter_time),
                        ]);
                    }
                    Err(e) => {
                        table.row(vec![name.into(), "OOM".into(), e.to_string()]);
                    }
                }
            }
            Err(e) => {
                table.row(vec![name.into(), "OOM".into(), e]);
            }
        }
    }

    let heuristic = experiment.plan_heuristic();
    let h = experiment.run(&heuristic, 2).expect("heuristic fits");
    table.row(vec![
        "ReaL-Heuristic".into(),
        format!("{:.0}", h.tokens_per_sec),
        format!("{:.1}", h.run.iter_time),
    ]);

    let search_cfg = McmcConfig {
        max_steps: 30_000,
        time_limit: Duration::from_secs(20),
        ..McmcConfig::default()
    };
    let planned = experiment.plan_auto(&search_cfg).expect("feasible plan");
    let r = experiment
        .run(&planned.plan, 2)
        .expect("searched plan fits");
    table.row(vec![
        "ReaL (searched)".into(),
        format!("{:.0}", r.tokens_per_sec),
        format!("{:.1}", r.run.iter_time),
    ]);

    println!("{table}");
}
