//! Quickstart: plan and run a PPO experiment with automatic execution-plan
//! search — the Rust analogue of the paper's Appendix-B `@auto` decorator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use real_core::prelude::*;
use std::time::Duration;

fn main() {
    // A 7B actor with a 7B critic on one 8xH100 node, InstructGPT-style
    // workload (batch 128 prompts, context 2048 = 1024 prompt + 1024
    // generated, 8 PPO mini-batches).
    let cluster = ClusterSpec::h100(1);
    let actor = ModelSpec::llama3_7b();
    let critic = actor.critic();
    let experiment =
        Experiment::ppo(cluster, actor, critic, RlhfConfig::instruct_gpt(128)).with_seed(42);

    // Profile the simulated hardware and search for an execution plan.
    let search_cfg = McmcConfig {
        max_steps: 20_000,
        time_limit: Duration::from_secs(15),
        ..McmcConfig::default()
    };
    println!("searching for an execution plan ...");
    let planned = experiment
        .plan_auto(&search_cfg)
        .expect("a feasible plan exists for this workload");
    println!(
        "profiling took {:.0}s (simulated); search visited {} plans, accepted {} ({:.0}% rate)",
        planned.profiling_secs,
        planned.search.steps,
        planned.search.accepted,
        planned.search.acceptance_rate() * 100.0,
    );

    // Compare against the pre-training-style symmetric heuristic.
    let heuristic = experiment.plan_heuristic();
    let searched_report = experiment
        .run(&planned.plan, 3)
        .expect("searched plan fits");
    let heuristic_report = experiment.run(&heuristic, 3).expect("heuristic plan fits");

    println!("\n=== searched plan ===");
    println!("{}", searched_report.render(experiment.graph()));
    println!("=== heuristic plan ===");
    println!("{}", heuristic_report.render(experiment.graph()));

    let gain = searched_report.tokens_per_sec / heuristic_report.tokens_per_sec - 1.0;
    println!(
        "searched plan is {:.0}% faster than the symmetric heuristic",
        gain * 100.0
    );
}
