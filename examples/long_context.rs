//! Long-context scaling: the paper's Fig. 8 protocol in miniature.
//!
//! The token budget per iteration stays constant while the context length
//! grows 2048 → 8192 (batch shrinks 4x); ReaL's searched plans pull further
//! ahead of the symmetric heuristic as the context grows.
//!
//! ```sh
//! cargo run --release --example long_context
//! ```

use real_core::prelude::*;
use real_core::real_util::Table;
use std::time::Duration;

fn main() {
    let cluster = ClusterSpec::h100(2);
    let actor = ModelSpec::llama3_7b();
    let critic = actor.critic();

    let mut table = Table::new(vec![
        "context",
        "batch",
        "heuristic tok/s",
        "searched tok/s",
        "gain",
    ]);
    for factor in [1u64, 2, 4] {
        let cfg = RlhfConfig::instruct_gpt(256).with_context_scale(factor);
        let experiment =
            Experiment::ppo(cluster.clone(), actor.clone(), critic.clone(), cfg).with_seed(7);
        let search_cfg = McmcConfig {
            max_steps: 20_000,
            time_limit: Duration::from_secs(15),
            ..McmcConfig::default()
        };
        let planned = experiment.plan_auto(&search_cfg).expect("feasible plan");
        let heuristic = experiment.plan_heuristic();

        let searched = experiment.run(&planned.plan, 2).expect("fits");
        let baseline = experiment.run(&heuristic, 2).expect("fits");
        let gain = searched.tokens_per_sec / baseline.tokens_per_sec - 1.0;
        table.row(vec![
            cfg.context_len().to_string(),
            cfg.batch_size.to_string(),
            format!("{:.0}", baseline.tokens_per_sec),
            format!("{:.0}", searched.tokens_per_sec),
            format!("{:+.0}%", gain * 100.0),
        ]);
    }
    println!("{table}");
    println!("(constant token budget per iteration; the searched advantage grows with context)");
}
