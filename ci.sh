#!/usr/bin/env sh
# Tier-1 CI gate: build, test, formatting, lints. Run from the repo root.
set -eu

cargo build --release
cargo test -q
cargo test --doc -q
cargo fmt --check
cargo clippy --workspace -- -D warnings
# Documentation gate: every public item documented, no broken intra-doc
# links. Vendored proptest predates the gate and is excluded.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --exclude proptest

# Docs-drift gate: every source module must appear in ARCHITECTURE.md's
# module-map appendix, so the map cannot silently rot as crates grow.
for f in crates/*/src/*.rs; do
    mod=$(basename "$f" .rs)
    case "$mod" in lib|main) continue ;; esac
    if ! grep -q -e "::$mod\`" -e "\`$mod\`" docs/ARCHITECTURE.md; then
        echo "docs drift: module '$mod' ($f) missing from docs/ARCHITECTURE.md" >&2
        exit 1
    fi
done

# Dataflow-spec drift gate: docs/DATAFLOWS.md is the schema reference for
# the --graph DSL; every SpecError variant and every public field of the
# spec structs must be documented there.
for variant in $(sed -n '/^pub enum SpecError/,/^}/s/^    \([A-Z][A-Za-z]*\).*/\1/p' \
        crates/dataflow/src/spec.rs); do
    if ! grep -q "$variant" docs/DATAFLOWS.md; then
        echo "docs drift: SpecError::$variant missing from docs/DATAFLOWS.md" >&2
        exit 1
    fi
done
for field in $(sed -n '/^pub struct \(GraphSpec\|ModelDecl\|CallDecl\|HookDecl\|OffPolicyDecl\)/,/^}/s/^    pub \([a-z_]*\):.*/\1/p' \
        crates/dataflow/src/spec.rs); do
    if ! grep -q "\`$field\`" docs/DATAFLOWS.md; then
        echo "docs drift: spec field '$field' missing from docs/DATAFLOWS.md" >&2
        exit 1
    fi
done

# Serving-spec drift gate: docs/SERVING.md is the schema reference for
# workload.json; every public field of the workload spec structs (top-level
# and inside the arrival variants) and every admission decision / rejection
# variant must be documented there.
for field in $(sed -n '/^pub \(struct\|enum\) \(WorkloadSpec\|TemplateSpec\|ArrivalSpec\|BurstSpec\|AdmissionSpec\)/,/^}/{s/^    pub \([a-z_]*\):.*/\1/p;s/^        \([a-z_]*\):.*/\1/p;}' \
        crates/serve/src/workload.rs); do
    if ! grep -q "\`$field\`" docs/SERVING.md; then
        echo "docs drift: workload field '$field' missing from docs/SERVING.md" >&2
        exit 1
    fi
done
for variant in $(sed -n '/^pub enum \(ArrivalSpec\|AdmissionDecision\|RejectReason\)/,/^}/s/^    \([A-Z][A-Za-z]*\).*/\1/p' \
        crates/serve/src/workload.rs crates/serve/src/admission.rs); do
    if ! grep -q "\`$variant\`" docs/SERVING.md; then
        echo "docs drift: variant '$variant' missing from docs/SERVING.md" >&2
        exit 1
    fi
done

# CLI-drift gate: every `real` subcommand in the dispatch table must be
# mentioned in README.md, so the README cannot lag behind the binary.
for cmd in $(sed -n '/^pub fn dispatch/,/^}/s/^ *"\([a-z-]*\)" => .*/\1/p' \
        crates/cli/src/commands.rs); do
    if ! grep -q "real $cmd" README.md; then
        echo "docs drift: CLI subcommand 'real $cmd' missing from README.md" >&2
        exit 1
    fi
done
# ... and the graph-DSL flags must stay documented.
for flag in graph async-offpolicy staleness; do
    if ! grep -q -- "--$flag" README.md; then
        echo "docs drift: flag '--$flag' missing from README.md" >&2
        exit 1
    fi
done
# ... and every serve flag must stay documented in the operator's guide.
for flag in workload horizon max-stretch probe-steps admit-all no-preemption; do
    if ! grep -q -- "--$flag" docs/SERVING.md; then
        echo "docs drift: serve flag '--$flag' missing from docs/SERVING.md" >&2
        exit 1
    fi
done

# ... and every speculation flag must stay documented in its guide.
for flag in spec-decode draft-model spec-k acceptance no-spec memo-in memo-out; do
    if ! grep -q -- "--$flag" docs/SPECULATION.md; then
        echo "docs drift: speculation flag '--$flag' missing from docs/SPECULATION.md" >&2
        exit 1
    fi
done

# Search-throughput gate: the memoized fast path must beat from-scratch
# pricing on the CI-sized config while choosing the identical plan (see
# docs/SEARCH.md). The full three-scale table is the `search_throughput`
# ablation; this runs only the small gate pair.
cargo bench -q -p real-bench --bench ablations -- search_throughput_gate

# Speculation gate: on the decode-dominant CI pairing the searched
# speculative plan must beat the plain incumbent by >= 1.25x at acceptance
# 0.8 and strip speculation entirely at 0.3 (see docs/SPECULATION.md). The
# two-pairing acceptance sweep is the `spec_decode` ablation.
cargo bench -q -p real-bench --bench ablations -- spec_decode_gate

# Profile-regression gate: re-profile the reference PPO workload and diff
# phase shares, makespan, and critical-path composition against the
# committed baseline (see docs/PROFILING.md). The heuristic plan and the
# virtual-time engine make the profile bit-deterministic, so tight
# tolerances hold across machines.
./target/release/real profile --nodes 1 --batch 32 --iters 2 \
    --quick-profile --heuristic \
    --baseline baselines/ppo-1node-quick.json --check --tolerance-pct 2
