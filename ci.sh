#!/usr/bin/env sh
# Tier-1 CI gate: build, test, formatting, lints. Run from the repo root.
set -eu

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy --workspace -- -D warnings
