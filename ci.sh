#!/usr/bin/env sh
# Tier-1 CI gate: build, test, formatting, lints. Run from the repo root.
set -eu

cargo build --release
cargo test -q
cargo test --doc -q
cargo fmt --check
cargo clippy --workspace -- -D warnings
# Documentation gate: every public item documented, no broken intra-doc
# links. Vendored proptest predates the gate and is excluded.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --exclude proptest
