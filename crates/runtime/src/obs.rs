//! Observability assembly for runtime-engine runs.
//!
//! A [`crate::RunReport`] already carries everything the unified
//! observability layer needs — the kernel [`real_sim::Trace`], the master
//! worker's request/response log, and per-call timings. This module turns
//! that into:
//!
//! * [`build_event_stream`] — one [`real_obs::EventStream`] combining the
//!   per-GPU kernel spans (micro-batches, pipeline stages, reallocation
//!   broadcasts, transfers), one master control lane per function call with
//!   a span per dispatched request (category `call/gen`, `call/train`, or
//!   `call/inf` after the call's type, so `real profile` can attribute
//!   phases), retry-backoff windows as `backoff` spans nested in their
//!   call span, flow arrows linking each master `Request` to the worker
//!   `Response` that completes it, and per-GPU memory-in-use counter
//!   tracks derived from the engine's memory model.
//! * [`run_metrics`] — a [`real_obs::MetricsRegistry`] with per-category
//!   busy-second counters (matching [`crate::RunReport::category_totals`]),
//!   run-level gauges, and per-call duration histograms.
//!
//! Faulted runs additionally get a synthetic fault process in the stream
//! ([`FAULT_PID`]): one lane per affected GPU or node link carrying the
//! injected slowdown / crash / link-degradation windows as spans, abort
//! instants on the master call lanes, and `runtime/fault_*` counters in the
//! metrics registry. Fault-free runs emit none of this, keeping their
//! exports byte-identical to pre-fault builds.
//!
//! Runs executed under an elastic re-plan policy
//! ([`crate::RuntimeEngine::run_replan`]) get one more synthetic process
//! ([`REPLAN_PID`]) with a decision lane: an instant per trigger evaluation
//! (labelled `reason: outcome`), a span covering each committed switch's
//! reallocation prologue, and `runtime/replan_*` counters in the registry.
//! Runs whose policy never triggered emit none of this either.

use crate::config::EngineConfig;
use crate::memcheck;
use crate::report::RunReport;
use real_cluster::ClusterSpec;
use real_dataflow::{DataflowGraph, ExecutionPlan};
use real_obs::{EventStream, LaneId, MetricsRegistry};

/// Histogram bounds for per-call wall times (seconds): RLHF calls range
/// from sub-second inference shards to minutes-long generation.
pub const CALL_SECONDS_BOUNDS: &[f64] = &[
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
];

/// Synthetic process id of the fault-injection lanes in the event stream
/// (`u32::MAX` is the master worker).
pub const FAULT_PID: u32 = u32::MAX - 1;

/// Synthetic process id of the re-plan decision lane in the event stream.
pub const REPLAN_PID: u32 = u32::MAX - 2;

/// Lane tid offset separating node-link lanes from per-GPU lanes within the
/// fault process.
const FAULT_LINK_TID_BASE: u32 = 1 << 16;

/// Thread-id stride between overflow layers of one fault lane: overlapping
/// injected windows on the same GPU/link are layered onto `tid`,
/// `tid + STRIDE`, `tid + 2*STRIDE`, ... so each lane's span timestamps
/// stay monotone.
const FAULT_LAYER_TID_STRIDE: u32 = 1 << 24;

/// Assembles the unified event stream for a finished run.
///
/// `plan` and `config` must be the ones the run executed with: the plan
/// supplies each call's device mesh (flow-arrow targets and memory
/// accounting), the config supplies the ZeRO/distributed-optimizer modes
/// the memory model depends on.
pub fn build_event_stream(
    cluster: &ClusterSpec,
    graph: &DataflowGraph,
    plan: &ExecutionPlan,
    config: &EngineConfig,
    report: &RunReport,
) -> EventStream {
    let gpn = cluster.gpus_per_node as usize;
    let n_gpus = cluster.total_gpus() as usize;
    let log = &report.master_log;
    let profile = memcheck::mem_profile(
        cluster,
        graph,
        plan,
        &config.zero3_models,
        &config.dist_optim_models,
    );

    let mem_edges: usize = log
        .requests
        .iter()
        .map(|r| 2 * plan.assignment(r.call).mesh.n_gpus() as usize)
        .sum();
    let fault_extra = config.fault_plan.as_ref().map_or(0, |p| p.events.len() * 3)
        + report.faults.events.len() * 4;
    let replan_extra = report.replan.events.len() * 3 + 2;
    let capacity = report.trace.events().len() * 4
        + log.requests.len() * 4
        + mem_edges
        + n_gpus
        + fault_extra
        + replan_extra
        + 64;
    let mut stream = EventStream::with_capacity(capacity);

    // GPU kernel lanes and link-utilization counters from the kernel trace.
    real_sim::record_event_stream(&report.trace, gpn, &mut stream);

    // One master control lane per function call (calls overlap in time, so
    // a single lane could not keep begin/end nesting balanced).
    let master = LaneId::master().pid;
    for (id, def) in graph.iter() {
        stream.set_lane_name(
            LaneId {
                pid: master,
                tid: id.0 as u32,
            },
            "master",
            &def.call_name,
        );
    }

    // Phase-bearing span categories, one per call, after the call's type.
    let call_category: Vec<String> = graph
        .iter()
        .map(|(_, def)| format!("call/{}", def.call_type.label()))
        .collect();

    // Retry backoff windows, grouped per (call, iter) so they can nest
    // inside their request's call span. Attempts are sequential, so the
    // windows of one request never overlap.
    let mut backoffs: std::collections::BTreeMap<
        (usize, usize),
        Vec<&crate::report::RequestFault>,
    > = std::collections::BTreeMap::new();
    for f in &report.faults.events {
        if f.backoff_secs > 0.0 {
            if let Some(call) = graph.find(&f.call_name) {
                backoffs.entry((call.0, f.iter)).or_default().push(f);
            }
        }
    }

    // Request spans on the master lanes, plus a flow arrow from each
    // dispatch to the lane of the first GPU executing it.
    for (idx, req) in log.requests.iter().enumerate() {
        let Some(resp) = log.response(req.call, req.iter) else {
            continue;
        };
        let lane = LaneId {
            pid: master,
            tid: req.call.0 as u32,
        };
        stream.begin(
            lane,
            &format!("{}#{}", req.handle, req.iter),
            &call_category[req.call.0],
            req.dispatch_time,
        );
        if let Some(faults) = backoffs.get(&(req.call.0, req.iter)) {
            for f in faults {
                stream.span(
                    lane,
                    &format!("backoff#{}", f.attempt),
                    "backoff",
                    f.at,
                    (f.at + f.backoff_secs).min(resp.completed_at),
                );
            }
        }
        stream.end(lane, resp.completed_at);
        let first = plan
            .assignment(req.call)
            .mesh
            .gpus()
            .next()
            .expect("meshes are non-empty")
            .0 as usize;
        let dst = LaneId::gpu((first / gpn) as u32, (first % gpn) as u32);
        let name = format!("req:{}", req.handle);
        stream.flow_start(idx as u64, &name, lane, req.dispatch_time);
        stream.flow_end(idx as u64, &name, dst, resp.completed_at);
    }

    // Fault surface: injected windows as spans on a synthetic fault
    // process, abort events as instants on the affected master call lane.
    if let Some(fault_plan) = config.fault_plan.as_ref().filter(|p| !p.is_empty()) {
        // Random plans may schedule overlapping windows on one GPU; spans on
        // a lane must keep monotone timestamps, so overlapping windows are
        // layered onto overflow lanes (`gpu3+1`, ...) greedily by start time.
        // Per base-tid: (thread label, windows as (start, end, name)).
        type FaultWindows = (String, Vec<(f64, f64, String)>);
        let mut windows: std::collections::BTreeMap<u32, FaultWindows> =
            std::collections::BTreeMap::new();
        for ev in &fault_plan.events {
            let (tid, thread, name, start, end) = match *ev {
                real_sim::FaultEvent::Slowdown {
                    gpu,
                    start,
                    end,
                    factor,
                } => (
                    gpu,
                    format!("gpu{gpu}"),
                    format!("slowdown x{factor:.1}"),
                    start,
                    end,
                ),
                real_sim::FaultEvent::Crash {
                    gpu,
                    at,
                    restart_after,
                } => (
                    gpu,
                    format!("gpu{gpu}"),
                    "crash+restart".to_string(),
                    at,
                    at + restart_after,
                ),
                real_sim::FaultEvent::LinkDegrade {
                    node,
                    start,
                    end,
                    factor,
                } => (
                    FAULT_LINK_TID_BASE + node,
                    format!("node{node}-link"),
                    format!("link x{factor:.1}"),
                    start,
                    end,
                ),
            };
            windows
                .entry(tid)
                .or_insert_with(|| (thread, Vec::new()))
                .1
                .push((start, end, name));
        }
        let mut named: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        for (tid, (thread, mut spans)) in windows {
            spans.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let mut layer_ends: Vec<f64> = Vec::new();
            for (start, end, name) in spans {
                let layer = layer_ends
                    .iter()
                    .position(|&e| e <= start)
                    .unwrap_or_else(|| {
                        layer_ends.push(f64::NEG_INFINITY);
                        layer_ends.len() - 1
                    });
                layer_ends[layer] = end;
                let lane_tid = tid + layer as u32 * FAULT_LAYER_TID_STRIDE;
                let lane = LaneId {
                    pid: FAULT_PID,
                    tid: lane_tid,
                };
                if named.insert(lane_tid) {
                    let label = if layer == 0 {
                        thread.clone()
                    } else {
                        format!("{thread}+{layer}")
                    };
                    stream.set_lane_name(lane, "faults", &label);
                }
                stream.span(lane, &name, "fault", start, end);
            }
        }
        for f in &report.faults.events {
            let Some(call) = graph.find(&f.call_name) else {
                continue;
            };
            let lane = LaneId {
                pid: master,
                tid: call.0 as u32,
            };
            let name = match f.kind {
                crate::report::FaultAbort::Timeout => format!("timeout#{}", f.attempt),
                crate::report::FaultAbort::Crash { gpu } => {
                    format!("crash@gpu{gpu}#{}", f.attempt)
                }
            };
            stream.instant(lane, &name, "fault", f.at);
        }
    }

    // Re-plan decision lane: one instant per trigger evaluation, plus a
    // span over each committed switch's reallocation prologue.
    if !report.replan.events.is_empty() {
        let lane = LaneId {
            pid: REPLAN_PID,
            tid: 0,
        };
        stream.set_lane_name(lane, "replan", "decisions");
        for ev in &report.replan.events {
            let reason = match ev.reason {
                crate::replan::ReplanReason::DeadWorker { gpu } => format!("dead-worker@gpu{gpu}"),
                crate::replan::ReplanReason::Straggler { timeouts } => {
                    format!("straggler({timeouts} timeouts)")
                }
                crate::replan::ReplanReason::DegradedRate { rate } => {
                    format!("degraded-rate({:.0}%)", rate * 100.0)
                }
                crate::replan::ReplanReason::FreedCapacity { gpus } => {
                    format!("freed-capacity({gpus} gpus)")
                }
            };
            let outcome = match &ev.outcome {
                crate::replan::ReplanOutcome::Switched {
                    base_time,
                    target_time,
                    switch_secs,
                    ..
                } => {
                    if *switch_secs > 0.0 {
                        stream.span(
                            lane,
                            "switch prologue",
                            "replan",
                            ev.at,
                            ev.at + switch_secs,
                        );
                    }
                    format!("switched x{:.2}", base_time / target_time)
                }
                crate::replan::ReplanOutcome::GateRejected { .. } => "gate-rejected".to_string(),
                crate::replan::ReplanOutcome::SwitchFaulted { gpu, .. } => {
                    format!("switch-faulted@gpu{gpu}")
                }
                crate::replan::ReplanOutcome::NoSurvivingPlan => "no-surviving-plan".to_string(),
            };
            stream.instant(lane, &format!("{reason}: {outcome}"), "replan", ev.at);
        }
    }

    // Per-GPU memory-in-use counter tracks: the static (optimizer-state)
    // floor plus each running call's active bytes, sampled at every call
    // boundary on that GPU.
    let mut edges: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n_gpus];
    for req in &log.requests {
        let Some(resp) = log.response(req.call, req.iter) else {
            continue;
        };
        let active = profile.call_active[req.call.0] as f64;
        for gpu in plan.assignment(req.call).mesh.gpus() {
            edges[gpu.0 as usize].push((req.dispatch_time, active));
            edges[gpu.0 as usize].push((resp.completed_at, -active));
        }
    }
    for (g, mut ev) in edges.into_iter().enumerate() {
        let floor = profile.static_bytes[g] as f64;
        if ev.is_empty() && floor == 0.0 {
            continue;
        }
        // Releases before acquisitions at equal timestamps, so back-to-back
        // calls do not produce a spurious double-occupancy sample.
        ev.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite times")
                .then(a.1.partial_cmp(&b.1).expect("finite deltas"))
        });
        let node = (g / gpn) as u32;
        let track = format!("mem/node{node}/gpu{}", g % gpn);
        let mut level = floor;
        stream.counter(node, &track, 0.0, level);
        for (ts, delta) in ev {
            level += delta;
            stream.counter(node, &track, ts, level);
        }
    }

    stream
}

/// Builds the runtime metrics registry for a finished run.
///
/// The `runtime/category_seconds` counters equal
/// [`RunReport::category_totals`] exactly (they are copied, not re-derived),
/// so downstream consumers can cross-check the two surfaces.
pub fn run_metrics(cluster: &ClusterSpec, report: &RunReport) -> MetricsRegistry {
    let mut m = MetricsRegistry::new();
    for (cat, secs) in &report.category_totals {
        m.counter_add(
            "runtime/category_seconds",
            &[("category", &cat.to_string())],
            *secs,
        );
    }
    m.gauge_set("runtime/total_time_seconds", &[], report.total_time);
    m.gauge_set("runtime/iter_time_seconds", &[], report.iter_time);
    m.gauge_set("runtime/idle_gpu_seconds", &[], report.idle_total);
    m.gauge_set("runtime/mem_peak_bytes", &[], report.mem_peak as f64);
    m.gauge_set("runtime/static_utilization", &[], report.static_utilization);
    m.gauge_set(
        "runtime/busy_fraction",
        &[],
        report.busy_fraction(cluster.total_gpus() as usize),
    );
    m.counter_add("runtime/iterations", &[], report.iterations as f64);
    m.counter_add(
        "runtime/requests",
        &[],
        report.master_log.requests.len() as f64,
    );
    m.counter_add(
        "runtime/responses",
        &[],
        report.master_log.responses.len() as f64,
    );
    m.counter_add(
        "runtime/trace_events",
        &[],
        report.trace.events().len() as f64,
    );
    m.counter_add(
        "runtime/trace_dropped_events",
        &[],
        report.trace.dropped() as f64,
    );
    for t in &report.timings {
        m.histogram_observe(
            "runtime/call_seconds",
            &[("call", &t.call_name)],
            CALL_SECONDS_BOUNDS,
            t.duration(),
        );
    }
    let f = &report.faults;
    if !f.is_empty() {
        m.counter_add("runtime/fault_injected", &[], f.injected as f64);
        m.counter_add("runtime/fault_dispatches", &[], f.dispatches as f64);
        m.counter_add("runtime/fault_retries", &[], f.retries as f64);
        m.counter_add("runtime/fault_timeouts", &[], f.timeouts as f64);
        m.counter_add("runtime/fault_crashes", &[], f.crashes as f64);
        m.counter_add(
            "runtime/fault_requests_retried",
            &[],
            f.requests_retried as f64,
        );
        m.counter_add(
            "runtime/fault_requests_recovered",
            &[],
            f.requests_recovered as f64,
        );
        m.counter_add(
            "runtime/fault_requests_degraded",
            &[],
            f.requests_degraded as f64,
        );
        m.gauge_set("runtime/fault_lost_gpu_seconds", &[], f.lost_gpu_seconds);
        m.gauge_set("runtime/fault_backoff_seconds", &[], f.backoff_seconds);
    }
    let r = &report.replan;
    if !r.is_empty() {
        m.counter_add("runtime/replan_evaluations", &[], r.evaluations as f64);
        m.counter_add("runtime/replan_switches", &[], r.switches as f64);
        m.counter_add(
            "runtime/replan_gate_rejections",
            &[],
            r.gate_rejections as f64,
        );
        m.counter_add(
            "runtime/replan_aborted_switches",
            &[],
            r.aborted_switches as f64,
        );
        m.counter_add("runtime/replan_no_plan", &[], r.no_plan as f64);
        m.gauge_set("runtime/replan_switch_seconds", &[], r.switch_seconds);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineConfig, RuntimeEngine};
    use real_cluster::DeviceMesh;
    use real_dataflow::{algo, CallAssignment};
    use real_model::{ModelSpec, ParallelStrategy};
    use real_obs::{MetricValue, StreamEvent};

    fn run() -> (
        ClusterSpec,
        DataflowGraph,
        ExecutionPlan,
        EngineConfig,
        RunReport,
    ) {
        let cluster = ClusterSpec::h100(1);
        let actor = ModelSpec::llama3_7b();
        let graph = algo::ppo(&actor, &actor.critic(), &algo::RlhfConfig::instruct_gpt(64));
        let a = CallAssignment::new(
            DeviceMesh::full(&cluster),
            ParallelStrategy::new(1, 8, 1, 8).unwrap(),
        )
        .unwrap();
        let plan = ExecutionPlan::new(&graph, &cluster, vec![a; graph.n_calls()]).unwrap();
        let config = EngineConfig::deterministic().with_trace(4096);
        let engine = RuntimeEngine::new(cluster.clone(), graph.clone(), config.clone());
        let report = engine.run(&plan, 2).unwrap();
        (cluster, graph, plan, config, report)
    }

    #[test]
    fn stream_has_spans_flows_and_memory_tracks() {
        let (cluster, graph, plan, config, report) = run();
        let stream = build_event_stream(&cluster, &graph, &plan, &config, &report);
        stream.check_invariants().expect("balanced stream");
        assert_eq!(stream.dropped(), 0, "capacity estimate must hold");

        // One call span per dispatched request, on the master process.
        let call_begins = stream
            .events()
            .iter()
            .filter(|e| {
                matches!(e,
                StreamEvent::Begin { lane, category, .. }
                    if lane.pid == u32::MAX && category.starts_with("call/"))
            })
            .count();
        assert_eq!(call_begins, report.master_log.requests.len());

        // Flow arrows pair up and leave from the master lanes.
        let starts = stream
            .events()
            .iter()
            .filter(|e| matches!(e, StreamEvent::FlowStart { lane, .. } if lane.pid == u32::MAX))
            .count();
        let ends = stream
            .events()
            .iter()
            .filter(|e| matches!(e, StreamEvent::FlowEnd { lane, .. } if lane.pid != u32::MAX))
            .count();
        assert_eq!(starts, report.master_log.requests.len());
        assert_eq!(ends, starts);

        // Per-GPU memory tracks exist; in-flight reservations cover at least
        // the checker's peak (static + the worst single call's active bytes).
        let mem_samples: Vec<f64> = stream
            .events()
            .iter()
            .filter_map(|e| match e {
                StreamEvent::Counter { track, value, .. } if track.starts_with("mem/") => {
                    Some(*value)
                }
                _ => None,
            })
            .collect();
        assert!(!mem_samples.is_empty());
        let peak = mem_samples.iter().cloned().fold(0.0, f64::max);
        assert!(
            peak >= report.mem_peak as f64 * 0.999,
            "peak {peak} < {}",
            report.mem_peak
        );

        // Master lanes are named after the calls.
        assert!(stream
            .thread_names()
            .any(|(pid, _, name)| pid == u32::MAX && name == "actor_gen"));
    }

    #[test]
    fn faulted_run_surfaces_lanes_instants_and_metrics() {
        let (cluster, graph, plan, config, base) = run();
        // Crash a worker mid-generation so at least one abort is recorded.
        let gen = base
            .timings
            .iter()
            .find(|t| t.call_name == "actor_gen" && t.iter == 0)
            .unwrap();
        let fault_plan = real_sim::FaultPlan::new(9)
            .crash(3, (gen.start + gen.end) / 2.0, 2.0)
            .slowdown(1, 0.0, 5.0, 2.0)
            .degrade_link(0, 0.0, 5.0, 3.0);
        let config = EngineConfig {
            fault_plan: Some(fault_plan),
            ..config
        };
        let engine = RuntimeEngine::new(cluster.clone(), graph.clone(), config.clone());
        let report = engine.run(&plan, 2).unwrap();
        assert!(report.faults.crashes >= 1);

        let stream = build_event_stream(&cluster, &graph, &plan, &config, &report);
        stream.check_invariants().expect("balanced stream");
        assert_eq!(stream.dropped(), 0, "capacity estimate must hold");
        // Fault process lanes are named and carry the three window spans.
        assert!(stream
            .thread_names()
            .any(|(pid, _, name)| pid == FAULT_PID && name == "gpu3"));
        assert!(stream
            .thread_names()
            .any(|(pid, _, name)| pid == FAULT_PID && name == "node0-link"));
        let fault_spans = stream
            .events()
            .iter()
            .filter(|e| {
                matches!(e,
                    StreamEvent::Begin { lane, category, .. }
                        if lane.pid == FAULT_PID && category == "fault")
            })
            .count();
        assert_eq!(fault_spans, 3);
        // Abort instants land on the master's call lanes.
        assert!(stream.events().iter().any(|e| matches!(e,
            StreamEvent::Instant { lane, category, .. }
                if lane.pid == u32::MAX && category == "fault")));

        let m = run_metrics(&cluster, &report);
        assert_eq!(m.get("runtime/fault_injected", &[]).unwrap().scalar(), 3.0);
        assert!(m.get("runtime/fault_crashes", &[]).unwrap().scalar() >= 1.0);
        assert!(
            m.get("runtime/fault_lost_gpu_seconds", &[])
                .unwrap()
                .scalar()
                > 0.0
        );
    }

    #[test]
    fn fault_free_run_emits_no_fault_surface() {
        let (cluster, graph, plan, config, report) = run();
        assert!(report.faults.is_empty());
        assert!(report.replan.is_empty());
        let stream = build_event_stream(&cluster, &graph, &plan, &config, &report);
        assert!(!stream
            .events()
            .iter()
            .any(|e| matches!(e, StreamEvent::Begin { lane, .. } if lane.pid == FAULT_PID)));
        assert!(!stream
            .events()
            .iter()
            .any(|e| matches!(e, StreamEvent::Instant { lane, .. } if lane.pid == REPLAN_PID)));
        let m = run_metrics(&cluster, &report);
        assert!(m.get("runtime/fault_injected", &[]).is_none());
        assert!(m.get("runtime/replan_evaluations", &[]).is_none());
    }

    #[test]
    fn replanned_run_surfaces_decision_lane_and_metrics() {
        let (cluster, graph, plan, config, base) = run();
        let gen = base
            .timings
            .iter()
            .find(|t| t.call_name == "actor_gen" && t.iter == 0)
            .unwrap();
        // A permanent crash mid-generation forces a dead-worker re-plan.
        let config = EngineConfig {
            fault_plan: Some(real_sim::FaultPlan::new(9).crash(
                3,
                (gen.start + gen.end) / 2.0,
                1.0e6,
            )),
            ..config
        };
        let actor = ModelSpec::llama3_7b();
        let mut profiler = real_profiler::Profiler::new(
            cluster.clone(),
            real_profiler::ProfileConfig::quick(),
            21,
        );
        let profiles = vec![profiler.profile(&actor), profiler.profile(&actor.critic())];
        let est = real_estimator::Estimator::new(cluster.clone(), graph.clone(), profiles).unwrap();
        let policy = crate::replan::ReplanPolicy::new().with_search_steps(300);
        let engine = RuntimeEngine::new(cluster.clone(), graph.clone(), config.clone());
        let report = engine.run_replan(&plan, 2, &policy, &est).unwrap();
        assert!(report.replan.switches >= 1, "{:?}", report.replan);

        let stream = build_event_stream(&cluster, &graph, &plan, &config, &report);
        stream.check_invariants().expect("balanced stream");
        assert_eq!(stream.dropped(), 0, "capacity estimate must hold");
        assert!(stream
            .thread_names()
            .any(|(pid, _, name)| pid == REPLAN_PID && name == "decisions"));
        let decisions = stream
            .events()
            .iter()
            .filter(|e| {
                matches!(e,
                    StreamEvent::Instant { lane, category, .. }
                        if lane.pid == REPLAN_PID && category == "replan")
            })
            .count();
        assert_eq!(decisions, report.replan.events.len());

        let m = run_metrics(&cluster, &report);
        assert!(m.get("runtime/replan_evaluations", &[]).unwrap().scalar() >= 1.0);
        assert_eq!(
            m.get("runtime/replan_switches", &[]).unwrap().scalar(),
            report.replan.switches as f64
        );
    }

    #[test]
    fn metrics_match_report_category_totals() {
        let (cluster, _, _, _, report) = run();
        let m = run_metrics(&cluster, &report);
        for (cat, secs) in &report.category_totals {
            let got = m
                .get(
                    "runtime/category_seconds",
                    &[("category", &cat.to_string())],
                )
                .expect("category counter present")
                .scalar();
            assert!(
                (got - secs).abs() <= 1e-9 * secs.abs().max(1.0),
                "{cat}: {got} vs {secs}"
            );
        }
        assert_eq!(m.get("runtime/requests", &[]).unwrap().scalar(), 12.0);
        match m
            .get("runtime/call_seconds", &[("call", "actor_gen")])
            .unwrap()
        {
            MetricValue::Histogram(h) => assert_eq!(h.count(), 2),
            other => panic!("expected histogram, got {}", other.kind()),
        }
    }
}
