//! The master↔model-worker protocol of §6, reified.
//!
//! The paper's master worker "dispatches requests via sockets upon the
//! function call is ready"; the messages "do not transfer the associated
//! data — instead, the data is retained locally in the GPUs of model
//! workers \[and\] the master worker communicates the data locations to the
//! model workers in requests". Each model worker is an RPC server on one
//! GPU that "polls requests from the socket for each local LLM handle in a
//! round-robin manner".
//!
//! On virtual time the engine keeps exactly this bookkeeping: every
//! dispatched call produces a [`Request`] carrying the upstream data
//! locations and a matching [`Response`] on completion, and
//! [`WorkerDirectory`] records which LLM handles each worker hosts.

use real_cluster::ClusterSpec;
use real_dataflow::{CallId, DataflowGraph, ExecutionPlan};
use serde::{Deserialize, Serialize};

/// Where a data item produced by an upstream call lives: the producing
/// call's name plus the GPUs holding its DP shards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataLocation {
    /// Data key (e.g. `"seq"`).
    pub key: String,
    /// Producing call.
    pub produced_by: String,
    /// First GPU of each DP shard (the shard leaders workers pull from).
    pub shard_leaders: Vec<u32>,
}

/// A master→worker dispatch message for one function call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// The call being dispatched.
    pub call: CallId,
    /// Call name (the worker-side handle it addresses).
    pub handle: String,
    /// Unrolled iteration index.
    pub iter: usize,
    /// Virtual dispatch time (after dependency resolution + RPC latency).
    pub dispatch_time: f64,
    /// Locations of the inputs (the message body of §6 — no data payload).
    pub data_locations: Vec<DataLocation>,
    /// Number of model workers (GPUs) addressed.
    pub worker_count: u32,
}

/// A worker→master completion message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// The completed call.
    pub call: CallId,
    /// Iteration index.
    pub iter: usize,
    /// Virtual completion time.
    pub completed_at: f64,
}

/// The master worker's message log for one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MasterLog {
    /// Requests in dispatch order.
    pub requests: Vec<Request>,
    /// Responses in completion-processing order.
    pub responses: Vec<Response>,
}

impl MasterLog {
    /// The request matching a `(call, iter)` pair.
    pub fn request(&self, call: CallId, iter: usize) -> Option<&Request> {
        self.requests
            .iter()
            .find(|r| r.call == call && r.iter == iter)
    }

    /// The response matching a `(call, iter)` pair.
    pub fn response(&self, call: CallId, iter: usize) -> Option<&Response> {
        self.responses
            .iter()
            .find(|r| r.call == call && r.iter == iter)
    }

    /// Builds the §6 request body for a call: one [`DataLocation`] per
    /// input, pointing at the producer's DP shard leaders.
    pub fn data_locations(
        graph: &DataflowGraph,
        plan: &ExecutionPlan,
        call: CallId,
    ) -> Vec<DataLocation> {
        let def = graph.call(call);
        let mut out = Vec::new();
        for key in &def.input_data {
            let Some((pid, pdef)) = graph
                .iter()
                .find(|(c, p)| *c != call && p.output_data.contains(key))
            else {
                continue; // external input (e.g. the prompt dataset)
            };
            let pa = plan.assignment(pid);
            let layout = crate::layout::Layout::new(pa);
            let shard_leaders = (0..pa.strategy.dp())
                .map(|d| crate::layout::Layout::leader(layout.tp_group(0, d)) as u32)
                .collect();
            out.push(DataLocation {
                key: key.clone(),
                produced_by: pdef.call_name.clone(),
                shard_leaders,
            });
        }
        out
    }
}

/// Which LLM handles each model worker (GPU) hosts — the §6 round-robin
/// polling set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerDirectory {
    /// `handles[gpu]` = names of models whose plan places them on that GPU.
    handles: Vec<Vec<String>>,
}

impl WorkerDirectory {
    /// Derives the directory from a plan.
    pub fn new(cluster: &ClusterSpec, graph: &DataflowGraph, plan: &ExecutionPlan) -> Self {
        let mut handles: Vec<Vec<String>> = vec![Vec::new(); cluster.total_gpus() as usize];
        for (id, def) in graph.iter() {
            let a = plan.assignment(id);
            for gpu in a.mesh.gpus() {
                let slot = &mut handles[gpu.0 as usize];
                if !slot.contains(&def.model_name) {
                    slot.push(def.model_name.clone());
                }
            }
        }
        Self { handles }
    }

    /// Handles hosted by one worker.
    pub fn handles(&self, gpu: usize) -> &[String] {
        &self.handles[gpu]
    }

    /// The largest polling set across workers (a colocated symmetric plan
    /// puts every model on every worker).
    pub fn max_handles(&self) -> usize {
        self.handles.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Workers hosting no model at all (idle GPUs — §4's mesh rules are
    /// designed to avoid these).
    pub fn idle_workers(&self) -> usize {
        self.handles.iter().filter(|h| h.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use real_cluster::DeviceMesh;
    use real_dataflow::{algo, CallAssignment};
    use real_model::{ModelSpec, ParallelStrategy};

    fn setup() -> (ClusterSpec, DataflowGraph, ExecutionPlan) {
        let cluster = ClusterSpec::h100(2);
        let actor = ModelSpec::llama3_7b();
        let graph = algo::ppo(&actor, &actor.critic(), &algo::RlhfConfig::instruct_gpt(64));
        let a = CallAssignment::new(
            DeviceMesh::full(&cluster),
            ParallelStrategy::new(2, 8, 1, 4).unwrap(),
        )
        .unwrap();
        let plan = ExecutionPlan::new(&graph, &cluster, vec![a; graph.n_calls()]).unwrap();
        (cluster, graph, plan)
    }

    #[test]
    fn data_locations_point_at_producers() {
        let (_, graph, plan) = setup();
        let train = graph.find("actor_train").unwrap();
        let locs = MasterLog::data_locations(&graph, &plan, train);
        // actor_train consumes seq/logp (actor_gen), rewards, ref_logp,
        // values — 5 keys, all with producers.
        assert_eq!(locs.len(), 5);
        let seq = locs.iter().find(|l| l.key == "seq").unwrap();
        assert_eq!(seq.produced_by, "actor_gen");
        // dp=2 producer → two shard leaders.
        assert_eq!(seq.shard_leaders.len(), 2);
    }

    #[test]
    fn external_inputs_have_no_location() {
        let (_, graph, plan) = setup();
        let gen = graph.find("actor_gen").unwrap();
        // "prompts" comes from the dataset, not a call.
        assert!(MasterLog::data_locations(&graph, &plan, gen).is_empty());
    }

    #[test]
    fn directory_of_symmetric_plan_colocates_all_models() {
        let (cluster, graph, plan) = setup();
        let dir = WorkerDirectory::new(&cluster, &graph, &plan);
        assert_eq!(dir.max_handles(), 4); // actor, reward, reference, critic
        assert_eq!(dir.idle_workers(), 0);
        assert_eq!(dir.handles(0).len(), 4);
    }

    #[test]
    fn directory_of_split_plan_partitions_handles() {
        let (cluster, graph, _) = setup();
        let node0 = CallAssignment::new(
            DeviceMesh::whole_nodes(&cluster, 0, 1).unwrap(),
            ParallelStrategy::new(1, 8, 1, 4).unwrap(),
        )
        .unwrap();
        let node1 = CallAssignment::new(
            DeviceMesh::whole_nodes(&cluster, 1, 1).unwrap(),
            ParallelStrategy::new(1, 8, 1, 4).unwrap(),
        )
        .unwrap();
        let assignments: Vec<CallAssignment> = graph
            .calls()
            .iter()
            .map(|c| {
                if c.model_name == "actor" || c.model_name == "reference" {
                    node0
                } else {
                    node1
                }
            })
            .collect();
        let plan = ExecutionPlan::new(&graph, &cluster, assignments).unwrap();
        let dir = WorkerDirectory::new(&cluster, &graph, &plan);
        assert_eq!(
            dir.handles(0),
            &["actor".to_string(), "reference".to_string()]
        );
        assert_eq!(
            dir.handles(8),
            &["reward".to_string(), "critic".to_string()]
        );
        assert_eq!(dir.max_handles(), 2);
    }
}
