//! The master worker: dependency resolution and request dispatch (§6).
//!
//! The real master worker runs asyncio coroutines, one per function call,
//! each awaiting its parents and then dispatching a socket request to the
//! model workers holding the call's mesh. On virtual time, that is a loop
//! over the unrolled call nodes in topological order: a node's dispatch
//! time is the max of its parents' completions plus the RPC latency, data
//! transfers and parameter reallocations run as broadcast events between
//! calls, and the model workers' FIFO queues are the GPU timelines.

use crate::config::EngineConfig;
use crate::exec::{execute_call, ExecCtx};
use crate::memcheck;
use crate::realloc::execute_realloc;
use crate::report::{CallTiming, RunReport};
use crate::workers::{MasterLog, Request, Response};
use real_cluster::{ClusterSpec, CommModel};
use real_dataflow::{CallId, DataflowGraph, ExecutionPlan};
use real_estimator::maxmem;
use real_model::CostModel;
use real_sim::{Category, Timelines, Trace};
use real_util::DeterministicRng;
use std::collections::HashMap;
use std::fmt;

/// Errors from [`RuntimeEngine::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The plan exceeds device memory (the paper's red-cross markers in
    /// Fig. 7).
    OutOfMemory {
        /// Estimated peak bytes.
        peak: u64,
        /// Device capacity bytes.
        capacity: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::OutOfMemory { peak, capacity } => write!(
                f,
                "plan out of memory: peak {} exceeds capacity {}",
                real_util::units::fmt_bytes(*peak),
                real_util::units::fmt_bytes(*capacity)
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// The runtime engine bound to one cluster and workflow.
#[derive(Debug, Clone)]
pub struct RuntimeEngine {
    cluster: ClusterSpec,
    graph: DataflowGraph,
    config: EngineConfig,
}

impl RuntimeEngine {
    /// Creates an engine.
    pub fn new(cluster: ClusterSpec, graph: DataflowGraph, config: EngineConfig) -> Self {
        Self {
            cluster,
            graph,
            config,
        }
    }

    /// The engine's workflow.
    pub fn graph(&self) -> &DataflowGraph {
        &self.graph
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Executes `plan` for `iterations` RLHF iterations on virtual time.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::OutOfMemory`] when the plan does not fit device
    /// memory (unless `skip_mem_check` is set).
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn run(&self, plan: &ExecutionPlan, iterations: usize) -> Result<RunReport, RunError> {
        assert!(iterations > 0, "must run at least one iteration");
        let peak = memcheck::max_mem(
            &self.cluster,
            &self.graph,
            plan,
            &self.config.zero3_models,
            &self.config.dist_optim_models,
        );
        if !self.config.skip_mem_check && peak > self.cluster.gpu.mem_capacity {
            return Err(RunError::OutOfMemory {
                peak,
                capacity: self.cluster.gpu.mem_capacity,
            });
        }

        // One cost model per distinct architecture.
        let mut costs: HashMap<String, CostModel> = HashMap::new();
        for call in self.graph.calls() {
            costs
                .entry(call.model.name.clone())
                .or_insert_with(|| CostModel::new(self.cluster.clone(), call.model.clone()));
        }
        let comm = CommModel::new(&self.cluster);
        let mut tl = Timelines::new(self.cluster.total_gpus() as usize);
        let mut trace = if self.config.trace_capacity > 0 {
            Trace::with_capacity(self.config.trace_capacity)
        } else {
            Trace::disabled()
        };
        let mut rng = DeterministicRng::from_seed(self.config.seed).derive("runtime");

        let mut master_log = MasterLog::default();
        let topo = self
            .graph
            .topo_order()
            .expect("validated graphs are acyclic");
        let mut completion: Vec<Vec<f64>> = vec![vec![0.0; self.graph.n_calls()]; iterations];
        let mut timings: Vec<CallTiming> = Vec::new();
        let mut iter_end = vec![0.0f64; iterations];

        for iter in 0..iterations {
            for &call in &topo {
                let def = self.graph.call(call);
                let a = plan.assignment(call);
                let cost = &costs[&def.model.name];
                let zero3 = self.config.zero3_models.contains(&def.model_name);

                // Data-dependency readiness (+ transfer when layouts differ).
                let mut ready: f64 = 0.0;
                for &dep in self.graph.deps(call) {
                    let dep_done = completion[iter][dep.0];
                    let b = plan.assignment(dep);
                    let end = if a.mesh == b.mesh && a.strategy == b.strategy {
                        dep_done
                    } else {
                        let bytes = self.graph.call(dep).call_type.total_tokens() as f64 * 8.0;
                        let per_src = bytes / f64::from(b.strategy.dp());
                        let within = a.mesh.n_nodes() == 1
                            && b.mesh.n_nodes() == 1
                            && a.mesh.node_start() == b.mesh.node_start();
                        let dur = comm.broadcast(per_src, 2, within)
                            * rng.lognormal_factor(self.config.jitter_sigma);
                        // Only the consumer mesh is occupied: the producer's
                        // GPUs serve the send from copy engines without
                        // stalling whatever they run next (otherwise a tiny
                        // transfer would serialize disjoint-mesh calls
                        // through the producer's busy queue).
                        let gpus: Vec<usize> = a.mesh.gpus().map(|g| g.0 as usize).collect();
                        tl.collective(&gpus, dep_done, dur, Category::Transfer)
                    };
                    ready = ready.max(end);
                }

                // Parameter availability: previous call of the same model
                // (this iteration), else the model's last call of the
                // previous iteration; reallocate when layouts differ.
                let model_calls = self.graph.calls_of_model(&def.model_name);
                let order: Vec<CallId> = topo
                    .iter()
                    .copied()
                    .filter(|c| model_calls.contains(c))
                    .collect();
                let my_pos = order.iter().position(|&c| c == call).expect("listed");
                let prev: Option<(usize, CallId)> = if my_pos > 0 {
                    Some((iter, order[my_pos - 1]))
                } else if iter > 0 {
                    Some((iter - 1, *order.last().expect("non-empty")))
                } else {
                    None
                };
                if let Some((piter, pcall)) = prev {
                    let pdone = completion[piter][pcall.0];
                    let pa = plan.assignment(pcall);
                    let end = execute_realloc(
                        &mut tl,
                        &mut trace,
                        &comm,
                        &def.model,
                        pa,
                        a,
                        pdone,
                        &mut rng,
                        self.config.jitter_sigma,
                    );
                    ready = ready.max(end);
                }

                // Master dispatch RPC: the request carries the upstream
                // data locations, never the data itself (§6).
                let ready = ready + self.config.rpc_latency;
                master_log.requests.push(Request {
                    call,
                    handle: def.call_name.clone(),
                    iter,
                    dispatch_time: ready,
                    data_locations: MasterLog::data_locations(&self.graph, plan, call),
                    worker_count: a.mesh.n_gpus(),
                });

                let mut ctx = ExecCtx {
                    cost,
                    comm: &comm,
                    tl: &mut tl,
                    trace: &mut trace,
                    rng: &mut rng,
                    cfg: &self.config,
                    zero3,
                };
                let end = execute_call(&mut ctx, a, def.call_type, ready);
                master_log.responses.push(Response {
                    call,
                    iter,
                    completed_at: end,
                });
                completion[iter][call.0] = end;
                iter_end[iter] = iter_end[iter].max(end);
                timings.push(CallTiming {
                    call_name: def.call_name.clone(),
                    iter,
                    start: ready,
                    end,
                });
            }
        }

        let total_time = tl.makespan();
        // Steady-state per-iteration time: boundary-to-boundary when more
        // than one iteration ran.
        let iter_time = if iterations > 1 {
            (iter_end[iterations - 1] - iter_end[0]) / (iterations - 1) as f64
        } else {
            iter_end[0]
        };
        Ok(RunReport {
            iterations,
            total_time,
            iter_time,
            timings,
            category_totals: tl.totals(),
            idle_total: tl.idle_total(),
            mem_peak: peak,
            static_utilization: maxmem::static_utilization(&self.cluster, &self.graph, plan),
            trace,
            master_log,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use real_cluster::DeviceMesh;
    use real_dataflow::{algo, CallAssignment};
    use real_model::{ModelSpec, ParallelStrategy};

    fn setup(nodes: u32, batch: u64) -> (ClusterSpec, DataflowGraph) {
        let cluster = ClusterSpec::h100(nodes);
        let actor = ModelSpec::llama3_7b();
        let graph = algo::ppo(
            &actor,
            &actor.critic(),
            &algo::RlhfConfig::instruct_gpt(batch),
        );
        (cluster, graph)
    }

    fn symmetric(
        cluster: &ClusterSpec,
        graph: &DataflowGraph,
        dp: u32,
        tp: u32,
        mbs: u32,
    ) -> ExecutionPlan {
        let a = CallAssignment::new(
            DeviceMesh::full(cluster),
            ParallelStrategy::new(dp, tp, 1, mbs).unwrap(),
        )
        .unwrap();
        ExecutionPlan::new(graph, cluster, vec![a; graph.n_calls()]).unwrap()
    }

    #[test]
    fn symmetric_run_produces_sane_report() {
        let (cluster, graph) = setup(1, 64);
        let plan = symmetric(&cluster, &graph, 1, 8, 8);
        let engine = RuntimeEngine::new(cluster, graph, EngineConfig::deterministic());
        let report = engine.run(&plan, 2).unwrap();
        assert!(report.iter_time > 0.0);
        assert!(report.total_time >= report.iter_time);
        assert_eq!(report.timings.len(), 12); // 6 calls x 2 iters
                                              // Generation dominates the iteration (Fig. 1).
        let gen = report.call_mean("actor_gen").unwrap();
        for other in ["reward_inf", "ref_inf", "critic_inf", "critic_train"] {
            assert!(gen > report.call_mean(other).unwrap(), "{other}");
        }
    }

    #[test]
    fn oom_plan_is_rejected() {
        let (cluster, graph) = setup(1, 512);
        let plan = symmetric(&cluster, &graph, 8, 1, 1);
        let engine = RuntimeEngine::new(cluster, graph, EngineConfig::deterministic());
        let err = engine.run(&plan, 1).unwrap_err();
        assert!(matches!(err, RunError::OutOfMemory { .. }));
    }

    #[test]
    fn skip_mem_check_forces_execution() {
        let (cluster, graph) = setup(1, 512);
        let plan = symmetric(&cluster, &graph, 8, 1, 1);
        let cfg = EngineConfig {
            skip_mem_check: true,
            ..EngineConfig::deterministic()
        };
        let engine = RuntimeEngine::new(cluster, graph, cfg);
        assert!(engine.run(&plan, 1).is_ok());
    }

    #[test]
    fn determinism_per_seed() {
        let (cluster, graph) = setup(1, 64);
        let plan = symmetric(&cluster, &graph, 1, 8, 8);
        let engine = RuntimeEngine::new(cluster.clone(), graph.clone(), EngineConfig::default());
        let a = engine.run(&plan, 2).unwrap();
        let b = engine.run(&plan, 2).unwrap();
        assert_eq!(a.iter_time, b.iter_time);
        assert_eq!(a.total_time, b.total_time);
    }

    #[test]
    fn asymmetric_plan_triggers_realloc_and_transfer() {
        let (cluster, graph) = setup(2, 64);
        let full = CallAssignment::new(
            DeviceMesh::full(&cluster),
            ParallelStrategy::new(2, 8, 1, 4).unwrap(),
        )
        .unwrap();
        let mut assignments = vec![full; graph.n_calls()];
        // Actor training on node 0 only with a different shape.
        let train = graph.find("actor_train").unwrap();
        assignments[train.0] = CallAssignment::new(
            DeviceMesh::whole_nodes(&cluster, 0, 1).unwrap(),
            ParallelStrategy::new(1, 4, 2, 8).unwrap(),
        )
        .unwrap();
        let plan = ExecutionPlan::new(&graph, &cluster, assignments).unwrap();
        let engine = RuntimeEngine::new(cluster, graph, EngineConfig::deterministic());
        let report = engine.run(&plan, 2).unwrap();
        let get = |c: Category| {
            report
                .category_totals
                .iter()
                .find(|(k, _)| *k == c)
                .unwrap()
                .1
        };
        assert!(get(Category::Realloc) > 0.0, "realloc time must be charged");
        assert!(
            get(Category::Transfer) > 0.0,
            "transfer time must be charged"
        );
        // The paper's Fig. 11 note: broadcasts take much less GPU time than
        // compute.
        assert!(get(Category::Realloc) < 0.2 * get(Category::Compute));
    }

    #[test]
    fn master_log_records_every_dispatch_and_completion() {
        let (cluster, graph) = setup(1, 64);
        let plan = symmetric(&cluster, &graph, 1, 8, 8);
        let engine = RuntimeEngine::new(cluster, graph.clone(), EngineConfig::deterministic());
        let report = engine.run(&plan, 2).unwrap();
        let log = &report.master_log;
        assert_eq!(log.requests.len(), 12);
        assert_eq!(log.responses.len(), 12);
        for iter in 0..2 {
            for (id, def) in graph.iter() {
                let req = log.request(id, iter).expect("request logged");
                let resp = log.response(id, iter).expect("response logged");
                assert_eq!(req.handle, def.call_name);
                assert!(req.dispatch_time <= resp.completed_at);
                assert_eq!(req.worker_count, 8);
                // Requests carry locations, never payloads: actor_train has
                // five upstream inputs.
                if def.call_name == "actor_train" {
                    assert_eq!(req.data_locations.len(), 5);
                }
            }
        }
    }

    #[test]
    fn two_iterations_cost_less_than_twice_one() {
        // Cross-iteration overlap plus amortized warm-up.
        let (cluster, graph) = setup(1, 64);
        let plan = symmetric(&cluster, &graph, 1, 8, 8);
        let engine = RuntimeEngine::new(cluster, graph, EngineConfig::deterministic());
        let one = engine.run(&plan, 1).unwrap().total_time;
        let two = engine.run(&plan, 2).unwrap().total_time;
        assert!(two < 2.0 * one * 1.05, "one {one} two {two}");
    }
}
