//! The master worker: dependency resolution and request dispatch (§6).
//!
//! The real master worker runs asyncio coroutines, one per function call,
//! each awaiting its parents and then dispatching a socket request to the
//! model workers holding the call's mesh. On virtual time, that is a loop
//! over the unrolled call nodes in topological order: a node's dispatch
//! time is the max of its parents' completions plus the RPC latency, data
//! transfers and parameter reallocations run as broadcast events between
//! calls, and the model workers' FIFO queues are the GPU timelines.
//!
//! # Resilient dispatch
//!
//! With a [`real_sim::FaultPlan`] injected ([`EngineConfig::fault_plan`]),
//! every request goes through a retry loop instead of a bare execution:
//!
//! 1. wait for every participating worker to be up
//!    ([`real_sim::FaultClock::available_from`]),
//! 2. execute the attempt with fault windows stretching its events, under a
//!    deadline of [`EngineConfig::deadline_factor`] times the predicted
//!    cost (the §5 estimator's prediction when available, else the
//!    fault-free simulated duration from the same timeline state),
//! 3. on a crash or timeout, roll back the attempt (timelines, RNG, trace),
//!    charge the wasted interval as dead work, and re-dispatch after a
//!    bounded exponential backoff,
//! 4. after [`EngineConfig::max_retries`] failed attempts, run once in
//!    *degraded mode* — past the schedule's last crash, with checks
//!    disabled — so a run always completes.

use crate::config::EngineConfig;
use crate::exec::{draft_cost_models, execute_call_spec, spec_exec_for, ExecCtx, SpecExec};
use crate::memcheck;
use crate::realloc::execute_realloc;
use crate::replan::{ReplanEvent, ReplanOutcome, ReplanPolicy, ReplanReason, ReplanStats};
use crate::report::{AsyncStats, CallTiming, FaultAbort, FaultStats, RequestFault, RunReport};
use crate::workers::{MasterLog, Request, Response};
use real_cluster::{ClusterHealth, ClusterSpec, CommModel, GpuId};
use real_dataflow::{CallAssignment, CallId, CallType, DataflowGraph, ExecutionPlan};
use real_estimator::{maxmem, Estimator};
use real_model::CostModel;
use real_search::{compare, search_warm, McmcConfig, SearchSpace};
use real_sim::{Category, FaultClock, Timelines, Trace};
use real_util::DeterministicRng;
use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

/// Errors from [`RuntimeEngine::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The plan exceeds device memory (the paper's red-cross markers in
    /// Fig. 7).
    OutOfMemory {
        /// Estimated peak bytes.
        peak: u64,
        /// Device capacity bytes.
        capacity: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::OutOfMemory { peak, capacity } => write!(
                f,
                "plan out of memory: peak {} exceeds capacity {}",
                real_util::units::fmt_bytes(*peak),
                real_util::units::fmt_bytes(*capacity)
            ),
        }
    }
}

impl std::error::Error for RunError {}

pub use crate::multi::{run_multi, TenantElastic, TenantRun};

/// The runtime engine bound to one cluster and workflow.
#[derive(Debug, Clone)]
pub struct RuntimeEngine {
    cluster: ClusterSpec,
    graph: DataflowGraph,
    config: EngineConfig,
}

/// Result of a capped dispatch: either the request completed, or the wait
/// for a dead participant exceeded the cap and the master should re-plan.
enum DispatchOutcome {
    /// Completion time of the successful attempt.
    Done(f64),
    /// At `at`, participant `gpu` was at least the cap away from restarting.
    NeedsReplan { at: f64, gpu: u32 },
}

impl RuntimeEngine {
    /// Creates an engine.
    pub fn new(cluster: ClusterSpec, graph: DataflowGraph, config: EngineConfig) -> Self {
        Self {
            cluster,
            graph,
            config,
        }
    }

    /// The engine's workflow.
    pub fn graph(&self) -> &DataflowGraph {
        &self.graph
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The engine's cluster.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Executes `plan` for `iterations` RLHF iterations on virtual time.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::OutOfMemory`] when the plan does not fit device
    /// memory (unless `skip_mem_check` is set).
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn run(&self, plan: &ExecutionPlan, iterations: usize) -> Result<RunReport, RunError> {
        assert!(iterations > 0, "must run at least one iteration");
        let peak = memcheck::max_mem(
            &self.cluster,
            &self.graph,
            plan,
            &self.config.zero3_models,
            &self.config.dist_optim_models,
        );
        if !self.config.skip_mem_check && peak > self.cluster.gpu.mem_capacity {
            return Err(RunError::OutOfMemory {
                peak,
                capacity: self.cluster.gpu.mem_capacity,
            });
        }

        // One cost model per distinct architecture.
        let mut costs: HashMap<String, CostModel> = HashMap::new();
        for call in self.graph.calls() {
            costs
                .entry(call.model.name.clone())
                .or_insert_with(|| CostModel::new(self.cluster.clone(), call.model.clone()));
        }
        let draft_costs = draft_cost_models(&self.cluster, plan);
        let comm = CommModel::new(&self.cluster);
        let mut tl = Timelines::new(self.cluster.total_gpus() as usize);
        let mut trace = if self.config.trace_capacity > 0 {
            Trace::with_capacity(self.config.trace_capacity)
        } else {
            Trace::disabled()
        };
        let mut rng = DeterministicRng::from_seed(self.config.seed).derive("runtime");

        // Compiled fault schedule. `None` keeps every site below on the
        // exact fault-free code path (identical RNG draws and arithmetic),
        // so fault-free runs stay byte-identical.
        let fault_clock = self.config.fault_plan.as_ref().map(|p| {
            FaultClock::new(
                p,
                self.cluster.total_gpus() as usize,
                self.cluster.gpus_per_node as usize,
            )
        });
        let mut fault_stats = FaultStats::default();
        if let Some(clock) = fault_clock.as_ref() {
            fault_stats.injected = clock.n_windows();
        }
        let predicted: HashMap<&str, f64> = self
            .config
            .predicted_secs
            .iter()
            .map(|(name, secs)| (name.as_str(), *secs))
            .collect();

        let mut master_log = MasterLog::default();
        let topo = self
            .graph
            .topo_order()
            .expect("validated graphs are acyclic");
        let mut completion: Vec<Vec<f64>> = vec![vec![0.0; self.graph.n_calls()]; iterations];
        let mut timings: Vec<CallTiming> = Vec::new();
        let mut iter_end = vec![0.0f64; iterations];

        for iter in 0..iterations {
            for &call in &topo {
                let def = self.graph.call(call);
                let a = plan.assignment(call);
                let cost = &costs[&def.model.name];
                let zero3 = self.config.zero3_models.contains(&def.model_name);

                // Data-dependency readiness (+ transfer when layouts differ).
                let mut ready: f64 = 0.0;
                for &dep in self.graph.deps(call) {
                    let dep_done = completion[iter][dep.0];
                    let b = plan.assignment(dep);
                    let end = if a.mesh == b.mesh && a.strategy == b.strategy {
                        dep_done
                    } else {
                        let bytes = self.graph.call(dep).call_type.total_tokens() as f64 * 8.0;
                        let per_src = bytes / f64::from(b.strategy.dp());
                        let within = a.mesh.n_nodes() == 1
                            && b.mesh.n_nodes() == 1
                            && a.mesh.node_start() == b.mesh.node_start();
                        let mut dur = comm.broadcast(per_src, 2, within)
                            * rng.lognormal_factor(self.config.jitter_sigma);
                        // Only the consumer mesh is occupied: the producer's
                        // GPUs serve the send from copy engines without
                        // stalling whatever they run next (otherwise a tiny
                        // transfer would serialize disjoint-mesh calls
                        // through the producer's busy queue).
                        let gpus: Vec<usize> = a.mesh.gpus().map(|g| g.0 as usize).collect();
                        if let Some(clock) = fault_clock.as_ref() {
                            let start = gpus
                                .iter()
                                .map(|&g| tl.gpu(g).busy_until())
                                .fold(dep_done, f64::max);
                            dur = clock.stretched(&gpus, start, dur, true);
                        }
                        tl.collective(&gpus, dep_done, dur, Category::Transfer)
                    };
                    ready = ready.max(end);
                }

                // Parameter availability: previous call of the same model
                // (this iteration), else the model's last call of the
                // previous iteration; reallocate when layouts differ.
                let model_calls = self.graph.calls_of_model(&def.model_name);
                let order: Vec<CallId> = topo
                    .iter()
                    .copied()
                    .filter(|c| model_calls.contains(c))
                    .collect();
                let my_pos = order.iter().position(|&c| c == call).expect("listed");
                let prev: Option<(usize, CallId)> = if my_pos > 0 {
                    Some((iter, order[my_pos - 1]))
                } else if iter > 0 {
                    Some((iter - 1, *order.last().expect("non-empty")))
                } else {
                    None
                };
                if let Some((piter, pcall)) = prev {
                    let pdone = completion[piter][pcall.0];
                    let pa = plan.assignment(pcall);
                    let end = execute_realloc(
                        &mut tl,
                        &mut trace,
                        &comm,
                        &def.model,
                        pa,
                        a,
                        pdone,
                        &mut rng,
                        self.config.jitter_sigma,
                        fault_clock.as_ref(),
                    );
                    ready = ready.max(end);
                }

                // Master dispatch RPC: the request carries the upstream
                // data locations, never the data itself (§6). User hooks
                // from the graph DSL are host-side: the pre hook delays
                // dispatch and the post hook delays completion visibility
                // without occupying the mesh.
                let (pre_hook, post_hook) = self.config.hook_secs(&def.call_name);
                let ready = ready + self.config.rpc_latency + pre_hook;
                master_log.requests.push(Request {
                    call,
                    handle: def.call_name.clone(),
                    iter,
                    dispatch_time: ready,
                    data_locations: MasterLog::data_locations(&self.graph, plan, call),
                    worker_count: a.mesh.n_gpus(),
                });

                let spec_exec = spec_exec_for(plan, call, &draft_costs);
                let end = if let Some(clock) = fault_clock.as_ref() {
                    self.dispatch_resilient(
                        clock,
                        cost,
                        &comm,
                        &mut tl,
                        &mut trace,
                        &mut rng,
                        zero3,
                        a,
                        def.call_type,
                        &def.call_name,
                        predicted.get(def.call_name.as_str()).copied(),
                        ready,
                        iter,
                        &mut fault_stats,
                        spec_exec.as_ref(),
                    )
                } else {
                    let mut ctx = ExecCtx {
                        cost,
                        comm: &comm,
                        tl: &mut tl,
                        trace: &mut trace,
                        rng: &mut rng,
                        cfg: &self.config,
                        zero3,
                        faults: None,
                    };
                    execute_call_spec(&mut ctx, a, def.call_type, ready, spec_exec.as_ref())
                };
                let end = end + post_hook;
                master_log.responses.push(Response {
                    call,
                    iter,
                    completed_at: end,
                });
                completion[iter][call.0] = end;
                iter_end[iter] = iter_end[iter].max(end);
                timings.push(CallTiming {
                    call_name: def.call_name.clone(),
                    iter,
                    start: ready,
                    end,
                });
            }
        }

        let total_time = tl.makespan();
        // Steady-state per-iteration time: boundary-to-boundary when more
        // than one iteration ran.
        let iter_time = if iterations > 1 {
            (iter_end[iterations - 1] - iter_end[0]) / (iterations - 1) as f64
        } else {
            iter_end[0]
        };
        Ok(RunReport {
            iterations,
            total_time,
            iter_time,
            timings,
            category_totals: tl.totals(),
            idle_total: tl.idle_total(),
            mem_peak: peak,
            static_utilization: maxmem::static_utilization(&self.cluster, &self.graph, plan),
            trace,
            master_log,
            faults: fault_stats,
            replan: ReplanStats::default(),
            async_stats: AsyncStats::default(),
        })
    }

    /// Executes one request under the retry protocol described in the
    /// module docs. Always returns a completion time: after
    /// `max_retries` failed attempts the final attempt runs in degraded
    /// mode (past the schedule's last crash, checks disabled), so the loop
    /// terminates even under a hostile schedule. Crate-visible so the
    /// multi-tenant loop ([`run_multi`]) dispatches through the same
    /// protocol.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn dispatch_resilient(
        &self,
        clock: &FaultClock,
        cost: &CostModel,
        comm: &CommModel,
        tl: &mut Timelines,
        trace: &mut Trace,
        rng: &mut DeterministicRng,
        zero3: bool,
        a: &CallAssignment,
        call_type: CallType,
        call_name: &str,
        predicted_secs: Option<f64>,
        ready: f64,
        iter: usize,
        stats: &mut FaultStats,
        spec: Option<&SpecExec<'_>>,
    ) -> f64 {
        match self.dispatch_capped(
            clock,
            cost,
            comm,
            tl,
            trace,
            rng,
            zero3,
            a,
            call_type,
            call_name,
            predicted_secs,
            ready,
            iter,
            stats,
            spec,
            None,
        ) {
            DispatchOutcome::Done(end) => end,
            DispatchOutcome::NeedsReplan { .. } => {
                unreachable!("dispatch without a wait cap never re-plans")
            }
        }
    }

    /// [`RuntimeEngine::run`]'s retry protocol with an optional wait cap:
    /// when every retry avenue first requires waiting at least `wait_cap`
    /// seconds for a participant to restart, the attempt is *not* dispatched
    /// and the caller is asked to re-plan instead of waiting out the
    /// downtime. Nothing is mutated on that path, so the caller can switch
    /// plans and re-enter, or retry uncapped to reproduce the plain
    /// behavior.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_capped(
        &self,
        clock: &FaultClock,
        cost: &CostModel,
        comm: &CommModel,
        tl: &mut Timelines,
        trace: &mut Trace,
        rng: &mut DeterministicRng,
        zero3: bool,
        a: &CallAssignment,
        call_type: CallType,
        call_name: &str,
        predicted_secs: Option<f64>,
        ready: f64,
        iter: usize,
        stats: &mut FaultStats,
        spec: Option<&SpecExec<'_>>,
        wait_cap: Option<f64>,
    ) -> DispatchOutcome {
        // Participants: the target mesh, plus the draft mesh when the call
        // decodes speculatively — availability waits, crash detection, and
        // lost-work accounting all cover the draft workers too.
        let mut mesh: Vec<usize> = a.mesh.gpus().map(|g| g.0 as usize).collect();
        if let Some(spec) = spec {
            for g in spec.choice.assignment.mesh.gpus() {
                let g = g.0 as usize;
                if !mesh.contains(&g) {
                    mesh.push(g);
                }
            }
        }
        let mut attempt_ready = ready;
        let mut failed: u32 = 0;
        loop {
            let degraded = failed > self.config.max_retries;
            // Wait for every participant to be restarted; a degraded
            // attempt additionally waits out the whole crash schedule so it
            // cannot be aborted.
            let mut start = clock.available_from(&mesh, attempt_ready);
            if degraded {
                start = start.max(clock.quiet_after(&mesh));
            }
            if let Some(cap) = wait_cap {
                if start - attempt_ready >= cap {
                    // The master cannot see the future: it concludes a
                    // worker is dead only after actually waiting out the
                    // patience window in silence, so the decision instant
                    // is `attempt_ready + cap` — never earlier than the
                    // crash that caused the stall. The culprit is whichever
                    // participant is still down at that instant.
                    let at = attempt_ready + cap;
                    let gpu = mesh
                        .iter()
                        .copied()
                        .find(|&g| clock.available_from(&[g], at) > at)
                        .unwrap_or(mesh[0]) as u32;
                    return DispatchOutcome::NeedsReplan { at, gpu };
                }
            }
            stats.dispatches += 1;

            // Fault-free duration from this exact timeline state: cloned
            // timelines and RNG make queueing identical between the nominal
            // and the real attempt, so the deadline fires only on genuine
            // fault-induced stretch, never on queueing delay.
            let nominal_wall = {
                let mut tl_nom = tl.clone();
                let mut rng_nom = rng.clone();
                let mut scratch = Trace::disabled();
                let mut ctx = ExecCtx {
                    cost,
                    comm,
                    tl: &mut tl_nom,
                    trace: &mut scratch,
                    rng: &mut rng_nom,
                    cfg: &self.config,
                    zero3,
                    faults: None,
                };
                execute_call_spec(&mut ctx, a, call_type, start, spec) - start
            };
            let predicted_wall = predicted_secs.map_or(nominal_wall, |p| p.max(nominal_wall));
            let deadline = if self.config.deadline_factor > 0.0 && !degraded {
                self.config.deadline_factor * predicted_wall
            } else {
                f64::INFINITY
            };

            let tl_snap = tl.clone();
            let rng_snap = rng.clone();
            let cp = trace.checkpoint();
            let end = {
                let mut ctx = ExecCtx {
                    cost,
                    comm,
                    tl,
                    trace,
                    rng,
                    cfg: &self.config,
                    zero3,
                    faults: Some(clock),
                };
                execute_call_spec(&mut ctx, a, call_type, start, spec)
            };

            let crash = if degraded {
                None
            } else {
                clock.first_crash(&mesh, start, end)
            };
            let timed_out = end - start > deadline;
            if crash.is_none() && !timed_out {
                if failed > 0 {
                    stats.requests_retried += 1;
                    if degraded {
                        stats.requests_degraded += 1;
                    } else {
                        stats.requests_recovered += 1;
                    }
                }
                return DispatchOutcome::Done(end);
            }

            // The attempt is dead: roll back its timeline, RNG, and trace
            // effects, then charge the wasted interval as lost work.
            let abort_at = match crash {
                Some((_, at)) => at.min(start + deadline),
                None => start + deadline,
            };
            *tl = tl_snap;
            *rng = rng_snap;
            trace.rewind(cp);
            if trace.enabled() {
                for &g in &mesh {
                    let s = tl.gpu(g).busy_until().max(start);
                    if s < abort_at {
                        trace.record(g, s, abort_at, Category::Compute, "lost_work");
                    }
                }
            }
            stats.lost_gpu_seconds += tl.occupy_until(&mesh, start, abort_at, Category::Compute);

            let kind = match crash {
                Some((g, at)) if at <= start + deadline => FaultAbort::Crash { gpu: g as u32 },
                _ => FaultAbort::Timeout,
            };
            match kind {
                FaultAbort::Crash { .. } => stats.crashes += 1,
                FaultAbort::Timeout => stats.timeouts += 1,
            }
            stats.retries += 1;
            let backoff = (self.config.backoff_base * 2f64.powi(failed as i32))
                .min(self.config.backoff_cap)
                .max(0.0);
            stats.events.push(RequestFault {
                call_name: call_name.to_string(),
                iter,
                attempt: failed,
                kind,
                at: abort_at,
                backoff_secs: backoff,
            });

            failed += 1;
            stats.backoff_seconds += backoff;
            attempt_ready = abort_at + backoff;
        }
    }

    /// Executes `plan` under the elastic re-planning loop: resilient
    /// dispatch exactly as in [`RuntimeEngine::run`], plus trigger rules
    /// over the live fault statistics that can switch the run to a freshly
    /// searched plan on the surviving GPUs.
    ///
    /// Three triggers feed the policy:
    ///
    /// - **dead worker** — a request whose participants stay unreachable
    ///   for [`ReplanPolicy::dead_after_secs`] re-plans instead of waiting
    ///   out the downtime,
    /// - **straggler** — an iteration accumulating
    ///   [`ReplanPolicy::straggler_requests`] deadline timeouts,
    /// - **degraded rate** — an iteration whose degraded-completion share
    ///   reaches [`ReplanPolicy::degraded_rate_threshold`].
    ///
    /// Each evaluation derives a [`real_cluster::ClusterHealth`] from the
    /// fault clock (dead workers excluded, stragglers tagged with their
    /// slowdown factor), warm-starts an MCMC re-search over the surviving
    /// meshes with the incumbent plan as the chain seed, and commits the
    /// candidate only if the cost/benefit gate passes: the estimated saving
    /// over the remaining iterations must exceed
    /// [`ReplanPolicy::min_benefit_ratio`] times the *measured* wall cost
    /// of the switch's reallocation prologue. The prologue runs under
    /// snapshot-rollback, so a switch hit by a crash (or rejected by the
    /// gate) leaves the run bit-exactly where it was.
    ///
    /// Without a fault plan this delegates to [`RuntimeEngine::run`]: the
    /// policy can never trigger and the report stays byte-identical.
    ///
    /// `est` must be the §5 estimator for this engine's cluster and graph;
    /// re-searches overlay it with the observed cluster health.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::OutOfMemory`] when the *initial* plan does not
    /// fit device memory (unless `skip_mem_check` is set). Candidate plans
    /// failing the memory check are rejected during evaluation instead.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn run_replan(
        &self,
        plan: &ExecutionPlan,
        iterations: usize,
        policy: &ReplanPolicy,
        est: &Estimator,
    ) -> Result<RunReport, RunError> {
        assert!(iterations > 0, "must run at least one iteration");
        if self.config.fault_plan.is_none() {
            return self.run(plan, iterations);
        }
        let peak = memcheck::max_mem(
            &self.cluster,
            &self.graph,
            plan,
            &self.config.zero3_models,
            &self.config.dist_optim_models,
        );
        if !self.config.skip_mem_check && peak > self.cluster.gpu.mem_capacity {
            return Err(RunError::OutOfMemory {
                peak,
                capacity: self.cluster.gpu.mem_capacity,
            });
        }

        let mut costs: HashMap<String, CostModel> = HashMap::new();
        for call in self.graph.calls() {
            costs
                .entry(call.model.name.clone())
                .or_insert_with(|| CostModel::new(self.cluster.clone(), call.model.clone()));
        }
        let draft_costs = draft_cost_models(&self.cluster, plan);
        let comm = CommModel::new(&self.cluster);
        let mut tl = Timelines::new(self.cluster.total_gpus() as usize);
        let mut trace = if self.config.trace_capacity > 0 {
            Trace::with_capacity(self.config.trace_capacity)
        } else {
            Trace::disabled()
        };
        let mut rng = DeterministicRng::from_seed(self.config.seed).derive("runtime");
        let clock = FaultClock::new(
            self.config.fault_plan.as_ref().expect("checked above"),
            self.cluster.total_gpus() as usize,
            self.cluster.gpus_per_node as usize,
        );
        let mut fault_stats = FaultStats {
            injected: clock.n_windows(),
            ..FaultStats::default()
        };
        let mut replan_stats = ReplanStats::default();
        let mut predicted: HashMap<String, f64> =
            self.config.predicted_secs.iter().cloned().collect();

        let mut current = plan.clone();
        // The layout actually holding each model's parameters: assignment
        // of the model's last executed call (or switch prologue), and when
        // the parameters become available there. Replaces `run`'s static
        // previous-call lookup, which assumes the plan never changes.
        let mut param_layout: HashMap<String, (CallAssignment, f64)> = HashMap::new();

        let mut master_log = MasterLog::default();
        let topo = self
            .graph
            .topo_order()
            .expect("validated graphs are acyclic");
        let mut completion: Vec<Vec<f64>> = vec![vec![0.0; self.graph.n_calls()]; iterations];
        let mut timings: Vec<CallTiming> = Vec::new();
        let mut iter_end = vec![0.0f64; iterations];
        // Per-iteration fault-counter epochs for the boundary triggers.
        let (mut epoch_timeouts, mut epoch_degraded, mut epoch_dispatches) =
            (0usize, 0usize, 0usize);

        for iter in 0..iterations {
            // Assignments this iteration's requests actually executed on
            // (the plan may switch mid-iteration, so the static plan is not
            // authoritative for dependency-transfer decisions).
            let mut executed: Vec<Option<CallAssignment>> = vec![None; self.graph.n_calls()];
            for &call in &topo {
                let def = self.graph.call(call);
                let cost = &costs[&def.model.name];
                let zero3 = self.config.zero3_models.contains(&def.model_name);
                let mut capped = true;
                let (start_at, end, assignment) = loop {
                    let a = *current.assignment(call);
                    // Snapshot: on a dead-worker re-plan this call's
                    // transfers, reallocations, and fault accounting are
                    // rolled back and replayed under the switched plan.
                    let tl_snap = tl.clone();
                    let rng_snap = rng.clone();
                    let fs_snap = fault_stats.clone();
                    let cp = trace.checkpoint();

                    // Data-dependency readiness (+ transfer when layouts
                    // differ), against the dep's *executed* assignment.
                    let mut ready: f64 = 0.0;
                    for &dep in self.graph.deps(call) {
                        let dep_done = completion[iter][dep.0];
                        let b = executed[dep.0].expect("deps precede in topo order");
                        let end = if a.mesh == b.mesh && a.strategy == b.strategy {
                            dep_done
                        } else {
                            let bytes = self.graph.call(dep).call_type.total_tokens() as f64 * 8.0;
                            let per_src = bytes / f64::from(b.strategy.dp());
                            let within = a.mesh.n_nodes() == 1
                                && b.mesh.n_nodes() == 1
                                && a.mesh.node_start() == b.mesh.node_start();
                            let mut dur = comm.broadcast(per_src, 2, within)
                                * rng.lognormal_factor(self.config.jitter_sigma);
                            let gpus: Vec<usize> = a.mesh.gpus().map(|g| g.0 as usize).collect();
                            let start = gpus
                                .iter()
                                .map(|&g| tl.gpu(g).busy_until())
                                .fold(dep_done, f64::max);
                            dur = clock.stretched(&gpus, start, dur, true);
                            tl.collective(&gpus, dep_done, dur, Category::Transfer)
                        };
                        ready = ready.max(end);
                    }

                    // Parameter availability from the live layout map;
                    // reallocate when the executing layout differs.
                    if let Some((pa, pdone)) = param_layout.get(&def.model_name).copied() {
                        let end = execute_realloc(
                            &mut tl,
                            &mut trace,
                            &comm,
                            &def.model,
                            &pa,
                            &a,
                            pdone,
                            &mut rng,
                            self.config.jitter_sigma,
                            Some(&clock),
                        );
                        ready = ready.max(end);
                    }
                    let ready = ready + self.config.rpc_latency;

                    let cap = (capped && replan_stats.switches < policy.max_replans)
                        .then_some(policy.dead_after_secs);
                    let spec_exec = spec_exec_for(&current, call, &draft_costs);
                    match self.dispatch_capped(
                        &clock,
                        cost,
                        &comm,
                        &mut tl,
                        &mut trace,
                        &mut rng,
                        zero3,
                        &a,
                        def.call_type,
                        &def.call_name,
                        predicted.get(def.call_name.as_str()).copied(),
                        ready,
                        iter,
                        &mut fault_stats,
                        spec_exec.as_ref(),
                        cap,
                    ) {
                        DispatchOutcome::Done(end) => break (ready, end, a),
                        DispatchOutcome::NeedsReplan { at, gpu } => {
                            tl = tl_snap;
                            rng = rng_snap;
                            fault_stats = fs_snap;
                            trace.rewind(cp);
                            match self.try_replan(
                                &clock,
                                est,
                                policy,
                                &comm,
                                &mut tl,
                                &mut trace,
                                &mut rng,
                                &current,
                                &mut param_layout,
                                &mut predicted,
                                &topo,
                                at,
                                iter,
                                iterations,
                                ReplanReason::DeadWorker { gpu },
                                &mut replan_stats,
                            ) {
                                Some(new_plan) => current = new_plan,
                                // No switch: re-dispatch uncapped, waiting
                                // out the downtime exactly like `run`.
                                None => capped = false,
                            }
                        }
                    }
                };
                master_log.requests.push(Request {
                    call,
                    handle: def.call_name.clone(),
                    iter,
                    dispatch_time: start_at,
                    data_locations: MasterLog::data_locations(&self.graph, &current, call),
                    worker_count: assignment.mesh.n_gpus(),
                });
                master_log.responses.push(Response {
                    call,
                    iter,
                    completed_at: end,
                });
                executed[call.0] = Some(assignment);
                param_layout.insert(def.model_name.clone(), (assignment, end));
                completion[iter][call.0] = end;
                iter_end[iter] = iter_end[iter].max(end);
                timings.push(CallTiming {
                    call_name: def.call_name.clone(),
                    iter,
                    start: start_at,
                    end,
                });
            }

            // Iteration-boundary triggers over this iteration's fault
            // deltas (persistent stragglers, degraded-mode completion rate).
            let timeouts_d = fault_stats.timeouts - epoch_timeouts;
            let degraded_d = fault_stats.requests_degraded - epoch_degraded;
            let dispatch_d = fault_stats.dispatches - epoch_dispatches;
            epoch_timeouts = fault_stats.timeouts;
            epoch_degraded = fault_stats.requests_degraded;
            epoch_dispatches = fault_stats.dispatches;
            if iter + 1 < iterations && replan_stats.switches < policy.max_replans {
                let degraded_rate = if dispatch_d > 0 {
                    degraded_d as f64 / dispatch_d as f64
                } else {
                    0.0
                };
                let reason = if timeouts_d as u64 >= policy.straggler_requests {
                    Some(ReplanReason::Straggler {
                        timeouts: timeouts_d as u64,
                    })
                } else if degraded_d > 0 && degraded_rate >= policy.degraded_rate_threshold {
                    Some(ReplanReason::DegradedRate {
                        rate: degraded_rate,
                    })
                } else {
                    None
                };
                if let Some(reason) = reason {
                    if let Some(new_plan) = self.try_replan(
                        &clock,
                        est,
                        policy,
                        &comm,
                        &mut tl,
                        &mut trace,
                        &mut rng,
                        &current,
                        &mut param_layout,
                        &mut predicted,
                        &topo,
                        iter_end[iter],
                        iter,
                        iterations,
                        reason,
                        &mut replan_stats,
                    ) {
                        current = new_plan;
                    }
                }
            }
        }

        let total_time = tl.makespan();
        let iter_time = if iterations > 1 {
            (iter_end[iterations - 1] - iter_end[0]) / (iterations - 1) as f64
        } else {
            iter_end[0]
        };
        Ok(RunReport {
            iterations,
            total_time,
            iter_time,
            timings,
            category_totals: tl.totals(),
            idle_total: tl.idle_total(),
            mem_peak: peak,
            static_utilization: maxmem::static_utilization(&self.cluster, &self.graph, plan),
            trace,
            master_log,
            faults: fault_stats,
            replan: replan_stats,
            async_stats: AsyncStats::default(),
        })
    }

    /// Evaluates one re-plan trigger. On commit, the switch's reallocation
    /// prologue has executed on the timelines, the parameter layouts and
    /// deadline predictions reflect the candidate, and the candidate plan
    /// is returned. On every other outcome (no surviving plan, gate
    /// rejection, prologue crash) all engine state is rolled back and
    /// `None` is returned; only the decision log records the attempt.
    #[allow(clippy::too_many_arguments)]
    fn try_replan(
        &self,
        clock: &FaultClock,
        est: &Estimator,
        policy: &ReplanPolicy,
        comm: &CommModel,
        tl: &mut Timelines,
        trace: &mut Trace,
        rng: &mut DeterministicRng,
        current: &ExecutionPlan,
        param_layout: &mut HashMap<String, (CallAssignment, f64)>,
        predicted: &mut HashMap<String, f64>,
        topo: &[CallId],
        now: f64,
        iter: usize,
        iterations: usize,
        reason: ReplanReason,
        stats: &mut ReplanStats,
    ) -> Option<ExecutionPlan> {
        stats.evaluations += 1;
        let record = |stats: &mut ReplanStats, outcome: ReplanOutcome| {
            stats.events.push(ReplanEvent {
                at: now,
                iter,
                reason,
                outcome,
            });
        };

        // Cluster health as observed at the trigger instant: workers past
        // the patience window are dead, upcoming slowdown windows tag their
        // GPUs with the factor the estimator degrades by.
        let mut health = ClusterHealth::healthy(&self.cluster);
        for g in 0..self.cluster.total_gpus() as usize {
            if clock.available_from(&[g], now) - now >= policy.dead_after_secs {
                health.mark_dead(GpuId(g as u32));
            } else {
                let factor = clock.max_slowdown_in(g, now, now + policy.slowdown_lookahead);
                if factor > 1.0 {
                    health.mark_slow(GpuId(g as u32), factor);
                }
            }
        }
        let health = health.with_dead_penalty(policy.dead_penalty);

        // Warm-started re-search over the surviving meshes, seeded from the
        // incumbent projected onto the shrunken space.
        let space = match SearchSpace::try_build_on(
            &self.cluster,
            &self.graph,
            policy.prune,
            &health.surviving_meshes(),
        ) {
            Ok(space) => space,
            Err(_) => {
                stats.no_plan += 1;
                record(stats, ReplanOutcome::NoSurvivingPlan);
                return None;
            }
        };
        let est_h = est.clone().with_health(health);
        let mut seed_rng = DeterministicRng::from_seed(self.config.seed)
            .derive("replan")
            .derive(&format!("eval{}", stats.evaluations));
        let cfg = McmcConfig {
            beta: policy.beta,
            max_steps: policy.search_steps,
            // Effectively unlimited: a wall-clock cutoff would break
            // replayability, and the step budget already bounds the search.
            time_limit: Duration::from_secs(86_400),
            seed: seed_rng.next_u64(),
            record_trace: false,
            memo: true,
        };
        let result = search_warm(&est_h, &space, &cfg, current);
        let candidate = result.best_plan;

        let cand_peak = memcheck::max_mem(
            &self.cluster,
            &self.graph,
            &candidate,
            &self.config.zero3_models,
            &self.config.dist_optim_models,
        );
        if !self.config.skip_mem_check && cand_peak > self.cluster.gpu.mem_capacity {
            stats.no_plan += 1;
            record(stats, ReplanOutcome::NoSurvivingPlan);
            return None;
        }

        let comparison = compare(&est_h, current, &candidate);
        let (base_time, target_time) = (comparison.base_time, comparison.target_time);
        // Estimated-speedup gate first: skip the (rolled-back anyway)
        // reallocation prologue when the candidate is not clearly faster on
        // the degraded cluster.
        if target_time >= base_time || base_time / target_time < policy.min_speedup {
            stats.gate_rejections += 1;
            record(
                stats,
                ReplanOutcome::GateRejected {
                    base_time,
                    target_time,
                    switch_secs: 0.0,
                },
            );
            return None;
        }

        // Reallocation prologue under snapshot-rollback: move every held
        // model's parameters to the candidate layout (its first call's
        // assignment — later same-model calls realloc per-call as usual).
        let tl_snap = tl.clone();
        let rng_snap = rng.clone();
        let cp = trace.checkpoint();
        let mut prologue_end = now;
        let mut participants: Vec<usize> = Vec::new();
        let mut moved: Vec<(String, CallAssignment)> = Vec::new();
        for &call in topo {
            let def = self.graph.call(call);
            if moved.iter().any(|(m, _)| *m == def.model_name) {
                continue;
            }
            let Some((pa, pdone)) = param_layout.get(&def.model_name).copied() else {
                continue;
            };
            let ta = *candidate.assignment(call);
            if pa == ta {
                continue;
            }
            let end = execute_realloc(
                tl,
                trace,
                comm,
                &def.model,
                &pa,
                &ta,
                pdone.max(now),
                rng,
                self.config.jitter_sigma,
                Some(clock),
            );
            prologue_end = prologue_end.max(end);
            participants.extend(pa.mesh.gpus().map(|g| g.0 as usize));
            participants.extend(ta.mesh.gpus().map(|g| g.0 as usize));
            moved.push((def.model_name.clone(), ta));
        }
        participants.sort_unstable();
        participants.dedup();
        let switch_secs = prologue_end - now;

        // Abort only on a *fresh* crash among participants that were up when
        // the prologue started: the broadcasts source from surviving
        // replicas, so a worker already down at `now` (typically the very
        // one being evacuated) cannot fault the switch.
        let live: Vec<usize> = participants
            .iter()
            .copied()
            .filter(|&g| clock.available_from(&[g], now) <= now)
            .collect();
        if let Some((gpu, at)) = clock.first_crash(&live, now, prologue_end) {
            *tl = tl_snap;
            *rng = rng_snap;
            trace.rewind(cp);
            stats.aborted_switches += 1;
            record(
                stats,
                ReplanOutcome::SwitchFaulted {
                    gpu: gpu as u32,
                    at,
                },
            );
            return None;
        }

        // Cost/benefit gate on the *measured* switch cost: the estimated
        // saving over the remaining iterations must pay for the prologue
        // with margin.
        let remaining = (iterations - iter) as f64;
        if (base_time - target_time) * remaining <= policy.min_benefit_ratio * switch_secs {
            *tl = tl_snap;
            *rng = rng_snap;
            trace.rewind(cp);
            stats.gate_rejections += 1;
            record(
                stats,
                ReplanOutcome::GateRejected {
                    base_time,
                    target_time,
                    switch_secs,
                },
            );
            return None;
        }

        // Commit: adopt the moved layouts and refresh deadline predictions
        // for the candidate's assignments under the degraded estimator.
        for (model, ta) in moved {
            param_layout.insert(model, (ta, prologue_end));
        }
        for &call in topo {
            let def = self.graph.call(call);
            predicted.insert(
                def.call_name.clone(),
                est_h.call_duration(call, candidate.assignment(call)),
            );
        }
        stats.switches += 1;
        stats.switch_seconds += switch_secs;
        record(
            stats,
            ReplanOutcome::Switched {
                base_time,
                target_time,
                switch_secs,
                n_diffs: comparison.diffs.len(),
            },
        );
        Some(candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use real_cluster::DeviceMesh;
    use real_dataflow::{algo, CallAssignment};
    use real_model::{ModelSpec, ParallelStrategy};

    fn setup(nodes: u32, batch: u64) -> (ClusterSpec, DataflowGraph) {
        let cluster = ClusterSpec::h100(nodes);
        let actor = ModelSpec::llama3_7b();
        let graph = algo::ppo(
            &actor,
            &actor.critic(),
            &algo::RlhfConfig::instruct_gpt(batch),
        );
        (cluster, graph)
    }

    fn symmetric(
        cluster: &ClusterSpec,
        graph: &DataflowGraph,
        dp: u32,
        tp: u32,
        mbs: u32,
    ) -> ExecutionPlan {
        let a = CallAssignment::new(
            DeviceMesh::full(cluster),
            ParallelStrategy::new(dp, tp, 1, mbs).unwrap(),
        )
        .unwrap();
        ExecutionPlan::new(graph, cluster, vec![a; graph.n_calls()]).unwrap()
    }

    #[test]
    fn symmetric_run_produces_sane_report() {
        let (cluster, graph) = setup(1, 64);
        let plan = symmetric(&cluster, &graph, 1, 8, 8);
        let engine = RuntimeEngine::new(cluster, graph, EngineConfig::deterministic());
        let report = engine.run(&plan, 2).unwrap();
        assert!(report.iter_time > 0.0);
        assert!(report.total_time >= report.iter_time);
        assert_eq!(report.timings.len(), 12); // 6 calls x 2 iters
                                              // Generation dominates the iteration (Fig. 1).
        let gen = report.call_mean("actor_gen").unwrap();
        for other in ["reward_inf", "ref_inf", "critic_inf", "critic_train"] {
            assert!(gen > report.call_mean(other).unwrap(), "{other}");
        }
    }

    #[test]
    fn oom_plan_is_rejected() {
        let (cluster, graph) = setup(1, 512);
        let plan = symmetric(&cluster, &graph, 8, 1, 1);
        let engine = RuntimeEngine::new(cluster, graph, EngineConfig::deterministic());
        let err = engine.run(&plan, 1).unwrap_err();
        assert!(matches!(err, RunError::OutOfMemory { .. }));
    }

    #[test]
    fn skip_mem_check_forces_execution() {
        let (cluster, graph) = setup(1, 512);
        let plan = symmetric(&cluster, &graph, 8, 1, 1);
        let cfg = EngineConfig {
            skip_mem_check: true,
            ..EngineConfig::deterministic()
        };
        let engine = RuntimeEngine::new(cluster, graph, cfg);
        assert!(engine.run(&plan, 1).is_ok());
    }

    #[test]
    fn determinism_per_seed() {
        let (cluster, graph) = setup(1, 64);
        let plan = symmetric(&cluster, &graph, 1, 8, 8);
        let engine = RuntimeEngine::new(cluster.clone(), graph.clone(), EngineConfig::default());
        let a = engine.run(&plan, 2).unwrap();
        let b = engine.run(&plan, 2).unwrap();
        assert_eq!(a.iter_time, b.iter_time);
        assert_eq!(a.total_time, b.total_time);
    }

    #[test]
    fn asymmetric_plan_triggers_realloc_and_transfer() {
        let (cluster, graph) = setup(2, 64);
        let full = CallAssignment::new(
            DeviceMesh::full(&cluster),
            ParallelStrategy::new(2, 8, 1, 4).unwrap(),
        )
        .unwrap();
        let mut assignments = vec![full; graph.n_calls()];
        // Actor training on node 0 only with a different shape.
        let train = graph.find("actor_train").unwrap();
        assignments[train.0] = CallAssignment::new(
            DeviceMesh::whole_nodes(&cluster, 0, 1).unwrap(),
            ParallelStrategy::new(1, 4, 2, 8).unwrap(),
        )
        .unwrap();
        let plan = ExecutionPlan::new(&graph, &cluster, assignments).unwrap();
        let engine = RuntimeEngine::new(cluster, graph, EngineConfig::deterministic());
        let report = engine.run(&plan, 2).unwrap();
        let get = |c: Category| {
            report
                .category_totals
                .iter()
                .find(|(k, _)| *k == c)
                .unwrap()
                .1
        };
        assert!(get(Category::Realloc) > 0.0, "realloc time must be charged");
        assert!(
            get(Category::Transfer) > 0.0,
            "transfer time must be charged"
        );
        // The paper's Fig. 11 note: broadcasts take much less GPU time than
        // compute.
        assert!(get(Category::Realloc) < 0.2 * get(Category::Compute));
    }

    #[test]
    fn master_log_records_every_dispatch_and_completion() {
        let (cluster, graph) = setup(1, 64);
        let plan = symmetric(&cluster, &graph, 1, 8, 8);
        let engine = RuntimeEngine::new(cluster, graph.clone(), EngineConfig::deterministic());
        let report = engine.run(&plan, 2).unwrap();
        let log = &report.master_log;
        assert_eq!(log.requests.len(), 12);
        assert_eq!(log.responses.len(), 12);
        for iter in 0..2 {
            for (id, def) in graph.iter() {
                let req = log.request(id, iter).expect("request logged");
                let resp = log.response(id, iter).expect("response logged");
                assert_eq!(req.handle, def.call_name);
                assert!(req.dispatch_time <= resp.completed_at);
                assert_eq!(req.worker_count, 8);
                // Requests carry locations, never payloads: actor_train has
                // five upstream inputs.
                if def.call_name == "actor_train" {
                    assert_eq!(req.data_locations.len(), 5);
                }
            }
        }
    }

    #[test]
    fn empty_fault_plan_reproduces_fault_free_run() {
        // Resilient dispatch with zero fault windows must produce the same
        // virtual timings as the plain path: the nominal pre-simulation
        // uses cloned state, windows never stretch, no attempt aborts.
        let (cluster, graph) = setup(1, 64);
        let plan = symmetric(&cluster, &graph, 1, 8, 8);
        let base = RuntimeEngine::new(cluster.clone(), graph.clone(), EngineConfig::default())
            .run(&plan, 2)
            .unwrap();
        let cfg = EngineConfig::default().with_fault_plan(real_sim::FaultPlan::new(5));
        let faulted = RuntimeEngine::new(cluster, graph, cfg)
            .run(&plan, 2)
            .unwrap();
        assert_eq!(base.total_time, faulted.total_time);
        assert_eq!(base.iter_time, faulted.iter_time);
        assert_eq!(base.timings, faulted.timings);
        assert_eq!(base.category_totals, faulted.category_totals);
        assert_eq!(faulted.faults.retries, 0);
        assert_eq!(faulted.faults.injected, 0);
        // 12 requests dispatched exactly once each.
        assert_eq!(faulted.faults.dispatches, 12);
    }

    #[test]
    fn crashes_are_recovered_and_accounted() {
        let (cluster, graph) = setup(1, 64);
        let plan = symmetric(&cluster, &graph, 1, 8, 8);
        // Find when generation runs fault-free, then crash a worker in the
        // middle of it.
        let base = RuntimeEngine::new(cluster.clone(), graph.clone(), EngineConfig::default())
            .run(&plan, 2)
            .unwrap();
        let gen = base
            .timings
            .iter()
            .find(|t| t.call_name == "actor_gen" && t.iter == 0)
            .unwrap();
        let mid = (gen.start + gen.end) / 2.0;
        let fault_plan = real_sim::FaultPlan::new(5).crash(3, mid, 2.0);
        let cfg = EngineConfig::default().with_fault_plan(fault_plan);
        let report = RuntimeEngine::new(cluster, graph, cfg)
            .run(&plan, 2)
            .unwrap();
        let f = &report.faults;
        assert_eq!(f.injected, 1);
        assert!(f.crashes >= 1, "{f:?}");
        assert!(f.requests_recovered >= 1, "{f:?}");
        assert_eq!(f.requests_degraded, 0, "{f:?}");
        assert!(f.lost_gpu_seconds > 0.0);
        assert!(!f.events.is_empty());
        assert!(matches!(f.events[0].kind, FaultAbort::Crash { gpu: 3 }));
        // The run completed, later than the clean one.
        assert_eq!(report.timings.len(), 12);
        assert!(report.total_time > base.total_time);
    }

    fn spec_choice(
        cluster: &ClusterSpec,
        node: u32,
        alpha: f64,
        k: u32,
    ) -> real_dataflow::SpecChoice {
        real_dataflow::SpecChoice {
            config: real_model::SpecDecodeConfig {
                draft_model: ModelSpec::llama3_1b(),
                speculation_len: k,
                acceptance_curve: real_model::specdec::AcceptanceCurve::Constant(alpha),
            },
            assignment: CallAssignment::new(
                DeviceMesh::sub_node(cluster, node, 0, 2).unwrap(),
                ParallelStrategy::new(1, 2, 1, 1).unwrap(),
            )
            .unwrap(),
        }
    }

    /// All calls on node 0, the draft on two GPUs of node 1 — disjoint
    /// meshes, so a crash on the draft mesh can only reach the run through
    /// the speculative dispatch's participant set.
    fn speculative_plan(cluster: &ClusterSpec, graph: &DataflowGraph, alpha: f64) -> ExecutionPlan {
        let a = CallAssignment::new(
            DeviceMesh::whole_nodes(cluster, 0, 1).unwrap(),
            ParallelStrategy::new(1, 8, 1, 8).unwrap(),
        )
        .unwrap();
        let plan = ExecutionPlan::new(graph, cluster, vec![a; graph.n_calls()]).unwrap();
        let gen = graph.find("actor_gen").unwrap();
        plan.with_spec(gen, Some(spec_choice(cluster, 1, alpha, 4)))
            .unwrap()
    }

    fn trace_labels(report: &RunReport) -> Vec<&'static str> {
        report.trace.events().iter().map(|e| e.label).collect()
    }

    #[test]
    fn speculative_run_emits_draft_and_verify_spans() {
        let (cluster, graph) = setup(2, 64);
        let plan = speculative_plan(&cluster, &graph, 0.8);
        let cfg = EngineConfig {
            trace_capacity: 1 << 16,
            ..EngineConfig::deterministic()
        };
        let engine = RuntimeEngine::new(cluster, graph, cfg);
        let report = engine.run(&plan, 1).unwrap();
        let labels = trace_labels(&report);
        for want in ["spec_draft_prefill", "spec_draft_decode", "spec_verify_fwd"] {
            assert!(labels.contains(&want), "missing {want} in {labels:?}");
        }
        assert!(
            !labels.contains(&"spec_fallback_decode"),
            "profitable speculation must not fall back"
        );
        // Draft work lands on the draft mesh (node 1), verify on the target.
        for e in report.trace.events() {
            match e.label {
                "spec_draft_prefill" | "spec_draft_decode" => {
                    assert!((8..10).contains(&e.gpu), "draft span on gpu {}", e.gpu);
                }
                "spec_verify_fwd" => assert!(e.gpu < 8, "verify span on gpu {}", e.gpu),
                _ => {}
            }
        }
    }

    #[test]
    fn speculation_speeds_up_generation_at_high_acceptance() {
        let (cluster, graph) = setup(2, 64);
        let plain = {
            let a = CallAssignment::new(
                DeviceMesh::whole_nodes(&cluster, 0, 1).unwrap(),
                ParallelStrategy::new(1, 8, 1, 8).unwrap(),
            )
            .unwrap();
            ExecutionPlan::new(&graph, &cluster, vec![a; graph.n_calls()]).unwrap()
        };
        let spec = speculative_plan(&cluster, &graph, 0.8);
        let engine = RuntimeEngine::new(cluster, graph, EngineConfig::deterministic());
        let base = engine.run(&plain, 1).unwrap();
        let fast = engine.run(&spec, 1).unwrap();
        let base_gen = base.call_mean("actor_gen").unwrap();
        let fast_gen = fast.call_mean("actor_gen").unwrap();
        assert!(
            fast_gen < base_gen,
            "speculative generation {fast_gen} must beat plain {base_gen}"
        );
    }

    #[test]
    fn low_acceptance_speculation_falls_back_to_plain_decode() {
        let (cluster, graph) = setup(2, 64);
        let plan = speculative_plan(&cluster, &graph, 0.0);
        let cfg = EngineConfig {
            trace_capacity: 1 << 16,
            ..EngineConfig::deterministic()
        };
        let engine = RuntimeEngine::new(cluster, graph, cfg);
        let report = engine.run(&plan, 1).unwrap();
        let labels = trace_labels(&report);
        assert!(labels.contains(&"spec_fallback_decode"), "{labels:?}");
        for banned in ["spec_draft_prefill", "spec_draft_decode", "spec_verify_fwd"] {
            assert!(!labels.contains(&banned), "unprofitable spec ran {banned}");
        }
    }

    #[test]
    fn speculative_runs_replay_bit_identically_under_draft_mesh_fault() {
        let (cluster, graph) = setup(2, 64);
        let plan = speculative_plan(&cluster, &graph, 0.8);
        // Find when generation runs fault-free, then crash a draft-mesh GPU
        // (node 1) in the middle of it: only the speculative participant
        // set can see that crash, since every call executes on node 0.
        let base = RuntimeEngine::new(cluster.clone(), graph.clone(), EngineConfig::default())
            .run(&plan, 2)
            .unwrap();
        let gen = base
            .timings
            .iter()
            .find(|t| t.call_name == "actor_gen" && t.iter == 0)
            .unwrap();
        let mid = (gen.start + gen.end) / 2.0;
        let fault_plan = real_sim::FaultPlan::new(16).crash(8, mid, 2.0);
        let cfg = EngineConfig::default()
            .with_fault_plan(fault_plan)
            .with_trace(1 << 16);
        let engine = RuntimeEngine::new(cluster, graph, cfg);
        let a = engine.run(&plan, 2).unwrap();
        let b = engine.run(&plan, 2).unwrap();
        assert!(
            a.faults.crashes >= 1,
            "the draft-mesh crash must abort an attempt: {:?}",
            a.faults
        );
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.timings, b.timings);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.trace.events(), b.trace.events());
        // Recovery waited out the draft worker's downtime.
        assert!(a.total_time > base.total_time);
    }

    #[test]
    fn faulted_runs_replay_bit_identically() {
        let (cluster, graph) = setup(1, 64);
        let plan = symmetric(&cluster, &graph, 1, 8, 8);
        let fault_plan = real_sim::FaultPlan::random(23, 8, 8, 200.0, 4.0);
        let cfg = EngineConfig::default()
            .with_fault_plan(fault_plan)
            .with_trace(4096);
        let engine = RuntimeEngine::new(cluster, graph, cfg);
        let a = engine.run(&plan, 2).unwrap();
        let b = engine.run(&plan, 2).unwrap();
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.timings, b.timings);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.trace.events(), b.trace.events());
    }

    #[test]
    fn retry_budget_is_bounded_by_degraded_mode() {
        let (cluster, graph) = setup(1, 64);
        let plan = symmetric(&cluster, &graph, 1, 8, 8);
        // A worker that crashes every 3 seconds for the first 10 minutes:
        // most requests cannot finish between crashes, so they exhaust
        // their retry budget and complete degraded.
        let mut fault_plan = real_sim::FaultPlan::new(1);
        for i in 0..200 {
            fault_plan = fault_plan.crash(0, 3.0 * f64::from(i), 1.0);
        }
        let cfg = EngineConfig {
            max_retries: 2,
            ..EngineConfig::default()
        }
        .with_fault_plan(fault_plan);
        let report = RuntimeEngine::new(cluster, graph, cfg)
            .run(&plan, 1)
            .unwrap();
        let f = &report.faults;
        // Completed despite the hostile schedule — no deadlock...
        assert_eq!(report.timings.len(), 6);
        // ...with every request bounded to max_retries + 1 + 1 attempts.
        assert!(f.dispatches <= 6 * 4, "{f:?}");
        assert!(f.requests_degraded >= 1, "{f:?}");
        assert!(f.backoff_seconds > 0.0);
    }

    #[test]
    fn slowdown_trips_deadline_and_retry_succeeds() {
        let (cluster, graph) = setup(1, 64);
        let plan = symmetric(&cluster, &graph, 1, 8, 8);
        let base = RuntimeEngine::new(cluster.clone(), graph.clone(), EngineConfig::default())
            .run(&plan, 1)
            .unwrap();
        let gen = base
            .timings
            .iter()
            .find(|t| t.call_name == "actor_gen")
            .unwrap();
        // A 100x straggler for 2.5x generation's fault-free wall: the first
        // attempt integrates to ~3.5x nominal and blows the 3x deadline at
        // start + 3x nominal; the retry (after backoff) lands past the
        // window and runs clean.
        let wall = gen.end - gen.start;
        let fault_plan =
            real_sim::FaultPlan::new(1).slowdown(2, gen.start, gen.start + 2.5 * wall, 100.0);
        let cfg = EngineConfig::default().with_fault_plan(fault_plan);
        let report = RuntimeEngine::new(cluster, graph, cfg)
            .run(&plan, 1)
            .unwrap();
        let f = &report.faults;
        assert!(f.timeouts >= 1, "{f:?}");
        assert!(f.requests_recovered >= 1, "{f:?}");
        assert_eq!(report.timings.len(), 6);
    }

    fn estimator(cluster: &ClusterSpec, graph: &DataflowGraph) -> Estimator {
        let actor = ModelSpec::llama3_7b();
        let mut profiler = real_profiler::Profiler::new(
            cluster.clone(),
            real_profiler::ProfileConfig::quick(),
            21,
        );
        let profiles = vec![profiler.profile(&actor), profiler.profile(&actor.critic())];
        Estimator::new(cluster.clone(), graph.clone(), profiles).unwrap()
    }

    fn quick_policy() -> ReplanPolicy {
        ReplanPolicy::new().with_search_steps(300)
    }

    #[test]
    fn replan_without_fault_plan_is_plain_run() {
        let (cluster, graph) = setup(1, 64);
        let plan = symmetric(&cluster, &graph, 1, 8, 8);
        let est = estimator(&cluster, &graph);
        let engine = RuntimeEngine::new(cluster, graph, EngineConfig::default());
        let a = engine.run(&plan, 2).unwrap();
        let b = engine.run_replan(&plan, 2, &quick_policy(), &est).unwrap();
        assert_eq!(a.timings, b.timings);
        assert_eq!(a.total_time, b.total_time);
        assert!(b.replan.is_empty());
    }

    #[test]
    fn replan_with_transient_faults_matches_plain_faulted_run() {
        // A crash with a short restart never trips the dead-worker cap or
        // the boundary triggers, so the re-planning loop must reproduce the
        // plain resilient run exactly.
        let (cluster, graph) = setup(1, 64);
        let plan = symmetric(&cluster, &graph, 1, 8, 8);
        let est = estimator(&cluster, &graph);
        let base = RuntimeEngine::new(cluster.clone(), graph.clone(), EngineConfig::default())
            .run(&plan, 2)
            .unwrap();
        let gen = base
            .timings
            .iter()
            .find(|t| t.call_name == "actor_gen" && t.iter == 0)
            .unwrap();
        let mid = (gen.start + gen.end) / 2.0;
        let cfg =
            EngineConfig::default().with_fault_plan(real_sim::FaultPlan::new(5).crash(3, mid, 2.0));
        let engine = RuntimeEngine::new(cluster, graph, cfg);
        let a = engine.run(&plan, 2).unwrap();
        let b = engine.run_replan(&plan, 2, &quick_policy(), &est).unwrap();
        assert_eq!(a.timings, b.timings);
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.faults, b.faults);
        assert!(b.replan.is_empty());
    }

    #[test]
    fn dead_worker_switches_to_surviving_plan() {
        // A permanent crash (restart far beyond the run) makes the plain
        // resilient run wait out the downtime; the re-planning run must
        // switch to a surviving mesh and finish orders of magnitude sooner.
        let (cluster, graph) = setup(1, 64);
        let plan = symmetric(&cluster, &graph, 1, 8, 8);
        let est = estimator(&cluster, &graph);
        let base = RuntimeEngine::new(cluster.clone(), graph.clone(), EngineConfig::default())
            .run(&plan, 2)
            .unwrap();
        let gen = base
            .timings
            .iter()
            .find(|t| t.call_name == "actor_gen" && t.iter == 0)
            .unwrap();
        let mid = (gen.start + gen.end) / 2.0;
        let cfg = EngineConfig::default()
            .with_fault_plan(real_sim::FaultPlan::new(5).crash(3, mid, 1.0e6));
        let engine = RuntimeEngine::new(cluster, graph, cfg);
        let waited = engine.run(&plan, 2).unwrap();
        assert!(waited.total_time > 1.0e6, "{}", waited.total_time);
        let replanned = engine.run_replan(&plan, 2, &quick_policy(), &est).unwrap();
        assert_eq!(replanned.replan.switches, 1, "{:?}", replanned.replan);
        assert!(
            matches!(
                replanned.replan.events[0].reason,
                ReplanReason::DeadWorker { gpu: 3 }
            ),
            "{:?}",
            replanned.replan.events
        );
        assert!(
            replanned.total_time < waited.total_time / 100.0,
            "replanned {} vs waited {}",
            replanned.total_time,
            waited.total_time
        );
        // Strictly higher throughput, and the switched plan avoids the dead
        // GPU from the switch onward.
        assert!(replanned.iter_time < waited.iter_time);
        assert_eq!(replanned.timings.len(), 12);
    }

    #[test]
    fn replanned_runs_replay_bit_identically() {
        let (cluster, graph) = setup(1, 64);
        let plan = symmetric(&cluster, &graph, 1, 8, 8);
        let est = estimator(&cluster, &graph);
        let cfg = EngineConfig::default()
            .with_fault_plan(real_sim::FaultPlan::new(5).crash(3, 5.0, 1.0e6))
            .with_trace(4096);
        let engine = RuntimeEngine::new(cluster, graph, cfg);
        let a = engine.run_replan(&plan, 2, &quick_policy(), &est).unwrap();
        let b = engine.run_replan(&plan, 2, &quick_policy(), &est).unwrap();
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.timings, b.timings);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.replan, b.replan);
        assert_eq!(a.trace.events(), b.trace.events());
    }

    #[test]
    fn two_iterations_cost_less_than_twice_one() {
        // Cross-iteration overlap plus amortized warm-up.
        let (cluster, graph) = setup(1, 64);
        let plan = symmetric(&cluster, &graph, 1, 8, 8);
        let engine = RuntimeEngine::new(cluster, graph, EngineConfig::deterministic());
        let one = engine.run(&plan, 1).unwrap().total_time;
        let two = engine.run(&plan, 2).unwrap().total_time;
        assert!(two < 2.0 * one * 1.05, "one {one} two {two}");
    }
}
