//! Baseline RLHF systems (§8.1, Appendix D) expressed as execution plans
//! plus engine flags, so Fig. 7's comparison runs inside one engine:
//!
//! - **DeepSpeed-Chat**: symmetric ZeRO-3 DP for every model; the
//!   HybridEngine reshards the actor to intra-node TP for generation.
//! - **OpenRLHF**: three disjoint GPU groups — a vLLM-style generation
//!   group (TP + DP, idle during training), an actor/reference group, and a
//!   critic/reward group, both ZeRO-3.
//! - **NeMo-Aligner**: two disjoint groups — actor generation+training on
//!   one (Megatron 3D, TRT-LLM-style TP generation), critic/reward/
//!   reference on the other.
//! - **veRL (HybridFlow)**: everything colocated on the full cluster with
//!   per-call-type strategies (Megatron 3D training, resharded TP
//!   generation) — the strongest baseline.
//!
//! Constructors return `Err` when a system cannot fit the workload at all
//! (the paper's red-cross OOM markers).

use crate::config::EngineConfig;
use real_cluster::{ClusterSpec, DeviceMesh};
use real_dataflow::{CallAssignment, CallType, DataflowGraph, ExecutionPlan};
use real_model::{MemoryModel, ModelSpec, ParallelStrategy};

/// A baseline's name, plan, and engine configuration.
#[derive(Debug, Clone)]
pub struct BaselineSetup {
    /// System name as used in Fig. 7.
    pub name: &'static str,
    /// The placement/parallelization policy as an execution plan.
    pub plan: ExecutionPlan,
    /// Engine flags (ZeRO-3 model set, etc.).
    pub config: EngineConfig,
}

/// Memory headroom fraction baseline launchers target.
const BUDGET: f64 = 0.95;

fn capacity_budget(cluster: &ClusterSpec) -> u64 {
    (cluster.gpu.mem_capacity as f64 * BUDGET) as u64
}

/// Picks the smallest power-of-two micro-batch count (up to 64) whose
/// active memory fits next to `static_bytes`. With `zero3` the replicated
/// weights are ZeRO-sharded (already in `static_bytes`), so they are
/// excluded from the active term and one gathered layer is charged instead.
fn fit_mbs(
    mm: &MemoryModel,
    call: CallType,
    base: ParallelStrategy,
    static_bytes: u64,
    budget: u64,
    zero3: bool,
) -> Result<ParallelStrategy, String> {
    let dp = u64::from(base.dp());
    let mut mbs = 1u32;
    loop {
        let s = base.with_micro_batches(mbs);
        let mut active = match call {
            CallType::Generate {
                batch,
                prompt_len,
                gen_len,
            } => mm.gen_active_bytes(&s, batch.div_ceil(dp), prompt_len + gen_len),
            CallType::Inference { batch, seq_len } => {
                mm.infer_active_bytes(&s, batch.div_ceil(dp) * seq_len)
            }
            CallType::TrainStep {
                batch,
                seq_len,
                n_minibatches,
            } => {
                let per = batch.div_ceil(dp).div_ceil(u64::from(n_minibatches.max(1)));
                mm.train_active_bytes(&s, per * seq_len)
            }
        };
        if zero3 {
            active = active
                .saturating_sub(mm.weight_bytes_per_gpu(&s))
                .saturating_add(2 * mm.model().layer_params());
        }
        if static_bytes + active <= budget {
            return Ok(s);
        }
        if mbs >= 64 {
            return Err(format!(
                "call does not fit: static {} + active {} exceeds budget {}",
                static_bytes, active, budget
            ));
        }
        mbs *= 2;
    }
}

/// Megatron-style 3D strategy on `n` GPUs: TP bounded by the node width,
/// the smallest PP whose static state fits, DP with the remainder. With
/// `dist_optim`, the Adam state shards over DP (Megatron's distributed
/// optimizer — NeMo's backend).
fn megatron_3d(
    cluster: &ClusterSpec,
    model: &ModelSpec,
    n: u32,
    width: u32,
    batch: u64,
    budget: u64,
    dist_optim: bool,
) -> Result<ParallelStrategy, String> {
    let mm = MemoryModel::new(model.clone());
    let mut tp = width.min(cluster.gpus_per_node).min(model.max_tp() as u32);
    while !n.is_multiple_of(tp) {
        tp /= 2;
    }
    let rest = n / tp;
    let mut pp = 1;
    loop {
        if pp > rest || u64::from(pp) > model.n_layers {
            return Err(format!(
                "{} does not fit {n} GPUs with 3D parallelism",
                model.name
            ));
        }
        if rest.is_multiple_of(pp) {
            let dp = rest / pp;
            if u64::from(dp) <= batch.max(1) {
                let s = ParallelStrategy::new(dp, tp, pp, 1).expect("positive degrees");
                let optim = if dist_optim {
                    mm.static_optim_bytes_dist(&s)
                } else {
                    mm.static_optim_bytes(&s)
                };
                if optim + mm.weight_bytes_per_gpu(&s) <= budget {
                    return Ok(s);
                }
            }
        }
        pp *= 2;
    }
}

/// TP + DP generation strategy (vLLM/TRT-LLM style, no pipeline): smallest
/// TP whose weights fit, then the smallest micro-batch count whose in-flight
/// KV cache fits — continuous batching processes the rest in waves.
#[allow(clippy::too_many_arguments)]
fn tp_dp_generation(
    cluster: &ClusterSpec,
    model: &ModelSpec,
    n: u32,
    width: u32,
    batch: u64,
    total_len: u64,
    static_bytes: u64,
    budget: u64,
) -> Result<ParallelStrategy, String> {
    let mm = MemoryModel::new(model.clone());
    let cost = real_model::CostModel::new(cluster.clone(), model.clone());
    let max_tp = width
        .min(cluster.gpus_per_node)
        .min(model.max_tp() as u32)
        .min(n);
    let mut best: Option<(f64, ParallelStrategy)> = None;
    let mut tp = 1;
    while tp <= max_tp {
        if n.is_multiple_of(tp) {
            let dp = n / tp;
            if u64::from(dp) <= batch {
                let mut mbs = 1u32;
                while mbs <= 64 {
                    let s = ParallelStrategy::new(dp, tp, 1, mbs).expect("positive degrees");
                    let batch_r = batch.div_ceil(u64::from(dp));
                    let active = mm.gen_active_bytes(&s, batch_r, total_len);
                    if static_bytes + active <= budget {
                        // Estimated per-token decode cost: weight streaming
                        // plus TP all-reduce latency, times sequential
                        // micro-batch groups.
                        let batch_mb = batch_r.div_ceil(u64::from(mbs)).max(1);
                        let per_layer = cost.layer_decode_time(batch_mb, total_len, tp, true)
                            + 2.0 * cost.tp_allreduce_time(batch_mb, tp, true);
                        let step = per_layer * model.n_layers as f64 * f64::from(mbs);
                        if best.map(|(t, _)| step < t).unwrap_or(true) {
                            best = Some((step, s));
                        }
                        break;
                    }
                    mbs *= 2;
                }
            }
        }
        tp *= 2;
    }
    best.map(|(_, s)| s)
        .ok_or_else(|| format!("{} generation does not fit {n} GPUs with TP+DP", model.name))
}

/// TP + DP inference strategy: the fastest feasible single-forward config
/// by the cost model (per-layer compute plus TP all-reduces), with
/// micro-batching to bound activations. Used by veRL, whose inference runs
/// on serving-style engines rather than the training pipeline.
#[allow(clippy::too_many_arguments)]
fn tp_dp_inference(
    cluster: &ClusterSpec,
    model: &ModelSpec,
    n: u32,
    width: u32,
    batch: u64,
    seq_len: u64,
    static_bytes: u64,
    budget: u64,
) -> Result<ParallelStrategy, String> {
    let mm = MemoryModel::new(model.clone());
    let cost = real_model::CostModel::new(cluster.clone(), model.clone());
    let max_tp = width
        .min(cluster.gpus_per_node)
        .min(model.max_tp() as u32)
        .min(n);
    let mut best: Option<(f64, ParallelStrategy)> = None;
    let mut tp = 1;
    while tp <= max_tp {
        if n.is_multiple_of(tp) {
            let dp = n / tp;
            if u64::from(dp) <= batch {
                let mut mbs = 1u32;
                while mbs <= 64 {
                    let s = ParallelStrategy::new(dp, tp, 1, mbs).expect("positive degrees");
                    let tokens_r = batch.div_ceil(u64::from(dp)) * seq_len;
                    let active = mm.infer_active_bytes(&s, tokens_r);
                    if static_bytes + active <= budget {
                        let tokens_mb = tokens_r.div_ceil(u64::from(mbs));
                        let per_layer = cost.layer_fwd_time(tokens_mb, seq_len / 2, tp, true)
                            + 2.0 * cost.tp_allreduce_time(tokens_mb, tp, true);
                        let total = per_layer * model.n_layers as f64 * f64::from(mbs);
                        if best.map(|(t, _)| total < t).unwrap_or(true) {
                            best = Some((total, s));
                        }
                        break;
                    }
                    mbs *= 2;
                }
            }
        }
        tp *= 2;
    }
    best.map(|(_, s)| s)
        .ok_or_else(|| format!("{} inference does not fit {n} GPUs with TP+DP", model.name))
}

/// Splits the cluster OpenRLHF-style (buddy-aligned): a quarter for the
/// vLLM generation engines, half for the actor/reference group (training is
/// the heaviest job), a quarter for the critic/reward group.
fn quarter_half_quarter(
    cluster: &ClusterSpec,
) -> Result<(DeviceMesh, DeviceMesh, DeviceMesh), String> {
    let n = cluster.n_nodes;
    let mk = |r: Result<DeviceMesh, real_cluster::mesh::MeshError>| r.map_err(|e| e.to_string());
    if n >= 4 {
        Ok((
            mk(DeviceMesh::whole_nodes(cluster, 0, n / 4))?,
            mk(DeviceMesh::whole_nodes(cluster, n / 2, n / 2))?,
            mk(DeviceMesh::whole_nodes(cluster, n / 4, n / 4))?,
        ))
    } else if n == 2 {
        Ok((
            mk(DeviceMesh::sub_node(cluster, 0, 0, 4))?,
            mk(DeviceMesh::whole_nodes(cluster, 1, 1))?,
            mk(DeviceMesh::sub_node(cluster, 0, 4, 4))?,
        ))
    } else {
        Ok((
            mk(DeviceMesh::sub_node(cluster, 0, 0, 2))?,
            mk(DeviceMesh::sub_node(cluster, 0, 4, 4))?,
            mk(DeviceMesh::sub_node(cluster, 0, 2, 2))?,
        ))
    }
}

/// Splits the cluster into two halves.
fn halves(cluster: &ClusterSpec) -> Result<(DeviceMesh, DeviceMesh), String> {
    let n = cluster.n_nodes;
    let mk = |r: Result<DeviceMesh, real_cluster::mesh::MeshError>| r.map_err(|e| e.to_string());
    if n >= 2 {
        Ok((
            mk(DeviceMesh::whole_nodes(cluster, 0, n / 2))?,
            mk(DeviceMesh::whole_nodes(cluster, n / 2, n / 2))?,
        ))
    } else {
        Ok((
            mk(DeviceMesh::sub_node(cluster, 0, 0, 4))?,
            mk(DeviceMesh::sub_node(cluster, 0, 4, 4))?,
        ))
    }
}

/// Which group a model belongs to in the asymmetric baselines.
fn is_actor_family(model_name: &str) -> bool {
    model_name == "actor" || model_name == "reference"
}

/// DeepSpeed-Chat: symmetric ZeRO-3 everywhere + HybridEngine TP for
/// generation.
pub fn dschat(
    cluster: &ClusterSpec,
    graph: &DataflowGraph,
    base: &EngineConfig,
) -> Result<BaselineSetup, String> {
    let mesh = DeviceMesh::full(cluster);
    let n = mesh.n_gpus();
    let budget = capacity_budget(cluster);
    let mut config = base.clone();
    // DeepSpeed-Chat generates through the HF decoding loop, which is not
    // CUDA-graph captured (unlike the vLLM/TRT-LLM backends of the other
    // systems) — a large per-step launch overhead during decoding.
    config.cuda_graph = false;
    for m in graph.model_names() {
        // DeepSpeed-Chat ZeRO-3-shards every model, frozen ones included.
        config.zero3_models.insert(m.to_string());
    }
    // ZeRO static per GPU: 18 B/param for trainable state, 2 B/param for
    // frozen weights, everything sharded over the world.
    let zero_static: u64 = graph
        .model_names()
        .iter()
        .map(|m| {
            let model = &graph.call(graph.calls_of_model(m)[0]).model;
            let per_param = if graph.is_trainable(m) { 18 } else { 2 };
            (model.param_count() * per_param).div_ceil(u64::from(n))
        })
        .sum();

    let mut assignments = Vec::with_capacity(graph.n_calls());
    for (_, def) in graph.iter() {
        let mm = MemoryModel::new(def.model.clone());
        let strategy = match def.call_type {
            CallType::Generate {
                batch,
                prompt_len,
                gen_len,
            } => {
                // HybridEngine: reshard ZeRO partitions to intra-node TP.
                tp_dp_generation(
                    cluster,
                    &def.model,
                    n,
                    cluster.gpus_per_node,
                    batch,
                    prompt_len + gen_len,
                    zero_static,
                    budget,
                )?
            }
            // Pure ZeRO-3 DP for training and inference.
            ct => {
                if u64::from(n) > ct.batch() {
                    return Err(format!(
                        "DeepSpeed-Chat pure DP needs batch >= {n}, got {}",
                        ct.batch()
                    ));
                }
                let base_s = ParallelStrategy::new(n, 1, 1, 1).expect("positive degrees");
                fit_mbs(&mm, ct, base_s, zero_static, budget, true)?
            }
        };
        assignments.push(CallAssignment::new(mesh, strategy).map_err(|e| e.to_string())?);
    }
    let plan = ExecutionPlan::new(graph, cluster, assignments).map_err(|e| e.to_string())?;
    Ok(BaselineSetup {
        name: "DeepSpeed-Chat",
        plan,
        config,
    })
}

/// OpenRLHF: generation group + actor/reference group + critic/reward
/// group, ZeRO-3 training backends.
pub fn openrlhf(
    cluster: &ClusterSpec,
    graph: &DataflowGraph,
    base: &EngineConfig,
) -> Result<BaselineSetup, String> {
    let (gen_mesh, actor_mesh, critic_mesh) = quarter_half_quarter(cluster)?;
    let budget = capacity_budget(cluster);
    let mut config = base.clone();
    for m in graph.model_names() {
        // DeepSpeed backends ZeRO-shard the frozen models as well.
        config.zero3_models.insert(m.to_string());
    }
    // Static per GPU of each group: every model hosted there, ZeRO-sharded.
    let group_static = |mesh: &DeviceMesh, actor_family: bool| -> u64 {
        graph
            .model_names()
            .iter()
            .filter(|m| is_actor_family(m) == actor_family)
            .map(|m| {
                let model = &graph.call(graph.calls_of_model(m)[0]).model;
                let per_param = if graph.is_trainable(m) { 18 } else { 2 };
                (model.param_count() * per_param).div_ceil(u64::from(mesh.n_gpus()))
            })
            .sum()
    };

    let mut assignments = Vec::with_capacity(graph.n_calls());
    for (_, def) in graph.iter() {
        let mm = MemoryModel::new(def.model.clone());
        let (mesh, zero_static) = match def.call_type {
            CallType::Generate { .. } => (gen_mesh, 0u64),
            _ if is_actor_family(&def.model_name) => (actor_mesh, group_static(&actor_mesh, true)),
            _ => (critic_mesh, group_static(&critic_mesh, false)),
        };
        let n = mesh.n_gpus();
        let strategy = match def.call_type {
            CallType::Generate {
                batch,
                prompt_len,
                gen_len,
            } => tp_dp_generation(
                cluster,
                &def.model,
                n,
                mesh.gpu_width(),
                batch,
                prompt_len + gen_len,
                0,
                budget,
            )?,
            ct => {
                if u64::from(n) > ct.batch() {
                    return Err(format!(
                        "OpenRLHF pure DP needs batch >= {n}, got {}",
                        ct.batch()
                    ));
                }
                let base_s = ParallelStrategy::new(n, 1, 1, 1).expect("positive degrees");
                fit_mbs(&mm, ct, base_s, zero_static, budget, true)?
            }
        };
        assignments.push(CallAssignment::new(mesh, strategy).map_err(|e| e.to_string())?);
    }
    let plan = ExecutionPlan::new(graph, cluster, assignments).map_err(|e| e.to_string())?;
    Ok(BaselineSetup {
        name: "OpenRLHF",
        plan,
        config,
    })
}

/// NeMo-Aligner: actor generation + training on one half (Megatron 3D),
/// everything else on the other half.
pub fn nemo_aligner(
    cluster: &ClusterSpec,
    graph: &DataflowGraph,
    base: &EngineConfig,
) -> Result<BaselineSetup, String> {
    let (actor_mesh, rest_mesh) = halves(cluster)?;
    let budget = capacity_budget(cluster);

    let mut assignments = Vec::with_capacity(graph.n_calls());
    for (_, def) in graph.iter() {
        let mm = MemoryModel::new(def.model.clone());
        let mesh = if is_actor_family(&def.model_name)
            || matches!(def.call_type, CallType::Generate { .. })
        {
            actor_mesh
        } else {
            rest_mesh
        };
        let n = mesh.n_gpus();
        // Static share on the actor mesh: the trainable actor's 3D state.
        let static_bytes = if mesh == actor_mesh && graph.is_trainable("actor") {
            let actor_model = &graph.call(graph.calls_of_model("actor")[0]).model;
            let s3d = megatron_3d(
                cluster,
                actor_model,
                n,
                mesh.gpu_width(),
                def.call_type.batch(),
                budget,
                true,
            )?;
            MemoryModel::new(actor_model.clone()).static_optim_bytes_dist(&s3d)
        } else {
            0
        };
        let strategy = match def.call_type {
            CallType::Generate {
                batch,
                prompt_len,
                gen_len,
            } => tp_dp_generation(
                cluster,
                &def.model,
                n,
                mesh.gpu_width(),
                batch,
                prompt_len + gen_len,
                static_bytes,
                budget,
            )?,
            ct => {
                let s3d = megatron_3d(
                    cluster,
                    &def.model,
                    n,
                    mesh.gpu_width(),
                    ct.batch(),
                    budget,
                    true,
                )?;
                fit_mbs(&mm, ct, s3d, static_bytes, budget, false)?
            }
        };
        assignments.push(CallAssignment::new(mesh, strategy).map_err(|e| e.to_string())?);
    }
    let plan = ExecutionPlan::new(graph, cluster, assignments).map_err(|e| e.to_string())?;
    let mut config = base.clone();
    for m in graph.model_names() {
        if graph.is_trainable(m) {
            config.dist_optim_models.insert(m.to_string());
        }
    }
    Ok(BaselineSetup {
        name: "NeMo-Aligner",
        plan,
        config,
    })
}

/// veRL (HybridFlow): colocated full-cluster placement with per-call-type
/// strategies — Megatron 3D training, resharded TP+DP generation.
pub fn verl(
    cluster: &ClusterSpec,
    graph: &DataflowGraph,
    base: &EngineConfig,
) -> Result<BaselineSetup, String> {
    let mesh = DeviceMesh::full(cluster);
    let n = mesh.n_gpus();
    let budget = capacity_budget(cluster);
    // Colocated static: every trainable model's 3D optimizer state must fit
    // *together*, so each model gets a budget share proportional to its
    // parameter count, with headroom left for activations.
    let trainable: Vec<&str> = graph
        .model_names()
        .into_iter()
        .filter(|m| graph.is_trainable(m))
        .collect();
    let total_params: u64 = trainable
        .iter()
        .map(|m| graph.call(graph.calls_of_model(m)[0]).model.param_count())
        .sum();
    let mut static_total = 0u64;
    let mut train_strategies: std::collections::HashMap<String, ParallelStrategy> =
        std::collections::HashMap::new();
    for m in &trainable {
        let model = &graph.call(graph.calls_of_model(m)[0]).model;
        let batch = graph
            .calls_of_model(m)
            .iter()
            .map(|&c| graph.call(c).call_type.batch())
            .max()
            .unwrap_or(1);
        let share =
            (budget as f64 * 0.7 * model.param_count() as f64 / total_params.max(1) as f64) as u64;
        let s = megatron_3d(cluster, model, n, mesh.gpu_width(), batch, share, false)?;
        static_total += MemoryModel::new(model.clone()).static_optim_bytes(&s);
        train_strategies.insert((*m).to_string(), s);
    }

    let mut assignments = Vec::with_capacity(graph.n_calls());
    for (_, def) in graph.iter() {
        let mm = MemoryModel::new(def.model.clone());
        let strategy = match def.call_type {
            CallType::Generate {
                batch,
                prompt_len,
                gen_len,
            } => tp_dp_generation(
                cluster,
                &def.model,
                n,
                mesh.gpu_width(),
                batch,
                prompt_len + gen_len,
                static_total,
                budget,
            )?,
            CallType::Inference { batch, seq_len } => tp_dp_inference(
                cluster,
                &def.model,
                n,
                mesh.gpu_width(),
                batch,
                seq_len,
                static_total,
                budget,
            )?,
            ct => {
                // Training uses the budget-shared Megatron 3D strategy.
                let s3d = match train_strategies.get(&def.model_name) {
                    Some(s) => *s,
                    None => megatron_3d(
                        cluster,
                        &def.model,
                        n,
                        mesh.gpu_width(),
                        ct.batch(),
                        budget,
                        false,
                    )?,
                };
                fit_mbs(&mm, ct, s3d, static_total, budget, false)?
            }
        };
        assignments.push(CallAssignment::new(mesh, strategy).map_err(|e| e.to_string())?);
    }
    let plan = ExecutionPlan::new(graph, cluster, assignments).map_err(|e| e.to_string())?;
    Ok(BaselineSetup {
        name: "veRL",
        plan,
        config: base.clone(),
    })
}

/// All four baselines, each possibly failing with an OOM explanation.
pub fn all(
    cluster: &ClusterSpec,
    graph: &DataflowGraph,
    base: &EngineConfig,
) -> Vec<(&'static str, Result<BaselineSetup, String>)> {
    vec![
        ("DeepSpeed-Chat", dschat(cluster, graph, base)),
        ("OpenRLHF", openrlhf(cluster, graph, base)),
        ("NeMo-Aligner", nemo_aligner(cluster, graph, base)),
        ("veRL", verl(cluster, graph, base)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master::RuntimeEngine;
    use real_dataflow::algo::{ppo, RlhfConfig};

    fn setup(nodes: u32, batch: u64) -> (ClusterSpec, DataflowGraph) {
        let cluster = ClusterSpec::h100(nodes);
        let actor = ModelSpec::llama3_7b();
        let graph = ppo(&actor, &actor.critic(), &RlhfConfig::instruct_gpt(batch));
        (cluster, graph)
    }

    #[test]
    fn all_baselines_construct_for_7b_on_two_nodes() {
        let (cluster, graph) = setup(2, 512);
        for (name, setup) in all(&cluster, &graph, &EngineConfig::deterministic()) {
            let setup = setup.unwrap_or_else(|e| panic!("{name}: {e}"));
            let engine = RuntimeEngine::new(cluster.clone(), graph.clone(), setup.config.clone());
            let report = engine
                .run(&setup.plan, 1)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(report.iter_time > 0.0, "{name}");
        }
    }

    #[test]
    fn dschat_uses_zero3_and_tp_generation() {
        let (cluster, graph) = setup(1, 128);
        let s = dschat(&cluster, &graph, &EngineConfig::deterministic()).unwrap();
        assert!(s.config.zero3_models.contains("actor"));
        assert!(s.config.zero3_models.contains("critic"));
        // HybridEngine generation is TP+DP (no pipeline), with the smallest
        // TP that fits — a 7B on one node fits at tp=1 (weight gather only).
        let gen = s.plan.assignment(graph.find("actor_gen").unwrap());
        assert_eq!(gen.strategy.pp(), 1);
        assert_eq!(gen.strategy.tp() * gen.strategy.dp(), 8);
        let train = s.plan.assignment(graph.find("actor_train").unwrap());
        assert_eq!(train.strategy.tp(), 1, "ZeRO-3 is pure DP");
        assert_eq!(train.strategy.dp(), 8);
    }

    #[test]
    fn openrlhf_groups_are_disjoint() {
        let (cluster, graph) = setup(2, 512);
        let s = openrlhf(&cluster, &graph, &EngineConfig::deterministic()).unwrap();
        let gen = s.plan.assignment(graph.find("actor_gen").unwrap()).mesh;
        let train = s.plan.assignment(graph.find("actor_train").unwrap()).mesh;
        let critic = s.plan.assignment(graph.find("critic_train").unwrap()).mesh;
        assert!(!gen.overlaps(&train));
        assert!(!gen.overlaps(&critic));
        assert!(!train.overlaps(&critic));
    }

    #[test]
    fn nemo_two_groups_actor_colocated() {
        let (cluster, graph) = setup(2, 512);
        let s = nemo_aligner(&cluster, &graph, &EngineConfig::deterministic()).unwrap();
        let gen = s.plan.assignment(graph.find("actor_gen").unwrap()).mesh;
        let train = s.plan.assignment(graph.find("actor_train").unwrap()).mesh;
        let reward = s.plan.assignment(graph.find("reward_inf").unwrap()).mesh;
        assert_eq!(gen, train, "actor gen and train share a group");
        assert!(!gen.overlaps(&reward));
    }

    #[test]
    fn verl_colocates_everything() {
        let (cluster, graph) = setup(2, 512);
        let s = verl(&cluster, &graph, &EngineConfig::deterministic()).unwrap();
        for a in s.plan.assignments() {
            assert_eq!(a.mesh.n_gpus(), 16);
        }
        assert!(s.config.zero3_models.is_empty());
    }

    #[test]
    fn verl_is_fastest_baseline_for_7b() {
        // The paper's ordering: veRL (concurrent work, most flexible)
        // outperforms the three earlier systems.
        let (cluster, graph) = setup(2, 512);
        let mut times = std::collections::HashMap::new();
        for (name, setup) in all(&cluster, &graph, &EngineConfig::deterministic()) {
            let setup = setup.unwrap();
            let engine = RuntimeEngine::new(cluster.clone(), graph.clone(), setup.config.clone());
            let t = engine.run(&setup.plan, 2).unwrap().iter_time;
            times.insert(name, t);
        }
        let verl_t = times["veRL"];
        for (name, t) in &times {
            assert!(verl_t <= *t * 1.05, "veRL {verl_t} vs {name} {t}");
        }
    }

    #[test]
    fn dschat_errors_when_batch_smaller_than_world() {
        let (cluster, graph) = setup(2, 8); // 16 GPUs, batch 8
        assert!(dschat(&cluster, &graph, &EngineConfig::deterministic()).is_err());
    }
}
