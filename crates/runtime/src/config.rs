//! Runtime engine configuration.

use real_dataflow::CallHook;
use real_sim::FaultPlan;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Knobs of the runtime engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Capture decoding in CUDA graphs (Table 6's with/without rows; the
    /// paper applies graphs to generation only).
    pub cuda_graph: bool,
    /// Log-normal sigma applied per simulated kernel/collective.
    pub jitter_sigma: f64,
    /// RNG seed for the jitter stream.
    pub seed: u64,
    /// Master-worker request dispatch latency (socket RPC + queueing), per
    /// function-call dispatch.
    pub rpc_latency: f64,
    /// Decode steps aggregated per simulated event (trades trace resolution
    /// for speed; results are duration-equivalent).
    pub decode_chunk: u64,
    /// Host-side per-decode-step overhead of an un-captured decoding loop
    /// (Python dispatch + distributed synchronization). Charged only when
    /// `cuda_graph` is off; graph capture replays the whole step on-device.
    pub host_decode_overhead: f64,
    /// Coefficient of variation of realized generation lengths across DP
    /// replicas. Zero reproduces the paper's fixed-length protocol
    /// (Appendix A); positive values model the §7 limitation — a dynamic
    /// workload whose skew the estimator cannot predict.
    pub gen_len_cv: f64,
    /// Kernel-trace capacity (0 disables tracing).
    pub trace_capacity: usize,
    /// Models executed in ZeRO-3 data-parallel mode (DeepSpeed-Chat
    /// emulation): per-layer weight all-gathers and reduce-scatters, static
    /// state sharded over the world.
    pub zero3_models: HashSet<String>,
    /// Models trained with Megatron's distributed optimizer (ZeRO-1):
    /// Adam state sharded over DP (NeMo-Aligner's backend).
    pub dist_optim_models: HashSet<String>,
    /// Skip the pre-run memory check (for experiments that *want* to
    /// observe the OOM as a failed run marker, not an error).
    pub skip_mem_check: bool,
    /// Deterministic fault schedule injected into the run (stragglers,
    /// worker crashes, link degradation). `None` leaves the engine on the
    /// exact fault-free code path, byte-identical to a build without the
    /// fault subsystem.
    pub fault_plan: Option<FaultPlan>,
    /// A request times out when its wall time exceeds `deadline_factor`
    /// times its predicted cost (the estimator's prediction when available,
    /// else the fault-free simulated duration). `<= 0` disables timeouts.
    pub deadline_factor: f64,
    /// Maximum re-dispatch attempts per request after the first; once
    /// exhausted, the request runs in degraded mode (after the fault
    /// schedule's last crash) so the run always completes.
    pub max_retries: u32,
    /// Base of the bounded exponential backoff between retries (seconds).
    pub backoff_base: f64,
    /// Upper bound on a single backoff interval (seconds).
    pub backoff_cap: f64,
    /// Estimator-predicted wall seconds per call name, used to derive
    /// request deadlines. Filled by the `real-core` facade from the §5 cost
    /// estimator; unknown calls fall back to the fault-free simulation.
    pub predicted_secs: Vec<(String, f64)>,
    /// Per-call user hooks from the `graph.json` DSL: fixed pre/post wall
    /// seconds charged around the named call on its mesh (data loading,
    /// reward post-processing, checkpoint upload). Empty leaves the engine
    /// byte-identical to a build without the hook subsystem.
    pub call_hooks: Vec<CallHook>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            cuda_graph: true,
            jitter_sigma: 0.02,
            seed: 1,
            rpc_latency: 300e-6,
            decode_chunk: 32,
            host_decode_overhead: 6e-3,
            gen_len_cv: 0.0,
            trace_capacity: 0,
            zero3_models: HashSet::new(),
            dist_optim_models: HashSet::new(),
            skip_mem_check: false,
            fault_plan: None,
            deadline_factor: 3.0,
            max_retries: 3,
            backoff_base: 0.5,
            backoff_cap: 8.0,
            predicted_secs: Vec::new(),
            call_hooks: Vec::new(),
        }
    }
}

impl EngineConfig {
    /// A configuration with deterministic (jitter-free) kernels, useful in
    /// tests asserting exact relationships.
    pub fn deterministic() -> Self {
        Self {
            jitter_sigma: 0.0,
            ..Self::default()
        }
    }

    /// Returns a copy with CUDA graphs toggled.
    pub fn with_cuda_graph(mut self, on: bool) -> Self {
        self.cuda_graph = on;
        self
    }

    /// Returns a copy with tracing enabled at the given capacity.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Returns a copy marking `model` as ZeRO-3 executed.
    pub fn with_zero3(mut self, model: impl Into<String>) -> Self {
        self.zero3_models.insert(model.into());
        self
    }

    /// Returns a copy with a fault schedule injected.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Returns a copy with per-call hooks installed.
    pub fn with_call_hooks(mut self, hooks: Vec<CallHook>) -> Self {
        self.call_hooks = hooks;
        self
    }

    /// Total (pre, post) hook seconds registered for `call_name`. Multiple
    /// hooks on the same call accumulate.
    ///
    /// # Examples
    ///
    /// ```
    /// use real_dataflow::CallHook;
    /// use real_runtime::EngineConfig;
    ///
    /// let cfg = EngineConfig::default().with_call_hooks(vec![CallHook {
    ///     call: "reward_inf".to_string(),
    ///     pre_secs: 0.0,
    ///     post_secs: 0.25,
    /// }]);
    /// assert_eq!(cfg.hook_secs("reward_inf"), (0.0, 0.25));
    /// assert_eq!(cfg.hook_secs("actor_gen"), (0.0, 0.0));
    /// ```
    pub fn hook_secs(&self, call_name: &str) -> (f64, f64) {
        let mut pre = 0.0;
        let mut post = 0.0;
        for h in &self.call_hooks {
            if h.call == call_name {
                pre += h.pre_secs;
                post += h.post_secs;
            }
        }
        (pre, post)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_graphed_and_jittered() {
        let c = EngineConfig::default();
        assert!(c.cuda_graph);
        assert!(c.jitter_sigma > 0.0);
        assert!(c.zero3_models.is_empty());
    }

    #[test]
    fn builders_compose() {
        let c = EngineConfig::deterministic()
            .with_cuda_graph(false)
            .with_trace(128)
            .with_zero3("actor");
        assert_eq!(c.jitter_sigma, 0.0);
        assert!(!c.cuda_graph);
        assert_eq!(c.trace_capacity, 128);
        assert!(c.zero3_models.contains("actor"));
    }

    #[test]
    fn hooks_accumulate_per_call() {
        let c = EngineConfig::deterministic().with_call_hooks(vec![
            CallHook {
                call: "actor_gen".into(),
                pre_secs: 0.5,
                post_secs: 0.25,
            },
            CallHook {
                call: "actor_gen".into(),
                pre_secs: 0.5,
                post_secs: 0.0,
            },
            CallHook {
                call: "rew_inf".into(),
                pre_secs: 0.0,
                post_secs: 1.0,
            },
        ]);
        assert_eq!(c.hook_secs("actor_gen"), (1.0, 0.25));
        assert_eq!(c.hook_secs("rew_inf"), (0.0, 1.0));
        assert_eq!(c.hook_secs("other"), (0.0, 0.0));
    }
}
