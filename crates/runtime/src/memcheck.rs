//! Pre-run memory validation, including the ZeRO-3 accounting used by the
//! DeepSpeed-Chat emulation.
//!
//! For plain plans this delegates to the estimator's `MaxMem` (the same
//! §5.1 accounting the search uses). ZeRO-3 models differ in both
//! directions: their static state shards across the whole data-parallel
//! world (smaller), but every forward keeps one gathered layer resident
//! (larger during calls).

use real_cluster::ClusterSpec;
use real_dataflow::{CallType, DataflowGraph, ExecutionPlan};
use real_model::MemoryModel;
use std::collections::HashSet;

/// Per-GPU static bytes and per-call active bytes under the engine's
/// execution modes — the data behind both the pre-run OOM check and the
/// per-GPU memory counter tracks of the observability export.
#[derive(Debug, Clone)]
pub struct MemProfile {
    /// Static (gradient + optimizer-state, possibly ZeRO-sharded) bytes
    /// resident on each GPU for the whole run.
    pub static_bytes: Vec<u64>,
    /// Active bytes each call (indexed by `CallId.0`) charges on every GPU
    /// of its mesh while it runs.
    pub call_active: Vec<u64>,
    /// Worst single-call active bytes per GPU (calls sharing a GPU
    /// serialize, so the per-GPU peak is a max, not a sum).
    pub peak_active: Vec<u64>,
}

impl MemProfile {
    /// Peak bytes over all GPUs: static plus the worst call's active bytes.
    pub fn peak(&self) -> u64 {
        self.static_bytes
            .iter()
            .zip(&self.peak_active)
            .map(|(s, a)| s + a)
            .max()
            .unwrap_or(0)
    }
}

/// Peak bytes per GPU under the engine's execution modes.
pub fn max_mem(
    cluster: &ClusterSpec,
    graph: &DataflowGraph,
    plan: &ExecutionPlan,
    zero3_models: &HashSet<String>,
    dist_optim_models: &HashSet<String>,
) -> u64 {
    if zero3_models.is_empty() && dist_optim_models.is_empty() {
        return real_estimator::maxmem::max_mem(cluster, graph, plan);
    }
    mem_profile(cluster, graph, plan, zero3_models, dist_optim_models).peak()
}

/// Computes the full [`MemProfile`] for a plan.
///
/// With no ZeRO-3 or distributed-optimizer models this reproduces the
/// estimator's §5.1 accounting (the `no_zero3_matches_estimator` test pins
/// the equivalence); otherwise it applies the engine-specific sharding
/// rules.
pub fn mem_profile(
    cluster: &ClusterSpec,
    graph: &DataflowGraph,
    plan: &ExecutionPlan,
    zero3_models: &HashSet<String>,
    dist_optim_models: &HashSet<String>,
) -> MemProfile {
    let n = cluster.total_gpus() as usize;
    let mut static_mem = vec![0u64; n];
    for model_name in graph.model_names() {
        let trainable = graph.is_trainable(model_name);
        let zero3 = zero3_models.contains(model_name);
        if !trainable && !zero3 {
            // Frozen, unsharded weights are active memory (§5.1).
            continue;
        }
        let calls = graph.calls_of_model(model_name);
        let anchor = calls
            .iter()
            .copied()
            .find(|&c| graph.call(c).call_type.is_training())
            .unwrap_or(calls[0]);
        let def = graph.call(anchor);
        let a = plan.assignment(anchor);
        let mm = MemoryModel::new(def.model.clone());
        let bytes = if zero3 {
            // ZeRO-3: weights (and, when trainable, gradients + optimizer
            // state) sharded over the world.
            let per_param: u64 = if trainable { 18 } else { 2 };
            mm.model()
                .param_count()
                .saturating_mul(per_param)
                .div_ceil(u64::from(a.strategy.world_size()))
        } else if dist_optim_models.contains(model_name) {
            mm.static_optim_bytes_dist(&a.strategy)
        } else {
            mm.static_optim_bytes(&a.strategy)
        };
        for gpu in a.mesh.gpus() {
            static_mem[gpu.0 as usize] += bytes;
        }
    }
    // Speculative generation pins the draft's weights + KV cache on the
    // draft mesh for the whole run — the same accounting as the estimator's
    // fast path, so both memory checks agree on speculative plans.
    for (id, choice) in plan.spec_choices() {
        let bytes = real_estimator::spec::draft_active_bytes(&graph.call(id).call_type, choice);
        for gpu in choice.assignment.mesh.gpus() {
            static_mem[gpu.0 as usize] += bytes;
        }
    }

    let mut peak_active = vec![0u64; n];
    let mut call_active = vec![0u64; graph.n_calls()];
    for (id, def) in graph.iter() {
        let a = plan.assignment(id);
        let mm = MemoryModel::new(def.model.clone());
        let dp = u64::from(a.strategy.dp());
        let zero3 = zero3_models.contains(&def.model_name);
        let mut active = match def.call_type {
            CallType::Generate {
                batch,
                prompt_len,
                gen_len,
            } => mm.gen_active_bytes(&a.strategy, batch.div_ceil(dp), prompt_len + gen_len),
            CallType::Inference { batch, seq_len } => {
                mm.infer_active_bytes(&a.strategy, batch.div_ceil(dp) * seq_len)
            }
            CallType::TrainStep {
                batch,
                seq_len,
                n_minibatches,
            } => {
                let per = batch.div_ceil(dp).div_ceil(u64::from(n_minibatches.max(1)));
                mm.train_active_bytes(&a.strategy, per * seq_len)
            }
        };
        if zero3 {
            // Weights are ZeRO-sharded (already in static); subtract the
            // replicated copy and add one gathered layer's working set.
            active = active
                .saturating_sub(mm.weight_bytes_per_gpu(&a.strategy))
                .saturating_add(2 * mm.model().layer_params());
        }
        call_active[id.0] = active;
        for gpu in a.mesh.gpus() {
            let slot = &mut peak_active[gpu.0 as usize];
            *slot = (*slot).max(active);
        }
    }

    MemProfile {
        static_bytes: static_mem,
        call_active,
        peak_active,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use real_cluster::DeviceMesh;
    use real_dataflow::{algo, CallAssignment};
    use real_model::{ModelSpec, ParallelStrategy};
    use real_util::units::GIB;

    fn setup(nodes: u32, batch: u64) -> (ClusterSpec, DataflowGraph) {
        let cluster = ClusterSpec::h100(nodes);
        let actor = ModelSpec::llama3_7b();
        let graph = algo::ppo(
            &actor,
            &actor.critic(),
            &algo::RlhfConfig::instruct_gpt(batch),
        );
        (cluster, graph)
    }

    fn symmetric(
        cluster: &ClusterSpec,
        graph: &DataflowGraph,
        dp: u32,
        tp: u32,
        mbs: u32,
    ) -> ExecutionPlan {
        let a = CallAssignment::new(
            DeviceMesh::full(cluster),
            ParallelStrategy::new(dp, tp, 1, mbs).unwrap(),
        )
        .unwrap();
        ExecutionPlan::new(graph, cluster, vec![a; graph.n_calls()]).unwrap()
    }

    #[test]
    fn no_zero3_matches_estimator() {
        let (cluster, graph) = setup(1, 64);
        let plan = symmetric(&cluster, &graph, 1, 8, 8);
        let ours = max_mem(&cluster, &graph, &plan, &HashSet::new(), &HashSet::new());
        let theirs = real_estimator::maxmem::max_mem(&cluster, &graph, &plan);
        assert_eq!(ours, theirs);
    }

    #[test]
    fn zero3_rescues_pure_dp_training() {
        let (cluster, graph) = setup(1, 512);
        let plan = symmetric(&cluster, &graph, 8, 1, 16);
        let plain = max_mem(&cluster, &graph, &plan, &HashSet::new(), &HashSet::new());
        let mut z: HashSet<String> = HashSet::new();
        z.insert("actor".into());
        z.insert("critic".into());
        let zero3 = max_mem(&cluster, &graph, &plan, &z, &HashSet::new());
        // Pure DP without ZeRO: full optimizer state replicated → > 200 GiB.
        assert!(plain > 200 * GIB);
        // ZeRO-3 shards it 8-way and fits.
        assert!(zero3 < 80 * GIB, "zero3 {}", zero3 / GIB);
    }

    #[test]
    fn zero3_frozen_model_moves_weights_to_sharded_static() {
        let (cluster, graph) = setup(1, 64);
        let plan = symmetric(&cluster, &graph, 1, 8, 8);
        let mut z: HashSet<String> = HashSet::new();
        z.insert("reference".into());
        // Frozen reference under ZeRO-3: its weights leave the active term
        // and reappear as world-sharded static, plus one gathered layer of
        // working set — the peak moves by at most that working set.
        let zero3 = max_mem(&cluster, &graph, &plan, &z, &HashSet::new());
        let plain = max_mem(&cluster, &graph, &plan, &HashSet::new(), &HashSet::new());
        // Bound the shift: static grows by at most the sharded weights
        // (2 B/param over world 8), active shrinks by at most the full
        // replicated shard.
        let shard = 2 * ModelSpec::llama3_7b().param_count() / 8;
        let replicated = MemoryModel::new(ModelSpec::llama3_7b())
            .weight_bytes_per_gpu(&ParallelStrategy::new(1, 8, 1, 8).unwrap());
        assert!(zero3 <= plain + shard, "zero3 {zero3} plain {plain}");
        assert!(zero3 + replicated >= plain, "zero3 {zero3} plain {plain}");
    }
}
