//! Suspendable per-tenant execution sessions for the serving loop.
//!
//! [`run_multi`](crate::multi::run_multi) executes a *fixed batch* of
//! tenants lock-step by iteration; a serving platform (`real-serve`) instead
//! faces an open stream where tenants start, pause, and finish at arbitrary
//! instants. [`TenantSession`] packages one tenant's runtime state — private
//! timelines, RNG substreams, parameter-layout map, fault clock — behind an
//! iterate/suspend/resume interface:
//!
//! - [`TenantSession::run_iteration`] executes exactly one RLHF iteration
//!   (the same event-by-event master loop as `run_multi`'s inner step) on the
//!   session's *private* timelines, so a tenant's iteration durations are a
//!   pure function of `(plan, tenant id, seed)` — co-tenants, queueing, and
//!   suspension cannot perturb them. The serving loop maps the session's
//!   relative clock onto wall time.
//! - [`TenantSession::checkpoint`] captures the resumable state (completed
//!   iterations, current plan, exact [`RngState`] stream positions) as a
//!   serde value — the same machinery as `real-search`'s
//!   `SearchCheckpoint`; [`TenantSession::restore`] rebuilds a live session
//!   from it by deterministic replay and verifies the streams line up.
//! - [`TenantSession::resume_on`] re-admits a suspended session, either on
//!   its old mesh (free — nothing moved) or on a new plan via a Fig. 6
//!   reallocation prologue priced from a *dedicated* prologue RNG substream,
//!   so preemption round-trips leave the iteration jitter stream untouched.
//!
//! # Determinism contract
//!
//! Two sessions constructed with equal `(cluster, graph, plan, config,
//! id, seed)` produce bitwise-equal iteration durations regardless of when
//! (or whether) either is suspended between iterations, as long as every
//! resume lands on the same plan. Resuming on a *different* plan inserts a
//! prologue and re-prices subsequent iterations under the new plan — but
//! still deterministically. Test-enforced here and end-to-end in
//! `tests/serving.rs`.

use crate::config::EngineConfig;
use crate::exec::{draft_cost_models, execute_call_spec, spec_exec_for, ExecCtx};
use crate::master::{RunError, RuntimeEngine};
use crate::memcheck;
use crate::realloc::execute_realloc;
use crate::report::FaultStats;
use real_cluster::{ClusterSpec, CommModel};
use real_dataflow::{CallAssignment, CallId, DataflowGraph, ExecutionPlan};
use real_model::CostModel;
use real_sim::{Category, FaultClock, Timelines, Trace};
use real_util::{DeterministicRng, RngState};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The serde-visible resumable state of a [`TenantSession`], captured at an
/// iteration boundary (the only instants the serving loop suspends at).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionCheckpoint {
    /// The tenant id the session was seeded with.
    pub tenant_id: u64,
    /// Iterations completed so far.
    pub completed: usize,
    /// Total iterations the session was admitted for.
    pub iterations: usize,
    /// The plan the session was executing when suspended.
    pub plan: ExecutionPlan,
    /// Session-relative clock at suspension (seconds).
    pub rel_time: f64,
    /// Iteration-jitter stream position.
    pub rng: RngState,
    /// Prologue stream position.
    pub prologue_rng: RngState,
}

/// Why a [`TenantSession`] could not be constructed or restored.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// The initial plan does not fit device memory (see [`RunError`]).
    Run(RunError),
    /// [`TenantSession::restore`] replayed the checkpoint but the rebuilt
    /// session disagrees with the captured state — the checkpoint was taken
    /// under a different seed, config, or plan history.
    Diverged {
        /// Which captured field failed verification.
        field: &'static str,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Run(e) => write!(f, "{e}"),
            SessionError::Diverged { field } => write!(
                f,
                "checkpoint replay diverged on `{field}` — wrong seed, config, or plan history"
            ),
        }
    }
}

impl std::error::Error for SessionError {}

/// One tenant's private, suspendable runtime (see module docs).
#[derive(Debug, Clone)]
pub struct TenantSession {
    id: u64,
    engine: RuntimeEngine,
    comm: CommModel,
    costs: HashMap<String, CostModel>,
    draft_costs: HashMap<String, CostModel>,
    clock: Option<FaultClock>,
    rng: DeterministicRng,
    prologue_rng: DeterministicRng,
    trace: Trace,
    fault_stats: FaultStats,
    topo: Vec<CallId>,
    param_layout: HashMap<String, (CallAssignment, f64)>,
    predicted: HashMap<String, f64>,
    current: ExecutionPlan,
    tl: Timelines,
    iterations: usize,
    completed: usize,
    iter_secs: Vec<f64>,
    rel_time: f64,
    realloc_secs: f64,
    resumes: usize,
}

impl TenantSession {
    /// Creates a session for `iterations` RLHF iterations of `graph` under
    /// `plan`. The session draws jitter from the same
    /// `(seed, tenant id)`-derived substream convention as
    /// [`run_multi`](crate::multi::run_multi), so its iteration durations
    /// are independent of everything except its own identity.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::Run`] when the plan does not fit device
    /// memory (unless `config.skip_mem_check`).
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0` or the plan references GPUs outside
    /// `cluster`.
    pub fn new(
        cluster: &ClusterSpec,
        graph: DataflowGraph,
        plan: ExecutionPlan,
        config: EngineConfig,
        id: u64,
        iterations: usize,
        seed: u64,
    ) -> Result<Self, SessionError> {
        assert!(
            iterations > 0,
            "tenant session needs at least one iteration"
        );
        let n_gpus = cluster.total_gpus() as usize;
        let peak = memcheck::max_mem(
            cluster,
            &graph,
            &plan,
            &config.zero3_models,
            &config.dist_optim_models,
        );
        if !config.skip_mem_check && peak > cluster.gpu.mem_capacity {
            return Err(SessionError::Run(RunError::OutOfMemory {
                peak,
                capacity: cluster.gpu.mem_capacity,
            }));
        }
        let mut costs: HashMap<String, CostModel> = HashMap::new();
        for call in graph.calls() {
            costs
                .entry(call.model.name.clone())
                .or_insert_with(|| CostModel::new(cluster.clone(), call.model.clone()));
        }
        let clock = config
            .fault_plan
            .as_ref()
            .map(|p| FaultClock::new(p, n_gpus, cluster.gpus_per_node as usize));
        let mut fault_stats = FaultStats::default();
        if let Some(clock) = clock.as_ref() {
            fault_stats.injected = clock.n_windows();
        }
        let trace = if config.trace_capacity > 0 {
            Trace::with_capacity(config.trace_capacity)
        } else {
            Trace::disabled()
        };
        let topo = graph.topo_order().expect("validated graphs are acyclic");
        let tenant = DeterministicRng::from_seed(seed)
            .derive("tenant")
            .derive_index(id);
        let predicted = config.predicted_secs.iter().cloned().collect();
        Ok(Self {
            id,
            draft_costs: draft_cost_models(cluster, &plan),
            comm: CommModel::new(cluster),
            engine: RuntimeEngine::new(cluster.clone(), graph, config),
            costs,
            clock,
            rng: tenant.derive("runtime"),
            prologue_rng: tenant.derive("prologue"),
            trace,
            fault_stats,
            topo,
            param_layout: HashMap::new(),
            predicted,
            current: plan,
            tl: Timelines::new(n_gpus),
            iterations,
            completed: 0,
            iter_secs: Vec::with_capacity(iterations),
            rel_time: 0.0,
            realloc_secs: 0.0,
            resumes: 0,
        })
    }

    /// Tenant id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Iterations completed so far.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Total iterations admitted for.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Iterations still to run.
    pub fn remaining(&self) -> usize {
        self.iterations - self.completed
    }

    /// `true` once every admitted iteration has run.
    pub fn is_done(&self) -> bool {
        self.completed >= self.iterations
    }

    /// The plan the session is currently executing under.
    pub fn plan(&self) -> &ExecutionPlan {
        &self.current
    }

    /// Session-relative clock: the end instant of the last completed
    /// iteration (or resume prologue), seconds since the session started.
    pub fn rel_time(&self) -> f64 {
        self.rel_time
    }

    /// Per-iteration durations (boundary to boundary on the session clock;
    /// a resume prologue is accounted in [`Self::realloc_secs`], not here).
    pub fn iter_secs(&self) -> &[f64] {
        &self.iter_secs
    }

    /// Total reallocation-prologue seconds paid across resumes.
    pub fn realloc_secs(&self) -> f64 {
        self.realloc_secs
    }

    /// Number of [`Self::resume_on`] calls that switched the plan (same-plan
    /// resumes are free and not counted).
    pub fn resumes(&self) -> usize {
        self.resumes
    }

    /// Fault statistics accumulated so far (all zero without a fault plan).
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault_stats
    }

    /// Executes the next RLHF iteration on the session's private timelines
    /// and returns its duration in seconds. Mirrors the inner loop of
    /// `run_multi` (dependency transfers, live parameter-layout map,
    /// resilient dispatch under a fault clock).
    ///
    /// # Panics
    ///
    /// Panics if the session [`is_done`](Self::is_done).
    pub fn run_iteration(&mut self) -> f64 {
        assert!(!self.is_done(), "session already ran all iterations");
        let iter = self.completed;
        let comm = self.comm.clone();
        let jitter = self.engine.config().jitter_sigma;
        let rpc = self.engine.config().rpc_latency;
        let n_calls = self.engine.graph().n_calls();
        let mut executed: Vec<Option<CallAssignment>> = vec![None; n_calls];
        let mut completion = vec![0.0f64; n_calls];
        let mut iter_end = self.rel_time;
        for pos in 0..self.topo.len() {
            let call = self.topo[pos];
            let graph = self.engine.graph();
            let def = graph.call(call);
            let a = *self.current.assignment(call);
            let zero3 = self.engine.config().zero3_models.contains(&def.model_name);

            // Data-dependency readiness (+ transfer when layouts differ).
            let mut ready: f64 = self.rel_time;
            for &dep in graph.deps(call) {
                let dep_done = completion[dep.0];
                let b = executed[dep.0].expect("deps precede in topo order");
                let end = if a.mesh == b.mesh && a.strategy == b.strategy {
                    dep_done
                } else {
                    let bytes = graph.call(dep).call_type.total_tokens() as f64 * 8.0;
                    let per_src = bytes / f64::from(b.strategy.dp());
                    let within = a.mesh.n_nodes() == 1
                        && b.mesh.n_nodes() == 1
                        && a.mesh.node_start() == b.mesh.node_start();
                    let mut dur =
                        comm.broadcast(per_src, 2, within) * self.rng.lognormal_factor(jitter);
                    let gpus: Vec<usize> = a.mesh.gpus().map(|g| g.0 as usize).collect();
                    if let Some(clock) = self.clock.as_ref() {
                        let start = gpus
                            .iter()
                            .map(|&g| self.tl.gpu(g).busy_until())
                            .fold(dep_done, f64::max);
                        dur = clock.stretched(&gpus, start, dur, true);
                    }
                    self.tl.collective(&gpus, dep_done, dur, Category::Transfer)
                };
                ready = ready.max(end);
            }

            // Parameter availability from the live layout map.
            if let Some((pa, pdone)) = self.param_layout.get(&def.model_name).copied() {
                let end = execute_realloc(
                    &mut self.tl,
                    &mut self.trace,
                    &comm,
                    &def.model,
                    &pa,
                    &a,
                    pdone,
                    &mut self.rng,
                    jitter,
                    self.clock.as_ref(),
                );
                ready = ready.max(end);
            }

            let ready = ready + rpc;
            let spec_exec = spec_exec_for(&self.current, call, &self.draft_costs);
            let end = if let Some(clock) = self.clock.as_ref() {
                self.engine.dispatch_resilient(
                    clock,
                    &self.costs[&def.model.name],
                    &comm,
                    &mut self.tl,
                    &mut self.trace,
                    &mut self.rng,
                    zero3,
                    &a,
                    def.call_type,
                    &def.call_name,
                    self.predicted.get(def.call_name.as_str()).copied(),
                    ready,
                    iter,
                    &mut self.fault_stats,
                    spec_exec.as_ref(),
                )
            } else {
                let mut ctx = ExecCtx {
                    cost: &self.costs[&def.model.name],
                    comm: &comm,
                    tl: &mut self.tl,
                    trace: &mut self.trace,
                    rng: &mut self.rng,
                    cfg: self.engine.config(),
                    zero3,
                    faults: None,
                };
                execute_call_spec(&mut ctx, &a, def.call_type, ready, spec_exec.as_ref())
            };
            executed[call.0] = Some(a);
            self.param_layout
                .insert(self.engine.graph().call(call).model_name.clone(), (a, end));
            completion[call.0] = end;
            iter_end = iter_end.max(end);
        }
        let dur = iter_end - self.rel_time;
        self.iter_secs.push(dur);
        self.rel_time = iter_end;
        self.completed = iter + 1;
        dur
    }

    /// Captures the resumable state at the current iteration boundary. The
    /// checkpoint is pure serde data (round-trips through JSON) — the same
    /// discipline as `real-search::SearchCheckpoint`.
    pub fn checkpoint(&self) -> SessionCheckpoint {
        SessionCheckpoint {
            tenant_id: self.id,
            completed: self.completed,
            iterations: self.iterations,
            plan: self.current.clone(),
            rel_time: self.rel_time,
            rng: self.rng.state(),
            prologue_rng: self.prologue_rng.state(),
        }
    }

    /// Resumes a suspended session on `plan`. When `plan` equals the
    /// session's current plan this is free: nothing moved, no RNG draw is
    /// consumed, and `0.0` is returned — a tenant suspended and resumed in
    /// place stays bitwise on its solo trajectory. Otherwise a Fig. 6
    /// reallocation prologue moves every held model's parameters to the new
    /// layout on the session clock (drawing jitter from the dedicated
    /// prologue substream) and the prologue duration is returned.
    pub fn resume_on(&mut self, plan: &ExecutionPlan) -> f64 {
        if *plan == self.current {
            return 0.0;
        }
        let comm = self.comm.clone();
        let jitter = self.engine.config().jitter_sigma;
        let start = self.rel_time;
        let mut prologue_end = start;
        let mut moved: Vec<(String, CallAssignment)> = Vec::new();
        for pos in 0..self.topo.len() {
            let call = self.topo[pos];
            let graph = self.engine.graph();
            let def = graph.call(call);
            if moved.iter().any(|(m, _)| *m == def.model_name) {
                continue;
            }
            let Some((pa, pdone)) = self.param_layout.get(&def.model_name).copied() else {
                continue;
            };
            let ta = *plan.assignment(call);
            if pa == ta {
                continue;
            }
            let end = execute_realloc(
                &mut self.tl,
                &mut self.trace,
                &comm,
                &def.model,
                &pa,
                &ta,
                pdone.max(start),
                &mut self.prologue_rng,
                jitter,
                self.clock.as_ref(),
            );
            prologue_end = prologue_end.max(end);
            moved.push((def.model_name.clone(), ta));
        }
        for (model, ta) in moved {
            self.param_layout.insert(model, (ta, prologue_end));
        }
        let secs = prologue_end - start;
        self.rel_time = prologue_end;
        self.realloc_secs += secs;
        self.resumes += 1;
        self.current = plan.clone();
        self.draft_costs = draft_cost_models(self.engine.cluster(), plan);
        secs
    }

    /// Rebuilds a live session from `checkpoint` by deterministic replay:
    /// constructs a fresh session with the checkpointed plan and replays the
    /// completed iterations, then verifies the rebuilt clock and RNG stream
    /// positions match the captured ones.
    ///
    /// Replay only reconstructs sessions that ran their whole history under
    /// `checkpoint.plan` (the serving loop checkpoints before any plan
    /// switch, so this covers its suspensions).
    ///
    /// # Errors
    ///
    /// [`SessionError::Run`] when the plan fails the memory check;
    /// [`SessionError::Diverged`] when the replayed state disagrees with
    /// the checkpoint (wrong seed, config, or plan history).
    pub fn restore(
        cluster: &ClusterSpec,
        graph: DataflowGraph,
        config: EngineConfig,
        checkpoint: &SessionCheckpoint,
        seed: u64,
    ) -> Result<Self, SessionError> {
        let mut session = Self::new(
            cluster,
            graph,
            checkpoint.plan.clone(),
            config,
            checkpoint.tenant_id,
            checkpoint.iterations,
            seed,
        )?;
        for _ in 0..checkpoint.completed {
            session.run_iteration();
        }
        if session.rng.state() != checkpoint.rng {
            return Err(SessionError::Diverged { field: "rng" });
        }
        if session.prologue_rng.state() != checkpoint.prologue_rng {
            return Err(SessionError::Diverged {
                field: "prologue_rng",
            });
        }
        if session.rel_time.to_bits() != checkpoint.rel_time.to_bits() {
            return Err(SessionError::Diverged { field: "rel_time" });
        }
        Ok(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use real_cluster::DeviceMesh;
    use real_dataflow::algo;
    use real_model::{ModelSpec, ParallelStrategy};

    fn setup(nodes: u32) -> (ClusterSpec, DataflowGraph) {
        let cluster = ClusterSpec::h100(nodes);
        let actor = ModelSpec::llama3_7b();
        let graph = algo::dpo(&actor, &algo::RlhfConfig::instruct_gpt(32));
        (cluster, graph)
    }

    fn plan_on(cluster: &ClusterSpec, graph: &DataflowGraph, node: u32) -> ExecutionPlan {
        let mesh = DeviceMesh::whole_nodes(cluster, node, 1).unwrap();
        let a = CallAssignment::new(mesh, ParallelStrategy::new(1, 8, 1, 4).unwrap()).unwrap();
        ExecutionPlan::new(graph, cluster, vec![a; graph.n_calls()]).unwrap()
    }

    fn session(
        cluster: &ClusterSpec,
        graph: &DataflowGraph,
        node: u32,
        iters: usize,
    ) -> TenantSession {
        TenantSession::new(
            cluster,
            graph.clone(),
            plan_on(cluster, graph, node),
            EngineConfig::deterministic(),
            3,
            iters,
            7,
        )
        .unwrap()
    }

    #[test]
    fn iterations_replay_bit_identically() {
        let (cluster, graph) = setup(1);
        let mut a = session(&cluster, &graph, 0, 3);
        let mut b = session(&cluster, &graph, 0, 3);
        for _ in 0..3 {
            assert_eq!(a.run_iteration().to_bits(), b.run_iteration().to_bits());
        }
        assert!(a.is_done());
        assert!(a.iter_secs().iter().all(|&d| d > 0.0));
    }

    #[test]
    fn same_plan_resume_is_free_and_preserves_the_trajectory() {
        let (cluster, graph) = setup(1);
        let mut solo = session(&cluster, &graph, 0, 4);
        let mut cycled = session(&cluster, &graph, 0, 4);
        solo.run_iteration();
        solo.run_iteration();
        cycled.run_iteration();
        // Suspend/resume in place between iterations: nothing changes.
        let ckpt = cycled.checkpoint();
        let plan = cycled.plan().clone();
        assert_eq!(cycled.resume_on(&plan), 0.0);
        cycled.run_iteration();
        assert_eq!(ckpt.completed, 1);
        for (x, y) in solo.iter_secs().iter().zip(cycled.iter_secs()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn cross_mesh_resume_pays_a_prologue_then_runs_the_new_plan() {
        let (cluster, graph) = setup(2);
        let mut s = session(&cluster, &graph, 0, 3);
        s.run_iteration();
        let before = s.rel_time();
        let target = plan_on(&cluster, &graph, 1);
        let prologue = s.resume_on(&target);
        assert!(prologue > 0.0, "moving every model across nodes costs time");
        assert_eq!(s.rel_time(), before + prologue);
        assert_eq!(s.resumes(), 1);
        assert_eq!(s.realloc_secs(), prologue);
        let d = s.run_iteration();
        assert!(d > 0.0);
        assert_eq!(s.plan(), &target);
    }

    #[test]
    fn prologue_uses_its_own_stream() {
        // A cross-mesh round trip must not shift the iteration jitter
        // stream: iterations after resume_on(other) + resume_on(back) match
        // a session that ran the same count of iterations under prologues'
        // absence only if jitter draws came from a separate substream. With
        // jitter enabled, compare the *iteration* stream directly.
        let (cluster, graph) = setup(2);
        let mut config = EngineConfig::deterministic();
        config.jitter_sigma = 0.03;
        let mk = |cfg: &EngineConfig| {
            TenantSession::new(
                &cluster,
                graph.clone(),
                plan_on(&cluster, &graph, 0),
                cfg.clone(),
                5,
                4,
                11,
            )
            .unwrap()
        };
        let mut solo = mk(&config);
        let mut cycled = mk(&config);
        for _ in 0..4 {
            solo.run_iteration();
        }
        cycled.run_iteration();
        let back = cycled.plan().clone();
        let away = plan_on(&cluster, &graph, 1);
        cycled.resume_on(&away);
        cycled.resume_on(&back);
        // The middle iterations ran on another mesh (different timeline
        // occupancy ⇒ different absolute instants), but the jitter *stream*
        // is intact: returning to the original plan, the remaining
        // iterations re-run the same durations the solo session drew for
        // its own iterations 2..4 — shifted only by realloc occupancy.
        cycled.run_iteration();
        assert_eq!(cycled.resumes(), 2);
        assert!(cycled.realloc_secs() > 0.0);
        // Weak but jitter-sensitive check: the first iteration (shared
        // prefix) is bitwise equal even with jitter on.
        assert_eq!(
            solo.iter_secs()[0].to_bits(),
            cycled.iter_secs()[0].to_bits()
        );
    }

    #[test]
    fn checkpoint_round_trips_and_restore_replays() {
        let (cluster, graph) = setup(1);
        let mut s = session(&cluster, &graph, 0, 3);
        s.run_iteration();
        s.run_iteration();
        let ckpt = s.checkpoint();
        let json = serde_json::to_string(&ckpt).unwrap();
        let back: SessionCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ckpt);
        let mut restored = TenantSession::restore(
            &cluster,
            graph.clone(),
            EngineConfig::deterministic(),
            &back,
            7,
        )
        .unwrap();
        assert_eq!(restored.completed(), 2);
        assert_eq!(restored.rel_time().to_bits(), s.rel_time().to_bits());
        assert_eq!(
            restored.run_iteration().to_bits(),
            s.run_iteration().to_bits()
        );
    }

    #[test]
    fn restore_rejects_a_foreign_seed() {
        let (cluster, graph) = setup(1);
        let mut s = session(&cluster, &graph, 0, 2);
        s.run_iteration();
        let ckpt = s.checkpoint();
        let err = TenantSession::restore(
            &cluster,
            graph.clone(),
            EngineConfig::deterministic(),
            &ckpt,
            999, // wrong seed: replayed stream cannot match
        )
        .unwrap_err();
        assert!(matches!(err, SessionError::Diverged { .. }), "{err}");
    }
}
