//! Async off-policy execution: staleness-bounded generation/training
//! overlap.
//!
//! The synchronous master loop ([`RuntimeEngine::run`]) chains every call
//! of a model to the model's previous call — generation for iteration `i`
//! waits for the training step of iteration `i - 1`. That edge is a
//! *policy* choice, not a dataflow necessity: off-policy RLHF variants
//! tolerate generating with parameters a few versions old. This module
//! relaxes exactly that edge, and nothing else, under a user-set staleness
//! bound `s`:
//!
//! - every **generation call of a trainable model** samples from a
//!   parameter *snapshot*: its cross-iteration edge points at the model's
//!   last non-generation call of iteration `i - 1 - s` (the snapshot
//!   version), or at the initial weights while `i <= s` (warm-up);
//! - every **other call** keeps a fresh-parameter chain among the model's
//!   non-generation calls, so training always consumes the weights its
//!   own previous step produced;
//! - data dependencies *within* an iteration are untouched — training for
//!   iteration `i` still consumes the sequences generation for iteration
//!   `i` produced.
//!
//! When the plan places generation and training on disjoint meshes, the
//! relaxed edge lets generation for iteration `i + 1` run concurrently
//! with training for iteration `i`: the per-GPU FIFO timelines overlap
//! them naturally because neither occupies the other's workers.
//!
//! # Snapshot shipment
//!
//! Publishing the snapshot to the generation mesh reuses the engine's
//! copy-engine convention for data transfers: only the *consumer* mesh is
//! occupied, the trainer's GPUs serve the send from copy engines without
//! stalling the next training step. (Routing the snapshot through
//! [`crate::realloc::execute_realloc`] would enqueue it behind the
//! in-flight training step on the trainer's FIFO queues and serialize the
//! very calls this mode exists to overlap.) The shipped volume is the full
//! parameter footprint of the generation layout
//! ([`crate::realloc::realloc_volume`]), charged as
//! [`Category::Realloc`].
//!
//! # Staleness accounting
//!
//! With bound `s`, generation for iteration `i` gates on version
//! `v = i - 1 - s`. Its *observed* staleness is the number of training
//! steps newer than `v` that had already completed when generation
//! dispatched — the freshness the run gave up, `<= s` by construction.
//! [`crate::report::AsyncStats`] reports the bound, the relaxed-call
//! count, the observed maximum, and the wall seconds during which
//! generation and training were simultaneously in flight.

use crate::exec::{draft_cost_models, execute_call_spec, spec_exec_for, ExecCtx};
use crate::master::{RunError, RuntimeEngine};
use crate::memcheck;
use crate::realloc::{execute_realloc, realloc_volume};
use crate::report::{AsyncStats, CallTiming, FaultStats, RunReport};
use crate::workers::{MasterLog, Request, Response};
use real_cluster::CommModel;
use real_dataflow::{CallId, CallType, ExecutionPlan};
use real_estimator::maxmem;
use real_model::CostModel;
use real_sim::{Category, FaultClock, Timelines, Trace};
use real_util::DeterministicRng;
use std::collections::HashMap;

impl RuntimeEngine {
    /// Executes `plan` for `iterations` RLHF iterations with async
    /// off-policy parameter edges under `staleness` (see the module docs).
    /// `staleness == 0` keeps generation one training step behind — the
    /// synchronous schedule's freshness with the snapshot shipped
    /// copy-engine style.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::OutOfMemory`] when the plan does not fit device
    /// memory (unless `skip_mem_check` is set).
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use real_cluster::{ClusterSpec, DeviceMesh};
    /// use real_dataflow::{algo, CallAssignment, ExecutionPlan};
    /// use real_model::{ModelSpec, ParallelStrategy};
    /// use real_runtime::{EngineConfig, RuntimeEngine};
    ///
    /// let cluster = ClusterSpec::h100(1);
    /// let actor = ModelSpec::llama3_7b();
    /// let graph = algo::ppo(&actor, &actor.critic(), &algo::RlhfConfig::instruct_gpt(32));
    /// let a = CallAssignment::new(
    ///     DeviceMesh::full(&cluster),
    ///     ParallelStrategy::new(1, 8, 1, 4).unwrap(),
    /// ).unwrap();
    /// let plan = ExecutionPlan::new(&graph, &cluster, vec![a; graph.n_calls()]).unwrap();
    /// let engine = RuntimeEngine::new(cluster, graph, EngineConfig::deterministic());
    /// let report = engine.run_async(&plan, 4, 1).unwrap();
    /// assert!(report.async_stats.relaxed_calls > 0);
    /// assert!(report.async_stats.max_observed_staleness <= 1);
    /// ```
    pub fn run_async(
        &self,
        plan: &ExecutionPlan,
        iterations: usize,
        staleness: u32,
    ) -> Result<RunReport, RunError> {
        assert!(iterations > 0, "must run at least one iteration");
        let graph = self.graph();
        let config = self.config();
        let cluster = self.cluster();
        let peak = memcheck::max_mem(
            cluster,
            graph,
            plan,
            &config.zero3_models,
            &config.dist_optim_models,
        );
        if !config.skip_mem_check && peak > cluster.gpu.mem_capacity {
            return Err(RunError::OutOfMemory {
                peak,
                capacity: cluster.gpu.mem_capacity,
            });
        }

        let mut costs: HashMap<String, CostModel> = HashMap::new();
        for call in graph.calls() {
            costs
                .entry(call.model.name.clone())
                .or_insert_with(|| CostModel::new(cluster.clone(), call.model.clone()));
        }
        let draft_costs = draft_cost_models(cluster, plan);
        let comm = CommModel::new(cluster);
        let mut tl = Timelines::new(cluster.total_gpus() as usize);
        let mut trace = if config.trace_capacity > 0 {
            Trace::with_capacity(config.trace_capacity)
        } else {
            Trace::disabled()
        };
        let mut rng = DeterministicRng::from_seed(config.seed).derive("runtime");
        let fault_clock = config.fault_plan.as_ref().map(|p| {
            FaultClock::new(
                p,
                cluster.total_gpus() as usize,
                cluster.gpus_per_node as usize,
            )
        });
        let mut fault_stats = FaultStats::default();
        if let Some(clock) = fault_clock.as_ref() {
            fault_stats.injected = clock.n_windows();
        }
        let predicted: HashMap<&str, f64> = config
            .predicted_secs
            .iter()
            .map(|(name, secs)| (name.as_str(), *secs))
            .collect();

        let mut master_log = MasterLog::default();
        let topo = graph.topo_order().expect("validated graphs are acyclic");
        // The relaxed set: generation calls of trainable models.
        let relaxed: Vec<bool> = (0..graph.n_calls())
            .map(|i| {
                let def = graph.call(CallId(i));
                matches!(def.call_type, CallType::Generate { .. })
                    && graph.is_trainable(&def.model_name)
            })
            .collect();
        let mut completion: Vec<Vec<f64>> = vec![vec![0.0; graph.n_calls()]; iterations];
        let mut timings: Vec<CallTiming> = Vec::new();
        let mut iter_end = vec![0.0f64; iterations];
        let mut async_stats = AsyncStats {
            staleness_bound: staleness,
            ..AsyncStats::default()
        };

        for iter in 0..iterations {
            for &call in &topo {
                let def = graph.call(call);
                let a = plan.assignment(call);
                let cost = &costs[&def.model.name];
                let zero3 = config.zero3_models.contains(&def.model_name);

                // Data-dependency readiness (+ transfer when layouts
                // differ) — identical to the synchronous master.
                let mut ready: f64 = 0.0;
                for &dep in graph.deps(call) {
                    let dep_done = completion[iter][dep.0];
                    let b = plan.assignment(dep);
                    let end = if a.mesh == b.mesh && a.strategy == b.strategy {
                        dep_done
                    } else {
                        let bytes = graph.call(dep).call_type.total_tokens() as f64 * 8.0;
                        let per_src = bytes / f64::from(b.strategy.dp());
                        let within = a.mesh.n_nodes() == 1
                            && b.mesh.n_nodes() == 1
                            && a.mesh.node_start() == b.mesh.node_start();
                        let mut dur = comm.broadcast(per_src, 2, within)
                            * rng.lognormal_factor(config.jitter_sigma);
                        let gpus: Vec<usize> = a.mesh.gpus().map(|g| g.0 as usize).collect();
                        if let Some(clock) = fault_clock.as_ref() {
                            let start = gpus
                                .iter()
                                .map(|&g| tl.gpu(g).busy_until())
                                .fold(dep_done, f64::max);
                            dur = clock.stretched(&gpus, start, dur, true);
                        }
                        tl.collective(&gpus, dep_done, dur, Category::Transfer)
                    };
                    ready = ready.max(end);
                }

                // Parameter availability with the relaxed edge.
                let model_calls = graph.calls_of_model(&def.model_name);
                let order: Vec<CallId> = topo
                    .iter()
                    .copied()
                    .filter(|c| model_calls.contains(c))
                    .collect();
                let nongen: Vec<CallId> = order.iter().copied().filter(|c| !relaxed[c.0]).collect();
                let mut snapshot_src: Option<(i64, CallId)> = None;
                if relaxed[call.0] {
                    // Generation samples from the staleness-bounded
                    // snapshot. `is_trainable` guarantees a training step
                    // exists, so `nongen` is non-empty.
                    let src = *nongen.last().expect("trainable model has a train call");
                    let version = iter as i64 - 1 - i64::from(staleness);
                    snapshot_src = Some((version, src));
                    if version >= 0 {
                        let pdone = completion[version as usize][src.0];
                        let pa = plan.assignment(src);
                        let end = if pa == a {
                            pdone
                        } else {
                            // Consumer-mesh-only snapshot shipment (module
                            // docs): the trainer's copy engines serve the
                            // send, only the generation mesh is occupied.
                            let per_gpu =
                                realloc_volume(&def.model, a) as f64 / a.mesh.n_gpus() as f64;
                            let within = a.mesh.n_nodes() == 1
                                && pa.mesh.n_nodes() == 1
                                && a.mesh.node_start() == pa.mesh.node_start();
                            let mut dur = comm.broadcast(per_gpu, 2, within)
                                * rng.lognormal_factor(config.jitter_sigma);
                            let gpus: Vec<usize> = a.mesh.gpus().map(|g| g.0 as usize).collect();
                            if let Some(clock) = fault_clock.as_ref() {
                                let start = gpus
                                    .iter()
                                    .map(|&g| tl.gpu(g).busy_until())
                                    .fold(pdone, f64::max);
                                dur = clock.stretched(&gpus, start, dur, true);
                            }
                            tl.collective(&gpus, pdone, dur, Category::Realloc)
                        };
                        ready = ready.max(end);
                        // When the call decodes speculatively the snapshot
                        // also covers the draft's weights: the draft mesh
                        // receives its (distilled) copy of the same stale
                        // version before generation starts. Spec-free plans
                        // never reach this branch, so they draw no extra
                        // jitter and stay byte-identical.
                        if let Some(c) = plan.spec_choice(call) {
                            let da = &c.assignment;
                            let per_gpu = realloc_volume(&c.config.draft_model, da) as f64
                                / da.mesh.n_gpus() as f64;
                            let within = da.mesh.n_nodes() == 1
                                && pa.mesh.n_nodes() == 1
                                && da.mesh.node_start() == pa.mesh.node_start();
                            let mut dur = comm.broadcast(per_gpu, 2, within)
                                * rng.lognormal_factor(config.jitter_sigma);
                            let gpus: Vec<usize> = da.mesh.gpus().map(|g| g.0 as usize).collect();
                            if let Some(clock) = fault_clock.as_ref() {
                                let start = gpus
                                    .iter()
                                    .map(|&g| tl.gpu(g).busy_until())
                                    .fold(pdone, f64::max);
                                dur = clock.stretched(&gpus, start, dur, true);
                            }
                            let end = tl.collective(&gpus, pdone, dur, Category::Realloc);
                            ready = ready.max(end);
                        }
                    }
                } else {
                    // Fresh chain among the model's non-generation calls.
                    let my_pos = nongen.iter().position(|&c| c == call).expect("listed");
                    let prev: Option<(usize, CallId)> = if my_pos > 0 {
                        Some((iter, nongen[my_pos - 1]))
                    } else if iter > 0 {
                        Some((iter - 1, *nongen.last().expect("non-empty")))
                    } else {
                        None
                    };
                    if let Some((piter, pcall)) = prev {
                        let pdone = completion[piter][pcall.0];
                        let pa = plan.assignment(pcall);
                        let end = execute_realloc(
                            &mut tl,
                            &mut trace,
                            &comm,
                            &def.model,
                            pa,
                            a,
                            pdone,
                            &mut rng,
                            config.jitter_sigma,
                            fault_clock.as_ref(),
                        );
                        ready = ready.max(end);
                    }
                }

                let (pre_hook, post_hook) = config.hook_secs(&def.call_name);
                let ready = ready + config.rpc_latency + pre_hook;
                master_log.requests.push(Request {
                    call,
                    handle: def.call_name.clone(),
                    iter,
                    dispatch_time: ready,
                    data_locations: MasterLog::data_locations(graph, plan, call),
                    worker_count: a.mesh.n_gpus(),
                });

                if let Some((version, src)) = snapshot_src {
                    if iter > 0 {
                        async_stats.relaxed_calls += 1;
                        // Completed-but-unconsumed training steps at
                        // dispatch: versions newer than the snapshot whose
                        // training had already finished when generation
                        // started.
                        let newer_from = usize::try_from(version + 1).unwrap_or(0);
                        let observed = (newer_from..iter)
                            .filter(|&j| completion[j][src.0] <= ready)
                            .count() as u32;
                        async_stats.max_observed_staleness =
                            async_stats.max_observed_staleness.max(observed);
                    }
                }

                let spec_exec = spec_exec_for(plan, call, &draft_costs);
                let end = if let Some(clock) = fault_clock.as_ref() {
                    self.dispatch_resilient(
                        clock,
                        cost,
                        &comm,
                        &mut tl,
                        &mut trace,
                        &mut rng,
                        zero3,
                        a,
                        def.call_type,
                        &def.call_name,
                        predicted.get(def.call_name.as_str()).copied(),
                        ready,
                        iter,
                        &mut fault_stats,
                        spec_exec.as_ref(),
                    )
                } else {
                    let mut ctx = ExecCtx {
                        cost,
                        comm: &comm,
                        tl: &mut tl,
                        trace: &mut trace,
                        rng: &mut rng,
                        cfg: config,
                        zero3,
                        faults: None,
                    };
                    execute_call_spec(&mut ctx, a, def.call_type, ready, spec_exec.as_ref())
                };
                let end = end + post_hook;
                master_log.responses.push(Response {
                    call,
                    iter,
                    completed_at: end,
                });
                completion[iter][call.0] = end;
                iter_end[iter] = iter_end[iter].max(end);
                timings.push(CallTiming {
                    call_name: def.call_name.clone(),
                    iter,
                    start: ready,
                    end,
                });
            }
        }

        async_stats.gen_train_overlap_secs = gen_train_overlap(graph, &timings);
        let total_time = tl.makespan();
        let iter_time = if iterations > 1 {
            (iter_end[iterations - 1] - iter_end[0]) / (iterations - 1) as f64
        } else {
            iter_end[0]
        };
        Ok(RunReport {
            iterations,
            total_time,
            iter_time,
            timings,
            category_totals: tl.totals(),
            idle_total: tl.idle_total(),
            mem_peak: peak,
            static_utilization: maxmem::static_utilization(cluster, graph, plan),
            trace,
            master_log,
            faults: fault_stats,
            replan: crate::replan::ReplanStats::default(),
            async_stats,
        })
    }
}

/// Wall seconds during which at least one [`CallType::Generate`] call and
/// at least one [`CallType::TrainStep`] call were simultaneously in
/// flight, from the report's call timings.
fn gen_train_overlap(graph: &real_dataflow::DataflowGraph, timings: &[CallTiming]) -> f64 {
    let kind_of: HashMap<&str, &CallType> = graph
        .calls()
        .iter()
        .map(|c| (c.call_name.as_str(), &c.call_type))
        .collect();
    let mut gen: Vec<(f64, f64)> = Vec::new();
    let mut train: Vec<(f64, f64)> = Vec::new();
    for t in timings {
        match kind_of.get(t.call_name.as_str()) {
            Some(CallType::Generate { .. }) => gen.push((t.start, t.end)),
            Some(CallType::TrainStep { .. }) => train.push((t.start, t.end)),
            _ => {}
        }
    }
    intersection_len(&merge_intervals(gen), &merge_intervals(train))
}

/// Sorts and merges overlapping intervals into a disjoint union.
fn merge_intervals(mut iv: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    iv.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Total length of the intersection of two disjoint, sorted interval sets.
fn intersection_len(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    let (mut i, mut j, mut total) = (0, 0, 0.0);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if a[i].1 < b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use real_cluster::{ClusterSpec, DeviceMesh};
    use real_dataflow::{algo, CallAssignment, DataflowGraph};
    use real_model::{ModelSpec, ParallelStrategy};

    fn ppo_graph(batch: u64) -> DataflowGraph {
        let actor = ModelSpec::llama3_7b();
        algo::ppo(
            &actor,
            &actor.critic(),
            &algo::RlhfConfig::instruct_gpt(batch),
        )
    }

    /// Gen of the actor on node 0's first half, everything else on the
    /// second half: disjoint meshes so the relaxed edge can overlap.
    fn split_plan(cluster: &ClusterSpec, graph: &DataflowGraph) -> ExecutionPlan {
        let gen_mesh = DeviceMesh::sub_node(cluster, 0, 0, 4).unwrap();
        let rest_mesh = DeviceMesh::sub_node(cluster, 0, 4, 4).unwrap();
        let s = ParallelStrategy::new(1, 4, 1, 4).unwrap();
        let assignments: Vec<CallAssignment> = graph
            .calls()
            .iter()
            .map(|c| {
                let mesh = if matches!(c.call_type, CallType::Generate { .. }) {
                    gen_mesh
                } else {
                    rest_mesh
                };
                CallAssignment::new(mesh, s).unwrap()
            })
            .collect();
        ExecutionPlan::new(graph, cluster, assignments).unwrap()
    }

    fn engine(graph: DataflowGraph, cluster: &ClusterSpec) -> RuntimeEngine {
        RuntimeEngine::new(
            cluster.clone(),
            graph,
            EngineConfig::deterministic().with_cuda_graph(true),
        )
    }

    #[test]
    fn async_run_is_deterministic() {
        let cluster = ClusterSpec::h100(1);
        let graph = ppo_graph(16);
        let plan = split_plan(&cluster, &graph);
        let eng = engine(graph, &cluster);
        let a = eng.run_async(&plan, 4, 1).unwrap();
        let b = eng.run_async(&plan, 4, 1).unwrap();
        assert_eq!(a.timings, b.timings);
        assert_eq!(a.async_stats, b.async_stats);
        assert_eq!(a.total_time, b.total_time);
    }

    #[test]
    fn disjoint_meshes_overlap_gen_and_train() {
        let cluster = ClusterSpec::h100(1);
        let graph = ppo_graph(16);
        let plan = split_plan(&cluster, &graph);
        let eng = engine(graph, &cluster);
        let sync = eng.run(&plan, 6).unwrap();
        let asy = eng.run_async(&plan, 6, 1).unwrap();
        assert!(sync.async_stats.is_empty());
        assert!(!asy.async_stats.is_empty());
        assert!(
            asy.async_stats.gen_train_overlap_secs > 0.0,
            "expected overlap, got {:?}",
            asy.async_stats
        );
        assert!(
            asy.total_time < sync.total_time,
            "async {} should beat sync {}",
            asy.total_time,
            sync.total_time
        );
    }

    #[test]
    fn staleness_bound_gates_generation() {
        let cluster = ClusterSpec::h100(1);
        let graph = ppo_graph(16);
        let plan = split_plan(&cluster, &graph);
        let eng = engine(graph.clone(), &cluster);
        for s in [0u32, 1, 2] {
            let report = eng.run_async(&plan, 6, s).unwrap();
            assert!(report.async_stats.max_observed_staleness <= s);
            // gen(i) never starts before train(i-1-s) completed.
            let train_end = |iter: usize| {
                report
                    .timings
                    .iter()
                    .filter(|t| t.call_name == "actor_train" && t.iter == iter)
                    .map(|t| t.end)
                    .fold(0.0, f64::max)
            };
            for t in &report.timings {
                if t.call_name == "actor_gen" && t.iter as i64 - 1 - i64::from(s) >= 0 {
                    let gate = train_end(t.iter - 1 - s as usize);
                    assert!(
                        t.start >= gate,
                        "s={s}: gen({}) started {} before train gate {}",
                        t.iter,
                        t.start,
                        gate
                    );
                }
            }
        }
    }

    #[test]
    fn stale_snapshot_broadcast_covers_draft_weights() {
        // Speculative generation in an async run ships the draft's weights
        // to the draft mesh alongside the target snapshot: the run stays
        // deterministic, draft/verify spans appear, and the extra shipment
        // charges more Realloc time than the same speculative plan run
        // synchronously (which reallocates but never snapshots).
        let cluster = ClusterSpec::h100(1);
        let graph = ppo_graph(16);
        let plan = split_plan(&cluster, &graph);
        let gen = graph.find("actor_gen").unwrap();
        let choice = real_dataflow::SpecChoice {
            config: real_model::SpecDecodeConfig {
                draft_model: real_model::ModelSpec::llama3_1b(),
                speculation_len: 4,
                acceptance_curve: real_model::specdec::AcceptanceCurve::Constant(0.8),
            },
            assignment: CallAssignment::new(
                DeviceMesh::sub_node(&cluster, 0, 0, 2).unwrap(),
                ParallelStrategy::new(1, 2, 1, 1).unwrap(),
            )
            .unwrap(),
        };
        let spec_plan = plan.with_spec(gen, Some(choice)).unwrap();
        let eng = RuntimeEngine::new(
            cluster.clone(),
            graph,
            EngineConfig {
                trace_capacity: 1 << 16,
                ..EngineConfig::deterministic().with_cuda_graph(true)
            },
        );
        let a = eng.run_async(&spec_plan, 4, 1).unwrap();
        let b = eng.run_async(&spec_plan, 4, 1).unwrap();
        assert_eq!(a.timings, b.timings);
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.trace.events(), b.trace.events());
        let labels: Vec<&str> = a.trace.events().iter().map(|e| e.label).collect();
        assert!(labels.contains(&"spec_draft_decode"), "{labels:?}");
        let realloc = |r: &RunReport| {
            r.category_totals
                .iter()
                .find(|(k, _)| *k == Category::Realloc)
                .map_or(0.0, |(_, v)| *v)
        };
        let plain_async = eng.run_async(&plan, 4, 1).unwrap();
        assert!(
            realloc(&a) > realloc(&plain_async),
            "draft snapshot must charge extra Realloc: {} vs {}",
            realloc(&a),
            realloc(&plain_async)
        );
    }

    #[test]
    fn tighter_staleness_is_never_faster() {
        let cluster = ClusterSpec::h100(1);
        let graph = ppo_graph(16);
        let plan = split_plan(&cluster, &graph);
        let eng = engine(graph, &cluster);
        let t0 = eng.run_async(&plan, 6, 0).unwrap().total_time;
        let t2 = eng.run_async(&plan, 6, 2).unwrap().total_time;
        assert!(t2 <= t0 + 1e-9, "s=2 ({t2}) slower than s=0 ({t0})");
    }

    #[test]
    fn same_mesh_everywhere_matches_sync_makespan() {
        // On a single shared mesh the relaxed edge buys nothing: requests
        // dispatch earlier but queue on the same FIFO timelines, and no
        // snapshot shipment runs (same assignment), so the realized
        // schedule is the synchronous one.
        let cluster = ClusterSpec::h100(1);
        let graph = ppo_graph(16);
        let a = CallAssignment::new(
            DeviceMesh::full(&cluster),
            ParallelStrategy::new(1, 8, 1, 4).unwrap(),
        )
        .unwrap();
        let plan = ExecutionPlan::new(&graph, &cluster, vec![a; graph.n_calls()]).unwrap();
        let eng = engine(graph, &cluster);
        let sync = eng.run(&plan, 3).unwrap();
        let asy = eng.run_async(&plan, 3, 1).unwrap();
        // Early dispatch hides at most the RPC latency per relaxed call;
        // the GPU schedule itself is unchanged.
        assert!(asy.total_time <= sync.total_time);
        assert!(sync.total_time - asy.total_time < 1e-2);
        assert!(asy.total_time > 0.0);
    }

    #[test]
    fn interval_helpers_merge_and_intersect() {
        let merged = merge_intervals(vec![(3.0, 4.0), (0.0, 1.0), (0.5, 2.0)]);
        assert_eq!(merged, vec![(0.0, 2.0), (3.0, 4.0)]);
        let len = intersection_len(&[(0.0, 2.0), (3.0, 4.0)], &[(1.0, 3.5)]);
        assert!((len - 1.5).abs() < 1e-12);
    }
}
