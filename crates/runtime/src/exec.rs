//! Event-level execution of one model function call on the virtual
//! timelines.
//!
//! Each DP replica runs its own pipeline; micro-batches flow through the
//! pipeline stages as compute / TP-collective / boundary-P2P events, with
//! per-event log-normal jitter. Decoding is simulated in chunks of
//! [`crate::EngineConfig::decode_chunk`] steps with the KV-cache length
//! advanced per chunk.

use crate::config::EngineConfig;
use crate::layout::Layout;
use real_cluster::CommModel;
use real_dataflow::{CallAssignment, CallType, SpecChoice};
use real_model::cost::{CostModel, KERNELS_PER_LAYER_FWD};
use real_model::specdec::{self, DecodeShape};
use real_sim::{Category, FaultClock, Timelines, Trace};
use real_util::DeterministicRng;

/// Fraction of a ZeRO-3 all-gather that bucketing and the bounded prefetch
/// queue keep on the critical path even when compute could hide it.
const ZERO3_GATHER_FLOOR: f64 = 0.55;

/// Mutable execution context shared by the call executors.
pub struct ExecCtx<'a> {
    /// Cost model of the call's architecture.
    pub cost: &'a CostModel,
    /// True link parameters of the cluster.
    pub comm: &'a CommModel,
    /// Virtual GPU timelines.
    pub tl: &'a mut Timelines,
    /// Optional kernel trace.
    pub trace: &'a mut Trace,
    /// Jitter stream.
    pub rng: &'a mut DeterministicRng,
    /// Engine knobs.
    pub cfg: &'a EngineConfig,
    /// Whether this call's model runs in ZeRO-3 mode.
    pub zero3: bool,
    /// Compiled fault schedule; `None` keeps execution on the exact
    /// fault-free path (bit-identical timings).
    pub faults: Option<&'a FaultClock>,
}

/// Whether a category rides the interconnect (and is therefore subject to
/// link-degradation faults in addition to GPU slowdowns).
fn is_comm(cat: Category) -> bool {
    !matches!(cat, Category::Compute | Category::Launch)
}

impl ExecCtx<'_> {
    fn jitter(&mut self) -> f64 {
        self.rng.lognormal_factor(self.cfg.jitter_sigma)
    }

    fn event(
        &mut self,
        gpus: &[usize],
        ready: f64,
        dur: f64,
        cat: Category,
        label: &'static str,
    ) -> f64 {
        if dur <= 0.0 {
            return ready.max(
                gpus.iter()
                    .map(|&g| self.tl.gpu(g).busy_until())
                    .fold(0.0, f64::max),
            );
        }
        let mut dur = dur * self.jitter();
        if let Some(f) = self.faults {
            let start = gpus
                .iter()
                .map(|&g| self.tl.gpu(g).busy_until())
                .fold(ready, f64::max);
            dur = f.stretched(gpus, start, dur, is_comm(cat));
        }
        let end = self.tl.collective(gpus, ready, dur, cat);
        if self.trace.enabled() {
            for &g in gpus {
                self.trace.record(g, end - dur, end, cat, label);
            }
        }
        end
    }

    /// A pipeline-boundary P2P transfer with jitter, fault stretching, and
    /// optional trace recording (on the source GPU). Returns `ready`
    /// unchanged when the transfer is free (same-node leaders).
    fn p2p_event(
        &mut self,
        src: usize,
        dst: usize,
        ready: f64,
        dur: f64,
        label: Option<&'static str>,
    ) -> f64 {
        if dur <= 0.0 {
            return ready;
        }
        let mut d2 = dur * self.jitter();
        if let Some(f) = self.faults {
            let pair: &[usize] = if src == dst { &[src] } else { &[src, dst] };
            let start = pair
                .iter()
                .map(|&g| self.tl.gpu(g).busy_until())
                .fold(ready, f64::max);
            d2 = f.stretched(pair, start, d2, true);
        }
        let e = self.tl.p2p(src, dst, ready, d2, Category::PpComm);
        if let Some(label) = label {
            if self.trace.enabled() {
                self.trace.record(src, e - d2, e, Category::PpComm, label);
            }
        }
        e
    }
}

/// Executes a call; returns its completion time (max over DP replicas).
pub fn execute_call(ctx: &mut ExecCtx<'_>, a: &CallAssignment, call: CallType, ready: f64) -> f64 {
    let layout = Layout::new(a);
    match call {
        CallType::Generate {
            batch,
            prompt_len,
            gen_len,
        } => generate(ctx, a, &layout, batch, prompt_len, gen_len, ready),
        CallType::Inference { batch, seq_len } => {
            forward_pass(ctx, a, &layout, batch, seq_len, ready, Pass::Inference)
        }
        CallType::TrainStep {
            batch,
            seq_len,
            n_minibatches,
        } => train(ctx, a, &layout, batch, seq_len, n_minibatches, ready),
    }
}

/// The plan's speculative-decoding attachment for one generation call: the
/// [`SpecChoice`] plus a cost model of the draft architecture — the same
/// [`CostModel`] the estimator prices drafts with, so the runtime's
/// profitability decision and the planner's agree.
pub struct SpecExec<'a> {
    /// Analytic cost model of the draft architecture.
    pub draft_cost: &'a CostModel,
    /// The plan's choice (draft, `k`, acceptance curve, draft placement).
    pub choice: &'a SpecChoice,
}

/// One cost model per distinct draft architecture referenced by `plan`'s
/// speculation choices. Empty when the plan decodes plainly, so spec-free
/// runs never construct a draft model.
pub(crate) fn draft_cost_models(
    cluster: &real_cluster::ClusterSpec,
    plan: &real_dataflow::ExecutionPlan,
) -> std::collections::HashMap<String, CostModel> {
    let mut out: std::collections::HashMap<String, CostModel> = std::collections::HashMap::new();
    for (_, choice) in plan.spec_choices() {
        out.entry(choice.config.draft_model.name.clone())
            .or_insert_with(|| CostModel::new(cluster.clone(), choice.config.draft_model.clone()));
    }
    out
}

/// The speculative attachment for `call` under `plan`, resolved against a
/// prebuilt draft cost-model map. `None` when the call decodes plainly or
/// the draft architecture is absent from the map (plain-decode fallback).
pub(crate) fn spec_exec_for<'a>(
    plan: &'a real_dataflow::ExecutionPlan,
    call: real_dataflow::CallId,
    draft_costs: &'a std::collections::HashMap<String, CostModel>,
) -> Option<SpecExec<'a>> {
    plan.spec_choice(call).and_then(|c| {
        draft_costs
            .get(&c.config.draft_model.name)
            .map(|dc| SpecExec {
                draft_cost: dc,
                choice: c,
            })
    })
}

/// Executes a call with an optional speculative-decoding attachment.
/// `None` (or a non-generation call) takes exactly the [`execute_call`]
/// path — same events, same RNG draws, byte-identical timings.
pub fn execute_call_spec(
    ctx: &mut ExecCtx<'_>,
    a: &CallAssignment,
    call: CallType,
    ready: f64,
    spec: Option<&SpecExec<'_>>,
) -> f64 {
    match (call, spec) {
        (
            CallType::Generate {
                batch,
                prompt_len,
                gen_len,
            },
            Some(spec),
        ) => {
            let layout = Layout::new(a);
            generate_spec(ctx, a, &layout, batch, prompt_len, gen_len, ready, spec)
        }
        _ => execute_call(ctx, a, call, ready),
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Pass {
    /// Inference or prefill: forward only, head on the last stage.
    Inference,
    /// Generation prefill: forward only, no full-batch head (only the last
    /// token is sampled).
    Prefill,
}

/// Per-replica sequence count.
fn replica_batch(batch: u64, a: &CallAssignment) -> u64 {
    batch.div_ceil(u64::from(a.strategy.dp()))
}

/// One TP all-reduce duration for `tokens` tokens on `group`.
fn ar_dur(ctx: &ExecCtx<'_>, layout: &Layout, group: &[usize], tokens: u64) -> f64 {
    let tp = group.len() as u32;
    if tp <= 1 {
        return 0.0;
    }
    let bytes = tokens as f64 * ctx.cost.model().hidden as f64 * 2.0;
    ctx.comm.all_reduce(bytes, tp, layout.within_node(group))
}

/// Boundary P2P duration for `tokens` TP-sharded tokens.
fn p2p_dur(
    ctx: &ExecCtx<'_>,
    layout: &Layout,
    src: usize,
    dst: usize,
    tokens: u64,
    tp: u32,
) -> f64 {
    let bytes = tokens as f64 * ctx.cost.model().hidden as f64 * 2.0 / f64::from(tp.max(1));
    ctx.comm.p2p(bytes, layout.pair_within_node(src, dst))
}

/// Forward-only pass (inference, or generation prefill): a GPipe-style
/// forward pipeline over micro-batches, per DP replica.
#[allow(clippy::too_many_arguments)]
fn forward_pass(
    ctx: &mut ExecCtx<'_>,
    a: &CallAssignment,
    layout: &Layout,
    batch: u64,
    seq_len: u64,
    ready: f64,
    pass: Pass,
) -> f64 {
    let s = a.strategy;
    let (dp, tp, pp, mbs) = (s.dp(), s.tp(), s.pp(), s.micro_batches());
    let batch_r = replica_batch(batch, a);
    let batch_mb = batch_r.div_ceil(u64::from(mbs)).max(1);
    let tokens_mb = batch_mb * seq_len;
    let stages = s.stage_layers(ctx.cost.model().n_layers);
    let world = s.world_size();

    let mut done = ready;
    for d in 0..dp {
        // p2p_out[stage] = completion of the previous micro-batch's boundary
        // transfer into stage+1; per-mb chaining is tracked via `arrive`.
        let mut replica_end = ready;
        let mut prev_arrive = vec![ready; pp as usize];
        for _mb in 0..mbs {
            let mut arrive = ready;
            for (stage_idx, range) in stages.iter().enumerate() {
                let stage = stage_idx as u32;
                let group: Vec<usize> = layout.tp_group(stage, d).to_vec();
                let layers = range.end - range.start;
                let stage_ready = arrive.max(prev_arrive[stage_idx]);

                let mut t = stage_ready;
                let mut compute =
                    layers as f64 * ctx.cost.layer_fwd_time(tokens_mb, seq_len / 2, tp, true);
                if stage == 0 {
                    compute += ctx.cost.embed_time(tokens_mb, tp);
                }
                if stage == pp - 1 && pass == Pass::Inference {
                    compute += ctx.cost.head_time(tokens_mb, tp, false);
                }
                if ctx.zero3 {
                    // DeepSpeed prefetches the next layer's weights while the
                    // current one computes: only the non-overlapped excess
                    // stalls the stream.
                    let gather =
                        layers as f64 * ctx.cost.zero3_allgather_time(world, a.mesh.n_nodes() == 1);
                    let excess = (gather - compute).max(gather * ZERO3_GATHER_FLOOR);
                    t = ctx.event(&group, t, excess, Category::DpComm, "zero3_allgather");
                }
                t = ctx.event(&group, t, compute, Category::Compute, "layer_fwd");
                let ar = layers as f64 * 2.0 * ar_dur(ctx, layout, &group, tokens_mb);
                t = ctx.event(&group, t, ar, Category::TpComm, "tp_allreduce");

                prev_arrive[stage_idx] = t;
                if stage < pp - 1 {
                    let src = Layout::leader(&group);
                    let dst = Layout::leader(layout.tp_group(stage + 1, d));
                    let dur = p2p_dur(ctx, layout, src, dst, tokens_mb, tp);
                    arrive = ctx.p2p_event(src, dst, t, dur, Some("pp_p2p"));
                } else {
                    replica_end = replica_end.max(t);
                }
            }
        }
        done = done.max(replica_end);
    }
    done
}

/// Generation: prefill then chunked decoding with a one-chunk pipeline skew
/// between adjacent stages.
#[allow(clippy::too_many_arguments)]
fn generate(
    ctx: &mut ExecCtx<'_>,
    a: &CallAssignment,
    layout: &Layout,
    batch: u64,
    prompt_len: u64,
    gen_len: u64,
    ready: f64,
) -> f64 {
    let prefill_done = forward_pass(ctx, a, layout, batch, prompt_len, ready, Pass::Prefill);
    let realized_gen_len = realized_gen_len(ctx, gen_len);
    decode_loop(
        ctx,
        a,
        layout,
        batch,
        prompt_len,
        realized_gen_len,
        prefill_done,
        ready,
        "layer_decode",
    )
}

/// Realized generation length this iteration: the paper's protocol
/// (Appendix A) always decodes to the configured maximum, which
/// `gen_len_cv = 0` reproduces. A positive CV models the §7 limitation —
/// "the generation length varies significantly during training" — as a
/// per-iteration log-normal drift of the realized length. The estimator
/// keeps pricing the configured length, which is exactly the
/// unpredictability the paper warns invalidates its cost estimates.
fn realized_gen_len(ctx: &mut ExecCtx<'_>, gen_len: u64) -> u64 {
    if ctx.cfg.gen_len_cv > 0.0 {
        let f = ctx.rng.lognormal_factor(ctx.cfg.gen_len_cv);
        ((gen_len as f64 * f) as u64).max(1)
    } else {
        gen_len
    }
}

/// The chunked token-by-token decode pipeline shared by plain generation
/// (`compute_label = "layer_decode"`) and the speculative path's
/// not-profitable fallback (`"spec_fallback_decode"`) — same events, same
/// RNG draws; only the compute label differs.
#[allow(clippy::too_many_arguments)]
fn decode_loop(
    ctx: &mut ExecCtx<'_>,
    a: &CallAssignment,
    layout: &Layout,
    batch: u64,
    prompt_len: u64,
    realized_gen_len: u64,
    prefill_done: f64,
    ready: f64,
    compute_label: &'static str,
) -> f64 {
    let s = a.strategy;
    let (dp, tp, pp, mbs) = (s.dp(), s.tp(), s.pp(), s.micro_batches());
    let batch_r = replica_batch(batch, a);
    let batch_mb = batch_r.div_ceil(u64::from(mbs)).max(1);
    let stages = s.stage_layers(ctx.cost.model().n_layers);
    let chunk = ctx.cfg.decode_chunk.max(1);

    let mut done = prefill_done;
    for d in 0..dp {
        let replica_gen_len = realized_gen_len;
        let n_chunks = replica_gen_len.div_ceil(chunk);
        // stage_end[s] = completion of that stage's previous chunk.
        let mut stage_end = vec![prefill_done; pp as usize];
        for c in 0..n_chunks {
            let steps = chunk.min(replica_gen_len - c * chunk);
            let past = prompt_len + c * chunk + steps / 2;
            let mut prev_stage_last = ready; // stage s-1's previous-chunk end
            for (stage_idx, range) in stages.iter().enumerate() {
                let stage = stage_idx as u32;
                let group: Vec<usize> = layout.tp_group(stage, d).to_vec();
                let layers = range.end - range.start;
                // One-chunk skew: stage s works on chunk c once it finished
                // chunk c-1 and stage s-1 finished chunk c-1.
                let stage_ready =
                    stage_end[stage_idx].max(if stage_idx == 0 { 0.0 } else { prev_stage_last });
                prev_stage_last = stage_end[stage_idx];

                let work = steps * u64::from(mbs);
                let mut compute =
                    (work * layers) as f64 * ctx.cost.layer_decode_time(batch_mb, past, tp, true);
                if stage == pp - 1 {
                    // Sampling head once per micro-batch per step.
                    compute += work as f64 * ctx.cost.head_time(batch_mb, tp, false);
                }
                let mut t = ctx.event(
                    &group,
                    stage_ready,
                    compute,
                    Category::Compute,
                    compute_label,
                );
                if !ctx.cfg.cuda_graph {
                    // Per-kernel launches plus the host decoding loop's
                    // per-step dispatch/synchronization, spread across the
                    // pipeline stages.
                    let launch = (work * layers * u64::from(KERNELS_PER_LAYER_FWD)) as f64
                        * ctx.cost.cluster().gpu.launch_overhead
                        + steps as f64 * ctx.cfg.host_decode_overhead / f64::from(pp);
                    t = ctx.event(&group, t, launch, Category::Launch, "kernel_launch");
                }
                let ar = (work * layers) as f64 * 2.0 * ar_dur(ctx, layout, &group, batch_mb);
                t = ctx.event(&group, t, ar, Category::TpComm, "tp_allreduce_decode");
                if stage < pp - 1 {
                    let src = Layout::leader(&group);
                    let dst = Layout::leader(layout.tp_group(stage + 1, d));
                    let dur = work as f64 * p2p_dur(ctx, layout, src, dst, batch_mb, tp);
                    t = ctx.p2p_event(src, dst, t, dur, Some("pp_p2p_decode"));
                }
                stage_end[stage_idx] = t;
            }
        }
        done = done.max(*stage_end.last().expect("pp >= 1"));
    }
    done
}

/// Speculative generation: the target prefills as usual, the draft prefills
/// the prompt on its own mesh, then draft/verify rounds replace the plain
/// decode loop. Profitability is decided ONCE per call with the exact
/// [`real_model::specdec`] comparison the estimator's pricing uses; when
/// speculation does not pay, the plain decode loop runs under the
/// `spec_fallback_decode` label instead.
///
/// Each round drafts `k` tokens on the draft mesh, verifies `k + 1`
/// positions in one target forward, and draws the number of accepted tokens
/// per position from the acceptance curve on the deterministic RNG — so the
/// virtual clock advances by however many rounds this seed actually needs.
/// Rounds are aggregated into trace spans of roughly
/// [`EngineConfig::decode_chunk`] drafted tokens (`spec_draft_decode` on the
/// draft mesh, `spec_verify_fwd` on the target mesh).
#[allow(clippy::too_many_arguments)]
fn generate_spec(
    ctx: &mut ExecCtx<'_>,
    a: &CallAssignment,
    layout: &Layout,
    batch: u64,
    prompt_len: u64,
    gen_len: u64,
    ready: f64,
    spec: &SpecExec<'_>,
) -> f64 {
    let s = a.strategy;
    let batch_mb = replica_batch(batch, a)
        .div_ceil(u64::from(s.micro_batches()))
        .max(1);
    let cfg = &spec.choice.config;

    // The estimator's decode shape, reproduced exactly so both layers make
    // the same profitability call.
    let shape = DecodeShape {
        batch: batch_mb,
        past_len: prompt_len + gen_len / 2,
        cuda_graph: true,
        within_node: a.tp_within_node(),
    };
    let tp_draft = spec.choice.assignment.strategy.tp();
    let plain = specdec::plain_step_time(ctx.cost, &shape, s.tp());
    let spec_step =
        specdec::spec_decode_step_time(ctx.cost, spec.draft_cost, cfg, &shape, s.tp(), tp_draft);
    let profitable = plain > 0.0 && spec_step < plain;

    let prefill_done = forward_pass(ctx, a, layout, batch, prompt_len, ready, Pass::Prefill);
    let realized_gen_len = realized_gen_len(ctx, gen_len);

    if !profitable {
        return decode_loop(
            ctx,
            a,
            layout,
            batch,
            prompt_len,
            realized_gen_len,
            prefill_done,
            ready,
            "spec_fallback_decode",
        );
    }

    let draft_gpus: Vec<usize> = spec
        .choice
        .assignment
        .mesh
        .gpus()
        .map(|g| g.0 as usize)
        .collect();
    let target_gpus: Vec<usize> = a.mesh.gpus().map(|g| g.0 as usize).collect();

    // Draft prefill on the draft mesh (the draft builds its KV cache before
    // it can draft), priced with the same analytic formula as the
    // estimator's `draft_prefill_secs`.
    let ds = &spec.choice.assignment.strategy;
    let d_mbs = u64::from(ds.micro_batches());
    let d_pp = u64::from(ds.pp());
    let d_batch_mb = batch.div_ceil(u64::from(ds.dp())).div_ceil(d_mbs).max(1);
    let d_tokens_mb = d_batch_mb * prompt_len;
    let d_stage_layers = ds.max_stage_layers(spec.draft_cost.model().n_layers) as f64;
    let d_within = spec.choice.assignment.tp_within_node();
    let d_prefill = (d_mbs + d_pp - 1) as f64
        * d_stage_layers
        * (spec
            .draft_cost
            .layer_fwd_time(d_tokens_mb, prompt_len / 2, ds.tp(), false)
            + 2.0
                * spec
                    .draft_cost
                    .tp_allreduce_time(d_tokens_mb, ds.tp(), d_within));
    let draft_ready = ctx.event(
        &draft_gpus,
        ready,
        d_prefill,
        Category::Compute,
        "spec_draft_prefill",
    );

    // Draft/verify rounds with per-round accepted-token accounting.
    let k = cfg.speculation_len;
    let draft_step = specdec::plain_step_time(spec.draft_cost, &shape, tp_draft);
    let verify = specdec::verify_fwd_time(ctx.cost, &shape, s.tp(), u64::from(k) + 1);
    let chunk = ctx.cfg.decode_chunk.max(1);

    let mut t = prefill_done.max(draft_ready);
    let mut produced = 0u64;
    let mut pending_rounds = 0u64;
    while produced < realized_gen_len {
        let mut accepted = 0u32;
        for i in 0..k {
            if ctx.rng.uniform() < cfg.acceptance_curve.rate_at(i) {
                accepted += 1;
            } else {
                break;
            }
        }
        produced += u64::from(accepted) + 1;
        pending_rounds += 1;
        if pending_rounds * u64::from(k) >= chunk || produced >= realized_gen_len {
            let draft_dur = (pending_rounds * u64::from(k)) as f64 * draft_step;
            let verify_dur = pending_rounds as f64 * verify;
            let drafted = ctx.event(
                &draft_gpus,
                t,
                draft_dur,
                Category::Compute,
                "spec_draft_decode",
            );
            t = ctx.event(
                &target_gpus,
                drafted,
                verify_dur,
                Category::Compute,
                "spec_verify_fwd",
            );
            pending_rounds = 0;
        }
    }
    t
}

/// Training: per PPO mini-batch, a GPipe forward+backward pipeline, then the
/// DP gradient all-reduce and the optimizer step (sequential updates, §2.1).
#[allow(clippy::too_many_arguments)]
fn train(
    ctx: &mut ExecCtx<'_>,
    a: &CallAssignment,
    layout: &Layout,
    batch: u64,
    seq_len: u64,
    n_minibatches: u32,
    ready: f64,
) -> f64 {
    let s = a.strategy;
    let (dp, tp, pp, mbs) = (s.dp(), s.tp(), s.pp(), s.micro_batches());
    let n_mini = u64::from(n_minibatches.max(1));
    let batch_r = replica_batch(batch, a);
    let batch_mb = batch_r.div_ceil(n_mini).div_ceil(u64::from(mbs)).max(1);
    let tokens_mb = batch_mb * seq_len;
    let stages = s.stage_layers(ctx.cost.model().n_layers);
    let world = s.world_size();
    let shard = real_model::MemoryModel::new(ctx.cost.model().clone()).params_per_gpu(&s);

    let mut done = ready;
    for d in 0..dp {
        let mut mini_done = ready;
        for _mini in 0..n_mini {
            // Forward sweep.
            let mut fwd_out = vec![mini_done; mbs as usize]; // last-stage completion per mb
            {
                let mut prev_arrive = vec![mini_done; pp as usize];
                for mb in 0..mbs {
                    let mut arrive = mini_done;
                    for (stage_idx, range) in stages.iter().enumerate() {
                        let stage = stage_idx as u32;
                        let group: Vec<usize> = layout.tp_group(stage, d).to_vec();
                        let layers = range.end - range.start;
                        let stage_ready = arrive.max(prev_arrive[stage_idx]);
                        let mut t = stage_ready;
                        let mut compute = layers as f64
                            * ctx.cost.layer_fwd_time(tokens_mb, seq_len / 2, tp, true);
                        if stage == 0 {
                            compute += ctx.cost.embed_time(tokens_mb, tp);
                        }
                        if stage == pp - 1 {
                            compute += ctx.cost.head_time(tokens_mb, tp, false);
                        }
                        if ctx.zero3 {
                            let gather = layers as f64
                                * ctx.cost.zero3_allgather_time(world, a.mesh.n_nodes() == 1);
                            let excess = (gather - compute).max(gather * ZERO3_GATHER_FLOOR);
                            t = ctx.event(&group, t, excess, Category::DpComm, "zero3_allgather");
                        }
                        t = ctx.event(&group, t, compute, Category::Compute, "layer_fwd");
                        let ar = layers as f64 * 2.0 * ar_dur(ctx, layout, &group, tokens_mb);
                        t = ctx.event(&group, t, ar, Category::TpComm, "tp_allreduce");
                        prev_arrive[stage_idx] = t;
                        if stage < pp - 1 {
                            let src = Layout::leader(&group);
                            let dst = Layout::leader(layout.tp_group(stage + 1, d));
                            let dur = p2p_dur(ctx, layout, src, dst, tokens_mb, tp);
                            arrive = ctx.p2p_event(src, dst, t, dur, None);
                        } else {
                            fwd_out[mb as usize] = t;
                        }
                    }
                }
            }
            // Backward sweep (reverse stage order).
            let mut last_update_ready = mini_done;
            {
                let mut prev_arrive = vec![mini_done; pp as usize];
                for mb in 0..mbs {
                    let mut arrive = fwd_out[mb as usize];
                    for stage_idx in (0..pp as usize).rev() {
                        let stage = stage_idx as u32;
                        let range = &stages[stage_idx];
                        let group: Vec<usize> = layout.tp_group(stage, d).to_vec();
                        let layers = range.end - range.start;
                        let stage_ready = arrive.max(prev_arrive[stage_idx]);
                        let mut t = stage_ready;
                        let mut compute =
                            layers as f64 * ctx.cost.layer_bwd_time(tokens_mb, seq_len / 2, tp);
                        if stage == pp - 1 {
                            // Head backward (2x its forward cost).
                            compute += 2.0 * ctx.cost.head_time(tokens_mb, tp, false);
                        }
                        if ctx.zero3 {
                            let gather = layers as f64
                                * (ctx.cost.zero3_allgather_time(world, a.mesh.n_nodes() == 1)
                                    + ctx
                                        .cost
                                        .zero3_reduce_scatter_time(world, a.mesh.n_nodes() == 1));
                            let excess = (gather - compute).max(gather * ZERO3_GATHER_FLOOR);
                            t = ctx.event(&group, t, excess, Category::DpComm, "zero3_bwd");
                        }
                        t = ctx.event(&group, t, compute, Category::Compute, "layer_bwd");
                        let ar = layers as f64 * 2.0 * ar_dur(ctx, layout, &group, tokens_mb);
                        t = ctx.event(&group, t, ar, Category::TpComm, "tp_allreduce_bwd");
                        prev_arrive[stage_idx] = t;
                        if stage > 0 {
                            let src = Layout::leader(&group);
                            let dst = Layout::leader(layout.tp_group(stage - 1, d));
                            let dur = p2p_dur(ctx, layout, src, dst, tokens_mb, tp);
                            arrive = ctx.p2p_event(src, dst, t, dur, None);
                        } else {
                            last_update_ready = last_update_ready.max(t);
                        }
                        last_update_ready = last_update_ready.max(t);
                    }
                }
            }
            mini_done = last_update_ready;
        }
        done = done.max(mini_done);
    }

    // Gradient synchronization + optimizer once per mini-batch; since the
    // per-replica loops above already serialize mini-batches, charging the
    // sync/update n_mini times at the end is duration-equivalent and keeps
    // the event count linear.
    let mut final_end = done;
    for _ in 0..n_mini {
        let mut sync_end = final_end;
        if dp > 1 && !ctx.zero3 {
            for stage in 0..pp {
                for t_rank in 0..tp {
                    let group: Vec<usize> = layout.dp_group(stage, t_rank).to_vec();
                    let dur =
                        ctx.comm
                            .all_reduce(shard as f64 * 4.0, dp, layout.within_node(&group));
                    let e = ctx.event(&group, final_end, dur, Category::DpComm, "grad_allreduce");
                    sync_end = sync_end.max(e);
                }
            }
        }
        // Optimizer step on every GPU of the mesh.
        let optim = ctx.cost.optim_step_time(shard);
        let mut opt_end = sync_end;
        for d in 0..dp {
            for stage in 0..pp {
                let group: Vec<usize> = layout.tp_group(stage, d).to_vec();
                let e = ctx.event(&group, sync_end, optim, Category::Compute, "adam_step");
                opt_end = opt_end.max(e);
            }
        }
        final_end = opt_end;
    }
    final_end
}

#[cfg(test)]
mod tests {
    use super::*;
    use real_cluster::{ClusterSpec, DeviceMesh};
    use real_model::{ModelSpec, ParallelStrategy};

    #[allow(clippy::too_many_arguments)]
    fn run_call(
        cluster: &ClusterSpec,
        model: &ModelSpec,
        dp: u32,
        tp: u32,
        pp: u32,
        mbs: u32,
        call: CallType,
        cuda_graph: bool,
    ) -> (f64, Timelines) {
        let cost = CostModel::new(cluster.clone(), model.clone());
        let comm = CommModel::new(cluster);
        let mut tl = Timelines::new(cluster.total_gpus() as usize);
        let mut trace = Trace::disabled();
        let mut rng = DeterministicRng::from_seed(7);
        let cfg = EngineConfig {
            cuda_graph,
            ..EngineConfig::deterministic()
        };
        let a = CallAssignment::new(
            DeviceMesh::full(cluster),
            ParallelStrategy::new(dp, tp, pp, mbs).unwrap(),
        )
        .unwrap();
        let mut ctx = ExecCtx {
            cost: &cost,
            comm: &comm,
            tl: &mut tl,
            trace: &mut trace,
            rng: &mut rng,
            cfg: &cfg,
            zero3: false,
            faults: None,
        };
        let end = execute_call(&mut ctx, &a, call, 0.0);
        (end, tl)
    }

    #[test]
    fn inference_busy_matches_duration_roughly() {
        let cluster = ClusterSpec::h100(1);
        let call = CallType::Inference {
            batch: 32,
            seq_len: 1024,
        };
        let (end, tl) = run_call(&cluster, &ModelSpec::llama3_7b(), 1, 8, 1, 4, call, true);
        assert!(end > 0.0);
        // All 8 GPUs work in lockstep (tp=8, pp=1): idle should be tiny.
        assert!(
            tl.idle_total() < 0.05 * end * 8.0,
            "idle {}",
            tl.idle_total()
        );
    }

    #[test]
    fn decode_dominates_generation_time() {
        let cluster = ClusterSpec::h100(1);
        let model = ModelSpec::llama3_7b();
        let gen = CallType::Generate {
            batch: 32,
            prompt_len: 1024,
            gen_len: 1024,
        };
        let inf = CallType::Inference {
            batch: 32,
            seq_len: 1024,
        };
        let (gen_end, _) = run_call(&cluster, &model, 1, 8, 1, 4, gen, true);
        let (inf_end, _) = run_call(&cluster, &model, 1, 8, 1, 4, inf, true);
        assert!(gen_end > 5.0 * inf_end, "gen {gen_end} inf {inf_end}");
    }

    #[test]
    fn cuda_graph_speeds_up_decoding() {
        let cluster = ClusterSpec::h100(1);
        let model = ModelSpec::llama3_7b();
        let gen = CallType::Generate {
            batch: 32,
            prompt_len: 512,
            gen_len: 512,
        };
        let (with, tl_with) = run_call(&cluster, &model, 1, 8, 1, 4, gen, true);
        let (without, tl_without) = run_call(&cluster, &model, 1, 8, 1, 4, gen, false);
        assert!(without > 1.2 * with, "with {with} without {without}");
        // Launch overhead shows up as its own category only when ungraphed.
        assert_eq!(
            tl_with
                .totals()
                .iter()
                .find(|(c, _)| *c == Category::Launch)
                .unwrap()
                .1,
            0.0
        );
        assert!(tl_without.busy(0, Category::Launch) > 0.0);
    }

    #[test]
    fn training_records_tp_and_dp_comm() {
        let cluster = ClusterSpec::h100(1);
        let call = CallType::TrainStep {
            batch: 64,
            seq_len: 512,
            n_minibatches: 2,
        };
        let (_, tl) = run_call(&cluster, &ModelSpec::llama3_7b(), 2, 4, 1, 2, call, true);
        assert!(tl.busy(0, Category::TpComm) > 0.0);
        assert!(tl.busy(0, Category::DpComm) > 0.0);
        assert!(tl.busy(0, Category::Compute) > tl.busy(0, Category::TpComm));
    }

    #[test]
    fn pipeline_uses_pp_comm() {
        let cluster = ClusterSpec::h100(1);
        let call = CallType::TrainStep {
            batch: 32,
            seq_len: 512,
            n_minibatches: 1,
        };
        let (_, tl) = run_call(&cluster, &ModelSpec::llama3_7b(), 1, 4, 2, 4, call, true);
        let pp_comm: f64 = (0..8).map(|g| tl.busy(g, Category::PpComm)).sum();
        assert!(pp_comm > 0.0);
    }

    #[test]
    fn more_microbatches_reduce_pipeline_bubbles() {
        let cluster = ClusterSpec::h100(1);
        let model = ModelSpec::llama3_7b();
        let call = CallType::TrainStep {
            batch: 64,
            seq_len: 1024,
            n_minibatches: 1,
        };
        let (few, _) = run_call(&cluster, &model, 1, 1, 8, 1, call, true);
        let (many, _) = run_call(&cluster, &model, 1, 1, 8, 8, call, true);
        assert!(many < few, "mbs=8 {many} should beat mbs=1 {few}");
    }

    #[test]
    fn dp_replicas_run_concurrently() {
        let cluster = ClusterSpec::h100(1);
        let model = ModelSpec::llama3_7b();
        let inf = CallType::Inference {
            batch: 64,
            seq_len: 512,
        };
        // Same total work split over more replicas: wall time drops.
        let (one, _) = run_call(&cluster, &model, 1, 8, 1, 2, inf, true);
        let (two, _) = run_call(&cluster, &model, 2, 4, 1, 2, inf, true);
        // tp=4 halves per-GPU sharding but dp=2 halves the per-replica
        // batch; the result should be in the same ballpark, definitely not
        // 2x worse (replicas must overlap).
        assert!(two < 1.5 * one, "one {one} two {two}");
    }

    #[test]
    fn generation_length_skew_only_shortens() {
        let cluster = ClusterSpec::h100(1);
        let model = ModelSpec::llama3_7b();
        let gen = CallType::Generate {
            batch: 64,
            prompt_len: 512,
            gen_len: 512,
        };
        let fixed = {
            let (t, _) = run_call(&cluster, &model, 4, 2, 1, 1, gen, true);
            t
        };
        // Re-run with skew through a custom config.
        let cost = CostModel::new(cluster.clone(), model.clone());
        let comm = CommModel::new(&cluster);
        let mut tl = Timelines::new(8);
        let mut trace = Trace::disabled();
        let mut rng = DeterministicRng::from_seed(7);
        let cfg = EngineConfig {
            gen_len_cv: 0.8,
            ..EngineConfig::deterministic()
        };
        let a = CallAssignment::new(
            DeviceMesh::full(&cluster),
            ParallelStrategy::new(4, 2, 1, 1).unwrap(),
        )
        .unwrap();
        let mut ctx = ExecCtx {
            cost: &cost,
            comm: &comm,
            tl: &mut tl,
            trace: &mut trace,
            rng: &mut rng,
            cfg: &cfg,
            zero3: false,
            faults: None,
        };
        let skewed = execute_call(&mut ctx, &a, gen, 0.0);
        // Drift changes the realized duration; the log-normal factor is
        // clamped to [1/4, 4], which bounds the excursion.
        assert!(
            skewed >= fixed * 0.2 && skewed <= fixed * 4.5,
            "skewed {skewed} fixed {fixed}"
        );
        assert!(
            (skewed - fixed).abs() / fixed > 0.01,
            "drift should be visible"
        );
    }

    #[test]
    fn scalar_head_cheaper_than_lm_head_end_to_end() {
        let cluster = ClusterSpec::h100(1);
        let inf = CallType::Inference {
            batch: 64,
            seq_len: 2048,
        };
        let (actor, _) = run_call(&cluster, &ModelSpec::llama3_7b(), 1, 8, 1, 4, inf, true);
        let (critic, _) = run_call(
            &cluster,
            &ModelSpec::llama3_7b().critic(),
            1,
            8,
            1,
            4,
            inf,
            true,
        );
        assert!(critic < actor);
        // Sanity: both heads exist in the models.
        assert_eq!(
            ModelSpec::llama3_7b().head,
            real_model::spec::HeadKind::LmHead
        );
    }
}
