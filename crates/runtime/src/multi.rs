//! The multi-tenant master loop: several experiments, one virtual cluster.
//!
//! [`run_multi`] interleaves N tenant workloads on one shared set of GPU
//! timelines, round-robin by RLHF iteration. Each tenant brings its own
//! dataflow graph, execution plan, engine config, and (optionally) fault
//! plan; the scheduler layer (`real-sched`) is responsible for picking the
//! per-tenant allocations, this module only executes them.
//!
//! # Fault domains
//!
//! Tenant isolation is structural, not policed:
//!
//! - every random draw a tenant makes comes from its own substream, seeded
//!   from `(seed, tenant id)` via the `real-util` stream API — adding or
//!   removing a co-tenant cannot shift another tenant's stream,
//! - a tenant's fault clock is compiled from its own [`real_sim::FaultPlan`]
//!   and consulted only while that tenant executes, so a crash in tenant
//!   A's mesh stretches and retries only A's events,
//! - traces, master logs, fault statistics, and reports are per-tenant.
//!
//! With pairwise-disjoint allocations the tenants never touch the same
//! timeline entries, so each tenant's report is byte-identical to the same
//! tenant running alone (test-enforced). Overlapping allocations
//! (oversubscription) are legal: the shared FIFO timelines serialize the
//! contending work, which is exactly the time-sharing semantics the
//! scheduler falls back to — nothing can deadlock because no event ever
//! waits on a future one.
//!
//! # Elastic rebalancing
//!
//! When a tenant finishes, its GPUs join a free pool that is offered to the
//! highest-stretch surviving tenant that opted in ([`TenantRun::elastic`]).
//! The offer goes through the same gate as mid-run re-planning: warm-started
//! MCMC over the §4 meshes inside the grown holdings, an estimated-speedup
//! gate, a reallocation prologue executed under snapshot-rollback, and a
//! measured cost/benefit gate — a rejected offer leaves the tenant
//! bit-exactly where it was.

use crate::config::EngineConfig;
use crate::exec::{execute_call_spec, spec_exec_for, ExecCtx};
use crate::master::{RunError, RuntimeEngine};
use crate::memcheck;
use crate::realloc::execute_realloc;
use crate::replan::{ReplanEvent, ReplanOutcome, ReplanPolicy, ReplanReason, ReplanStats};
use crate::report::{AsyncStats, CallTiming, FaultStats, RunReport};
use crate::workers::{MasterLog, Request, Response};
use real_cluster::{partition, ClusterSpec, CommModel, GpuId};
use real_dataflow::{CallAssignment, CallId, DataflowGraph, ExecutionPlan};
use real_estimator::{maxmem, Estimator};
use real_model::CostModel;
use real_search::{compare, search_warm, McmcConfig, SearchSpace};
use real_sim::{Category, FaultClock, Timelines, Trace};
use real_util::DeterministicRng;
use std::collections::HashMap;
use std::time::Duration;

/// Elastic-rebalancing opt-in for one tenant: the re-plan gate parameters
/// and the §5 estimator (for the tenant's graph on the shared cluster) that
/// prices candidate plans when freed GPUs are offered.
#[derive(Debug, Clone)]
pub struct TenantElastic {
    /// Gate parameters (search budget, speedup/benefit thresholds) — the
    /// same knobs as mid-run re-planning.
    pub policy: ReplanPolicy,
    /// Estimator for this tenant's graph, built on the shared cluster.
    pub estimator: Estimator,
}

/// One tenant workload admitted to [`run_multi`].
#[derive(Debug, Clone)]
pub struct TenantRun {
    /// Stable tenant identity; seeds the tenant's RNG substream, so it must
    /// not depend on the tenant's position in the list.
    pub id: u64,
    /// Display name used in reports and traces.
    pub name: String,
    /// The tenant's dataflow graph.
    pub graph: DataflowGraph,
    /// The tenant's execution plan (all meshes inside its allocation).
    pub plan: ExecutionPlan,
    /// Engine configuration (jitter, fault plan, retry policy, …). The
    /// `seed` field is ignored: tenant streams derive from the `run_multi`
    /// seed and the tenant id.
    pub config: EngineConfig,
    /// RLHF iterations to run.
    pub iterations: usize,
    /// The GPUs this tenant owns (its allocation's GPU set).
    pub allocation: Vec<GpuId>,
    /// Estimated solo (full-cluster or uncontended) step seconds, used to
    /// rank tenants by stretch when offering freed capacity. `0.0` disables
    /// the stretch ranking for this tenant.
    pub solo_step_secs: f64,
    /// Elastic-rebalancing opt-in; `None` keeps the tenant's plan and
    /// holdings fixed for the whole run.
    pub elastic: Option<TenantElastic>,
}

/// Per-GPU per-category busy seconds, captured before a tenant's turn.
fn busy_snapshot(tl: &Timelines) -> Vec<Vec<f64>> {
    (0..tl.len())
        .map(|g| Category::ALL.iter().map(|&c| tl.busy(g, c)).collect())
        .collect()
}

/// Adds the per-GPU busy deltas since `before` to the tenant's category
/// accumulators. Untouched GPUs contribute exact zeros, so a tenant's
/// totals are bitwise independent of co-tenant activity on other GPUs.
fn accumulate_busy(state: &mut TenantState, tl: &Timelines, before: &[Vec<f64>]) {
    for (g, row) in before.iter().enumerate() {
        for (k, &b) in row.iter().enumerate() {
            state.totals_acc[k] += tl.busy(g, Category::ALL[k]) - b;
        }
    }
}

/// Per-tenant live state of the multi-tenant loop.
struct TenantState {
    id: u64,
    engine: RuntimeEngine,
    costs: HashMap<String, CostModel>,
    draft_costs: HashMap<String, CostModel>,
    clock: Option<FaultClock>,
    rng: DeterministicRng,
    trace: Trace,
    master_log: MasterLog,
    fault_stats: FaultStats,
    replan_stats: ReplanStats,
    topo: Vec<CallId>,
    completion: Vec<Vec<f64>>,
    timings: Vec<CallTiming>,
    iter_end: Vec<f64>,
    param_layout: HashMap<String, (CallAssignment, f64)>,
    predicted: HashMap<String, f64>,
    current: ExecutionPlan,
    owned: Vec<GpuId>,
    totals_acc: Vec<f64>,
    mem_peak: u64,
    static_util: f64,
    iterations: usize,
    solo_step_secs: f64,
    elastic: Option<TenantElastic>,
    done: bool,
    total_time: f64,
}

impl TenantState {
    /// Mean measured step seconds over the iterations completed so far
    /// (boundary-to-boundary past the first iteration, matching
    /// [`crate::RunReport::iter_time`]).
    fn measured_step(&self, last_iter: usize) -> f64 {
        if last_iter == 0 {
            self.iter_end[0]
        } else {
            (self.iter_end[last_iter] - self.iter_end[0]) / last_iter as f64
        }
    }

    /// Observed stretch: measured step time over the solo estimate; `1.0`
    /// when no solo estimate was supplied.
    fn stretch(&self, last_iter: usize) -> f64 {
        if self.solo_step_secs > 0.0 {
            self.measured_step(last_iter) / self.solo_step_secs
        } else {
            1.0
        }
    }

    /// Executes one RLHF iteration of this tenant on the shared timelines.
    /// Mirrors the inner loop of [`RuntimeEngine::run`], with the live
    /// parameter-layout map from `run_replan` so the plan may switch
    /// between iterations (elastic growth).
    fn exec_iteration(&mut self, tl: &mut Timelines, comm: &CommModel, iter: usize) {
        let jitter = self.engine.config().jitter_sigma;
        let rpc = self.engine.config().rpc_latency;
        let mut executed: Vec<Option<CallAssignment>> = vec![None; self.engine.graph().n_calls()];
        for pos in 0..self.topo.len() {
            let call = self.topo[pos];
            let graph = self.engine.graph();
            let def = graph.call(call);
            let a = *self.current.assignment(call);
            let zero3 = self.engine.config().zero3_models.contains(&def.model_name);

            // Data-dependency readiness (+ transfer when layouts differ).
            let mut ready: f64 = 0.0;
            for &dep in graph.deps(call) {
                let dep_done = self.completion[iter][dep.0];
                let b = executed[dep.0].expect("deps precede in topo order");
                let end = if a.mesh == b.mesh && a.strategy == b.strategy {
                    dep_done
                } else {
                    let bytes = graph.call(dep).call_type.total_tokens() as f64 * 8.0;
                    let per_src = bytes / f64::from(b.strategy.dp());
                    let within = a.mesh.n_nodes() == 1
                        && b.mesh.n_nodes() == 1
                        && a.mesh.node_start() == b.mesh.node_start();
                    let mut dur =
                        comm.broadcast(per_src, 2, within) * self.rng.lognormal_factor(jitter);
                    let gpus: Vec<usize> = a.mesh.gpus().map(|g| g.0 as usize).collect();
                    if let Some(clock) = self.clock.as_ref() {
                        let start = gpus
                            .iter()
                            .map(|&g| tl.gpu(g).busy_until())
                            .fold(dep_done, f64::max);
                        dur = clock.stretched(&gpus, start, dur, true);
                    }
                    tl.collective(&gpus, dep_done, dur, Category::Transfer)
                };
                ready = ready.max(end);
            }

            // Parameter availability from the live layout map.
            if let Some((pa, pdone)) = self.param_layout.get(&def.model_name).copied() {
                let end = execute_realloc(
                    tl,
                    &mut self.trace,
                    comm,
                    &def.model,
                    &pa,
                    &a,
                    pdone,
                    &mut self.rng,
                    jitter,
                    self.clock.as_ref(),
                );
                ready = ready.max(end);
            }

            let ready = ready + rpc;
            self.master_log.requests.push(Request {
                call,
                handle: def.call_name.clone(),
                iter,
                dispatch_time: ready,
                data_locations: MasterLog::data_locations(graph, &self.current, call),
                worker_count: a.mesh.n_gpus(),
            });

            let spec_exec = spec_exec_for(&self.current, call, &self.draft_costs);
            let end = if let Some(clock) = self.clock.as_ref() {
                self.engine.dispatch_resilient(
                    clock,
                    &self.costs[&def.model.name],
                    comm,
                    tl,
                    &mut self.trace,
                    &mut self.rng,
                    zero3,
                    &a,
                    def.call_type,
                    &def.call_name,
                    self.predicted.get(def.call_name.as_str()).copied(),
                    ready,
                    iter,
                    &mut self.fault_stats,
                    spec_exec.as_ref(),
                )
            } else {
                let mut ctx = ExecCtx {
                    cost: &self.costs[&def.model.name],
                    comm,
                    tl,
                    trace: &mut self.trace,
                    rng: &mut self.rng,
                    cfg: self.engine.config(),
                    zero3,
                    faults: None,
                };
                execute_call_spec(&mut ctx, &a, def.call_type, ready, spec_exec.as_ref())
            };
            self.master_log.responses.push(Response {
                call,
                iter,
                completed_at: end,
            });
            executed[call.0] = Some(a);
            self.param_layout
                .insert(self.engine.graph().call(call).model_name.clone(), (a, end));
            self.completion[iter][call.0] = end;
            self.iter_end[iter] = self.iter_end[iter].max(end);
            self.timings.push(CallTiming {
                call_name: self.engine.graph().call(call).call_name.clone(),
                iter,
                start: ready,
                end,
            });
        }
    }

    /// Offers `pool` (freed GPUs) to this tenant through the re-plan gate.
    /// Returns `true` when the tenant committed to a grown plan (holdings
    /// extended by the pool); every other outcome rolls back bit-exactly.
    fn try_grow(
        &mut self,
        tl: &mut Timelines,
        comm: &CommModel,
        cluster: &ClusterSpec,
        pool: &[GpuId],
        seed: u64,
        iter: usize,
    ) -> bool {
        let Some(el) = self.elastic.clone() else {
            return false;
        };
        if self.replan_stats.switches >= el.policy.max_replans {
            return false;
        }
        let now = self.iter_end[iter];
        let remaining = (self.iterations - (iter + 1)) as f64;
        let reason = ReplanReason::FreedCapacity {
            gpus: pool.len() as u32,
        };
        self.replan_stats.evaluations += 1;
        let record = |stats: &mut ReplanStats, outcome: ReplanOutcome| {
            stats.events.push(ReplanEvent {
                at: now,
                iter,
                reason,
                outcome,
            });
        };

        let mut owned_grown: Vec<GpuId> = self.owned.iter().chain(pool).copied().collect();
        owned_grown.sort_unstable();
        owned_grown.dedup();
        let meshes = partition::meshes_within_gpus(cluster, &owned_grown);
        let space =
            match SearchSpace::try_build_on(cluster, self.engine.graph(), el.policy.prune, &meshes)
            {
                Ok(space) => space,
                Err(_) => {
                    self.replan_stats.no_plan += 1;
                    record(&mut self.replan_stats, ReplanOutcome::NoSurvivingPlan);
                    return false;
                }
            };
        let mut seed_rng = DeterministicRng::from_seed(seed)
            .derive("tenant")
            .derive_index(self.id)
            .derive("rebalance")
            .derive_index(self.replan_stats.evaluations);
        let cfg = McmcConfig {
            beta: el.policy.beta,
            max_steps: el.policy.search_steps,
            // Effectively unlimited: a wall-clock cutoff would break
            // replayability; the step budget bounds the search.
            time_limit: Duration::from_secs(86_400),
            seed: seed_rng.next_u64(),
            record_trace: false,
            memo: true,
        };
        let result = search_warm(&el.estimator, &space, &cfg, &self.current);
        let candidate = result.best_plan;

        let config = self.engine.config();
        let cand_peak = memcheck::max_mem(
            cluster,
            self.engine.graph(),
            &candidate,
            &config.zero3_models,
            &config.dist_optim_models,
        );
        if !config.skip_mem_check && cand_peak > cluster.gpu.mem_capacity {
            self.replan_stats.no_plan += 1;
            record(&mut self.replan_stats, ReplanOutcome::NoSurvivingPlan);
            return false;
        }

        let comparison = compare(&el.estimator, &self.current, &candidate);
        let (base_time, target_time) = (comparison.base_time, comparison.target_time);
        if target_time >= base_time || base_time / target_time < el.policy.min_speedup {
            self.replan_stats.gate_rejections += 1;
            record(
                &mut self.replan_stats,
                ReplanOutcome::GateRejected {
                    base_time,
                    target_time,
                    switch_secs: 0.0,
                },
            );
            return false;
        }

        // Reallocation prologue under snapshot-rollback: move every held
        // model's parameters to the candidate layout.
        let jitter = self.engine.config().jitter_sigma;
        let tl_snap = tl.clone();
        let rng_snap = self.rng.clone();
        let cp = self.trace.checkpoint();
        let mut prologue_end = now;
        let mut participants: Vec<usize> = Vec::new();
        let mut moved: Vec<(String, CallAssignment)> = Vec::new();
        for pos in 0..self.topo.len() {
            let call = self.topo[pos];
            let graph = self.engine.graph();
            let def = graph.call(call);
            if moved.iter().any(|(m, _)| *m == def.model_name) {
                continue;
            }
            let Some((pa, pdone)) = self.param_layout.get(&def.model_name).copied() else {
                continue;
            };
            let ta = *candidate.assignment(call);
            if pa == ta {
                continue;
            }
            let end = execute_realloc(
                tl,
                &mut self.trace,
                comm,
                &def.model,
                &pa,
                &ta,
                pdone.max(now),
                &mut self.rng,
                jitter,
                self.clock.as_ref(),
            );
            prologue_end = prologue_end.max(end);
            participants.extend(pa.mesh.gpus().map(|g| g.0 as usize));
            participants.extend(ta.mesh.gpus().map(|g| g.0 as usize));
            moved.push((def.model_name.clone(), ta));
        }
        participants.sort_unstable();
        participants.dedup();
        let switch_secs = prologue_end - now;

        // Abort only on a fresh crash among participants that were up when
        // the prologue started (same rule as mid-run re-planning).
        if let Some(clock) = self.clock.as_ref() {
            let live: Vec<usize> = participants
                .iter()
                .copied()
                .filter(|&g| clock.available_from(&[g], now) <= now)
                .collect();
            if let Some((gpu, at)) = clock.first_crash(&live, now, prologue_end) {
                *tl = tl_snap;
                self.rng = rng_snap;
                self.trace.rewind(cp);
                self.replan_stats.aborted_switches += 1;
                record(
                    &mut self.replan_stats,
                    ReplanOutcome::SwitchFaulted {
                        gpu: gpu as u32,
                        at,
                    },
                );
                return false;
            }
        }

        // Cost/benefit gate on the measured switch cost.
        if (base_time - target_time) * remaining <= el.policy.min_benefit_ratio * switch_secs {
            *tl = tl_snap;
            self.rng = rng_snap;
            self.trace.rewind(cp);
            self.replan_stats.gate_rejections += 1;
            record(
                &mut self.replan_stats,
                ReplanOutcome::GateRejected {
                    base_time,
                    target_time,
                    switch_secs,
                },
            );
            return false;
        }

        // Commit: adopt the moved layouts, refresh deadline predictions,
        // and extend the holdings.
        for (model, ta) in moved {
            self.param_layout.insert(model, (ta, prologue_end));
        }
        for pos in 0..self.topo.len() {
            let call = self.topo[pos];
            let name = self.engine.graph().call(call).call_name.clone();
            self.predicted.insert(
                name,
                el.estimator.call_duration(call, candidate.assignment(call)),
            );
        }
        let n_diffs = comparison.diffs.len();
        self.owned = owned_grown;
        self.current = candidate;
        self.replan_stats.switches += 1;
        self.replan_stats.switch_seconds += switch_secs;
        record(
            &mut self.replan_stats,
            ReplanOutcome::Switched {
                base_time,
                target_time,
                switch_secs,
                n_diffs,
            },
        );
        true
    }
}

/// Executes several tenant workloads on one shared virtual cluster,
/// round-robin by RLHF iteration in list order, and returns one
/// [`RunReport`] per tenant (same order as `tenants`).
///
/// See the module docs for the isolation and rebalancing semantics. The
/// `seed` parameter seeds every tenant's substream together with the
/// tenant's [`TenantRun::id`]; tenant configs' own `seed` fields are
/// ignored.
///
/// # Errors
///
/// Returns [`RunError::OutOfMemory`] when any tenant's initial plan does
/// not fit device memory (unless that tenant's config sets
/// `skip_mem_check`). Candidate plans produced by elastic growth are
/// memory-checked during evaluation instead.
///
/// # Panics
///
/// Panics if `tenants` is empty, any tenant has zero iterations, or any
/// plan references GPUs outside `cluster`.
pub fn run_multi(
    cluster: &ClusterSpec,
    tenants: &[TenantRun],
    seed: u64,
) -> Result<Vec<RunReport>, RunError> {
    assert!(!tenants.is_empty(), "must admit at least one tenant");
    let n_gpus = cluster.total_gpus() as usize;
    let mut states: Vec<TenantState> = Vec::with_capacity(tenants.len());
    for t in tenants {
        assert!(t.iterations > 0, "tenant {} has zero iterations", t.name);
        let peak = memcheck::max_mem(
            cluster,
            &t.graph,
            &t.plan,
            &t.config.zero3_models,
            &t.config.dist_optim_models,
        );
        if !t.config.skip_mem_check && peak > cluster.gpu.mem_capacity {
            return Err(RunError::OutOfMemory {
                peak,
                capacity: cluster.gpu.mem_capacity,
            });
        }
        let mut costs: HashMap<String, CostModel> = HashMap::new();
        for call in t.graph.calls() {
            costs
                .entry(call.model.name.clone())
                .or_insert_with(|| CostModel::new(cluster.clone(), call.model.clone()));
        }
        let draft_costs = crate::exec::draft_cost_models(cluster, &t.plan);
        let clock = t
            .config
            .fault_plan
            .as_ref()
            .map(|p| FaultClock::new(p, n_gpus, cluster.gpus_per_node as usize));
        let mut fault_stats = FaultStats::default();
        if let Some(clock) = clock.as_ref() {
            fault_stats.injected = clock.n_windows();
        }
        let trace = if t.config.trace_capacity > 0 {
            Trace::with_capacity(t.config.trace_capacity)
        } else {
            Trace::disabled()
        };
        let topo = t.graph.topo_order().expect("validated graphs are acyclic");
        states.push(TenantState {
            id: t.id,
            engine: RuntimeEngine::new(cluster.clone(), t.graph.clone(), t.config.clone()),
            costs,
            draft_costs,
            clock,
            rng: DeterministicRng::from_seed(seed)
                .derive("tenant")
                .derive_index(t.id)
                .derive("runtime"),
            trace,
            master_log: MasterLog::default(),
            fault_stats,
            replan_stats: ReplanStats::default(),
            topo,
            completion: vec![vec![0.0; t.graph.n_calls()]; t.iterations],
            timings: Vec::new(),
            iter_end: vec![0.0; t.iterations],
            param_layout: HashMap::new(),
            predicted: t.config.predicted_secs.iter().cloned().collect(),
            current: t.plan.clone(),
            owned: t.allocation.clone(),
            totals_acc: vec![0.0; Category::ALL.len()],
            mem_peak: peak,
            static_util: maxmem::static_utilization(cluster, &t.graph, &t.plan),
            iterations: t.iterations,
            solo_step_secs: t.solo_step_secs,
            elastic: t.elastic.clone(),
            done: false,
            total_time: 0.0,
        });
    }

    let comm = CommModel::new(cluster);
    let mut tl = Timelines::new(n_gpus);
    let max_iters = tenants
        .iter()
        .map(|t| t.iterations)
        .max()
        .expect("non-empty");
    // The pool last offered (and declined or absorbed); offers repeat only
    // when the free set changes, so gate rejections don't re-search every
    // round.
    let mut last_offered: Vec<GpuId> = Vec::new();

    for iter in 0..max_iters {
        for state in states.iter_mut() {
            if state.done {
                continue;
            }
            let before = busy_snapshot(&tl);
            state.exec_iteration(&mut tl, &comm, iter);
            accumulate_busy(state, &tl, &before);
            if iter + 1 == state.iterations {
                state.done = true;
                state.total_time = state
                    .owned
                    .iter()
                    .map(|g| tl.gpu(g.0 as usize).busy_until())
                    .fold(0.0, f64::max);
            }
        }

        // Offer freed GPUs (owned by no running tenant) to the
        // highest-stretch surviving tenant that opted into elastic growth.
        loop {
            let mut free = vec![true; n_gpus];
            for state in states.iter().filter(|s| !s.done) {
                for g in &state.owned {
                    if let Some(slot) = free.get_mut(g.0 as usize) {
                        *slot = false;
                    }
                }
            }
            let pool: Vec<GpuId> = (0..n_gpus as u32)
                .map(GpuId)
                .filter(|g| free[g.0 as usize])
                .collect();
            if pool.is_empty() || pool == last_offered {
                break;
            }
            let target = states
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.done && s.elastic.is_some() && iter + 1 < s.iterations)
                .max_by(|(_, a), (_, b)| {
                    a.stretch(iter)
                        .partial_cmp(&b.stretch(iter))
                        .expect("stretch values are finite")
                })
                .map(|(i, _)| i);
            last_offered = pool.clone();
            let Some(i) = target else {
                break;
            };
            let before = busy_snapshot(&tl);
            let grew = states[i].try_grow(&mut tl, &comm, cluster, &pool, seed, iter);
            accumulate_busy(&mut states[i], &tl, &before);
            if !grew {
                break;
            }
            // Committed: the pool was absorbed; re-derive in case nothing
            // is left (loop exits on the empty pool).
        }
    }

    Ok(states
        .into_iter()
        .map(|s| {
            let busy: f64 = s.totals_acc.iter().sum();
            let iter_time = if s.iterations > 1 {
                (s.iter_end[s.iterations - 1] - s.iter_end[0]) / (s.iterations - 1) as f64
            } else {
                s.iter_end[0]
            };
            RunReport {
                iterations: s.iterations,
                total_time: s.total_time,
                iter_time,
                timings: s.timings,
                category_totals: Category::ALL
                    .iter()
                    .zip(&s.totals_acc)
                    .map(|(c, v)| (*c, *v))
                    .collect(),
                idle_total: (s.owned.len() as f64 * s.total_time - busy).max(0.0),
                mem_peak: s.mem_peak,
                static_utilization: s.static_util,
                trace: s.trace,
                master_log: s.master_log,
                faults: s.fault_stats,
                replan: s.replan_stats,
                async_stats: AsyncStats::default(),
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use real_cluster::DeviceMesh;
    use real_dataflow::algo;
    use real_model::{ModelSpec, ParallelStrategy};

    fn ppo_graph(batch: u64) -> DataflowGraph {
        let actor = ModelSpec::llama3_7b();
        let critic = actor.critic();
        algo::ppo(&actor, &critic, &algo::RlhfConfig::instruct_gpt(batch))
    }

    fn tenant_on(
        cluster: &ClusterSpec,
        id: u64,
        node: u32,
        batch: u64,
        iterations: usize,
    ) -> TenantRun {
        let graph = ppo_graph(batch);
        let mesh = DeviceMesh::whole_nodes(cluster, node, 1).unwrap();
        let a = CallAssignment::new(mesh, ParallelStrategy::new(1, 8, 1, 4).unwrap()).unwrap();
        let plan = ExecutionPlan::new(&graph, cluster, vec![a; graph.n_calls()]).unwrap();
        TenantRun {
            id,
            name: format!("tenant{id}"),
            graph,
            plan,
            config: EngineConfig::deterministic(),
            iterations,
            allocation: mesh.gpus().collect(),
            solo_step_secs: 0.0,
            elastic: None,
        }
    }

    fn assert_reports_eq(a: &RunReport, b: &RunReport) {
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.iter_time, b.iter_time);
        assert_eq!(a.timings, b.timings);
        assert_eq!(a.category_totals, b.category_totals);
        assert_eq!(a.idle_total, b.idle_total);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.trace.events(), b.trace.events());
    }

    #[test]
    fn disjoint_cotenant_leaves_report_byte_identical_to_solo() {
        let cluster = ClusterSpec::h100(2);
        let t0 = tenant_on(&cluster, 0, 0, 64, 2);
        let t1 = tenant_on(&cluster, 1, 1, 32, 2);
        let solo = run_multi(&cluster, &[t0.clone()], 7).unwrap();
        let both = run_multi(&cluster, &[t0, t1], 7).unwrap();
        assert_eq!(both.len(), 2);
        assert_reports_eq(&solo[0], &both[0]);
    }

    #[test]
    fn multi_tenant_runs_replay_bit_identically() {
        let cluster = ClusterSpec::h100(2);
        let tenants = vec![
            tenant_on(&cluster, 0, 0, 64, 2),
            tenant_on(&cluster, 1, 1, 32, 3),
        ];
        let a = run_multi(&cluster, &tenants, 11).unwrap();
        let b = run_multi(&cluster, &tenants, 11).unwrap();
        for (ra, rb) in a.iter().zip(&b) {
            assert_reports_eq(ra, rb);
        }
    }

    #[test]
    fn oversubscribed_tenants_time_share_without_deadlock() {
        let cluster = ClusterSpec::h100(1);
        // Both tenants on the same (only) node: the FIFO timelines
        // serialize their iterations.
        let t0 = tenant_on(&cluster, 0, 0, 32, 2);
        let t1 = tenant_on(&cluster, 1, 0, 32, 2);
        let solo_time = run_multi(&cluster, &[t0.clone()], 3).unwrap()[0].total_time;
        let both = run_multi(&cluster, &[t0, t1], 3).unwrap();
        assert!(both.iter().all(|r| r.total_time > 0.0));
        // Shared hardware means each tenant finishes later than alone.
        assert!(both[0].total_time > solo_time);
        assert!(both[1].total_time > solo_time);
    }

    #[test]
    #[should_panic(expected = "zero iterations")]
    fn zero_iteration_tenant_panics() {
        let cluster = ClusterSpec::h100(1);
        let mut t = tenant_on(&cluster, 0, 0, 32, 1);
        t.iterations = 0;
        let _ = run_multi(&cluster, &[t], 1);
    }
}
