//! Elastic re-planning policy: when and whether to switch execution plans
//! mid-run (the ROADMAP's "elastic re-planning policies" item).
//!
//! PR 2's resilient dispatch reacts to faults *per request* (deadline →
//! retry → degraded); this module adds the *policy* layer that reacts per
//! cluster: trigger rules over live [`crate::FaultStats`] decide when a
//! re-search is worth evaluating, a warm-started MCMC chain
//! (`real_search::search_warm`) searches the surviving meshes, and a
//! cost/benefit gate (via `real_search::explain::compare`) decides whether
//! the projected saving over the remaining iterations pays for the switch's
//! reallocation traffic. The switch itself reuses the parameter-reallocation
//! broadcast machinery (§4 of the paper — what makes switching cheap) under
//! snapshot-rollback, so a switch that itself faults leaves the run exactly
//! where it was.

use real_search::PruneLevel;
use serde::{Deserialize, Serialize};

/// When and whether the engine re-plans mid-run. Built fluently; the
/// defaults are conservative enough that transient faults never trigger a
/// search.
///
/// # Examples
///
/// ```
/// use real_runtime::ReplanPolicy;
///
/// let policy = ReplanPolicy::new()
///     .with_dead_after(60.0)        // worker unreachable 60 s => dead
///     .with_straggler_requests(2)   // 2 timeouts in an iteration => straggler
///     .with_min_speedup(1.10)       // new plan must be >= 10% faster
///     .with_search_steps(1_500)
///     .with_max_replans(2);
/// assert_eq!(policy.dead_after_secs, 60.0);
/// assert_eq!(policy.straggler_requests, 2);
/// assert!(policy.min_speedup > 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReplanPolicy {
    /// A worker whose next availability is at least this many seconds away
    /// is considered dead: the pending request re-plans instead of waiting
    /// out the downtime.
    pub dead_after_secs: f64,
    /// Trigger a re-plan evaluation when an iteration accumulates at least
    /// this many deadline timeouts (a persistent straggler).
    pub straggler_requests: u64,
    /// Trigger when the fraction of requests completing in degraded mode
    /// over an iteration reaches this threshold.
    pub degraded_rate_threshold: f64,
    /// The candidate plan's estimated (degraded-cluster) per-iteration time
    /// must beat the incumbent's by at least this factor.
    pub min_speedup: f64,
    /// The projected saving over the remaining iterations must exceed this
    /// multiple of the switch's measured reallocation cost.
    pub min_benefit_ratio: f64,
    /// Hard cap on committed switches per run.
    pub max_replans: u64,
    /// Step budget of each warm-started re-search chain.
    pub search_steps: u64,
    /// MCMC temperature of the re-search.
    pub beta: f64,
    /// Pruning level for the degraded search space.
    pub prune: PruneLevel,
    /// How far past the trigger instant slowdown windows are scanned when
    /// tagging straggler GPUs for the degraded estimator.
    pub slowdown_lookahead: f64,
    /// Estimator penalty factor for meshes containing a dead GPU (see
    /// [`real_cluster::ClusterHealth`]).
    pub dead_penalty: f64,
}

impl Default for ReplanPolicy {
    fn default() -> Self {
        Self {
            dead_after_secs: 120.0,
            straggler_requests: 3,
            degraded_rate_threshold: 0.25,
            min_speedup: 1.05,
            min_benefit_ratio: 2.0,
            max_replans: 4,
            search_steps: 2_000,
            beta: 6.0,
            prune: PruneLevel::Aggressive,
            slowdown_lookahead: 600.0,
            dead_penalty: real_cluster::health::DEAD_PENALTY,
        }
    }
}

impl ReplanPolicy {
    /// The default policy (see field docs for the values).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the dead-worker patience window, seconds.
    pub fn with_dead_after(mut self, secs: f64) -> Self {
        self.dead_after_secs = secs.max(0.0);
        self
    }

    /// Sets the per-iteration timeout count that flags a straggler.
    pub fn with_straggler_requests(mut self, requests: u64) -> Self {
        self.straggler_requests = requests.max(1);
        self
    }

    /// Sets the per-iteration degraded-completion rate threshold.
    pub fn with_degraded_rate(mut self, rate: f64) -> Self {
        self.degraded_rate_threshold = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the minimum estimated speedup a candidate must offer.
    pub fn with_min_speedup(mut self, speedup: f64) -> Self {
        self.min_speedup = speedup.max(1.0);
        self
    }

    /// Sets the benefit-to-switch-cost ratio the gate requires.
    pub fn with_min_benefit_ratio(mut self, ratio: f64) -> Self {
        self.min_benefit_ratio = ratio.max(0.0);
        self
    }

    /// Caps the number of committed switches per run.
    pub fn with_max_replans(mut self, n: u64) -> Self {
        self.max_replans = n;
        self
    }

    /// Sets the warm re-search's MCMC step budget.
    pub fn with_search_steps(mut self, steps: u64) -> Self {
        self.search_steps = steps.max(1);
        self
    }

    /// Sets the warm re-search's MCMC temperature.
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Sets the pruning level of the degraded search space.
    pub fn with_prune(mut self, prune: PruneLevel) -> Self {
        self.prune = prune;
        self
    }

    /// Sets the slowdown look-ahead horizon, seconds.
    pub fn with_slowdown_lookahead(mut self, secs: f64) -> Self {
        self.slowdown_lookahead = secs.max(0.0);
        self
    }

    /// Sets the dead-mesh estimator penalty.
    pub fn with_dead_penalty(mut self, factor: f64) -> Self {
        self.dead_penalty = factor.max(1.0);
        self
    }
}

/// Why a re-plan evaluation was triggered.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReplanReason {
    /// A request's participants were unreachable past the policy's
    /// patience window.
    DeadWorker {
        /// The first dead GPU detected.
        gpu: u32,
    },
    /// Deadline timeouts accumulated past the straggler threshold.
    Straggler {
        /// Timeouts observed in the triggering iteration.
        timeouts: u64,
    },
    /// Too many requests completed in degraded mode.
    DegradedRate {
        /// Degraded completions / dispatched requests in the iteration.
        rate: f64,
    },
    /// The multi-tenant scheduler offered freed GPUs (a co-tenant finished
    /// or shrank) to this tenant.
    FreedCapacity {
        /// Number of GPUs offered.
        gpus: u32,
    },
}

/// What a re-plan evaluation decided.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReplanOutcome {
    /// The switch committed: the run continues on the new plan.
    Switched {
        /// Estimated per-iteration time of the incumbent on the degraded
        /// cluster.
        base_time: f64,
        /// Estimated per-iteration time of the new plan.
        target_time: f64,
        /// Measured wall seconds of the switch's reallocation prologue.
        switch_secs: f64,
        /// Number of calls whose assignment changed.
        n_diffs: usize,
    },
    /// The cost/benefit gate rejected the candidate; the run stays on the
    /// incumbent plan.
    GateRejected {
        /// Estimated per-iteration time of the incumbent.
        base_time: f64,
        /// Estimated per-iteration time of the rejected candidate.
        target_time: f64,
        /// Measured switch cost that failed to amortize.
        switch_secs: f64,
    },
    /// The switch's reallocation prologue was hit by a crash and was rolled
    /// back.
    SwitchFaulted {
        /// The crashing GPU.
        gpu: u32,
        /// Crash instant.
        at: f64,
    },
    /// No surviving mesh set admits the workload (or the candidate failed
    /// the memory check).
    NoSurvivingPlan,
}

/// One re-plan decision, in trigger order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplanEvent {
    /// Virtual time of the decision.
    pub at: f64,
    /// Iteration during which it fired.
    pub iter: usize,
    /// Trigger.
    pub reason: ReplanReason,
    /// Decision.
    pub outcome: ReplanOutcome,
}

/// Re-planning accounting carried on [`crate::RunReport`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReplanStats {
    /// Re-plan evaluations triggered (searches run).
    pub evaluations: u64,
    /// Switches committed.
    pub switches: u64,
    /// Candidates rejected by the cost/benefit gate.
    pub gate_rejections: u64,
    /// Switches rolled back because the prologue itself faulted.
    pub aborted_switches: u64,
    /// Evaluations that found no feasible plan on the surviving meshes.
    pub no_plan: u64,
    /// Total wall seconds of committed switch prologues.
    pub switch_seconds: f64,
    /// Decision log in trigger order.
    pub events: Vec<ReplanEvent>,
}

impl ReplanStats {
    /// Whether re-planning never engaged (no evaluation fired). Reports of
    /// replan-disabled runs stay empty so their observability surface is
    /// byte-identical to earlier builds.
    pub fn is_empty(&self) -> bool {
        self.evaluations == 0 && self.events.is_empty()
    }

    /// One-line summary for run breakdowns.
    pub fn render_line(&self) -> String {
        format!(
            "replan: {} evaluated | {} switched, {} gate-rejected, {} aborted, {} no-plan | {:.1} s switching",
            self.evaluations,
            self.switches,
            self.gate_rejections,
            self.aborted_switches,
            self.no_plan,
            self.switch_seconds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_clamps_and_sets() {
        let p = ReplanPolicy::new()
            .with_dead_after(-5.0)
            .with_straggler_requests(0)
            .with_degraded_rate(2.0)
            .with_min_speedup(0.5)
            .with_min_benefit_ratio(-1.0)
            .with_max_replans(9)
            .with_search_steps(0)
            .with_beta(3.0)
            .with_prune(PruneLevel::Moderate)
            .with_slowdown_lookahead(-1.0)
            .with_dead_penalty(0.0);
        assert_eq!(p.dead_after_secs, 0.0);
        assert_eq!(p.straggler_requests, 1);
        assert_eq!(p.degraded_rate_threshold, 1.0);
        assert_eq!(p.min_speedup, 1.0);
        assert_eq!(p.min_benefit_ratio, 0.0);
        assert_eq!(p.max_replans, 9);
        assert_eq!(p.search_steps, 1);
        assert_eq!(p.beta, 3.0);
        assert_eq!(p.prune, PruneLevel::Moderate);
        assert_eq!(p.slowdown_lookahead, 0.0);
        assert_eq!(p.dead_penalty, 1.0);
    }

    #[test]
    fn stats_emptiness_and_rendering() {
        let mut s = ReplanStats::default();
        assert!(s.is_empty());
        s.evaluations = 1;
        s.switches = 1;
        s.switch_seconds = 2.5;
        assert!(!s.is_empty());
        let line = s.render_line();
        assert!(line.contains("1 evaluated"));
        assert!(line.contains("1 switched"));
        assert!(line.contains("2.5 s switching"));
    }

    #[test]
    fn stats_round_trip_through_serde() {
        let s = ReplanStats {
            evaluations: 2,
            switches: 1,
            gate_rejections: 1,
            aborted_switches: 0,
            no_plan: 0,
            switch_seconds: 1.25,
            events: vec![ReplanEvent {
                at: 10.0,
                iter: 0,
                reason: ReplanReason::DeadWorker { gpu: 3 },
                outcome: ReplanOutcome::Switched {
                    base_time: 100.0,
                    target_time: 40.0,
                    switch_secs: 1.25,
                    n_diffs: 6,
                },
            }],
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: ReplanStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
