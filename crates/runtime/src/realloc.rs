//! Parameter reallocation: the hierarchical remapping algorithm of Fig. 6.
//!
//! Outer loop: every pair of source/destination pipeline stages exchanges
//! the parameters of their common layers. Inner loop: each destination GPU
//! is greedily assigned the source GPU with the lowest communication cost
//! (same GPU < same node < remote, load-balanced), and the assigned sources
//! broadcast their partitions in parallel — contention and serialization
//! emerge from the shared GPU timelines.

use crate::layout::Layout;
use real_cluster::CommModel;
use real_dataflow::CallAssignment;
use real_model::{MemoryModel, ModelSpec};
use real_sim::{Category, FaultClock, Timelines, Trace};
use real_util::DeterministicRng;

/// Executes the reallocation of `model`'s weights from layout `src` to
/// layout `dst`; returns the completion time. A no-op (returns `ready`)
/// when the layouts are identical. Broadcast durations are stretched by any
/// active fault windows (`faults`); reallocation is infrastructure traffic
/// and is never aborted or retried.
#[allow(clippy::too_many_arguments)]
pub fn execute_realloc(
    tl: &mut Timelines,
    trace: &mut Trace,
    comm: &CommModel,
    model: &ModelSpec,
    src: &CallAssignment,
    dst: &CallAssignment,
    ready: f64,
    rng: &mut DeterministicRng,
    jitter_sigma: f64,
    faults: Option<&FaultClock>,
) -> f64 {
    if src == dst {
        return ready;
    }
    let src_layout = Layout::new(src);
    let dst_layout = Layout::new(dst);
    let src_stages = src.strategy.stage_layers(model.n_layers);
    let dst_stages = dst.strategy.stage_layers(model.n_layers);
    let layer_bytes = model.layer_params() as f64 * 2.0;

    let tp1 = src.strategy.tp();
    let tp2 = dst.strategy.tp();

    let mut done = ready;
    for (i, src_range) in src_stages.iter().enumerate() {
        for (j, dst_range) in dst_stages.iter().enumerate() {
            let lo = src_range.start.max(dst_range.start);
            let hi = src_range.end.min(dst_range.end);
            if lo >= hi {
                continue;
            }
            let common_bytes = (hi - lo) as f64 * layer_bytes;

            // Inner loop (Fig. 6 right): a destination TP rank t2 needs the
            // parameter interval [t2/tp2, (t2+1)/tp2); the source TP ranks
            // whose intervals intersect it each contribute a piece. All
            // destination DP replicas need identical pieces, so each
            // (t1, t2) piece is one broadcast from a greedily-chosen source
            // replica to the dp2 destinations.
            let mut load = vec![vec![0u32; tp1 as usize]; src.strategy.dp() as usize];
            for t2 in 0..tp2 {
                let need_lo = f64::from(t2) / f64::from(tp2);
                let need_hi = f64::from(t2 + 1) / f64::from(tp2);
                let dsts: Vec<usize> = (0..dst.strategy.dp())
                    .map(|d2| dst_layout.tp_group(j as u32, d2)[t2 as usize])
                    .collect();
                for t1 in 0..tp1 {
                    let have_lo = f64::from(t1) / f64::from(tp1);
                    let have_hi = f64::from(t1 + 1) / f64::from(tp1);
                    let frac = (need_hi.min(have_hi) - need_lo.max(have_lo)).max(0.0);
                    if frac <= 0.0 {
                        continue;
                    }
                    let bytes = common_bytes * frac;
                    // Greedy source choice among the src DP replicas holding
                    // rank t1: prefer a GPU that is itself a destination
                    // (local copy), then one sharing a node, then least load.
                    let (best_d1, _) = (0..src.strategy.dp())
                        .map(|d1| {
                            let s = src_layout.tp_group(i as u32, d1)[t1 as usize];
                            let locality = if dsts.contains(&s) {
                                0u32
                            } else if dsts.iter().any(|&g| dst_layout.pair_within_node(s, g)) {
                                1
                            } else {
                                2
                            };
                            (d1, (locality, load[d1 as usize][t1 as usize]))
                        })
                        .min_by_key(|&(_, key)| key)
                        .expect("src dp >= 1");
                    load[best_d1 as usize][t1 as usize] += 1;
                    let s = src_layout.tp_group(i as u32, best_d1)[t1 as usize];
                    let receivers: Vec<usize> = dsts.iter().copied().filter(|&g| g != s).collect();
                    if receivers.is_empty() {
                        continue; // the only destination already holds it
                    }
                    let mut participants = vec![s];
                    participants.extend(receivers.iter().copied());
                    let within = dst_layout.within_node(&participants);
                    let mut dur = comm.broadcast(bytes, participants.len() as u32, within)
                        * rng.lognormal_factor(jitter_sigma);
                    if let Some(f) = faults {
                        let start = participants
                            .iter()
                            .map(|&g| tl.gpu(g).busy_until())
                            .fold(ready, f64::max);
                        dur = f.stretched(&participants, start, dur, true);
                    }
                    let end = tl.collective(&participants, ready, dur, Category::Realloc);
                    if trace.enabled() {
                        trace.record(s, end - dur, end, Category::Realloc, "param_broadcast");
                    }
                    done = done.max(end);
                }
            }
        }
    }
    done
}

/// Total BF16 bytes a destination layout must receive (used by tests and
/// reports to sanity-check reallocation volume).
pub fn realloc_volume(model: &ModelSpec, dst: &CallAssignment) -> u64 {
    let mm = MemoryModel::new(model.clone());
    mm.weight_bytes_per_gpu(&dst.strategy) * u64::from(dst.strategy.world_size())
}

#[cfg(test)]
mod tests {
    use super::*;
    use real_cluster::{ClusterSpec, DeviceMesh};
    use real_model::ParallelStrategy;

    fn assignment(cluster: &ClusterSpec, dp: u32, tp: u32, pp: u32) -> CallAssignment {
        CallAssignment::new(
            DeviceMesh::full(cluster),
            ParallelStrategy::new(dp, tp, pp, 1).unwrap(),
        )
        .unwrap()
    }

    fn run(cluster: &ClusterSpec, src: &CallAssignment, dst: &CallAssignment) -> (f64, Timelines) {
        let comm = CommModel::new(cluster);
        let mut tl = Timelines::new(cluster.total_gpus() as usize);
        let mut trace = Trace::disabled();
        let mut rng = DeterministicRng::from_seed(3);
        let end = execute_realloc(
            &mut tl,
            &mut trace,
            &comm,
            &ModelSpec::llama3_7b(),
            src,
            dst,
            0.0,
            &mut rng,
            0.0,
            None,
        );
        (end, tl)
    }

    #[test]
    fn identical_layouts_are_free() {
        let cluster = ClusterSpec::h100(1);
        let a = assignment(&cluster, 1, 8, 1);
        let (end, tl) = run(&cluster, &a, &a);
        assert_eq!(end, 0.0);
        assert_eq!(tl.makespan(), 0.0);
    }

    #[test]
    fn reshard_within_node_is_fast() {
        let cluster = ClusterSpec::h100(1);
        let src = assignment(&cluster, 1, 8, 1);
        let dst = assignment(&cluster, 2, 4, 1);
        let (end, tl) = run(&cluster, &src, &dst);
        assert!(end > 0.0);
        // 7B over NVLink: well under a second.
        assert!(end < 0.5, "realloc took {end}");
        assert!(tl.busy(0, Category::Realloc) > 0.0);
    }

    #[test]
    fn cross_node_reshard_slower_than_within_node() {
        let c2 = ClusterSpec::h100(2);
        // Src on node 0, dst on node 1 → all traffic crosses the fabric.
        let src = CallAssignment::new(
            DeviceMesh::whole_nodes(&c2, 0, 1).unwrap(),
            ParallelStrategy::new(1, 8, 1, 1).unwrap(),
        )
        .unwrap();
        let dst_remote = CallAssignment::new(
            DeviceMesh::whole_nodes(&c2, 1, 1).unwrap(),
            ParallelStrategy::new(1, 8, 1, 1).unwrap(),
        )
        .unwrap();
        let dst_local = CallAssignment::new(
            DeviceMesh::whole_nodes(&c2, 0, 1).unwrap(),
            ParallelStrategy::new(2, 4, 1, 1).unwrap(),
        )
        .unwrap();
        let (remote, _) = run(&c2, &src, &dst_remote);
        let (local, _) = run(&c2, &src, &dst_local);
        assert!(remote > local, "remote {remote} local {local}");
    }

    #[test]
    fn pipeline_remap_covers_all_stage_pairs() {
        let cluster = ClusterSpec::h100(2);
        let src = assignment(&cluster, 1, 8, 2); // stages split across nodes
        let dst = assignment(&cluster, 4, 1, 4);
        let (end, tl) = run(&cluster, &src, &dst);
        assert!(end > 0.0);
        // Every GPU receives something.
        for g in 0..16 {
            assert!(
                tl.busy(g, Category::Realloc) > 0.0,
                "gpu {g} received no parameters"
            );
        }
    }

    #[test]
    fn volume_matches_destination_shards() {
        let cluster = ClusterSpec::h100(1);
        let dst = assignment(&cluster, 2, 4, 1);
        let v = realloc_volume(&ModelSpec::llama3_7b(), &dst);
        // 8 GPUs x (params / 4 shards x 2 bytes) = 2 full copies (dp = 2).
        let expect = 2 * ModelSpec::llama3_7b().param_count() * 2;
        let rel = (v as f64 - expect as f64).abs() / expect as f64;
        assert!(rel < 0.01, "volume {v} vs {expect}");
    }

    #[test]
    fn same_gpu_shards_skip_transfer() {
        // tp=8 -> tp=8 on the same mesh with different dp is... identical
        // layout; use pp=1 -> pp=2 instead: half the layers stay local.
        let cluster = ClusterSpec::h100(1);
        let src = assignment(&cluster, 1, 8, 1);
        let dst = assignment(&cluster, 1, 4, 2);
        let (end, _) = run(&cluster, &src, &dst);
        assert!(end > 0.0);
    }
}
