//! Mapping from `(mesh, strategy)` to concrete GPU index groups.
//!
//! Megatron rank order (TP fastest, then DP, then PP) composed with the
//! node-major mesh rank order keeps TP groups on consecutive GPUs.

use real_cluster::GpuId;
use real_dataflow::CallAssignment;
use real_model::parallel::Coords;

/// Resolved GPU groups for one call assignment.
#[derive(Debug, Clone)]
pub struct Layout {
    /// `tp_groups[pp][dp]` = global GPU indices of one TP group.
    tp_groups: Vec<Vec<Vec<usize>>>,
    /// `dp_groups[pp][tp]` = global GPU indices across the DP dimension.
    dp_groups: Vec<Vec<Vec<usize>>>,
    gpus_per_node: u32,
}

impl Layout {
    /// Resolves the groups for `a`.
    pub fn new(a: &CallAssignment) -> Self {
        let s = &a.strategy;
        let (dp, tp, pp) = (s.dp(), s.tp(), s.pp());
        let mut tp_groups = vec![vec![Vec::with_capacity(tp as usize); dp as usize]; pp as usize];
        let mut dp_groups = vec![vec![Vec::with_capacity(dp as usize); tp as usize]; pp as usize];
        for rank in 0..s.world_size() {
            let Coords {
                dp: d,
                tp: t,
                pp: p,
            } = s.coords(rank);
            let gpu = a.mesh.gpu_at(rank).0 as usize;
            tp_groups[p as usize][d as usize].push(gpu);
            dp_groups[p as usize][t as usize].push(gpu);
        }
        Self {
            tp_groups,
            dp_groups,
            gpus_per_node: a.mesh.gpus_per_node(),
        }
    }

    /// The TP group of replica `dp` at stage `pp`.
    pub fn tp_group(&self, pp: u32, dp: u32) -> &[usize] {
        &self.tp_groups[pp as usize][dp as usize]
    }

    /// The DP group at stage `pp`, TP rank `tp`.
    pub fn dp_group(&self, pp: u32, tp: u32) -> &[usize] {
        &self.dp_groups[pp as usize][tp as usize]
    }

    /// All GPUs of one replica's stage (same as the TP group).
    pub fn stage_gpus(&self, pp: u32, dp: u32) -> &[usize] {
        self.tp_group(pp, dp)
    }

    /// Whether a set of GPUs sits on one node.
    pub fn within_node(&self, gpus: &[usize]) -> bool {
        let node = |g: usize| g as u32 / self.gpus_per_node;
        gpus.windows(2).all(|w| node(w[0]) == node(w[1]))
    }

    /// First GPU of the group (used as the representative endpoint for
    /// aggregated P2P events).
    pub fn leader(gpus: &[usize]) -> usize {
        *gpus.first().expect("groups are non-empty")
    }

    /// Whether two specific GPUs share a node.
    pub fn pair_within_node(&self, a: usize, b: usize) -> bool {
        (a as u32 / self.gpus_per_node) == (b as u32 / self.gpus_per_node)
    }

    /// Node of a GPU.
    pub fn node_of(&self, gpu: usize) -> u32 {
        gpu as u32 / self.gpus_per_node
    }
}

/// Convenience: the global index of a mesh-local rank.
pub fn gpu_index(a: &CallAssignment, rank: u32) -> usize {
    let GpuId(g) = a.mesh.gpu_at(rank);
    g as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use real_cluster::{ClusterSpec, DeviceMesh};
    use real_model::ParallelStrategy;

    fn assignment(dp: u32, tp: u32, pp: u32) -> CallAssignment {
        let cluster = ClusterSpec::h100(2);
        CallAssignment::new(
            DeviceMesh::full(&cluster),
            ParallelStrategy::new(dp, tp, pp, 1).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn tp_groups_are_consecutive_gpus() {
        let a = assignment(2, 4, 2);
        let l = Layout::new(&a);
        assert_eq!(l.tp_group(0, 0), &[0, 1, 2, 3]);
        assert_eq!(l.tp_group(0, 1), &[4, 5, 6, 7]);
        assert_eq!(l.tp_group(1, 0), &[8, 9, 10, 11]);
        assert!(l.within_node(l.tp_group(0, 0)));
    }

    #[test]
    fn dp_groups_stride_by_tp() {
        let a = assignment(2, 4, 2);
        let l = Layout::new(&a);
        assert_eq!(l.dp_group(0, 0), &[0, 4]);
        assert_eq!(l.dp_group(0, 3), &[3, 7]);
        assert_eq!(l.dp_group(1, 0), &[8, 12]);
    }

    #[test]
    fn stage_crossing_detected() {
        let a = assignment(1, 8, 2);
        let l = Layout::new(&a);
        // Stage 0 on node 0, stage 1 on node 1.
        assert!(l.within_node(l.tp_group(0, 0)));
        assert!(l.within_node(l.tp_group(1, 0)));
        assert!(!l.pair_within_node(
            Layout::leader(l.tp_group(0, 0)),
            Layout::leader(l.tp_group(1, 0))
        ));
    }

    #[test]
    fn sub_node_mesh_layout() {
        let cluster = ClusterSpec::h100(2);
        let a = CallAssignment::new(
            DeviceMesh::sub_node(&cluster, 1, 4, 4).unwrap(),
            ParallelStrategy::new(2, 2, 1, 1).unwrap(),
        )
        .unwrap();
        let l = Layout::new(&a);
        assert_eq!(l.tp_group(0, 0), &[12, 13]);
        assert_eq!(l.tp_group(0, 1), &[14, 15]);
        assert_eq!(l.node_of(12), 1);
    }

    #[test]
    fn groups_partition_the_mesh() {
        let a = assignment(4, 2, 2);
        let l = Layout::new(&a);
        let mut seen = std::collections::HashSet::new();
        for pp in 0..2 {
            for dp in 0..4 {
                for &g in l.tp_group(pp, dp) {
                    assert!(seen.insert(g), "gpu {g} appears twice");
                }
            }
        }
        assert_eq!(seen.len(), 16);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use real_cluster::{ClusterSpec, DeviceMesh};
        use real_model::ParallelStrategy;

        proptest! {
            #[test]
            fn groups_always_partition(dp_pow in 0u32..4, tp_pow in 0u32..4, pp_pow in 0u32..4) {
                let world = 1u32 << (dp_pow + tp_pow + pp_pow);
                prop_assume!((1..=32).contains(&world));
                let nodes = (world / 8).max(1);
                prop_assume!(nodes.is_power_of_two());
                let cluster = ClusterSpec::h100(nodes.max(1));
                prop_assume!(world <= cluster.total_gpus());
                let mesh = if world >= 8 {
                    DeviceMesh::whole_nodes(&cluster, 0, world / 8).unwrap()
                } else {
                    DeviceMesh::sub_node(&cluster, 0, 0, world).unwrap()
                };
                let s = ParallelStrategy::new(1 << dp_pow, 1 << tp_pow, 1 << pp_pow, 1).unwrap();
                let a = CallAssignment::new(mesh, s).unwrap();
                let l = Layout::new(&a);
                let mut seen = std::collections::HashSet::new();
                for pp in 0..s.pp() {
                    for dp in 0..s.dp() {
                        for &g in l.tp_group(pp, dp) {
                            prop_assert!(seen.insert(g), "gpu {} twice", g);
                            prop_assert!(mesh.contains(real_cluster::GpuId(g as u32)));
                        }
                    }
                }
                prop_assert_eq!(seen.len() as u32, world);
                // DP groups cover the same set.
                let mut seen2 = std::collections::HashSet::new();
                for pp in 0..s.pp() {
                    for tp in 0..s.tp() {
                        for &g in l.dp_group(pp, tp) {
                            prop_assert!(seen2.insert(g));
                        }
                    }
                }
                prop_assert_eq!(seen2, seen);
            }
        }
    }
}
