//! Run reports: per-call wall times (Table 6), category totals (Fig. 11),
//! and throughput.

use real_sim::{Category, Trace};
use real_util::Table;
use serde::{Deserialize, Serialize};

/// One call's measured interval in one iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallTiming {
    /// Call name (e.g. `"actor_gen"`).
    pub call_name: String,
    /// Iteration index.
    pub iter: usize,
    /// Dispatch-ready time.
    pub start: f64,
    /// Completion time.
    pub end: f64,
}

impl CallTiming {
    /// Wall duration of the call.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Why an execution attempt of a request was aborted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultAbort {
    /// The attempt's wall time exceeded its deadline (straggler / degraded
    /// link stretched it past `deadline_factor` x predicted cost).
    Timeout,
    /// A participating model worker crashed mid-attempt.
    Crash {
        /// Global index of the crashed GPU.
        gpu: u32,
    },
}

/// One aborted execution attempt, recorded for the report and the event
/// stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestFault {
    /// Name of the affected call (e.g. `"actor_train"`).
    pub call_name: String,
    /// Iteration index of the affected request.
    pub iter: usize,
    /// Zero-based attempt number that was aborted.
    pub attempt: u32,
    /// Why the attempt was aborted.
    pub kind: FaultAbort,
    /// Virtual time at which the attempt was abandoned.
    pub at: f64,
    /// Backoff wait before the next attempt became ready (seconds); the
    /// event stream renders this as a `backoff` span nested in the call.
    pub backoff_secs: f64,
}

/// Degraded-mode accounting: how much work a faulted run lost, retried, and
/// recovered. Empty (all zeros) for fault-free runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Fault events in the injected schedule (after compilation; events
    /// targeting GPUs or nodes outside the cluster are not counted).
    pub injected: usize,
    /// Total execution attempts dispatched (successful + aborted).
    pub dispatches: usize,
    /// Aborted attempts that were re-dispatched.
    pub retries: usize,
    /// Attempts aborted by deadline timeout.
    pub timeouts: usize,
    /// Attempts aborted by a worker crash.
    pub crashes: usize,
    /// Requests that needed at least one retry.
    pub requests_retried: usize,
    /// Requests that eventually completed after one or more retries.
    pub requests_recovered: usize,
    /// Requests that exhausted their retry budget and completed in
    /// degraded mode (run after the fault schedule went quiet, with
    /// deadline checks disabled).
    pub requests_degraded: usize,
    /// GPU-seconds occupied by aborted attempts (dead work).
    pub lost_gpu_seconds: f64,
    /// Virtual seconds spent in retry backoff.
    pub backoff_seconds: f64,
    /// Every aborted attempt, in dispatch order.
    pub events: Vec<RequestFault>,
}

impl FaultStats {
    /// Whether the run was fault-free (no schedule and no dispatch
    /// accounting — the engine skips fault bookkeeping entirely then).
    pub fn is_empty(&self) -> bool {
        self.injected == 0 && self.dispatches == 0
    }

    /// One-line summary for report rendering.
    pub fn render_line(&self) -> String {
        format!(
            "faults: {} injected | {} retries ({} timeout, {} crash) | \
             {} recovered, {} degraded | {:.1} GPU-s lost, {:.1} s backoff",
            self.injected,
            self.retries,
            self.timeouts,
            self.crashes,
            self.requests_recovered,
            self.requests_degraded,
            self.lost_gpu_seconds,
            self.backoff_seconds,
        )
    }
}

/// Async off-policy accounting (§4's graph-level freedom exploited at
/// runtime): how many generation calls ran against a stale parameter
/// snapshot, how stale they actually were, and how much generation and
/// training overlapped in wall time. Empty (all zeros) for synchronous
/// runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AsyncStats {
    /// The configured staleness bound `s`: generation for iteration `i`
    /// may start once training for iteration `i - 1 - s` has completed.
    pub staleness_bound: u32,
    /// Generation calls whose cross-iteration parameter edge was relaxed
    /// to the stale snapshot.
    pub relaxed_calls: usize,
    /// Maximum *observed* staleness across relaxed calls: the number of
    /// completed-but-not-yet-consumed training steps at generation
    /// dispatch. Always `<= staleness_bound`.
    pub max_observed_staleness: u32,
    /// Wall seconds during which at least one generation request and at
    /// least one training request were simultaneously *in flight*
    /// (dispatched and not yet completed). On disjoint meshes this is
    /// realized GPU overlap; on a shared mesh it counts queueing, so use
    /// the profiler's phase attribution for realized-overlap claims.
    pub gen_train_overlap_secs: f64,
}

impl AsyncStats {
    /// Whether the run was synchronous (no relaxed parameter edges).
    ///
    /// # Examples
    ///
    /// ```
    /// use real_runtime::AsyncStats;
    ///
    /// assert!(AsyncStats::default().is_empty());
    /// let stats = AsyncStats {
    ///     staleness_bound: 1,
    ///     relaxed_calls: 3,
    ///     max_observed_staleness: 0,
    ///     gen_train_overlap_secs: 11.46,
    /// };
    /// assert!(!stats.is_empty());
    /// assert!(stats.render_line().contains("staleness bound 1"));
    /// ```
    pub fn is_empty(&self) -> bool {
        self.relaxed_calls == 0
    }

    /// One-line summary for report rendering.
    pub fn render_line(&self) -> String {
        format!(
            "async: staleness bound {} | {} relaxed gen call(s) | \
             max observed staleness {} | {:.2} s gen/train overlap",
            self.staleness_bound,
            self.relaxed_calls,
            self.max_observed_staleness,
            self.gen_train_overlap_secs,
        )
    }
}

/// The output of a runtime-engine run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Iterations executed.
    pub iterations: usize,
    /// Virtual makespan of the whole run.
    pub total_time: f64,
    /// Steady-state seconds per iteration.
    pub iter_time: f64,
    /// Per-call, per-iteration timings.
    pub timings: Vec<CallTiming>,
    /// Cluster-wide busy seconds per category.
    pub category_totals: Vec<(Category, f64)>,
    /// Idle GPU-seconds up to the makespan.
    pub idle_total: f64,
    /// Peak memory bytes per GPU (max over GPUs).
    pub mem_peak: u64,
    /// Mean static-memory utilization (Fig. 17 right).
    pub static_utilization: f64,
    /// Kernel trace (empty unless enabled).
    pub trace: Trace,
    /// The master worker's request/response log (§6).
    pub master_log: crate::workers::MasterLog,
    /// Fault-injection accounting (empty for fault-free runs).
    pub faults: FaultStats,
    /// Elastic re-planning accounting (empty unless a re-plan policy was
    /// active and triggered).
    pub replan: crate::replan::ReplanStats,
    /// Async off-policy accounting (empty for synchronous runs).
    pub async_stats: AsyncStats,
}

impl RunReport {
    /// Mean wall duration of a call across iterations (all iterations; the
    /// engine runs on virtual time, so there is no warm-up distortion).
    pub fn call_mean(&self, call_name: &str) -> Option<f64> {
        let durs: Vec<f64> = self
            .timings
            .iter()
            .filter(|t| t.call_name == call_name)
            .map(CallTiming::duration)
            .collect();
        real_util::stats::mean(&durs)
    }

    /// Throughput in processed sequences per second, given the workflow's
    /// global batch per iteration.
    pub fn seqs_per_sec(&self, global_batch: u64) -> f64 {
        global_batch as f64 / self.iter_time
    }

    /// Throughput in tokens per second, given tokens per iteration.
    pub fn tokens_per_sec(&self, tokens_per_iter: u64) -> f64 {
        tokens_per_iter as f64 / self.iter_time
    }

    /// Mean GPU busy fraction over the run (1 - idle share).
    pub fn busy_fraction(&self, n_gpus: usize) -> f64 {
        if self.total_time <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.category_totals.iter().map(|(_, s)| s).sum();
        busy / (self.total_time * n_gpus as f64)
    }

    /// Fraction of total busy time per category (Fig. 11's split).
    pub fn category_fractions(&self) -> Vec<(Category, f64)> {
        let busy: f64 = self.category_totals.iter().map(|(_, s)| s).sum();
        self.category_totals
            .iter()
            .map(|&(c, s)| (c, if busy > 0.0 { s / busy } else { 0.0 }))
            .collect()
    }

    /// Renders a Table 6-style wall-time breakdown.
    pub fn render_breakdown(&self) -> String {
        let mut names: Vec<&str> = Vec::new();
        for t in &self.timings {
            if !names.contains(&t.call_name.as_str()) {
                names.push(&t.call_name);
            }
        }
        let mut table = Table::new(vec!["call", "mean wall time (s)"]);
        for name in names {
            let mean = self.call_mean(name).unwrap_or(0.0);
            table.row(vec![name.to_string(), format!("{mean:.2}")]);
        }
        table.row(vec!["end2end".into(), format!("{:.2}", self.iter_time)]);
        let mut out = table.render();
        if self.trace.dropped() > 0 {
            out.push_str(&format!(
                "\nwarning: kernel trace dropped {} event(s) after filling its capacity; \
                 busy-time breakdowns are exact but the exported trace is truncated\n",
                self.trace.dropped()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            iterations: 2,
            total_time: 20.0,
            iter_time: 10.0,
            timings: vec![
                CallTiming {
                    call_name: "gen".into(),
                    iter: 0,
                    start: 0.0,
                    end: 6.0,
                },
                CallTiming {
                    call_name: "gen".into(),
                    iter: 1,
                    start: 10.0,
                    end: 14.0,
                },
                CallTiming {
                    call_name: "train".into(),
                    iter: 0,
                    start: 6.0,
                    end: 10.0,
                },
            ],
            category_totals: vec![(Category::Compute, 30.0), (Category::TpComm, 10.0)],
            idle_total: 5.0,
            mem_peak: 1 << 30,
            static_utilization: 0.4,
            trace: Trace::disabled(),
            master_log: crate::workers::MasterLog::default(),
            faults: FaultStats::default(),
            replan: crate::replan::ReplanStats::default(),
            async_stats: AsyncStats::default(),
        }
    }

    #[test]
    fn call_mean_averages_iterations() {
        let r = report();
        assert_eq!(r.call_mean("gen"), Some(5.0));
        assert_eq!(r.call_mean("train"), Some(4.0));
        assert_eq!(r.call_mean("missing"), None);
    }

    #[test]
    fn throughput_uses_iter_time() {
        let r = report();
        assert_eq!(r.seqs_per_sec(512), 51.2);
        assert_eq!(r.tokens_per_sec(1_000_000), 100_000.0);
    }

    #[test]
    fn busy_fraction_accounts_idle() {
        let r = report();
        // 40 busy GPU-seconds over 20s x 4 GPUs.
        assert_eq!(r.busy_fraction(4), 0.5);
    }

    #[test]
    fn category_fractions_sum_to_one() {
        let r = report();
        let sum: f64 = r.category_fractions().iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_lists_calls_and_end2end() {
        let s = report().render_breakdown();
        assert!(s.contains("gen"));
        assert!(s.contains("train"));
        assert!(s.contains("end2end"));
        assert!(s.contains("10.00"));
        assert!(!s.contains("warning"));
    }

    #[test]
    fn fault_stats_emptiness_and_rendering() {
        let mut f = FaultStats::default();
        assert!(f.is_empty());
        f.injected = 3;
        f.retries = 2;
        f.timeouts = 1;
        f.crashes = 1;
        f.requests_recovered = 2;
        f.lost_gpu_seconds = 12.5;
        assert!(!f.is_empty());
        let line = f.render_line();
        assert!(line.contains("3 injected"), "{line}");
        assert!(line.contains("2 retries"), "{line}");
        assert!(line.contains("12.5 GPU-s lost"), "{line}");
        // Serde round-trip (the stats ride in serialized experiment dumps).
        let json = serde_json::to_string(&f).unwrap();
        let back: FaultStats = serde_json::from_str(&json).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn async_stats_emptiness_and_rendering() {
        let mut a = AsyncStats::default();
        assert!(a.is_empty());
        a.staleness_bound = 2;
        a.relaxed_calls = 7;
        a.max_observed_staleness = 1;
        a.gen_train_overlap_secs = 42.5;
        assert!(!a.is_empty());
        let line = a.render_line();
        assert!(line.contains("staleness bound 2"), "{line}");
        assert!(line.contains("7 relaxed"), "{line}");
        assert!(line.contains("42.50 s gen/train overlap"), "{line}");
        let json = serde_json::to_string(&a).unwrap();
        let back: AsyncStats = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn breakdown_warns_about_dropped_trace_events() {
        let mut r = report();
        let mut trace = Trace::with_capacity(1);
        trace.record(0, 0.0, 1.0, Category::Compute, "a");
        trace.record(0, 1.0, 2.0, Category::Compute, "b");
        trace.record(0, 2.0, 3.0, Category::Compute, "c");
        r.trace = trace;
        let s = r.render_breakdown();
        assert!(s.contains("warning"), "{s}");
        assert!(s.contains("dropped 2 event(s)"), "{s}");
    }
}
