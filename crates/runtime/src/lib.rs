//! The runtime engine (§6 of the paper), simulated event-by-event.
//!
//! The real system runs a CPU *master worker* that resolves dependencies
//! and dispatches requests over sockets, and one *model worker* per GPU
//! acting as an RPC server with a FIFO request queue. This reproduction
//! keeps exactly that structure on virtual time: the master loop
//! ([`master`]) resolves the same dependency graph and dispatches requests
//! (with RPC latency), and each model worker is a FIFO
//! [`real_sim::GpuTimeline`] that executes the requests' kernels, collectives,
//! reallocation broadcasts, and transfers in arrival order.
//!
//! Fidelity is deliberately *finer* than the estimator's closed forms:
//! execution is simulated per micro-batch, per pipeline stage, and per
//! decode chunk, with log-normal kernel jitter, link-level contention
//! through the shared timelines, and the hierarchical parameter
//! reallocation algorithm of Fig. 6 ([`realloc`]). Comparing this engine's
//! measurements with the estimator's predictions reproduces Fig. 12.
//!
//! [`baselines`] expresses the four §8.1 baseline systems (DeepSpeed-Chat,
//! OpenRLHF, NeMo-Aligner, veRL) as plans plus engine flags so the Fig. 7
//! comparison runs apples-to-apples inside one engine.
//!
//! With a [`real_sim::FaultPlan`] injected ([`EngineConfig::fault_plan`]),
//! the master loop hardens into the resilient dispatch protocol described
//! in [`master`]: per-request deadlines derived from predicted cost,
//! bounded exponential-backoff retries, crash re-dispatch after worker
//! restart, and degraded-mode accounting ([`report::FaultStats`]).
//!
//! On top of the resilient protocol, [`replan`] adds *elastic re-planning*
//! ([`master::RuntimeEngine::run_replan`]): a [`ReplanPolicy`] watches the
//! live fault surface, and when a worker looks dead or degradation
//! persists, the master re-runs the §5.2 MCMC search on the surviving GPUs
//! and — if a cost/benefit gate approves — switches the run to the new
//! plan with one reallocation prologue, rolling back if the switch itself
//! faults.
//!
//! [`multi`] lifts the master loop to several tenants on one shared
//! cluster ([`multi::run_multi`], also exported as `master::run_multi`):
//! round-robin iteration interleaving on the shared timelines, per-tenant
//! fault domains and RNG substreams, and elastic growth that offers freed
//! GPUs to the highest-stretch surviving tenant through the re-plan gate.
//!
//! # Examples
//!
//! ```
//! use real_cluster::{ClusterSpec, DeviceMesh};
//! use real_dataflow::{algo, CallAssignment, ExecutionPlan};
//! use real_model::{ModelSpec, ParallelStrategy};
//! use real_runtime::{EngineConfig, RuntimeEngine};
//!
//! let cluster = ClusterSpec::h100(1);
//! let actor = ModelSpec::llama3_7b();
//! let graph = algo::ppo(&actor, &actor.critic(), &algo::RlhfConfig::instruct_gpt(32));
//! let a = CallAssignment::new(
//!     DeviceMesh::full(&cluster),
//!     ParallelStrategy::new(1, 8, 1, 4).unwrap(),
//! ).unwrap();
//! let plan = ExecutionPlan::new(&graph, &cluster, vec![a; graph.n_calls()]).unwrap();
//! let engine = RuntimeEngine::new(cluster, graph, EngineConfig::default());
//! let report = engine.run(&plan, 2).unwrap();
//! assert!(report.iter_time > 0.0);
//! ```

pub mod baselines;
pub mod config;
pub mod exec;
pub mod layout;
pub mod master;
pub mod memcheck;
pub mod multi;
pub mod obs;
pub mod offpolicy;
pub mod realloc;
pub mod replan;
pub mod report;
pub mod session;
pub mod workers;

pub use config::EngineConfig;
pub use master::{RunError, RuntimeEngine};
pub use multi::{run_multi, TenantElastic, TenantRun};
pub use replan::{ReplanEvent, ReplanOutcome, ReplanPolicy, ReplanReason, ReplanStats};
pub use report::{AsyncStats, CallTiming, FaultAbort, FaultStats, RequestFault, RunReport};
pub use session::{SessionCheckpoint, SessionError, TenantSession};
pub use workers::{DataLocation, MasterLog, Request, Response, WorkerDirectory};
