//! RLHF dataflow graphs and execution plans (§3–§4 of the paper).
//!
//! ReaL parses an RLHF workflow into a dataflow graph at the granularity of
//! *model function calls* — generation, inference, or a training step on one
//! of the workflow's LLMs. This crate provides:
//!
//! - [`call`] — [`CallType`] and [`ModelFunctionCallDef`], the Rust analogue
//!   of the paper's Appendix-B API,
//! - [`graph`] — [`DataflowGraph`]: intra-iteration data dependencies plus
//!   cross-iteration parameter-version dependencies,
//! - [`algo`] — builders for the four algorithms the paper evaluates
//!   (PPO, DPO, GRPO, ReMax) parameterized by an [`algo::RlhfConfig`],
//! - [`plan`] — [`ExecutionPlan`]: the per-call `(device mesh, parallel
//!   strategy)` assignment that the plan generator searches over and the
//!   runtime engine executes,
//! - [`spec`] — [`GraphSpec`]: the serde-loadable `graph.json` DSL that
//!   expresses user-defined workflows (including the built-in four,
//!   byte-identically) plus per-call hooks and async off-policy execution.
//!
//! # Examples
//!
//! ```
//! use real_dataflow::algo::{ppo, RlhfConfig};
//! use real_model::ModelSpec;
//! let cfg = RlhfConfig::instruct_gpt(512);
//! let graph = ppo(&ModelSpec::llama3_7b(), &ModelSpec::llama3_7b().critic(), &cfg);
//! assert_eq!(graph.n_calls(), 6); // gen, 3x inference, 2x train
//! ```

pub mod algo;
pub mod call;
pub mod graph;
pub mod plan;
pub mod render;
pub mod spec;
pub mod speculation;

pub use call::{CallId, CallType, ModelFunctionCallDef};
pub use graph::DataflowGraph;
pub use plan::{CallAssignment, ExecutionPlan};
pub use spec::{BuiltGraph, CallHook, GraphSpec, SpecError};
pub use speculation::SpecChoice;
