//! The serde-loadable graph specification behind `real run --graph`.
//!
//! PPO, DPO, GRPO, and the other [`crate::algo`] constructors hard-code one
//! dataflow each; this module turns the workload definition into *data*: a
//! `graph.json` file declaring model roles, function calls with typed data
//! dependencies, per-call train/gen/inf categories, optional per-call hooks,
//! and an optional asynchronous off-policy section. [`GraphSpec::build`]
//! validates the declaration (role resolution, exactly-once data production,
//! acyclicity via [`DataflowGraph::new`]) and lowers it to the same
//! [`DataflowGraph`] the constructors produce, so every downstream layer —
//! the estimator, the MCMC plan search, and the resilient master — runs
//! user-defined graphs unchanged.
//!
//! The schema is documented field-by-field in `docs/DATAFLOWS.md`, together
//! with a reproduction snippet for every [`SpecError`] variant.
//!
//! # Examples
//!
//! A two-call DPO-style graph from JSON:
//!
//! ```
//! use real_dataflow::GraphSpec;
//!
//! let json = r#"{
//!     "models": [{"role": "actor", "arch": "7b"}],
//!     "data": ["pairs"],
//!     "calls": [
//!         {"name": "ref_inf", "model": "actor", "kind": "inf",
//!          "batch": 256, "seq_len": 2048,
//!          "inputs": ["pairs"], "outputs": ["ref_logp"]},
//!         {"name": "actor_train", "model": "actor", "kind": "train",
//!          "batch": 256, "seq_len": 2048, "n_minibatches": 1,
//!          "inputs": ["pairs", "ref_logp"]}
//!     ]
//! }"#;
//! let spec: GraphSpec = serde_json::from_str(json).unwrap();
//! let built = spec.build().unwrap();
//! assert_eq!(built.graph.n_calls(), 2);
//! assert!(built.graph.is_trainable("actor"));
//! ```

use crate::call::{CallType, ModelFunctionCallDef};
use crate::graph::{DataflowGraph, GraphError};
use real_model::ModelSpec;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// Largest accepted off-policy staleness bound. Beyond a handful of
/// parameter versions the policy that generated a sample and the policy
/// being updated diverge enough that importance corrections stop being
/// meaningful, so the spec rejects bounds above this.
pub const MAX_STALENESS: u32 = 8;

/// Staleness bound assumed when the `offpolicy` section omits one.
pub const DEFAULT_STALENESS: u32 = 1;

/// The size strings [`ModelSpec::by_size`] accepts, for error messages.
const KNOWN_ARCHS: &str = "7b, 13b, 34b, 70b";

/// A per-call latency hook: fixed pre- and post-processing seconds charged
/// around one call's execution (data loading, reward post-processing,
/// checkpointing). Resolved from the spec's `hooks` sections by
/// [`GraphSpec::build`] and applied by the runtime master.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallHook {
    /// Name of the call the hook wraps.
    pub call: String,
    /// Seconds added before the call dispatches.
    pub pre_secs: f64,
    /// Seconds added after the call completes.
    pub post_secs: f64,
}

/// One model role declaration: a name calls refer to, plus its architecture
/// (a [`ModelSpec::by_size`] string, optionally with `critic: true` for the
/// scalar-head variant, or a full inline [`ModelSpec`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelDecl {
    /// Role name referenced by calls (`"actor"`, `"reward"`, ...). Calls
    /// sharing a role share parameters and parameter-version dependencies.
    pub role: String,
    /// Architecture size string (`"7b"`, `"13b"`, `"34b"`, `"70b"`).
    /// Mutually exclusive with `spec`.
    pub arch: Option<String>,
    /// With `arch`: use the scalar-head critic variant of the size.
    pub critic: Option<bool>,
    /// Full inline architecture, for models outside the preset family.
    /// Mutually exclusive with `arch`.
    pub spec: Option<ModelSpec>,
}

/// Per-call hook declaration (see [`CallHook`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HookDecl {
    /// Seconds charged before dispatch. Default 0.
    pub pre_secs: Option<f64>,
    /// Seconds charged after completion. Default 0.
    pub post_secs: Option<f64>,
}

/// One model function call declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallDecl {
    /// Unique call name within the graph (`"actor_gen"`).
    pub name: String,
    /// Role of the owning model; must match a [`ModelDecl::role`].
    pub model: String,
    /// Workload category: `"gen"`, `"inf"`, or `"train"`.
    pub kind: String,
    /// Global sequence count entering the call.
    pub batch: u64,
    /// Prompt tokens per sequence (required for `kind: "gen"`).
    pub prompt_len: Option<u64>,
    /// Generated tokens per sequence (required for `kind: "gen"`).
    pub gen_len: Option<u64>,
    /// Tokens per sequence (required for `kind: "inf"` and `"train"`).
    pub seq_len: Option<u64>,
    /// Sequential PPO mini-batch updates (`kind: "train"` only). Default 1.
    pub n_minibatches: Option<u32>,
    /// Data keys consumed. Each must be produced by exactly one call's
    /// `outputs` or declared in the top-level `data` list. Default empty.
    pub inputs: Option<Vec<String>>,
    /// Data keys produced, each by exactly one call. Default empty.
    pub outputs: Option<Vec<String>>,
    /// Optional pre/post latency hook.
    pub hooks: Option<HookDecl>,
}

/// The asynchronous off-policy section: when enabled, generation for
/// iteration `i` waits only for the owning model's training of iteration
/// `i - 1 - staleness` instead of `i - 1`, so generation and training
/// overlap on disjoint meshes (see `docs/DATAFLOWS.md` for the exact
/// semantics and `real-runtime`'s interleaved master loop).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OffPolicyDecl {
    /// Whether async off-policy execution is on. Default `true` when the
    /// section is present.
    pub enabled: Option<bool>,
    /// Staleness bound in parameter versions, `0..=`[`MAX_STALENESS`].
    /// `0` reproduces synchronous execution exactly. Default
    /// [`DEFAULT_STALENESS`].
    pub staleness: Option<u32>,
}

/// The root of a `graph.json` document.
///
/// # Examples
///
/// The built-in constructors export losslessly (the round-trip is
/// byte-identical, test-enforced in `tests/dataflows.rs`):
///
/// ```
/// use real_dataflow::{algo, GraphSpec};
/// use real_model::ModelSpec;
///
/// let actor = ModelSpec::llama3_7b();
/// let graph = algo::dpo(&actor, &algo::RlhfConfig::instruct_gpt(128));
/// let spec = GraphSpec::from_graph(&graph);
/// let rebuilt = spec.build().unwrap().graph;
/// assert_eq!(rebuilt, graph);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphSpec {
    /// Declared model roles.
    pub models: Vec<ModelDecl>,
    /// Externally supplied data keys (the dataset: `"prompts"`, `"pairs"`).
    /// Default empty.
    pub data: Option<Vec<String>>,
    /// Function calls, in declaration order (the order is preserved into
    /// the built graph's call ids).
    pub calls: Vec<CallDecl>,
    /// Optional asynchronous off-policy execution section.
    pub offpolicy: Option<OffPolicyDecl>,
}

/// Everything [`GraphSpec::build`] lowers a valid spec into.
#[derive(Debug, Clone, PartialEq)]
pub struct BuiltGraph {
    /// The validated dataflow graph, identical in shape to what the
    /// [`crate::algo`] constructors produce.
    pub graph: DataflowGraph,
    /// Per-call latency hooks, in call declaration order.
    pub hooks: Vec<CallHook>,
    /// `Some(staleness)` when the spec enables async off-policy execution.
    pub async_staleness: Option<u32>,
}

/// Validation errors from [`GraphSpec::build`]. Every variant is documented
/// with a reproduction snippet in `docs/DATAFLOWS.md`.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The `models` list is empty.
    NoModels,
    /// Two model declarations share a role name.
    DuplicateRole(String),
    /// A model declares neither `arch` nor `spec`.
    MissingArch(String),
    /// A model declares both `arch` and `spec`.
    ConflictingArch(String),
    /// A model's `arch` string is not a known size.
    UnknownArch {
        /// Offending role.
        role: String,
        /// The unrecognized size string.
        arch: String,
    },
    /// A call references an undeclared model role.
    UnknownModel {
        /// Offending call.
        call: String,
        /// The unresolved role name.
        role: String,
    },
    /// A call's `kind` is not `gen`, `inf`, or `train`.
    UnknownKind {
        /// Offending call.
        call: String,
        /// The unrecognized kind string.
        kind: String,
    },
    /// A call omits a dimension its kind requires.
    MissingDim {
        /// Offending call.
        call: String,
        /// The missing field (`prompt_len`, `gen_len`, `seq_len`).
        field: &'static str,
    },
    /// A call dimension that must be positive is zero.
    ZeroDim {
        /// Offending call.
        call: String,
        /// The zero field (`batch`, `n_minibatches`, ...).
        field: &'static str,
    },
    /// A hook duration is negative or not finite.
    BadHook {
        /// Offending call.
        call: String,
        /// The bad field (`pre_secs`, `post_secs`).
        field: &'static str,
    },
    /// A call consumes a data key no call produces and the `data` list does
    /// not declare as external.
    DanglingInput {
        /// Offending call.
        call: String,
        /// The unresolved data key.
        input: String,
    },
    /// The off-policy staleness bound exceeds [`MAX_STALENESS`].
    BadStaleness(u32),
    /// A structural graph error: duplicate call name, duplicate producer,
    /// inconsistent model architecture, empty call list, or a dependency
    /// cycle (see [`GraphError`]).
    Graph(GraphError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NoModels => write!(f, "spec declares no models"),
            SpecError::DuplicateRole(r) => write!(f, "duplicate model role `{r}`"),
            SpecError::MissingArch(r) => {
                write!(f, "model `{r}` declares neither `arch` nor `spec`")
            }
            SpecError::ConflictingArch(r) => {
                write!(f, "model `{r}` declares both `arch` and `spec`")
            }
            SpecError::UnknownArch { role, arch } => {
                write!(
                    f,
                    "model `{role}`: unknown arch `{arch}` (known: {KNOWN_ARCHS})"
                )
            }
            SpecError::UnknownModel { call, role } => {
                write!(f, "call `{call}` references undeclared model `{role}`")
            }
            SpecError::UnknownKind { call, kind } => {
                write!(
                    f,
                    "call `{call}`: unknown kind `{kind}` (gen, inf, or train)"
                )
            }
            SpecError::MissingDim { call, field } => {
                write!(f, "call `{call}` is missing `{field}` for its kind")
            }
            SpecError::ZeroDim { call, field } => {
                write!(f, "call `{call}`: `{field}` must be positive")
            }
            SpecError::BadHook { call, field } => {
                write!(
                    f,
                    "call `{call}`: hook `{field}` must be finite and non-negative"
                )
            }
            SpecError::DanglingInput { call, input } => write!(
                f,
                "call `{call}` consumes `{input}`, which no call produces and \
                 `data` does not declare"
            ),
            SpecError::BadStaleness(s) => {
                write!(
                    f,
                    "offpolicy staleness {s} exceeds the maximum {MAX_STALENESS}"
                )
            }
            SpecError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<GraphError> for SpecError {
    fn from(e: GraphError) -> Self {
        SpecError::Graph(e)
    }
}

impl ModelDecl {
    /// Resolves the declaration to a concrete [`ModelSpec`].
    fn resolve(&self) -> Result<ModelSpec, SpecError> {
        match (&self.arch, &self.spec) {
            (Some(_), Some(_)) => Err(SpecError::ConflictingArch(self.role.clone())),
            (None, None) => Err(SpecError::MissingArch(self.role.clone())),
            (None, Some(spec)) => Ok(spec.clone()),
            (Some(arch), None) => {
                let base = ModelSpec::by_size(arch).ok_or_else(|| SpecError::UnknownArch {
                    role: self.role.clone(),
                    arch: arch.clone(),
                })?;
                Ok(if self.critic.unwrap_or(false) {
                    base.critic()
                } else {
                    base
                })
            }
        }
    }
}

impl CallDecl {
    /// Resolves the `kind` and dimension fields to a [`CallType`].
    fn call_type(&self) -> Result<CallType, SpecError> {
        let need = |v: &Option<u64>, field: &'static str| -> Result<u64, SpecError> {
            v.ok_or(SpecError::MissingDim {
                call: self.name.clone(),
                field,
            })
        };
        if self.batch == 0 {
            return Err(SpecError::ZeroDim {
                call: self.name.clone(),
                field: "batch",
            });
        }
        match self.kind.as_str() {
            "gen" => Ok(CallType::Generate {
                batch: self.batch,
                prompt_len: need(&self.prompt_len, "prompt_len")?,
                gen_len: need(&self.gen_len, "gen_len")?,
            }),
            "inf" => Ok(CallType::Inference {
                batch: self.batch,
                seq_len: need(&self.seq_len, "seq_len")?,
            }),
            "train" => {
                let n_minibatches = self.n_minibatches.unwrap_or(1);
                if n_minibatches == 0 {
                    return Err(SpecError::ZeroDim {
                        call: self.name.clone(),
                        field: "n_minibatches",
                    });
                }
                Ok(CallType::TrainStep {
                    batch: self.batch,
                    seq_len: need(&self.seq_len, "seq_len")?,
                    n_minibatches,
                })
            }
            other => Err(SpecError::UnknownKind {
                call: self.name.clone(),
                kind: other.to_string(),
            }),
        }
    }

    /// Validates and extracts the hook, if any.
    fn hook(&self) -> Result<Option<CallHook>, SpecError> {
        let Some(h) = &self.hooks else {
            return Ok(None);
        };
        let check = |v: f64, field: &'static str| -> Result<f64, SpecError> {
            if v.is_finite() && v >= 0.0 {
                Ok(v)
            } else {
                Err(SpecError::BadHook {
                    call: self.name.clone(),
                    field,
                })
            }
        };
        Ok(Some(CallHook {
            call: self.name.clone(),
            pre_secs: check(h.pre_secs.unwrap_or(0.0), "pre_secs")?,
            post_secs: check(h.post_secs.unwrap_or(0.0), "post_secs")?,
        }))
    }
}

impl GraphSpec {
    /// Validates the spec and lowers it to a [`BuiltGraph`].
    ///
    /// Validation proceeds in a fixed order — model declarations, per-call
    /// kinds/dimensions/hooks, input resolution, structural graph checks
    /// (duplicate names, exactly-once production, acyclicity), then the
    /// off-policy section — so a spec with several problems reports the
    /// same first error deterministically.
    ///
    /// # Errors
    ///
    /// Returns the first [`SpecError`] encountered; see the variant docs
    /// and the catalog in `docs/DATAFLOWS.md`.
    pub fn build(&self) -> Result<BuiltGraph, SpecError> {
        if self.models.is_empty() {
            return Err(SpecError::NoModels);
        }
        let mut roles: Vec<(&str, ModelSpec)> = Vec::with_capacity(self.models.len());
        for m in &self.models {
            if roles.iter().any(|(r, _)| *r == m.role) {
                return Err(SpecError::DuplicateRole(m.role.clone()));
            }
            roles.push((&m.role, m.resolve()?));
        }

        let mut defs = Vec::with_capacity(self.calls.len());
        let mut hooks = Vec::new();
        for c in &self.calls {
            let spec = roles
                .iter()
                .find(|(r, _)| *r == c.model)
                .map(|(_, s)| s.clone())
                .ok_or_else(|| SpecError::UnknownModel {
                    call: c.name.clone(),
                    role: c.model.clone(),
                })?;
            let call_type = c.call_type()?;
            if let Some(h) = c.hook()? {
                hooks.push(h);
            }
            defs.push(ModelFunctionCallDef {
                call_name: c.name.clone(),
                model_name: c.model.clone(),
                model: spec,
                call_type,
                input_data: c.inputs.clone().unwrap_or_default(),
                output_data: c.outputs.clone().unwrap_or_default(),
            });
        }

        // Every consumed key must be produced by some call or declared
        // external; `DataflowGraph::new` would silently treat unknown keys
        // as external, which hides typos.
        let produced: HashSet<&str> = defs
            .iter()
            .flat_map(|d| d.output_data.iter().map(String::as_str))
            .collect();
        let external: HashSet<&str> = self.data.iter().flatten().map(String::as_str).collect();
        for d in &defs {
            for input in &d.input_data {
                if !produced.contains(input.as_str()) && !external.contains(input.as_str()) {
                    return Err(SpecError::DanglingInput {
                        call: d.call_name.clone(),
                        input: input.clone(),
                    });
                }
            }
        }

        let graph = DataflowGraph::new(defs)?;

        let async_staleness = match &self.offpolicy {
            Some(op) if op.enabled.unwrap_or(true) => {
                let s = op.staleness.unwrap_or(DEFAULT_STALENESS);
                if s > MAX_STALENESS {
                    return Err(SpecError::BadStaleness(s));
                }
                Some(s)
            }
            _ => None,
        };

        Ok(BuiltGraph {
            graph,
            hooks,
            async_staleness,
        })
    }

    /// Exports a [`DataflowGraph`] back into the DSL. Architectures that
    /// match a [`ModelSpec::by_size`] preset (or its [`ModelSpec::critic`]
    /// variant) export as the size string; anything else exports inline.
    /// Building the exported spec reproduces the graph byte-identically.
    ///
    /// # Examples
    ///
    /// ```
    /// use real_dataflow::{algo, GraphSpec};
    /// use real_model::ModelSpec;
    ///
    /// let actor = ModelSpec::llama3_7b();
    /// let graph = algo::ppo(&actor, &actor.critic(), &algo::RlhfConfig::instruct_gpt(64));
    /// let spec = GraphSpec::from_graph(&graph);
    /// assert_eq!(spec.models[0].arch.as_deref(), Some("7b"));
    /// assert_eq!(spec.build().unwrap().graph, graph);
    /// ```
    pub fn from_graph(graph: &DataflowGraph) -> Self {
        let models = graph
            .model_names()
            .into_iter()
            .map(|role| {
                let spec = &graph
                    .calls()
                    .iter()
                    .find(|c| c.model_name == role)
                    .expect("model_names() roles come from calls")
                    .model;
                let preset = ["7b", "13b", "34b", "70b"].iter().find_map(|s| {
                    let base = ModelSpec::by_size(s).expect("known size");
                    if *spec == base {
                        Some((s.to_string(), None))
                    } else if *spec == base.critic() {
                        Some((s.to_string(), Some(true)))
                    } else {
                        None
                    }
                });
                match preset {
                    Some((arch, critic)) => ModelDecl {
                        role: role.to_string(),
                        arch: Some(arch),
                        critic,
                        spec: None,
                    },
                    None => ModelDecl {
                        role: role.to_string(),
                        arch: None,
                        critic: None,
                        spec: Some(spec.clone()),
                    },
                }
            })
            .collect();

        // External keys: consumed but never produced, in first-use order.
        let produced: HashSet<&str> = graph
            .calls()
            .iter()
            .flat_map(|c| c.output_data.iter().map(String::as_str))
            .collect();
        let mut data = Vec::new();
        for c in graph.calls() {
            for input in &c.input_data {
                if !produced.contains(input.as_str()) && !data.contains(input) {
                    data.push(input.clone());
                }
            }
        }

        let calls = graph
            .calls()
            .iter()
            .map(|c| {
                let (kind, prompt_len, gen_len, seq_len, n_minibatches) = match c.call_type {
                    CallType::Generate {
                        prompt_len,
                        gen_len,
                        ..
                    } => ("gen", Some(prompt_len), Some(gen_len), None, None),
                    CallType::Inference { seq_len, .. } => ("inf", None, None, Some(seq_len), None),
                    CallType::TrainStep {
                        seq_len,
                        n_minibatches,
                        ..
                    } => ("train", None, None, Some(seq_len), Some(n_minibatches)),
                };
                CallDecl {
                    name: c.call_name.clone(),
                    model: c.model_name.clone(),
                    kind: kind.to_string(),
                    batch: c.call_type.batch(),
                    prompt_len,
                    gen_len,
                    seq_len,
                    n_minibatches,
                    inputs: (!c.input_data.is_empty()).then(|| c.input_data.clone()),
                    outputs: (!c.output_data.is_empty()).then(|| c.output_data.clone()),
                    hooks: None,
                }
            })
            .collect();

        Self {
            models,
            data: (!data.is_empty()).then_some(data),
            calls,
            offpolicy: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{self, RlhfConfig};

    fn minimal_json() -> &'static str {
        r#"{
            "models": [{"role": "m", "arch": "7b"}],
            "data": ["prompts"],
            "calls": [
                {"name": "m_gen", "model": "m", "kind": "gen",
                 "batch": 8, "prompt_len": 128, "gen_len": 128,
                 "inputs": ["prompts"], "outputs": ["seq"]},
                {"name": "m_train", "model": "m", "kind": "train",
                 "batch": 8, "seq_len": 256, "inputs": ["seq"]}
            ]
        }"#
    }

    #[test]
    fn minimal_spec_builds() {
        let spec: GraphSpec = serde_json::from_str(minimal_json()).unwrap();
        let built = spec.build().unwrap();
        assert_eq!(built.graph.n_calls(), 2);
        assert!(built.hooks.is_empty());
        assert_eq!(built.async_staleness, None);
        // n_minibatches defaults to 1.
        let train = built.graph.find("m_train").unwrap();
        assert_eq!(
            built.graph.call(train).call_type,
            CallType::TrainStep {
                batch: 8,
                seq_len: 256,
                n_minibatches: 1
            }
        );
    }

    #[test]
    fn spec_json_round_trips() {
        let spec: GraphSpec = serde_json::from_str(minimal_json()).unwrap();
        let json = serde_json::to_string(&spec).unwrap();
        let back: GraphSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.build().unwrap(), spec.build().unwrap());
    }

    #[test]
    fn constructors_round_trip_byte_identically() {
        let actor = ModelSpec::llama3_7b();
        let critic = actor.critic();
        let cfg = RlhfConfig::instruct_gpt(64);
        for graph in [
            algo::ppo(&actor, &critic, &cfg),
            algo::dpo(&actor, &cfg),
            algo::grpo(&actor, &critic, &cfg),
            algo::remax(&actor, &critic, &cfg),
            algo::raft(&actor, &critic, &cfg),
            algo::iterative_dpo(&actor, &critic, &cfg),
        ] {
            let spec = GraphSpec::from_graph(&graph);
            let rebuilt = spec.build().unwrap().graph;
            assert_eq!(rebuilt, graph);
            assert_eq!(
                serde_json::to_string(&rebuilt).unwrap(),
                serde_json::to_string(&graph).unwrap()
            );
        }
    }

    #[test]
    fn inline_spec_round_trips() {
        let mut tiny = ModelSpec::llama3_7b();
        tiny.name = "tiny".to_string();
        tiny.n_layers = 4;
        let graph = algo::dpo(&tiny, &RlhfConfig::instruct_gpt(16));
        let spec = GraphSpec::from_graph(&graph);
        assert!(spec.models[0].arch.is_none());
        assert_eq!(spec.models[0].spec.as_ref().unwrap().n_layers, 4);
        assert_eq!(spec.build().unwrap().graph, graph);
    }

    #[test]
    fn hooks_and_offpolicy_lower() {
        let json = r#"{
            "models": [{"role": "m", "arch": "7b"}],
            "data": ["prompts"],
            "calls": [
                {"name": "m_gen", "model": "m", "kind": "gen",
                 "batch": 8, "prompt_len": 64, "gen_len": 64,
                 "inputs": ["prompts"], "outputs": ["seq"],
                 "hooks": {"pre_secs": 0.5}},
                {"name": "m_train", "model": "m", "kind": "train",
                 "batch": 8, "seq_len": 128, "inputs": ["seq"]}
            ],
            "offpolicy": {"staleness": 2}
        }"#;
        let built = serde_json::from_str::<GraphSpec>(json)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(
            built.hooks,
            vec![CallHook {
                call: "m_gen".to_string(),
                pre_secs: 0.5,
                post_secs: 0.0
            }]
        );
        assert_eq!(built.async_staleness, Some(2));
    }

    #[test]
    fn offpolicy_defaults_and_disable() {
        let base: GraphSpec = serde_json::from_str(minimal_json()).unwrap();
        let mut on = base.clone();
        on.offpolicy = Some(OffPolicyDecl {
            enabled: None,
            staleness: None,
        });
        assert_eq!(on.build().unwrap().async_staleness, Some(DEFAULT_STALENESS));
        let mut off = base;
        off.offpolicy = Some(OffPolicyDecl {
            enabled: Some(false),
            staleness: Some(3),
        });
        assert_eq!(off.build().unwrap().async_staleness, None);
    }

    fn with_calls(mutate: impl FnOnce(&mut GraphSpec)) -> Result<BuiltGraph, SpecError> {
        let mut spec: GraphSpec = serde_json::from_str(minimal_json()).unwrap();
        mutate(&mut spec);
        spec.build()
    }

    #[test]
    fn rejection_catalog() {
        // NoModels.
        let err = with_calls(|s| s.models.clear()).unwrap_err();
        assert_eq!(err, SpecError::NoModels);

        // DuplicateRole.
        let err = with_calls(|s| s.models.push(s.models[0].clone())).unwrap_err();
        assert!(matches!(err, SpecError::DuplicateRole(r) if r == "m"));

        // MissingArch / ConflictingArch / UnknownArch.
        let err = with_calls(|s| s.models[0].arch = None).unwrap_err();
        assert!(matches!(err, SpecError::MissingArch(_)));
        let err = with_calls(|s| s.models[0].spec = Some(ModelSpec::llama3_7b())).unwrap_err();
        assert!(matches!(err, SpecError::ConflictingArch(_)));
        let err = with_calls(|s| s.models[0].arch = Some("8t".into())).unwrap_err();
        assert!(matches!(err, SpecError::UnknownArch { arch, .. } if arch == "8t"));

        // UnknownModel / UnknownKind.
        let err = with_calls(|s| s.calls[0].model = "ghost".into()).unwrap_err();
        assert!(matches!(err, SpecError::UnknownModel { role, .. } if role == "ghost"));
        let err = with_calls(|s| s.calls[0].kind = "dream".into()).unwrap_err();
        assert!(matches!(err, SpecError::UnknownKind { kind, .. } if kind == "dream"));

        // MissingDim / ZeroDim.
        let err = with_calls(|s| s.calls[0].gen_len = None).unwrap_err();
        assert!(matches!(
            err,
            SpecError::MissingDim {
                field: "gen_len",
                ..
            }
        ));
        let err = with_calls(|s| s.calls[1].seq_len = None).unwrap_err();
        assert!(matches!(
            err,
            SpecError::MissingDim {
                field: "seq_len",
                ..
            }
        ));
        let err = with_calls(|s| s.calls[0].batch = 0).unwrap_err();
        assert!(matches!(err, SpecError::ZeroDim { field: "batch", .. }));
        let err = with_calls(|s| s.calls[1].n_minibatches = Some(0)).unwrap_err();
        assert!(matches!(
            err,
            SpecError::ZeroDim {
                field: "n_minibatches",
                ..
            }
        ));

        // BadHook.
        let err = with_calls(|s| {
            s.calls[0].hooks = Some(HookDecl {
                pre_secs: Some(-1.0),
                post_secs: None,
            });
        })
        .unwrap_err();
        assert!(matches!(
            err,
            SpecError::BadHook {
                field: "pre_secs",
                ..
            }
        ));

        // DanglingInput.
        let err = with_calls(|s| s.calls[1].inputs = Some(vec!["sq".into()])).unwrap_err();
        assert!(matches!(err, SpecError::DanglingInput { input, .. } if input == "sq"));

        // BadStaleness.
        let err = with_calls(|s| {
            s.offpolicy = Some(OffPolicyDecl {
                enabled: None,
                staleness: Some(MAX_STALENESS + 1),
            });
        })
        .unwrap_err();
        assert_eq!(err, SpecError::BadStaleness(MAX_STALENESS + 1));

        // Structural errors surface as Graph(..): duplicate producer.
        let err = with_calls(|s| {
            let mut dup = s.calls[0].clone();
            dup.name = "m_gen2".into();
            s.calls.push(dup);
        })
        .unwrap_err();
        assert!(matches!(err, SpecError::Graph(GraphError::DuplicateOutput(k)) if k == "seq"));

        // ... duplicate call name.
        let err = with_calls(|s| {
            let mut dup = s.calls[0].clone();
            dup.outputs = None;
            s.calls.push(dup);
        })
        .unwrap_err();
        assert!(matches!(
            err,
            SpecError::Graph(GraphError::DuplicateCall(_))
        ));

        // ... and a dependency cycle.
        let err = with_calls(|s| {
            s.calls[0].inputs = Some(vec!["prompts".into(), "grads".into()]);
            s.calls[1].outputs = Some(vec!["grads".into()]);
        })
        .unwrap_err();
        assert_eq!(err, SpecError::Graph(GraphError::Cyclic));
    }

    #[test]
    fn error_messages_name_the_offender() {
        let err = with_calls(|s| s.calls[0].model = "ghost".into()).unwrap_err();
        assert_eq!(
            err.to_string(),
            "call `m_gen` references undeclared model `ghost`"
        );
        let err = with_calls(|s| s.calls[1].inputs = Some(vec!["sq".into()])).unwrap_err();
        assert!(err.to_string().contains("`sq`"), "{err}");
    }
}
