//! Model function calls: the unit of scheduling in ReaL.

use real_model::ModelSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a call within its [`crate::DataflowGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CallId(pub usize);

impl fmt::Display for CallId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "call#{}", self.0)
    }
}

/// The three workload kinds an RLHF iteration is built from (§2.1).
///
/// All batch sizes are *global* sequence counts; the execution plan's DP
/// degree decides the per-replica share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CallType {
    /// Auto-regressive generation: a prefill over `prompt_len` tokens per
    /// sequence followed by `gen_len` decoding steps.
    Generate {
        /// Global number of prompts.
        batch: u64,
        /// Prompt tokens per sequence.
        prompt_len: u64,
        /// Tokens to generate per sequence.
        gen_len: u64,
    },
    /// A single forward pass over complete sequences.
    Inference {
        /// Global number of sequences.
        batch: u64,
        /// Tokens per sequence.
        seq_len: u64,
    },
    /// A supervised training step: forward, backward, parameter update. PPO
    /// splits the batch into `n_minibatches` sequential update rounds, each
    /// of which must see the previous round's updated parameters (§2.1) —
    /// unlike gradient accumulation.
    TrainStep {
        /// Global number of sequences.
        batch: u64,
        /// Tokens per sequence.
        seq_len: u64,
        /// PPO mini-batches (sequential parameter updates).
        n_minibatches: u32,
    },
}

impl CallType {
    /// Global sequence count entering the call.
    pub fn batch(&self) -> u64 {
        match *self {
            CallType::Generate { batch, .. }
            | CallType::Inference { batch, .. }
            | CallType::TrainStep { batch, .. } => batch,
        }
    }

    /// Total tokens the call touches per sequence (context length for
    /// memory purposes).
    pub fn seq_len(&self) -> u64 {
        match *self {
            CallType::Generate {
                prompt_len,
                gen_len,
                ..
            } => prompt_len + gen_len,
            CallType::Inference { seq_len, .. } => seq_len,
            CallType::TrainStep { seq_len, .. } => seq_len,
        }
    }

    /// Global token count processed by the call.
    pub fn total_tokens(&self) -> u64 {
        self.batch() * self.seq_len()
    }

    /// Whether this call updates model parameters.
    pub fn is_training(&self) -> bool {
        matches!(self, CallType::TrainStep { .. })
    }

    /// Short label for displays: `gen`, `inf`, or `train`.
    pub fn label(&self) -> &'static str {
        match self {
            CallType::Generate { .. } => "gen",
            CallType::Inference { .. } => "inf",
            CallType::TrainStep { .. } => "train",
        }
    }
}

/// Definition of one model function call — the Rust analogue of the paper's
/// `ModelFunctionCallDef` (Appendix B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelFunctionCallDef {
    /// Unique call name within the workflow, e.g. `"actor_gen"`.
    pub call_name: String,
    /// Owning model name; calls sharing a `model_name` share parameters and
    /// form parameter-version dependencies across iterations.
    pub model_name: String,
    /// Architecture of the owning model.
    pub model: ModelSpec,
    /// Workload kind and sizes.
    pub call_type: CallType,
    /// Names of data items consumed (e.g. `"prompts"`, `"seq"`).
    pub input_data: Vec<String>,
    /// Names of data items produced (e.g. `"seq"`, `"rewards"`).
    pub output_data: Vec<String>,
}

impl ModelFunctionCallDef {
    /// Approximate total FLOPs of this call: the standard 2·P per processed
    /// token for forwards (prefill, decode, inference) and 6·P per token
    /// for training (forward + backward), ignoring the small attention
    /// correction. Used for MFU reporting.
    pub fn approx_flops(&self) -> f64 {
        let p = self.model.param_count() as f64;
        match self.call_type {
            CallType::Generate {
                batch,
                prompt_len,
                gen_len,
            } => 2.0 * p * (batch * (prompt_len + gen_len)) as f64,
            CallType::Inference { batch, seq_len } => 2.0 * p * (batch * seq_len) as f64,
            CallType::TrainStep { batch, seq_len, .. } => 6.0 * p * (batch * seq_len) as f64,
        }
    }

    /// Convenience constructor.
    pub fn new(
        call_name: impl Into<String>,
        model_name: impl Into<String>,
        model: ModelSpec,
        call_type: CallType,
        input_data: &[&str],
        output_data: &[&str],
    ) -> Self {
        Self {
            call_name: call_name.into(),
            model_name: model_name.into(),
            model,
            call_type,
            input_data: input_data.iter().map(|s| s.to_string()).collect(),
            output_data: output_data.iter().map(|s| s.to_string()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_context_is_prompt_plus_gen() {
        let c = CallType::Generate {
            batch: 8,
            prompt_len: 1024,
            gen_len: 1024,
        };
        assert_eq!(c.seq_len(), 2048);
        assert_eq!(c.total_tokens(), 8 * 2048);
        assert!(!c.is_training());
        assert_eq!(c.label(), "gen");
    }

    #[test]
    fn train_step_reports_training() {
        let c = CallType::TrainStep {
            batch: 4,
            seq_len: 128,
            n_minibatches: 8,
        };
        assert!(c.is_training());
        assert_eq!(c.batch(), 4);
        assert_eq!(c.label(), "train");
    }

    #[test]
    fn inference_token_count() {
        let c = CallType::Inference {
            batch: 16,
            seq_len: 256,
        };
        assert_eq!(c.total_tokens(), 4096);
        assert_eq!(c.label(), "inf");
    }

    #[test]
    fn def_constructor_copies_data_keys() {
        let d = ModelFunctionCallDef::new(
            "actor_gen",
            "actor",
            ModelSpec::llama3_7b(),
            CallType::Generate {
                batch: 4,
                prompt_len: 8,
                gen_len: 8,
            },
            &["prompts"],
            &["seq", "logp"],
        );
        assert_eq!(d.input_data, vec!["prompts"]);
        assert_eq!(d.output_data, vec!["seq", "logp"]);
        assert_eq!(d.call_name, "actor_gen");
    }

    #[test]
    fn approx_flops_scales_with_work() {
        let gen = ModelFunctionCallDef::new(
            "g",
            "m",
            ModelSpec::llama3_7b(),
            CallType::Generate {
                batch: 4,
                prompt_len: 8,
                gen_len: 8,
            },
            &[],
            &[],
        );
        let p = ModelSpec::llama3_7b().param_count() as f64;
        assert_eq!(gen.approx_flops(), 2.0 * p * 64.0);
        let train = ModelFunctionCallDef::new(
            "t",
            "m",
            ModelSpec::llama3_7b(),
            CallType::TrainStep {
                batch: 4,
                seq_len: 16,
                n_minibatches: 8,
            },
            &[],
            &[],
        );
        // Mini-batches do not change the total work.
        assert_eq!(train.approx_flops(), 6.0 * p * 64.0);
    }

    #[test]
    fn call_id_display() {
        assert_eq!(CallId(3).to_string(), "call#3");
    }
}
