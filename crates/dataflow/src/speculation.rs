//! Speculative-decoding plan choices.
//!
//! A [`SpecChoice`] attaches a draft/verify speculative-decode configuration
//! to one generation call of an [`crate::ExecutionPlan`]: which draft model
//! drafts, how (its own mesh + parallel strategy, priced through the same
//! mesh enumeration as every other call), and the speculation length and
//! acceptance curve that govern the round economics. It is the first plan
//! dimension that changes *what* work runs, not just where.

use crate::plan::CallAssignment;
use real_model::specdec::SpecDecodeConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One generation call's speculative-decoding choice: the draft/verify
/// configuration plus the draft model's placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecChoice {
    /// Draft model, speculation length, and acceptance curve.
    pub config: SpecDecodeConfig,
    /// Where the draft model lives and how it parallelizes. May overlap
    /// (or colocate with) the target's mesh: draft and verify alternate
    /// sequentially within a round, so sharing GPUs is legal — the
    /// estimator's Algorithm-1 serialization and the runtime's virtual
    /// clock both account for it.
    pub assignment: CallAssignment,
}

impl SpecChoice {
    /// Validates the configuration and that the draft placement is
    /// internally consistent (strategy fills the mesh, TP within the draft's
    /// KV-head bound, PP within its layer count).
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        self.config.validate()?;
        let s = &self.assignment.strategy;
        if s.world_size() != self.assignment.mesh.n_gpus() {
            return Err(format!(
                "draft strategy world {} != draft mesh size {}",
                s.world_size(),
                self.assignment.mesh.n_gpus()
            ));
        }
        let draft = &self.config.draft_model;
        if u64::from(s.tp()) > draft.max_tp() {
            return Err(format!(
                "draft tp {} exceeds draft max_tp {}",
                s.tp(),
                draft.max_tp()
            ));
        }
        if u64::from(s.pp()) > draft.n_layers {
            return Err(format!(
                "draft pp {} exceeds draft layer count {}",
                s.pp(),
                draft.n_layers
            ));
        }
        Ok(())
    }
}

impl fmt::Display for SpecChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "spec(draft={}, k={}) {}",
            self.config.draft_model.name, self.config.speculation_len, self.assignment
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use real_cluster::{ClusterSpec, DeviceMesh};
    use real_model::specdec::AcceptanceCurve;
    use real_model::{ModelSpec, ParallelStrategy};

    fn choice(k: u32) -> SpecChoice {
        let cluster = ClusterSpec::h100(1);
        SpecChoice {
            config: SpecDecodeConfig {
                draft_model: ModelSpec::llama3_1b(),
                speculation_len: k,
                acceptance_curve: AcceptanceCurve::Constant(0.8),
            },
            assignment: CallAssignment::new(
                DeviceMesh::sub_node(&cluster, 0, 0, 2).unwrap(),
                ParallelStrategy::new(1, 2, 1, 1).unwrap(),
            )
            .unwrap(),
        }
    }

    #[test]
    fn valid_choice_passes() {
        choice(5).validate().unwrap();
    }

    #[test]
    fn zero_k_rejected() {
        assert!(choice(0).validate().is_err());
    }

    #[test]
    fn overlarge_draft_tp_rejected() {
        let mut c = choice(5);
        c.assignment.strategy = ParallelStrategy::new(1, 16, 1, 1).unwrap();
        c.assignment.mesh = DeviceMesh::whole_nodes(&ClusterSpec::h100(2), 0, 2).unwrap();
        assert!(c.validate().is_err());
    }

    #[test]
    fn display_names_draft_and_k() {
        let s = choice(5).to_string();
        assert!(s.contains("llama3-1b"), "{s}");
        assert!(s.contains("k=5"), "{s}");
    }

    #[test]
    fn serde_round_trip() {
        let c = choice(4);
        let json = serde_json::to_string(&c).unwrap();
        let back: SpecChoice = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
