//! Execution plans (§4): the assignment of a device mesh and a
//! parallelization strategy to every model function call of one iteration.

use crate::call::CallId;
use crate::graph::DataflowGraph;
use crate::speculation::SpecChoice;
use real_cluster::{ClusterSpec, DeviceMesh};
use real_model::ParallelStrategy;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One call's resources: where it runs and how it parallelizes.
///
/// `Eq + Hash` (both components are plain integers) so assignments can key
/// memoization tables in the estimator's fast pricing path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CallAssignment {
    /// The device mesh executing the call.
    pub mesh: DeviceMesh,
    /// The 3D strategy plus micro-batch count.
    pub strategy: ParallelStrategy,
}

impl CallAssignment {
    /// Creates an assignment, checking that the strategy exactly fills the
    /// mesh (the paper prunes under-filled meshes as guaranteed idle time).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::ShapeMismatch`] when `dp·tp·pp != |mesh|`.
    pub fn new(mesh: DeviceMesh, strategy: ParallelStrategy) -> Result<Self, PlanError> {
        if strategy.world_size() != mesh.n_gpus() {
            return Err(PlanError::ShapeMismatch {
                world: strategy.world_size(),
                mesh_gpus: mesh.n_gpus(),
            });
        }
        Ok(Self { mesh, strategy })
    }

    /// Whether TP collectives stay on NVLink: TP groups map to consecutive
    /// ranks, so they stay within a node iff `tp` fits the mesh's per-node
    /// width.
    pub fn tp_within_node(&self) -> bool {
        self.strategy.tp() <= self.mesh.gpu_width()
    }

    /// Whether DP gradient all-reduces stay within a node (each DP group
    /// spans `dp·tp` consecutive ranks).
    pub fn dp_within_node(&self) -> bool {
        self.strategy.dp() * self.strategy.tp() <= self.mesh.gpu_width()
    }

    /// Whether pipeline-stage boundaries stay within a node. Conservative:
    /// true only when the whole strategy fits one node.
    pub fn pp_within_node(&self) -> bool {
        self.mesh.n_nodes() == 1
    }
}

impl fmt::Display for CallAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.strategy, self.mesh)
    }
}

/// Errors from building or validating an [`ExecutionPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The strategy's world size differs from the mesh size.
    ShapeMismatch {
        /// `dp·tp·pp` of the offending strategy.
        world: u32,
        /// GPUs in the offending mesh.
        mesh_gpus: u32,
    },
    /// Number of assignments differs from the graph's call count.
    WrongLength {
        /// Assignments provided.
        got: usize,
        /// Calls in the graph.
        expected: usize,
    },
    /// A strategy degree is unsupported by the call's model or workload.
    Unsupported {
        /// Offending call.
        call: CallId,
        /// Human-readable reason.
        reason: String,
    },
    /// A mesh does not belong to the given cluster.
    ForeignMesh(CallId),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::ShapeMismatch { world, mesh_gpus } => {
                write!(f, "strategy world {world} != mesh size {mesh_gpus}")
            }
            PlanError::WrongLength { got, expected } => {
                write!(f, "plan has {got} assignments, graph has {expected} calls")
            }
            PlanError::Unsupported { call, reason } => {
                write!(f, "unsupported assignment for {call}: {reason}")
            }
            PlanError::ForeignMesh(c) => write!(f, "mesh of {c} is not within the cluster"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A complete execution plan: one [`CallAssignment`] per graph call, plus
/// an optional speculative-decoding choice per generation call.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionPlan {
    assignments: Vec<CallAssignment>,
    /// Per-call speculation choices. Either empty (no speculation anywhere —
    /// the default) or exactly `assignments.len()` long.
    spec: Vec<Option<SpecChoice>>,
}

// Hand-written serde: the `spec` member is omitted when empty, so
// speculation-free plans serialize byte-identically to pre-speculation
// plans, and pre-speculation JSON (no `spec` key) still deserializes.
impl Serialize for ExecutionPlan {
    fn to_value(&self) -> serde::Value {
        let mut obj = vec![("assignments".to_string(), self.assignments.to_value())];
        if !self.spec.is_empty() {
            obj.push(("spec".to_string(), self.spec.to_value()));
        }
        serde::Value::Object(obj)
    }
}

impl Deserialize for ExecutionPlan {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let assignments = Vec::<CallAssignment>::from_value(
            v.get("assignments")
                .ok_or_else(|| serde::Error::custom("plan missing `assignments`"))?,
        )?;
        let spec = match v.get("spec") {
            Some(s) => Vec::<Option<SpecChoice>>::from_value(s)?,
            None => Vec::new(),
        };
        if !spec.is_empty() && spec.len() != assignments.len() {
            return Err(serde::Error::custom(format!(
                "plan has {} spec entries for {} assignments",
                spec.len(),
                assignments.len()
            )));
        }
        Ok(Self { assignments, spec })
    }
}

impl ExecutionPlan {
    /// Builds a plan and validates it against the workflow and cluster.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] when the assignment list length mismatches
    /// the graph, a mesh lies outside the cluster, a TP degree exceeds the
    /// model's KV-head bound, a PP degree exceeds the layer count, or a DP
    /// degree exceeds the call's global batch.
    pub fn new(
        graph: &DataflowGraph,
        cluster: &ClusterSpec,
        assignments: Vec<CallAssignment>,
    ) -> Result<Self, PlanError> {
        if assignments.len() != graph.n_calls() {
            return Err(PlanError::WrongLength {
                got: assignments.len(),
                expected: graph.n_calls(),
            });
        }
        for (i, a) in assignments.iter().enumerate() {
            let id = CallId(i);
            let call = graph.call(id);
            let mesh_end_node = a.mesh.node_start() + a.mesh.n_nodes();
            if mesh_end_node > cluster.n_nodes || a.mesh.gpus_per_node() != cluster.gpus_per_node {
                return Err(PlanError::ForeignMesh(id));
            }
            let s = &a.strategy;
            if s.world_size() != a.mesh.n_gpus() {
                return Err(PlanError::ShapeMismatch {
                    world: s.world_size(),
                    mesh_gpus: a.mesh.n_gpus(),
                });
            }
            if u64::from(s.tp()) > call.model.max_tp() {
                return Err(PlanError::Unsupported {
                    call: id,
                    reason: format!("tp {} exceeds model max_tp {}", s.tp(), call.model.max_tp()),
                });
            }
            if u64::from(s.pp()) > call.model.n_layers {
                return Err(PlanError::Unsupported {
                    call: id,
                    reason: format!("pp {} exceeds {} layers", s.pp(), call.model.n_layers),
                });
            }
            if u64::from(s.dp()) > call.call_type.batch() {
                return Err(PlanError::Unsupported {
                    call: id,
                    reason: format!(
                        "dp {} exceeds global batch {}",
                        s.dp(),
                        call.call_type.batch()
                    ),
                });
            }
        }
        Ok(Self {
            assignments,
            spec: Vec::new(),
        })
    }

    /// The assignment of a call.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn assignment(&self, id: CallId) -> &CallAssignment {
        &self.assignments[id.0]
    }

    /// All assignments in call order.
    pub fn assignments(&self) -> &[CallAssignment] {
        &self.assignments
    }

    /// Replaces one call's assignment (the MCMC transition), revalidating
    /// only the local shape constraint.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::ShapeMismatch`] if the new assignment is
    /// internally inconsistent.
    pub fn with_assignment(&self, id: CallId, a: CallAssignment) -> Result<Self, PlanError> {
        if a.strategy.world_size() != a.mesh.n_gpus() {
            return Err(PlanError::ShapeMismatch {
                world: a.strategy.world_size(),
                mesh_gpus: a.mesh.n_gpus(),
            });
        }
        let mut next = self.clone();
        next.assignments[id.0] = a;
        Ok(next)
    }

    /// Whether two calls are placed on overlapping GPU sets (they must then
    /// serialize — the constraint in Algorithm 1).
    pub fn overlapping(&self, a: CallId, b: CallId) -> bool {
        self.assignments[a.0]
            .mesh
            .overlaps(&self.assignments[b.0].mesh)
    }

    /// The speculative-decoding choice of a call, if any.
    pub fn spec_choice(&self, id: CallId) -> Option<&SpecChoice> {
        self.spec.get(id.0).and_then(Option::as_ref)
    }

    /// Whether any call in the plan uses speculative decoding.
    pub fn has_speculation(&self) -> bool {
        self.spec.iter().any(Option::is_some)
    }

    /// All calls with a speculation choice, in call order.
    pub fn spec_choices(&self) -> impl Iterator<Item = (CallId, &SpecChoice)> + '_ {
        self.spec
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|c| (CallId(i), c)))
    }

    /// Sets or clears one call's speculation choice (the MCMC speculation
    /// transition). Clearing the last active choice normalizes back to the
    /// empty (speculation-free) representation, so toggling speculation on
    /// and off round-trips to a plan equal to the original.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Unsupported`] when the choice fails
    /// [`SpecChoice::validate`].
    pub fn with_spec(&self, id: CallId, choice: Option<SpecChoice>) -> Result<Self, PlanError> {
        if let Some(c) = &choice {
            c.validate()
                .map_err(|reason| PlanError::Unsupported { call: id, reason })?;
        }
        let mut next = self.clone();
        if next.spec.is_empty() {
            next.spec = vec![None; next.assignments.len()];
        }
        next.spec[id.0] = choice;
        if next.spec.iter().all(Option::is_none) {
            next.spec.clear();
        }
        Ok(next)
    }

    /// Renders the plan as a table like the paper's Tables 2–5.
    pub fn render(&self, graph: &DataflowGraph) -> String {
        let mut t = real_util::Table::new(vec![
            "call",
            "device mesh",
            "TP",
            "PP",
            "DP",
            "#micro-batches",
        ]);
        for (id, call) in graph.iter() {
            let a = &self.assignments[id.0];
            t.row(vec![
                call.call_name.clone(),
                a.mesh.to_string(),
                a.strategy.tp().to_string(),
                a.strategy.pp().to_string(),
                a.strategy.dp().to_string(),
                a.strategy.micro_batches().to_string(),
            ]);
        }
        let mut out = t.render();
        if self.has_speculation() {
            let mut s = real_util::Table::new(vec!["call", "draft", "k", "draft mesh", "TP/PP/DP"]);
            for (id, c) in self.spec_choices() {
                let st = &c.assignment.strategy;
                s.row(vec![
                    graph.call(id).call_name.clone(),
                    c.config.draft_model.name.clone(),
                    c.config.speculation_len.to_string(),
                    c.assignment.mesh.to_string(),
                    format!("{}/{}/{}", st.tp(), st.pp(), st.dp()),
                ]);
            }
            out.push_str("\nspeculative decoding:\n");
            out.push_str(&s.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{ppo, RlhfConfig};
    use real_model::ModelSpec;

    fn setup() -> (ClusterSpec, DataflowGraph) {
        let cluster = ClusterSpec::h100(2);
        let graph = ppo(
            &ModelSpec::llama3_7b(),
            &ModelSpec::llama3_7b().critic(),
            &RlhfConfig::instruct_gpt(512),
        );
        (cluster, graph)
    }

    fn full_assignment(cluster: &ClusterSpec, dp: u32, tp: u32, pp: u32) -> CallAssignment {
        CallAssignment::new(
            DeviceMesh::full(cluster),
            ParallelStrategy::new(dp, tp, pp, 4).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn assignment_rejects_underfilled_mesh() {
        let cluster = ClusterSpec::h100(2);
        let err = CallAssignment::new(
            DeviceMesh::full(&cluster),
            ParallelStrategy::new(1, 2, 2, 1).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            PlanError::ShapeMismatch {
                world: 4,
                mesh_gpus: 16
            }
        ));
    }

    #[test]
    fn symmetric_plan_validates() {
        let (cluster, graph) = setup();
        let a = full_assignment(&cluster, 2, 8, 1);
        let plan = ExecutionPlan::new(&graph, &cluster, vec![a; graph.n_calls()]).unwrap();
        assert_eq!(plan.assignments().len(), 6);
    }

    #[test]
    fn plan_rejects_wrong_length() {
        let (cluster, graph) = setup();
        let a = full_assignment(&cluster, 2, 8, 1);
        let err = ExecutionPlan::new(&graph, &cluster, vec![a; 3]).unwrap_err();
        assert!(matches!(
            err,
            PlanError::WrongLength {
                got: 3,
                expected: 6
            }
        ));
    }

    #[test]
    fn plan_rejects_tp_beyond_kv_heads() {
        let (cluster, graph) = setup();
        // 7B has 8 KV heads; tp=16 is unsupported.
        let a = full_assignment(&cluster, 1, 16, 1);
        let err = ExecutionPlan::new(&graph, &cluster, vec![a; 6]).unwrap_err();
        assert!(matches!(err, PlanError::Unsupported { .. }), "{err}");
    }

    #[test]
    fn plan_rejects_foreign_mesh() {
        let (_, graph) = setup();
        let big = ClusterSpec::h100(4);
        let small = ClusterSpec::h100(2);
        let a = CallAssignment::new(
            DeviceMesh::whole_nodes(&big, 2, 2).unwrap(),
            ParallelStrategy::new(2, 8, 1, 1).unwrap(),
        )
        .unwrap();
        let err = ExecutionPlan::new(&graph, &small, vec![a; 6]).unwrap_err();
        assert!(matches!(err, PlanError::ForeignMesh(_)));
    }

    #[test]
    fn plan_rejects_dp_beyond_batch() {
        let cluster = ClusterSpec::h100(2);
        let graph = ppo(
            &ModelSpec::llama3_7b(),
            &ModelSpec::llama3_7b().critic(),
            &RlhfConfig::instruct_gpt(8), // tiny batch
        );
        let a = full_assignment(&cluster, 16, 1, 1);
        let err = ExecutionPlan::new(&graph, &cluster, vec![a; 6]).unwrap_err();
        assert!(matches!(err, PlanError::Unsupported { .. }));
    }

    #[test]
    fn locality_queries() {
        let cluster = ClusterSpec::h100(2);
        let a = full_assignment(&cluster, 2, 8, 1);
        assert!(a.tp_within_node());
        assert!(!a.dp_within_node()); // dp*tp = 16 > 8
        assert!(!a.pp_within_node()); // 2 nodes

        let sub = CallAssignment::new(
            DeviceMesh::sub_node(&cluster, 0, 0, 4).unwrap(),
            ParallelStrategy::new(2, 2, 1, 1).unwrap(),
        )
        .unwrap();
        assert!(sub.tp_within_node());
        assert!(sub.dp_within_node());
        assert!(sub.pp_within_node());
    }

    #[test]
    fn with_assignment_replaces_one_call() {
        let (cluster, graph) = setup();
        let a = full_assignment(&cluster, 2, 8, 1);
        let plan = ExecutionPlan::new(&graph, &cluster, vec![a; 6]).unwrap();
        let half = CallAssignment::new(
            DeviceMesh::whole_nodes(&cluster, 0, 1).unwrap(),
            ParallelStrategy::new(1, 8, 1, 2).unwrap(),
        )
        .unwrap();
        let id = graph.find("actor_gen").unwrap();
        let next = plan.with_assignment(id, half).unwrap();
        assert_eq!(next.assignment(id).mesh.n_gpus(), 8);
        // Other calls untouched.
        assert_eq!(
            next.assignment(graph.find("actor_train").unwrap())
                .mesh
                .n_gpus(),
            16
        );
    }

    #[test]
    fn overlap_detection() {
        let (cluster, graph) = setup();
        let left = CallAssignment::new(
            DeviceMesh::whole_nodes(&cluster, 0, 1).unwrap(),
            ParallelStrategy::new(1, 8, 1, 1).unwrap(),
        )
        .unwrap();
        let right = CallAssignment::new(
            DeviceMesh::whole_nodes(&cluster, 1, 1).unwrap(),
            ParallelStrategy::new(1, 8, 1, 1).unwrap(),
        )
        .unwrap();
        let mut assignments = vec![left; 6];
        assignments[5] = right;
        let plan = ExecutionPlan::new(&graph, &cluster, assignments).unwrap();
        assert!(plan.overlapping(CallId(0), CallId(1)));
        assert!(!plan.overlapping(CallId(0), CallId(5)));
    }

    #[test]
    fn render_contains_call_names() {
        let (cluster, graph) = setup();
        let a = full_assignment(&cluster, 2, 8, 1);
        let plan = ExecutionPlan::new(&graph, &cluster, vec![a; 6]).unwrap();
        let table = plan.render(&graph);
        assert!(table.contains("actor_gen"));
        assert!(table.contains("critic_train"));
        assert!(table.contains("node[0-1]"));
    }

    #[test]
    fn plan_round_trips_through_serde() {
        let (cluster, graph) = setup();
        let a = full_assignment(&cluster, 2, 8, 1);
        let plan = ExecutionPlan::new(&graph, &cluster, vec![a; 6]).unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: ExecutionPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    fn spec_choice(cluster: &ClusterSpec) -> crate::speculation::SpecChoice {
        crate::speculation::SpecChoice {
            config: real_model::SpecDecodeConfig {
                draft_model: ModelSpec::llama3_1b(),
                speculation_len: 5,
                acceptance_curve: real_model::AcceptanceCurve::Constant(0.8),
            },
            assignment: CallAssignment::new(
                DeviceMesh::sub_node(cluster, 0, 0, 2).unwrap(),
                ParallelStrategy::new(1, 2, 1, 1).unwrap(),
            )
            .unwrap(),
        }
    }

    #[test]
    fn speculation_free_plan_serializes_without_spec_field() {
        let (cluster, graph) = setup();
        let a = full_assignment(&cluster, 2, 8, 1);
        let plan = ExecutionPlan::new(&graph, &cluster, vec![a; 6]).unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        assert!(!json.contains("spec"), "inert plan leaked spec: {json}");
        // Pre-speculation JSON (no `spec` key) still deserializes.
        let back: ExecutionPlan = serde_json::from_str(&json).unwrap();
        assert!(!back.has_speculation());
    }

    #[test]
    fn with_spec_sets_and_clears() {
        let (cluster, graph) = setup();
        let a = full_assignment(&cluster, 2, 8, 1);
        let plan = ExecutionPlan::new(&graph, &cluster, vec![a; 6]).unwrap();
        let id = graph.find("actor_gen").unwrap();
        let specced = plan.with_spec(id, Some(spec_choice(&cluster))).unwrap();
        assert!(specced.has_speculation());
        assert_eq!(specced.spec_choices().count(), 1);
        assert_eq!(specced.spec_choice(id).unwrap().config.speculation_len, 5);
        // Toggling back off normalizes to a plan equal to the original.
        let off = specced.with_spec(id, None).unwrap();
        assert_eq!(off, plan);
        assert!(!off.has_speculation());
    }

    #[test]
    fn with_spec_rejects_invalid_choice() {
        let (cluster, graph) = setup();
        let a = full_assignment(&cluster, 2, 8, 1);
        let plan = ExecutionPlan::new(&graph, &cluster, vec![a; 6]).unwrap();
        let mut bad = spec_choice(&cluster);
        bad.config.speculation_len = 0;
        let err = plan.with_spec(CallId(0), Some(bad)).unwrap_err();
        assert!(matches!(err, PlanError::Unsupported { .. }));
    }

    #[test]
    fn speculative_plan_round_trips_and_renders() {
        let (cluster, graph) = setup();
        let a = full_assignment(&cluster, 2, 8, 1);
        let plan = ExecutionPlan::new(&graph, &cluster, vec![a; 6])
            .unwrap()
            .with_spec(
                graph.find("actor_gen").unwrap(),
                Some(spec_choice(&cluster)),
            )
            .unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: ExecutionPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        let table = plan.render(&graph);
        assert!(table.contains("speculative decoding"), "{table}");
        assert!(table.contains("llama3-1b"), "{table}");
    }
}
