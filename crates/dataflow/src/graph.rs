//! The dataflow graph `G = (V, E)` of §4: nodes are model function calls,
//! edges are data dependencies within an iteration plus parameter-version
//! dependencies across consecutive iterations.

use crate::call::{CallId, ModelFunctionCallDef};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Errors produced when assembling a [`DataflowGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Two calls share a `call_name`.
    DuplicateCall(String),
    /// A data key is produced by more than one call.
    DuplicateOutput(String),
    /// Two calls with the same `model_name` declare different architectures.
    InconsistentModel(String),
    /// The data dependencies contain a cycle.
    Cyclic,
    /// The graph has no calls.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DuplicateCall(n) => write!(f, "duplicate call name: {n}"),
            GraphError::DuplicateOutput(k) => write!(f, "data key produced twice: {k}"),
            GraphError::InconsistentModel(m) => {
                write!(f, "model {m} declared with different architectures")
            }
            GraphError::Cyclic => write!(f, "data dependencies form a cycle"),
            GraphError::Empty => write!(f, "workflow has no function calls"),
        }
    }
}

impl std::error::Error for GraphError {}

/// The per-iteration dataflow template, with intra-iteration data edges and
/// cross-iteration parameter edges.
///
/// Conceptually the paper's `G` concatenates every training iteration; here
/// we store one iteration's template plus the cross-iteration edge set, and
/// consumers (the estimator's Algorithm 1, the runtime engine) unroll as
/// many iterations as they need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataflowGraph {
    calls: Vec<ModelFunctionCallDef>,
    /// `deps[i]` = intra-iteration parents of call `i`.
    deps: Vec<Vec<CallId>>,
    /// `param_deps[i]` = calls in the *previous* iteration whose parameter
    /// update call `i` must observe (same model, trained earlier).
    param_deps: Vec<Vec<CallId>>,
}

impl DataflowGraph {
    /// Builds a graph from call definitions, inferring edges from data keys
    /// (producer → consumer) and parameter versions (a model's `TrainStep`
    /// in iteration `t` gates all of that model's calls in iteration
    /// `t + 1`).
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] for duplicate names, duplicated data
    /// producers, inconsistent model architectures, cyclic data flow, or an
    /// empty call list.
    pub fn new(calls: Vec<ModelFunctionCallDef>) -> Result<Self, GraphError> {
        if calls.is_empty() {
            return Err(GraphError::Empty);
        }
        let mut names = HashSet::new();
        for c in &calls {
            if !names.insert(c.call_name.clone()) {
                return Err(GraphError::DuplicateCall(c.call_name.clone()));
            }
        }
        let mut archs: HashMap<&str, &real_model::ModelSpec> = HashMap::new();
        for c in &calls {
            match archs.get(c.model_name.as_str()) {
                Some(&existing) if existing != &c.model => {
                    return Err(GraphError::InconsistentModel(c.model_name.clone()))
                }
                _ => {
                    archs.insert(&c.model_name, &c.model);
                }
            }
        }
        let mut producer: HashMap<&str, CallId> = HashMap::new();
        for (i, c) in calls.iter().enumerate() {
            for key in &c.output_data {
                if producer.insert(key, CallId(i)).is_some() {
                    return Err(GraphError::DuplicateOutput(key.clone()));
                }
            }
        }
        let mut deps: Vec<Vec<CallId>> = vec![Vec::new(); calls.len()];
        for (i, c) in calls.iter().enumerate() {
            for key in &c.input_data {
                if let Some(&p) = producer.get(key.as_str()) {
                    if p.0 != i && !deps[i].contains(&p) {
                        deps[i].push(p);
                    }
                }
            }
            deps[i].sort_unstable();
        }
        // Cross-iteration parameter edges: every call of model m in iter t+1
        // depends on m's training call(s) in iter t.
        let mut param_deps: Vec<Vec<CallId>> = vec![Vec::new(); calls.len()];
        for (i, c) in calls.iter().enumerate() {
            for (j, t) in calls.iter().enumerate() {
                if t.call_type.is_training() && t.model_name == c.model_name && i != j {
                    param_deps[i].push(CallId(j));
                }
            }
        }
        let graph = Self {
            calls,
            deps,
            param_deps,
        };
        if graph.topo_order().is_none() {
            return Err(GraphError::Cyclic);
        }
        Ok(graph)
    }

    /// Number of function calls per iteration.
    pub fn n_calls(&self) -> usize {
        self.calls.len()
    }

    /// The call definition behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn call(&self, id: CallId) -> &ModelFunctionCallDef {
        &self.calls[id.0]
    }

    /// All call definitions in declaration order.
    pub fn calls(&self) -> &[ModelFunctionCallDef] {
        &self.calls
    }

    /// Iterates `(CallId, def)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CallId, &ModelFunctionCallDef)> {
        self.calls.iter().enumerate().map(|(i, c)| (CallId(i), c))
    }

    /// Intra-iteration parents of `id`.
    pub fn deps(&self, id: CallId) -> &[CallId] {
        &self.deps[id.0]
    }

    /// Parameter-version parents of `id` (to be read as edges from the
    /// previous iteration).
    pub fn param_deps(&self, id: CallId) -> &[CallId] {
        &self.param_deps[id.0]
    }

    /// Intra-iteration children of `id`.
    pub fn children(&self, id: CallId) -> Vec<CallId> {
        (0..self.calls.len())
            .map(CallId)
            .filter(|&c| self.deps(c).contains(&id))
            .collect()
    }

    /// Looks up a call by name.
    pub fn find(&self, call_name: &str) -> Option<CallId> {
        self.calls
            .iter()
            .position(|c| c.call_name == call_name)
            .map(CallId)
    }

    /// Distinct model names in declaration order.
    pub fn model_names(&self) -> Vec<&str> {
        let mut seen = HashSet::new();
        self.calls
            .iter()
            .filter_map(|c| {
                seen.insert(c.model_name.as_str())
                    .then_some(c.model_name.as_str())
            })
            .collect()
    }

    /// Ids of all calls owned by `model_name`, in declaration order.
    pub fn calls_of_model(&self, model_name: &str) -> Vec<CallId> {
        self.iter()
            .filter(|(_, c)| c.model_name == model_name)
            .map(|(id, _)| id)
            .collect()
    }

    /// A topological order over intra-iteration data edges, or `None` if
    /// cyclic.
    pub fn topo_order(&self) -> Option<Vec<CallId>> {
        let n = self.calls.len();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.deps[i].len()).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            order.push(CallId(i));
            for (j, deps) in self.deps.iter().enumerate() {
                if deps.contains(&CallId(i)) {
                    indeg[j] -= 1;
                    if indeg[j] == 0 {
                        queue.push(j);
                    }
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Whether `model_name` has a training call (i.e. is trainable rather
    /// than frozen).
    pub fn is_trainable(&self, model_name: &str) -> bool {
        self.calls
            .iter()
            .any(|c| c.model_name == model_name && c.call_type.is_training())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::call::{CallType, ModelFunctionCallDef};
    use real_model::ModelSpec;

    fn gen(name: &str, model: &str, inputs: &[&str], outputs: &[&str]) -> ModelFunctionCallDef {
        ModelFunctionCallDef::new(
            name,
            model,
            ModelSpec::llama3_7b(),
            CallType::Generate {
                batch: 4,
                prompt_len: 8,
                gen_len: 8,
            },
            inputs,
            outputs,
        )
    }

    fn train(name: &str, model: &str, inputs: &[&str]) -> ModelFunctionCallDef {
        ModelFunctionCallDef::new(
            name,
            model,
            ModelSpec::llama3_7b(),
            CallType::TrainStep {
                batch: 4,
                seq_len: 16,
                n_minibatches: 1,
            },
            inputs,
            &[],
        )
    }

    #[test]
    fn data_edges_follow_producers() {
        let g = DataflowGraph::new(vec![
            gen("g", "actor", &["prompts"], &["seq"]),
            train("t", "actor", &["seq"]),
        ])
        .unwrap();
        let t = g.find("t").unwrap();
        let gid = g.find("g").unwrap();
        assert_eq!(g.deps(t), &[gid]);
        assert!(g.deps(gid).is_empty());
        assert_eq!(g.children(gid), vec![t]);
    }

    #[test]
    fn param_edges_link_training_to_model_calls() {
        let g = DataflowGraph::new(vec![
            gen("g", "actor", &["prompts"], &["seq"]),
            train("t", "actor", &["seq"]),
        ])
        .unwrap();
        let gid = g.find("g").unwrap();
        let t = g.find("t").unwrap();
        assert_eq!(g.param_deps(gid), &[t]);
        assert!(g.param_deps(t).is_empty());
        assert!(g.is_trainable("actor"));
    }

    #[test]
    fn duplicate_call_name_rejected() {
        let err = DataflowGraph::new(vec![
            gen("x", "actor", &[], &["a"]),
            gen("x", "actor", &[], &["b"]),
        ])
        .unwrap_err();
        assert_eq!(err, GraphError::DuplicateCall("x".into()));
    }

    #[test]
    fn duplicate_output_rejected() {
        let err = DataflowGraph::new(vec![
            gen("a", "actor", &[], &["seq"]),
            gen("b", "actor", &[], &["seq"]),
        ])
        .unwrap_err();
        assert_eq!(err, GraphError::DuplicateOutput("seq".into()));
    }

    #[test]
    fn inconsistent_architecture_rejected() {
        let mut big = gen("b", "actor", &[], &["x"]);
        big.model = ModelSpec::llama3_13b();
        let err = DataflowGraph::new(vec![gen("a", "actor", &[], &["y"]), big]).unwrap_err();
        assert_eq!(err, GraphError::InconsistentModel("actor".into()));
    }

    #[test]
    fn cycle_rejected() {
        let err = DataflowGraph::new(vec![
            gen("a", "m1", &["y"], &["x"]),
            gen("b", "m2", &["x"], &["y"]),
        ])
        .unwrap_err();
        assert_eq!(err, GraphError::Cyclic);
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(DataflowGraph::new(vec![]).unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn topo_order_respects_deps() {
        let g = DataflowGraph::new(vec![
            gen("g", "actor", &["prompts"], &["seq"]),
            gen("r", "reward", &["seq"], &["rew"]),
            train("t", "actor", &["seq", "rew"]),
        ])
        .unwrap();
        let order = g.topo_order().unwrap();
        let pos = |n: &str| order.iter().position(|&c| c == g.find(n).unwrap()).unwrap();
        assert!(pos("g") < pos("r"));
        assert!(pos("r") < pos("t"));
    }

    #[test]
    fn model_names_and_calls_of_model() {
        let g = DataflowGraph::new(vec![
            gen("g", "actor", &["prompts"], &["seq"]),
            gen("r", "reward", &["seq"], &["rew"]),
            train("t", "actor", &["rew"]),
        ])
        .unwrap();
        assert_eq!(g.model_names(), vec!["actor", "reward"]);
        assert_eq!(g.calls_of_model("actor").len(), 2);
        assert!(!g.is_trainable("reward"));
    }

    #[test]
    fn self_loop_data_key_is_ignored() {
        // A call that consumes a key it also produces doesn't depend on
        // itself.
        let g = DataflowGraph::new(vec![gen("g", "actor", &["seq"], &["seq"])]).unwrap();
        assert!(g.deps(g.find("g").unwrap()).is_empty());
    }

    mod properties {
        use super::*;
        use crate::call::CallType;
        use proptest::prelude::*;

        /// Random call definitions over a small key alphabet; builder must
        /// either reject them with a structured error or produce a graph
        /// whose edges are consistent with the declared data keys.
        fn arbitrary_calls() -> impl Strategy<Value = Vec<ModelFunctionCallDef>> {
            let key = prop_oneof![
                Just("a".to_string()),
                Just("b".to_string()),
                Just("c".to_string()),
                Just("d".to_string()),
            ];
            let keys = proptest::collection::vec(key, 0..3);
            let call = (keys.clone(), keys, 0..3u8).prop_map(|(inputs, outputs, kind)| {
                let call_type = match kind {
                    0 => CallType::Generate {
                        batch: 4,
                        prompt_len: 8,
                        gen_len: 8,
                    },
                    1 => CallType::Inference {
                        batch: 4,
                        seq_len: 16,
                    },
                    _ => CallType::TrainStep {
                        batch: 4,
                        seq_len: 16,
                        n_minibatches: 1,
                    },
                };
                (inputs, outputs, call_type)
            });
            proptest::collection::vec(call, 1..6).prop_map(|raw| {
                raw.into_iter()
                    .enumerate()
                    .map(|(i, (inputs, outputs, call_type))| {
                        let ins: Vec<&str> = inputs.iter().map(String::as_str).collect();
                        let outs: Vec<&str> = outputs.iter().map(String::as_str).collect();
                        ModelFunctionCallDef::new(
                            format!("call{i}"),
                            format!("model{}", i % 2),
                            real_model::ModelSpec::llama3_7b(),
                            call_type,
                            &ins,
                            &outs,
                        )
                    })
                    .collect()
            })
        }

        proptest! {
            #[test]
            fn builder_is_total_and_sound(calls in arbitrary_calls()) {
                match DataflowGraph::new(calls.clone()) {
                    Err(e) => {
                        // Structured errors only.
                        let _ = e.to_string();
                    }
                    Ok(g) => {
                        // Topological order exists and respects every edge.
                        let order = g.topo_order().expect("accepted graphs are acyclic");
                        let pos = |c: CallId| order.iter().position(|&x| x == c).unwrap();
                        for (id, _) in g.iter() {
                            for &dep in g.deps(id) {
                                prop_assert!(pos(dep) < pos(id));
                                // Every edge is justified by a shared data key.
                                let producer = g.call(dep);
                                let consumer = g.call(id);
                                prop_assert!(producer
                                    .output_data
                                    .iter()
                                    .any(|k| consumer.input_data.contains(k)));
                            }
                        }
                        // Parameter edges always point at training calls of
                        // the same model.
                        for (id, def) in g.iter() {
                            for &p in g.param_deps(id) {
                                prop_assert!(g.call(p).call_type.is_training());
                                prop_assert_eq!(&g.call(p).model_name, &def.model_name);
                            }
                        }
                    }
                }
            }
        }
    }
}
