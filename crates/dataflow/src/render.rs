//! Rendering of dataflow graphs: Graphviz DOT export and a compact ASCII
//! edge list (the upper halves of the paper's Fig. 4 and Fig. 16).

use crate::graph::DataflowGraph;
use std::fmt::Write as _;

/// Serializes the per-iteration dataflow graph as Graphviz DOT. Data edges
/// are solid; cross-iteration parameter-version edges are dashed (labelled
/// `t+1`).
pub fn to_dot(graph: &DataflowGraph) -> String {
    let mut out = String::from("digraph workflow {\n  rankdir=LR;\n");
    for (_, call) in graph.iter() {
        let shape = match call.call_type.label() {
            "gen" => "hexagon",
            "train" => "box",
            _ => "ellipse",
        };
        let _ = writeln!(
            out,
            "  {} [shape={shape}, label=\"{}\\n({}, {})\"];",
            call.call_name,
            call.call_name,
            call.model_name,
            call.call_type.label(),
        );
    }
    for (id, call) in graph.iter() {
        for &dep in graph.deps(id) {
            let _ = writeln!(
                out,
                "  {} -> {};",
                graph.call(dep).call_name,
                call.call_name
            );
        }
        for &pdep in graph.param_deps(id) {
            let _ = writeln!(
                out,
                "  {} -> {} [style=dashed, label=\"t+1\"];",
                graph.call(pdep).call_name,
                call.call_name
            );
        }
    }
    out.push_str("}\n");
    out
}

/// A compact ASCII rendering: one line per call with its parents, e.g.
/// `actor_train <- actor_gen, reward_inf, ...`.
pub fn to_ascii(graph: &DataflowGraph) -> String {
    let mut out = String::new();
    for (id, call) in graph.iter() {
        let parents: Vec<&str> = graph
            .deps(id)
            .iter()
            .map(|&d| graph.call(d).call_name.as_str())
            .collect();
        let _ = writeln!(
            out,
            "{:>18} [{}]{}",
            call.call_name,
            call.call_type.label(),
            if parents.is_empty() {
                String::new()
            } else {
                format!("  <-  {}", parents.join(", "))
            }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{ppo, remax, RlhfConfig};
    use real_model::ModelSpec;

    fn graph() -> DataflowGraph {
        let a = ModelSpec::llama3_7b();
        ppo(&a, &a.critic(), &RlhfConfig::instruct_gpt(64))
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = graph();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        for call in g.calls() {
            assert!(dot.contains(&call.call_name), "{}", call.call_name);
        }
        // A known data edge and a known parameter edge.
        assert!(dot.contains("actor_gen -> reward_inf;"));
        assert!(dot.contains("actor_train -> actor_gen [style=dashed"));
    }

    #[test]
    fn dot_shapes_by_call_type() {
        let dot = to_dot(&graph());
        assert!(dot.contains("actor_gen [shape=hexagon"));
        assert!(dot.contains("actor_train [shape=box"));
        assert!(dot.contains("reward_inf [shape=ellipse"));
    }

    #[test]
    fn ascii_lists_parents() {
        let g = graph();
        let s = to_ascii(&g);
        assert!(s.contains("actor_gen"));
        assert!(s
            .lines()
            .any(|l| l.contains("reward_inf") && l.contains("<-  actor_gen")));
    }

    #[test]
    fn remax_dag_shows_concurrent_generations() {
        let a = ModelSpec::llama3_7b();
        let g = remax(&a, &a.critic(), &RlhfConfig::instruct_gpt(64));
        let s = to_ascii(&g);
        // Both generations are roots (no parents listed).
        let gen_lines: Vec<&str> = s
            .lines()
            .filter(|l| l.contains("actor_gen") && l.contains("[gen]"))
            .collect();
        assert_eq!(gen_lines.len(), 2);
        assert!(gen_lines.iter().all(|l| !l.contains("<-")));
    }
}
