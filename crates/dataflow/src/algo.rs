//! Workflow builders for the RLHF algorithms the paper evaluates: PPO (§2.1)
//! and, beyond PPO (§8.3), DPO, GRPO, and ReMax. Each builder returns the
//! per-iteration [`DataflowGraph`] shown in Fig. 4 / Fig. 16.

use crate::call::{CallType, ModelFunctionCallDef};
use crate::graph::DataflowGraph;
use real_model::ModelSpec;
use serde::{Deserialize, Serialize};

/// Workload configuration shared by all algorithm builders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RlhfConfig {
    /// Global batch size in prompts per iteration.
    pub batch_size: u64,
    /// Maximum prompt length in tokens.
    pub prompt_len: u64,
    /// Tokens generated per prompt.
    pub gen_len: u64,
    /// PPO mini-batches per training step (sequential parameter updates).
    pub ppo_minibatches: u32,
    /// GRPO group size (generations per prompt).
    pub grpo_group: u64,
}

impl RlhfConfig {
    /// The paper's base setting, adopted from InstructGPT (Appendix A):
    /// context length 2048 (1024 prompt + 1024 generated), 8 PPO
    /// mini-batches, GRPO group 8.
    pub fn instruct_gpt(batch_size: u64) -> Self {
        Self {
            batch_size,
            prompt_len: 1024,
            gen_len: 1024,
            ppo_minibatches: 8,
            grpo_group: 8,
        }
    }

    /// Scales the context length by `factor`, shrinking the batch to keep
    /// the token budget constant — the paper's long-context protocol
    /// (Appendix A: "we fix the number of tokens in the global batch").
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero or the batch does not divide evenly.
    pub fn with_context_scale(mut self, factor: u64) -> Self {
        assert!(factor > 0, "context scale factor must be positive");
        assert!(
            self.batch_size.is_multiple_of(factor),
            "batch {} not divisible by context factor {factor}",
            self.batch_size
        );
        self.prompt_len *= factor;
        self.gen_len *= factor;
        self.batch_size /= factor;
        self
    }

    /// Full context length (prompt + generation).
    pub fn context_len(&self) -> u64 {
        self.prompt_len + self.gen_len
    }
}

/// The six-call PPO workflow of Fig. 4: actor generation; reward, reference
/// and critic inference; actor and critic training.
pub fn ppo(actor: &ModelSpec, critic: &ModelSpec, cfg: &RlhfConfig) -> DataflowGraph {
    let b = cfg.batch_size;
    let ctx = cfg.context_len();
    let calls = vec![
        ModelFunctionCallDef::new(
            "actor_gen",
            "actor",
            actor.clone(),
            CallType::Generate {
                batch: b,
                prompt_len: cfg.prompt_len,
                gen_len: cfg.gen_len,
            },
            &["prompts"],
            &["seq", "logp"],
        ),
        ModelFunctionCallDef::new(
            "reward_inf",
            "reward",
            critic.clone(),
            CallType::Inference {
                batch: b,
                seq_len: ctx,
            },
            &["seq"],
            &["rewards"],
        ),
        ModelFunctionCallDef::new(
            "ref_inf",
            "reference",
            actor.clone(),
            CallType::Inference {
                batch: b,
                seq_len: ctx,
            },
            &["seq"],
            &["ref_logp"],
        ),
        ModelFunctionCallDef::new(
            "critic_inf",
            "critic",
            critic.clone(),
            CallType::Inference {
                batch: b,
                seq_len: ctx,
            },
            &["seq"],
            &["values"],
        ),
        ModelFunctionCallDef::new(
            "actor_train",
            "actor",
            actor.clone(),
            CallType::TrainStep {
                batch: b,
                seq_len: ctx,
                n_minibatches: cfg.ppo_minibatches,
            },
            &["seq", "logp", "rewards", "ref_logp", "values"],
            &[],
        ),
        ModelFunctionCallDef::new(
            "critic_train",
            "critic",
            critic.clone(),
            CallType::TrainStep {
                batch: b,
                seq_len: ctx,
                n_minibatches: cfg.ppo_minibatches,
            },
            &["seq", "rewards", "ref_logp", "values"],
            &[],
        ),
    ];
    DataflowGraph::new(calls).expect("PPO workflow template must be valid")
}

/// DPO (Fig. 16 left): reference inference over preference pairs, then actor
/// training. No generation, no critic.
pub fn dpo(actor: &ModelSpec, cfg: &RlhfConfig) -> DataflowGraph {
    let b = cfg.batch_size * 2; // chosen + rejected sequences
    let ctx = cfg.context_len();
    let calls = vec![
        ModelFunctionCallDef::new(
            "ref_inf",
            "reference",
            actor.clone(),
            CallType::Inference {
                batch: b,
                seq_len: ctx,
            },
            &["pairs"],
            &["ref_logp"],
        ),
        ModelFunctionCallDef::new(
            "actor_train",
            "actor",
            actor.clone(),
            CallType::TrainStep {
                batch: b,
                seq_len: ctx,
                n_minibatches: 1,
            },
            &["pairs", "ref_logp"],
            &[],
        ),
    ];
    DataflowGraph::new(calls).expect("DPO workflow template must be valid")
}

/// GRPO (Fig. 16 right): grouped generation (`grpo_group` responses per
/// prompt) inflates every downstream batch by the group size; the
/// group-relative baseline removes the critic.
pub fn grpo(actor: &ModelSpec, reward: &ModelSpec, cfg: &RlhfConfig) -> DataflowGraph {
    let ctx = cfg.context_len();
    let grouped = cfg.batch_size * cfg.grpo_group;
    let calls = vec![
        ModelFunctionCallDef::new(
            "actor_gen",
            "actor",
            actor.clone(),
            CallType::Generate {
                batch: grouped,
                prompt_len: cfg.prompt_len,
                gen_len: cfg.gen_len,
            },
            &["prompts"],
            &["seq", "logp"],
        ),
        ModelFunctionCallDef::new(
            "reward_inf",
            "reward",
            reward.clone(),
            CallType::Inference {
                batch: grouped,
                seq_len: ctx,
            },
            &["seq"],
            &["rewards"],
        ),
        ModelFunctionCallDef::new(
            "ref_inf",
            "reference",
            actor.clone(),
            CallType::Inference {
                batch: grouped,
                seq_len: ctx,
            },
            &["seq"],
            &["ref_logp"],
        ),
        ModelFunctionCallDef::new(
            "actor_train",
            "actor",
            actor.clone(),
            CallType::TrainStep {
                batch: grouped,
                seq_len: ctx,
                n_minibatches: cfg.ppo_minibatches,
            },
            &["seq", "logp", "rewards", "ref_logp"],
            &[],
        ),
    ];
    DataflowGraph::new(calls).expect("GRPO workflow template must be valid")
}

/// ReMax (Fig. 16 middle): a sampled generation plus a greedy baseline
/// generation with *no mutual dependency* — the concurrency ReaL exploits
/// for its largest §8.3 gain — then reward inference over both, reference
/// inference, and actor training.
pub fn remax(actor: &ModelSpec, reward: &ModelSpec, cfg: &RlhfConfig) -> DataflowGraph {
    let b = cfg.batch_size;
    let ctx = cfg.context_len();
    let calls = vec![
        ModelFunctionCallDef::new(
            "actor_gen",
            "actor",
            actor.clone(),
            CallType::Generate {
                batch: b,
                prompt_len: cfg.prompt_len,
                gen_len: cfg.gen_len,
            },
            &["prompts"],
            &["seq", "logp"],
        ),
        ModelFunctionCallDef::new(
            "actor_gen_greedy",
            "actor",
            actor.clone(),
            CallType::Generate {
                batch: b,
                prompt_len: cfg.prompt_len,
                gen_len: cfg.gen_len,
            },
            &["prompts"],
            &["seq_greedy"],
        ),
        ModelFunctionCallDef::new(
            "reward_inf",
            "reward",
            reward.clone(),
            CallType::Inference {
                batch: b,
                seq_len: ctx,
            },
            &["seq"],
            &["rewards"],
        ),
        ModelFunctionCallDef::new(
            "reward_inf_greedy",
            "reward",
            reward.clone(),
            CallType::Inference {
                batch: b,
                seq_len: ctx,
            },
            &["seq_greedy"],
            &["baseline_rewards"],
        ),
        ModelFunctionCallDef::new(
            "ref_inf",
            "reference",
            actor.clone(),
            CallType::Inference {
                batch: b,
                seq_len: ctx,
            },
            &["seq"],
            &["ref_logp"],
        ),
        ModelFunctionCallDef::new(
            "actor_train",
            "actor",
            actor.clone(),
            CallType::TrainStep {
                batch: b,
                seq_len: ctx,
                n_minibatches: 1,
            },
            &["seq", "logp", "rewards", "baseline_rewards", "ref_logp"],
            &[],
        ),
    ];
    DataflowGraph::new(calls).expect("ReMax workflow template must be valid")
}

/// RAFT (reward-ranked fine-tuning, Dong et al. 2023 — cited in the paper's
/// introduction): sample `grpo_group` responses per prompt, score them with
/// the reward model, and supervised-train the actor on the top-ranked
/// response of each prompt. No critic, no reference, single update round.
pub fn raft(actor: &ModelSpec, reward: &ModelSpec, cfg: &RlhfConfig) -> DataflowGraph {
    let ctx = cfg.context_len();
    let sampled = cfg.batch_size * cfg.grpo_group;
    let calls = vec![
        ModelFunctionCallDef::new(
            "actor_gen",
            "actor",
            actor.clone(),
            CallType::Generate {
                batch: sampled,
                prompt_len: cfg.prompt_len,
                gen_len: cfg.gen_len,
            },
            &["prompts"],
            &["seq"],
        ),
        ModelFunctionCallDef::new(
            "reward_inf",
            "reward",
            reward.clone(),
            CallType::Inference {
                batch: sampled,
                seq_len: ctx,
            },
            &["seq"],
            &["rewards"],
        ),
        // Ranking is a host-side argmax over rewards; only the best response
        // per prompt reaches the SFT step.
        ModelFunctionCallDef::new(
            "actor_train",
            "actor",
            actor.clone(),
            CallType::TrainStep {
                batch: cfg.batch_size,
                seq_len: ctx,
                n_minibatches: 1,
            },
            &["seq", "rewards"],
            &[],
        ),
    ];
    DataflowGraph::new(calls).expect("RAFT workflow template must be valid")
}

/// Iterative (online) DPO: generate response pairs, score them with the
/// reward model to form preferences, run reference inference, and train the
/// actor with the DPO loss. Unlike offline [`dpo`], the actor's own
/// generations feed the next update, so generation re-enters the loop.
pub fn iterative_dpo(actor: &ModelSpec, reward: &ModelSpec, cfg: &RlhfConfig) -> DataflowGraph {
    let ctx = cfg.context_len();
    let pairs = cfg.batch_size * 2;
    let calls = vec![
        ModelFunctionCallDef::new(
            "actor_gen",
            "actor",
            actor.clone(),
            CallType::Generate {
                batch: pairs,
                prompt_len: cfg.prompt_len,
                gen_len: cfg.gen_len,
            },
            &["prompts"],
            &["seq"],
        ),
        ModelFunctionCallDef::new(
            "reward_inf",
            "reward",
            reward.clone(),
            CallType::Inference {
                batch: pairs,
                seq_len: ctx,
            },
            &["seq"],
            &["prefs"],
        ),
        ModelFunctionCallDef::new(
            "ref_inf",
            "reference",
            actor.clone(),
            CallType::Inference {
                batch: pairs,
                seq_len: ctx,
            },
            &["seq"],
            &["ref_logp"],
        ),
        ModelFunctionCallDef::new(
            "actor_train",
            "actor",
            actor.clone(),
            CallType::TrainStep {
                batch: pairs,
                seq_len: ctx,
                n_minibatches: 1,
            },
            &["seq", "prefs", "ref_logp"],
            &[],
        ),
    ];
    DataflowGraph::new(calls).expect("iterative-DPO workflow template must be valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::call::CallType;

    fn cfg() -> RlhfConfig {
        RlhfConfig::instruct_gpt(512)
    }

    fn actor() -> ModelSpec {
        ModelSpec::llama3_7b()
    }

    fn critic() -> ModelSpec {
        ModelSpec::llama3_7b().critic()
    }

    #[test]
    fn ppo_has_six_calls_and_fig4_edges() {
        let g = ppo(&actor(), &critic(), &cfg());
        assert_eq!(g.n_calls(), 6);
        let gen = g.find("actor_gen").unwrap();
        for inf in ["reward_inf", "ref_inf", "critic_inf"] {
            assert_eq!(g.deps(g.find(inf).unwrap()), &[gen]);
        }
        // Actor training waits on everything; critic training likewise.
        let at = g.find("actor_train").unwrap();
        let ct = g.find("critic_train").unwrap();
        assert_eq!(g.deps(at).len(), 4);
        assert_eq!(g.deps(ct).len(), 4);
        // The two training calls are mutually independent (can overlap).
        assert!(!g.deps(at).contains(&ct));
        assert!(!g.deps(ct).contains(&at));
    }

    #[test]
    fn ppo_param_versions_gate_next_iteration() {
        let g = ppo(&actor(), &critic(), &cfg());
        let gen = g.find("actor_gen").unwrap();
        let at = g.find("actor_train").unwrap();
        let ci = g.find("critic_inf").unwrap();
        let ct = g.find("critic_train").unwrap();
        assert_eq!(g.param_deps(gen), &[at]);
        assert_eq!(g.param_deps(ci), &[ct]);
        // The frozen reward/reference models have no parameter parents.
        assert!(g.param_deps(g.find("reward_inf").unwrap()).is_empty());
    }

    #[test]
    fn ppo_minibatches_propagate() {
        let g = ppo(&actor(), &critic(), &cfg());
        match g.call(g.find("actor_train").unwrap()).call_type {
            CallType::TrainStep { n_minibatches, .. } => assert_eq!(n_minibatches, 8),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dpo_is_two_calls_and_doubles_batch() {
        let g = dpo(&actor(), &cfg());
        assert_eq!(g.n_calls(), 2);
        assert_eq!(
            g.call(g.find("actor_train").unwrap()).call_type.batch(),
            1024
        );
        let at = g.find("actor_train").unwrap();
        assert_eq!(g.deps(at), &[g.find("ref_inf").unwrap()]);
    }

    #[test]
    fn grpo_inflates_batch_by_group() {
        let g = grpo(&actor(), &critic(), &cfg());
        assert_eq!(g.n_calls(), 4);
        for (_, c) in g.iter() {
            assert_eq!(c.call_type.batch(), 512 * 8, "call {}", c.call_name);
        }
        assert!(g.find("critic_inf").is_none(), "GRPO has no critic");
    }

    #[test]
    fn remax_generations_are_concurrent() {
        let g = remax(&actor(), &critic(), &cfg());
        assert_eq!(g.n_calls(), 6);
        let sampled = g.find("actor_gen").unwrap();
        let greedy = g.find("actor_gen_greedy").unwrap();
        assert!(g.deps(sampled).is_empty());
        assert!(g.deps(greedy).is_empty());
        // Each reward inference depends on exactly its own generation.
        assert_eq!(g.deps(g.find("reward_inf").unwrap()), &[sampled]);
        assert_eq!(g.deps(g.find("reward_inf_greedy").unwrap()), &[greedy]);
    }

    #[test]
    fn context_scaling_preserves_token_budget() {
        let base = cfg();
        let long = cfg().with_context_scale(4);
        assert_eq!(long.context_len(), 8192);
        assert_eq!(long.batch_size, 128);
        assert_eq!(
            base.batch_size * base.context_len(),
            long.batch_size * long.context_len()
        );
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn context_scaling_rejects_uneven_batch() {
        RlhfConfig::instruct_gpt(10).with_context_scale(4);
    }

    #[test]
    fn raft_trains_on_the_top_ranked_subset() {
        let g = raft(&actor(), &critic(), &cfg());
        assert_eq!(g.n_calls(), 3);
        // Generation and scoring see batch x group; training sees batch.
        assert_eq!(
            g.call(g.find("actor_gen").unwrap()).call_type.batch(),
            512 * 8
        );
        assert_eq!(
            g.call(g.find("actor_train").unwrap()).call_type.batch(),
            512
        );
        // Training waits on both generation and reward scoring.
        let t = g.find("actor_train").unwrap();
        assert_eq!(g.deps(t).len(), 2);
    }

    #[test]
    fn iterative_dpo_closes_the_generation_loop() {
        let g = iterative_dpo(&actor(), &critic(), &cfg());
        assert_eq!(g.n_calls(), 4);
        let gen = g.find("actor_gen").unwrap();
        let t = g.find("actor_train").unwrap();
        // Param edge: next iteration's generation waits for training.
        assert_eq!(g.param_deps(gen), &[t]);
        // Offline DPO has no generation at all — the iterative variant does.
        assert!(dpo(&actor(), &cfg()).find("actor_gen").is_none());
    }

    #[test]
    fn all_builders_are_acyclic() {
        let c = cfg();
        for g in [
            ppo(&actor(), &critic(), &c),
            dpo(&actor(), &c),
            grpo(&actor(), &critic(), &c),
            remax(&actor(), &critic(), &c),
            raft(&actor(), &critic(), &c),
            iterative_dpo(&actor(), &critic(), &c),
        ] {
            assert!(g.topo_order().is_some());
        }
    }
}
