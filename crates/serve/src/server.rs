//! The cluster-as-a-service event loop.
//!
//! [`serve`] runs a [`WorkloadSpec`] to completion on the virtual clock: a
//! discrete-event loop over two event kinds — **arrivals** from the seeded
//! trace generator and **iteration boundaries** of running tenant sessions.
//! Each arrival gets an admission-time feasibility probe against the
//! pre-priced template table ([`crate::admission::TemplatePrices`]) and is
//! admitted, queued, or rejected; checkpointed preemption suspends a
//! low-priority running tenant at its next iteration boundary (capturing a
//! [`real_runtime::SessionCheckpoint`]) when the cost/benefit gate says the
//! avoided wait is worth two reallocation prologues.
//!
//! # Determinism
//!
//! Everything is seeded and event ordering is total — events sort by
//! `(instant, kind, insertion sequence)` with iteration boundaries ahead of
//! arrivals at equal instants — so the same spec and seed produce a
//! byte-identical [`ServeReport`]. There are no wall-clock reads anywhere
//! in the loop.
//!
//! # Scheduling policy
//!
//! - GPU leases are exclusive: a tenant owns its candidate mesh for the
//!   whole segment (no time-sharing; the queue absorbs overload).
//! - The wait queue is ordered by priority, suspended tenants ahead of
//!   fresh admissions at equal priority, FIFO (arrival id) within that.
//!   Lower-priority waiters may backfill around a blocked head-of-line.
//! - Preemption marks the victim; the suspension happens at the victim's
//!   next iteration boundary (sessions are never interrupted mid-iteration,
//!   which is what makes checkpoints replayable).

use crate::admission::{
    preemption_gate, price_template, AdmissionDecision, RejectReason, TemplatePrices,
};
use crate::report::{Segment, ServeReport, ServedTenant, UtilPoint};
use crate::workload::{AdmissionConfig, Arrival, WorkloadError, WorkloadSpec};
use real_cluster::{ClusterSpec, DeviceMesh};
use real_dataflow::{DataflowGraph, ExecutionPlan};
use real_estimator::CostMemo;
use real_obs::profile::PercentileSummary;
use real_runtime::{EngineConfig, SessionCheckpoint, SessionError, TenantSession};
use real_sched::{GraphSet, SpecError};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::fmt;

/// Why a serving run failed before (or while) executing.
#[derive(Debug)]
pub enum ServeError {
    /// The workload spec failed validation.
    Workload(WorkloadError),
    /// A tenant template failed to build (unknown model, bad graph, ...).
    Spec(SpecError),
    /// A tenant session could not be constructed on an admitted plan.
    Session(SessionError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Workload(e) => write!(f, "{e}"),
            ServeError::Spec(e) => write!(f, "{e}"),
            ServeError::Session(e) => write!(f, "session error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<WorkloadError> for ServeError {
    fn from(e: WorkloadError) -> Self {
        ServeError::Workload(e)
    }
}

impl From<SpecError> for ServeError {
    fn from(e: SpecError) -> Self {
        ServeError::Spec(e)
    }
}

impl From<SessionError> for ServeError {
    fn from(e: SessionError) -> Self {
        ServeError::Session(e)
    }
}

/// A priced, ready-to-instantiate tenant template.
struct Template {
    priority: f64,
    iterations: usize,
    graph: DataflowGraph,
    config: EngineConfig,
    /// `None` ⇒ the template fits no mesh: every arrival is rejected
    /// [`RejectReason::Infeasible`].
    prices: Option<TemplatePrices>,
}

/// One scheduled event. Ordering: earlier instants first; at equal instants
/// iteration boundaries (`kind 0`) before arrivals (`kind 1`) — freed
/// capacity is visible to an arrival at the same instant; ties broken by
/// insertion sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    at: f64,
    kind: u8,
    seq: u64,
    tenant: usize,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at
            .total_cmp(&other.at)
            .then(self.kind.cmp(&other.kind))
            .then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

const KIND_ITER_END: u8 = 0;
const KIND_ARRIVAL: u8 = 1;

/// Lifecycle phase of one arrival inside the loop. `Pending` covers the
/// span before the arrival event fires — the queue drain must never admit
/// a tenant that has not arrived yet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Pending,
    Waiting,
    Running,
    Suspended,
    Finished,
    Rejected,
}

/// Per-arrival live state.
struct Served {
    arrival: Arrival,
    priority: f64,
    iterations: usize,
    decision: AdmissionDecision,
    phase: Phase,
    session: Option<TenantSession>,
    /// Checkpoint captured at the last suspension (the resumable state a
    /// real platform would persist; kept for the report's preemption
    /// accounting and verified restorable in tests).
    checkpoint: Option<SessionCheckpoint>,
    admitted_at: Option<f64>,
    finish: Option<f64>,
    queue_wait: f64,
    wait_since: f64,
    /// The mesh of the current/last lease.
    home: Option<DeviceMesh>,
    leased: bool,
    /// Wall instant = `wall_offset + session.rel_time()`.
    wall_offset: f64,
    seg_start: f64,
    seg_iters: usize,
    seg_realloc: f64,
    segments: Vec<Segment>,
    /// Pending preemption: the beneficiary's `served` index.
    preempt_for: Option<usize>,
    preemptions: usize,
}

struct Server {
    cluster: ClusterSpec,
    seed: u64,
    admission: AdmissionConfig,
    templates: Vec<Template>,
    served: Vec<Served>,
    free: Vec<bool>,
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    gate_rejections: usize,
    preemptions: usize,
    util: Vec<UtilPoint>,
    leased_gpus: u32,
}

/// Runs `spec` to completion and folds the result into a [`ServeReport`].
/// `graphs` resolves any `graph` file references in the tenant templates
/// (pre-loaded by the CLI, exactly as for `real sched`).
///
/// # Errors
///
/// [`ServeError::Workload`] for an invalid spec, [`ServeError::Spec`] when
/// a template fails to build, [`ServeError::Session`] when an admitted plan
/// cannot start (admission prices are memory-checked, so this indicates an
/// estimator/runtime disagreement).
pub fn serve(spec: &WorkloadSpec, graphs: &GraphSet) -> Result<ServeReport, ServeError> {
    spec.validate()?;
    let seed = spec.seed();
    let admission = spec.admission();
    let cluster = ClusterSpec::h100(spec.nodes);
    let arrivals = spec.arrivals();

    // Price every template once; arrivals then probe in O(candidates).
    let mut templates = Vec::with_capacity(spec.templates.len());
    for (index, t) in spec.templates.iter().enumerate() {
        let exp = t.tenant.build_experiment(&cluster, seed, graphs)?;
        let (est, _) = exp.prepare();
        let mut memo = CostMemo::new();
        let prices = price_template(&est, index as u64, seed, admission.probe_steps, &mut memo);
        templates.push(Template {
            priority: t.tenant.priority.unwrap_or(1.0),
            iterations: t.tenant.iterations.unwrap_or(2),
            graph: exp.graph().clone(),
            config: exp.engine_config().clone(),
            prices,
        });
    }

    let n_gpus = cluster.total_gpus() as usize;
    let mut server = Server {
        cluster,
        seed,
        admission,
        templates,
        served: Vec::with_capacity(arrivals.len()),
        free: vec![true; n_gpus],
        heap: BinaryHeap::new(),
        seq: 0,
        gate_rejections: 0,
        preemptions: 0,
        util: vec![UtilPoint {
            at_secs: 0.0,
            leased_gpus: 0,
        }],
        leased_gpus: 0,
    };
    for (i, a) in arrivals.iter().enumerate() {
        server.push(Event {
            at: a.at,
            kind: KIND_ARRIVAL,
            seq: i as u64,
            tenant: i,
        });
        server.served.push(Served {
            arrival: a.clone(),
            priority: server.templates[a.template].priority,
            iterations: server.templates[a.template].iterations,
            decision: AdmissionDecision::Queued,
            phase: Phase::Pending,
            session: None,
            checkpoint: None,
            admitted_at: None,
            finish: None,
            queue_wait: 0.0,
            wait_since: a.at,
            home: None,
            leased: false,
            wall_offset: 0.0,
            seg_start: 0.0,
            seg_iters: 0,
            seg_realloc: 0.0,
            segments: Vec::new(),
            preempt_for: None,
            preemptions: 0,
        });
    }
    server.seq = arrivals.len() as u64;

    while let Some(Reverse(ev)) = server.heap.pop() {
        match ev.kind {
            KIND_ARRIVAL => server.on_arrival(ev.tenant, ev.at)?,
            _ => server.on_iter_end(ev.tenant, ev.at)?,
        }
    }
    Ok(server.into_report(spec))
}

impl Server {
    fn push(&mut self, ev: Event) {
        self.heap.push(Reverse(ev));
    }

    fn prices(&self, template: usize) -> Option<&TemplatePrices> {
        self.templates[template].prices.as_ref()
    }

    fn record_util(&mut self, now: f64) {
        self.util.push(UtilPoint {
            at_secs: now,
            leased_gpus: self.leased_gpus,
        });
    }

    fn lease(&mut self, si: usize, mesh: DeviceMesh, now: f64) {
        for g in mesh.gpus() {
            debug_assert!(self.free[g.0 as usize], "lease over a leased GPU");
            self.free[g.0 as usize] = false;
        }
        self.leased_gpus += mesh.n_gpus();
        self.served[si].home = Some(mesh);
        self.served[si].leased = true;
        self.record_util(now);
    }

    fn release(&mut self, si: usize, now: f64) {
        let mesh = self.served[si].home.expect("release without a lease");
        for g in mesh.gpus() {
            self.free[g.0 as usize] = true;
        }
        self.leased_gpus -= mesh.n_gpus();
        self.served[si].leased = false;
        self.record_util(now);
    }

    /// Mean measured iteration seconds of a running session (it always has
    /// at least the in-flight iteration recorded — the loop runs sessions
    /// one iteration ahead).
    fn mean_iter(&self, si: usize) -> f64 {
        let sess = self.served[si].session.as_ref().expect("running session");
        let v = sess.iter_secs();
        v.iter().sum::<f64>() / v.len() as f64
    }

    /// Estimated wall instant a running tenant finishes.
    fn est_finish(&self, si: usize) -> f64 {
        let s = &self.served[si];
        let sess = s.session.as_ref().expect("running session");
        s.wall_offset + sess.rel_time() + sess.remaining() as f64 * self.mean_iter(si)
    }

    /// Projected wait for a fresh arrival: the estimated instant enough
    /// running tenants have drained for the template to fit, plus the
    /// service of queued tenants ahead of it. A deterministic heuristic —
    /// the stretch bound it feeds is a policy knob, not a guarantee.
    fn projected_wait(&self, si: usize, prices: &TemplatePrices, now: f64) -> f64 {
        let mut running: Vec<(f64, usize)> = (0..self.served.len())
            .filter(|&i| self.served[i].phase == Phase::Running)
            .map(|i| (self.est_finish(i), i))
            .collect();
        running.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut free = self.free.clone();
        let mut fit_wait = 0.0f64;
        for (finish, idx) in running {
            if prices.fit_on(&free).is_some() {
                break;
            }
            if let Some(mesh) = self.served[idx].home {
                for g in mesh.gpus() {
                    free[g.0 as usize] = true;
                }
            }
            fit_wait = (finish - now).max(fit_wait);
        }
        let me = &self.served[si];
        let ahead: f64 = (0..self.served.len())
            .filter(|&i| i != si && self.served[i].phase == Phase::Waiting)
            .filter(|&i| {
                let w = &self.served[i];
                w.priority > me.priority
                    || (w.priority == me.priority && w.arrival.id < me.arrival.id)
            })
            .filter_map(|i| {
                self.prices(self.served[i].arrival.template)
                    .map(|p| p.best_step_secs() * self.served[i].iterations as f64)
            })
            .sum();
        fit_wait + ahead
    }

    fn reject(&mut self, si: usize, reason: RejectReason, now: f64) {
        let s = &mut self.served[si];
        s.queue_wait += now - s.wait_since;
        s.phase = Phase::Rejected;
        s.decision = AdmissionDecision::Rejected { reason };
    }

    /// Admits (or resumes) tenant `si` on `plan`, leasing `mesh`, and runs
    /// its first iteration eagerly, scheduling the boundary event.
    fn admit(
        &mut self,
        si: usize,
        mesh: DeviceMesh,
        plan: &ExecutionPlan,
        now: f64,
    ) -> Result<(), ServeError> {
        {
            let s = &mut self.served[si];
            s.queue_wait += now - s.wait_since;
            if let Some(session) = s.session.as_mut() {
                let rel0 = session.rel_time();
                let prologue = session.resume_on(plan);
                s.wall_offset = now - rel0;
                s.seg_realloc = prologue;
            } else {
                let template = &self.templates[s.arrival.template];
                let session = TenantSession::new(
                    &self.cluster,
                    template.graph.clone(),
                    plan.clone(),
                    template.config.clone(),
                    s.arrival.id,
                    s.iterations,
                    self.seed,
                )?;
                s.session = Some(session);
                s.admitted_at = Some(now);
                s.decision = if s.queue_wait == 0.0 {
                    AdmissionDecision::Admitted
                } else {
                    AdmissionDecision::Queued
                };
                s.wall_offset = now;
                s.seg_realloc = 0.0;
            }
            s.phase = Phase::Running;
            s.seg_start = now;
            s.seg_iters = 0;
        }
        self.lease(si, mesh, now);
        self.step(si);
        Ok(())
    }

    /// Runs the next iteration of a running session and schedules its
    /// boundary event.
    fn step(&mut self, si: usize) {
        let s = &mut self.served[si];
        let session = s.session.as_mut().expect("stepping a live session");
        session.run_iteration();
        let at = s.wall_offset + session.rel_time();
        let seq = self.seq;
        self.seq += 1;
        self.push(Event {
            at,
            kind: KIND_ITER_END,
            seq,
            tenant: si,
        });
    }

    fn close_segment(&mut self, si: usize, now: f64) {
        let mesh = self.served[si].home.expect("segment on a lease");
        let s = &mut self.served[si];
        s.segments.push(Segment {
            start_secs: s.seg_start,
            end_secs: now,
            iters: s.seg_iters,
            realloc_secs: s.seg_realloc,
            allocation: mesh.to_string(),
        });
        s.seg_iters = 0;
        s.seg_realloc = 0.0;
    }

    /// Tries to mark a running victim for checkpointed preemption on behalf
    /// of waiting arrival `si`. Victims are considered lowest priority
    /// first (youngest first within a priority); the first one whose freed
    /// mesh admits the arrival *and* passes the cost/benefit gate is
    /// marked. Returns `true` when a victim was marked.
    fn try_preempt(&mut self, si: usize) -> bool {
        let me = &self.served[si];
        let Some(prices) = self.prices(me.arrival.template) else {
            return false;
        };
        let mut victims: Vec<usize> = (0..self.served.len())
            .filter(|&i| {
                let v = &self.served[i];
                v.phase == Phase::Running
                    && v.preempt_for.is_none()
                    && v.priority < me.priority
                    && v.session.as_ref().expect("running").remaining() > 0
            })
            .collect();
        victims.sort_by(|&a, &b| {
            self.served[a]
                .priority
                .total_cmp(&self.served[b].priority)
                .then(self.served[b].arrival.id.cmp(&self.served[a].arrival.id))
        });
        let mut evaluated = false;
        let mut marked = None;
        for vi in victims {
            let v = &self.served[vi];
            let mut free = self.free.clone();
            if let Some(mesh) = v.home {
                for g in mesh.gpus() {
                    free[g.0 as usize] = true;
                }
            }
            let Some(candidate) = prices.fit_on(&free) else {
                continue;
            };
            evaluated = true;
            let victim_remaining =
                v.session.as_ref().expect("running").remaining() as f64 * self.mean_iter(vi);
            let arrival_service = candidate.step_secs * me.iterations as f64;
            let victim_prologue = self
                .prices(v.arrival.template)
                .map(|p| p.prologue_secs)
                .unwrap_or(0.0);
            if preemption_gate(
                me.priority,
                victim_remaining,
                v.priority,
                arrival_service,
                victim_prologue,
                self.admission.min_benefit_ratio,
            ) {
                marked = Some(vi);
                break;
            }
        }
        if let Some(vi) = marked {
            self.served[vi].preempt_for = Some(si);
            true
        } else {
            if evaluated {
                self.gate_rejections += 1;
            }
            false
        }
    }

    fn on_arrival(&mut self, si: usize, now: f64) -> Result<(), ServeError> {
        self.served[si].phase = Phase::Waiting;
        let template = self.served[si].arrival.template;
        if self.prices(template).is_none() {
            self.reject(si, RejectReason::Infeasible, now);
            return Ok(());
        }
        let hit = self
            .prices(template)
            .expect("checked above")
            .fit_on(&self.free)
            .map(|c| (c.mesh, c.plan.clone()));
        if let Some((mesh, plan)) = hit {
            return self.admit(si, mesh, &plan, now);
        }
        if self.admission.admit_all {
            return Ok(()); // wait in the queue, never rejected
        }
        if self.admission.preemption && self.try_preempt(si) {
            return Ok(()); // wait for the victim's iteration boundary
        }
        let prices = self.prices(template).expect("checked above");
        let wait = self.projected_wait(si, prices, now);
        let me = &self.served[si];
        let service = prices.best_step_secs() * me.iterations as f64;
        let solo = prices.solo_step_secs * me.iterations as f64;
        let projected = (wait + service) / solo;
        if projected > self.admission.max_stretch {
            self.reject(si, RejectReason::StretchBound, now);
        }
        Ok(())
    }

    fn on_iter_end(&mut self, si: usize, now: f64) -> Result<(), ServeError> {
        debug_assert_eq!(self.served[si].phase, Phase::Running);
        self.served[si].seg_iters += 1;
        let done = self.served[si]
            .session
            .as_ref()
            .expect("running session")
            .is_done();
        if done {
            self.close_segment(si, now);
            self.release(si, now);
            let s = &mut self.served[si];
            s.phase = Phase::Finished;
            s.finish = Some(now);
            return self.drain_queue(now);
        }
        if let Some(beneficiary) = self.served[si].preempt_for.take() {
            if self.served[beneficiary].phase == Phase::Waiting {
                // Suspend at this boundary: checkpoint, free the mesh, and
                // let the queue drain admit the beneficiary.
                let ckpt = self.served[si]
                    .session
                    .as_ref()
                    .expect("running")
                    .checkpoint();
                self.close_segment(si, now);
                self.release(si, now);
                let s = &mut self.served[si];
                s.checkpoint = Some(ckpt);
                s.phase = Phase::Suspended;
                s.wait_since = now;
                s.preemptions += 1;
                self.preemptions += 1;
                return self.drain_queue(now);
            }
            // Beneficiary got capacity some other way; keep running.
        }
        self.step(si);
        Ok(())
    }

    /// Admits every waiting tenant that fits the freed capacity, in
    /// priority order (suspended before fresh at equal priority, FIFO
    /// within). Fresh admissions re-check the stretch bound against their
    /// *realized* wait — a queued arrival whose wait has already blown the
    /// bound is rejected late rather than served pointlessly.
    fn drain_queue(&mut self, now: f64) -> Result<(), ServeError> {
        let mut waiting: Vec<usize> = (0..self.served.len())
            .filter(|&i| matches!(self.served[i].phase, Phase::Waiting | Phase::Suspended))
            .collect();
        waiting.sort_by(|&a, &b| {
            let (sa, sb) = (&self.served[a], &self.served[b]);
            sb.priority
                .total_cmp(&sa.priority)
                .then_with(|| {
                    let fresh = |s: &Served| u8::from(s.phase != Phase::Suspended);
                    fresh(sa).cmp(&fresh(sb))
                })
                .then(sa.arrival.id.cmp(&sb.arrival.id))
        });
        for si in waiting {
            let template = self.served[si].arrival.template;
            if self.prices(template).is_none() {
                continue;
            }
            if self.served[si].phase == Phase::Suspended {
                // Prefer the checkpointed mesh: a same-plan resume is free.
                let home = self.served[si].home.expect("suspended had a lease");
                if home.gpus().all(|g| self.free[g.0 as usize]) {
                    let plan = self.served[si]
                        .session
                        .as_ref()
                        .expect("suspended session")
                        .plan()
                        .clone();
                    self.admit(si, home, &plan, now)?;
                    continue;
                }
                let hit = self
                    .prices(template)
                    .expect("checked above")
                    .fit_on(&self.free)
                    .map(|c| (c.mesh, c.plan.clone()));
                if let Some((mesh, plan)) = hit {
                    self.admit(si, mesh, &plan, now)?;
                }
                continue;
            }
            // Fresh admission: late stretch check on the realized wait.
            if !self.admission.admit_all {
                let prices = self.prices(template).expect("checked above");
                let me = &self.served[si];
                let waited = now - me.arrival.at;
                let service = prices.best_step_secs() * me.iterations as f64;
                let solo = prices.solo_step_secs * me.iterations as f64;
                let over = (waited + service) / solo > self.admission.max_stretch;
                if over {
                    self.reject(si, RejectReason::StretchBound, now);
                    continue;
                }
            }
            let hit = self
                .prices(template)
                .expect("checked above")
                .fit_on(&self.free)
                .map(|c| (c.mesh, c.plan.clone()));
            if let Some((mesh, plan)) = hit {
                self.admit(si, mesh, &plan, now)?;
            }
        }
        Ok(())
    }

    fn into_report(self, spec: &WorkloadSpec) -> ServeReport {
        let total_gpus = self.cluster.total_gpus();
        let mut tenants = Vec::with_capacity(self.served.len());
        let mut resumes = 0;
        for s in &self.served {
            let (service_secs, realloc_secs, iter_secs) = match &s.session {
                Some(sess) => {
                    resumes += sess.resumes();
                    (
                        sess.iter_secs().iter().sum(),
                        sess.realloc_secs(),
                        sess.iter_secs().to_vec(),
                    )
                }
                None => (0.0, 0.0, Vec::new()),
            };
            let solo_service = self.templates[s.arrival.template]
                .prices
                .as_ref()
                .map(|p| p.solo_step_secs * s.iterations as f64)
                .unwrap_or(0.0);
            let stretch = match s.finish {
                Some(f) if solo_service > 0.0 => (f - s.arrival.at) / solo_service,
                _ => 0.0,
            };
            tenants.push(ServedTenant {
                name: s.arrival.name.clone(),
                id: s.arrival.id,
                template: s.arrival.template,
                priority: s.priority,
                iterations: s.iterations,
                decision: s.decision,
                arrival_secs: s.arrival.at,
                admitted_secs: s.admitted_at,
                finish_secs: s.finish,
                queue_wait_secs: s.queue_wait,
                service_secs,
                realloc_secs,
                preemptions: s.preemptions,
                stretch,
                segments: s.segments.clone(),
                iter_secs,
            });
        }
        let arrivals = tenants.len();
        let admitted = tenants
            .iter()
            .filter(|t| t.decision == AdmissionDecision::Admitted)
            .count();
        let queued = tenants
            .iter()
            .filter(|t| t.decision == AdmissionDecision::Queued && t.finish_secs.is_some())
            .count();
        let rejected = tenants
            .iter()
            .filter(|t| matches!(t.decision, AdmissionDecision::Rejected { .. }))
            .count();
        let makespan_secs = tenants
            .iter()
            .filter_map(|t| t.finish_secs)
            .fold(0.0, f64::max);
        let weighted_flow_secs = tenants
            .iter()
            .filter_map(|t| t.finish_secs.map(|f| t.priority * (f - t.arrival_secs)))
            .sum();
        let max_stretch = tenants.iter().map(|t| t.stretch).fold(0.0, f64::max);
        let served_waits: Vec<f64> = tenants
            .iter()
            .filter(|t| t.finish_secs.is_some())
            .map(|t| t.queue_wait_secs)
            .collect();
        let stretches: Vec<f64> = tenants
            .iter()
            .filter(|t| t.finish_secs.is_some())
            .map(|t| t.stretch)
            .collect();
        let mean_utilization = mean_utilization(&self.util, makespan_secs, total_gpus);
        ServeReport {
            seed: self.seed,
            horizon_secs: spec.horizon(),
            total_gpus,
            arrivals,
            admitted,
            queued,
            rejected,
            admission_rate: rate(admitted + queued, arrivals),
            rejection_rate: rate(rejected, arrivals),
            preemptions: self.preemptions,
            resumes,
            gate_rejections: self.gate_rejections,
            makespan_secs,
            weighted_flow_secs,
            max_stretch,
            mean_utilization,
            utilization: self.util,
            percentiles: vec![
                PercentileSummary::from_values("stretch", &stretches),
                PercentileSummary::from_values("queue-wait-seconds", &served_waits),
            ],
            tenants,
        }
    }
}

fn rate(n: usize, of: usize) -> f64 {
    if of == 0 {
        0.0
    } else {
        n as f64 / of as f64
    }
}

/// Time-weighted mean of `leased / total` over `[0, makespan]` from the
/// lease-change step timeline.
fn mean_utilization(util: &[UtilPoint], makespan: f64, total_gpus: u32) -> f64 {
    if makespan <= 0.0 || total_gpus == 0 {
        return 0.0;
    }
    let mut area = 0.0;
    for w in util.windows(2) {
        let span = (w[1].at_secs.min(makespan) - w[0].at_secs.min(makespan)).max(0.0);
        area += span * f64::from(w[0].leased_gpus);
    }
    if let Some(last) = util.last() {
        area += (makespan - last.at_secs.min(makespan)) * f64::from(last.leased_gpus);
    }
    area / (makespan * f64::from(total_gpus))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{ArrivalSpec, TemplateSpec};
    use real_sched::TenantSpec;

    fn tenant(name: &str, priority: f64, iterations: usize, batch: u64) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            id: None,
            priority: Some(priority),
            algo: Some("dpo".into()),
            actor: Some("7b".into()),
            critic: None,
            batch: Some(batch),
            graph: None,
            iterations: Some(iterations),
            faults: None,
            elastic: None,
        }
    }

    fn trace_spec(times: Vec<f64>, templates: Vec<TemplateSpec>) -> WorkloadSpec {
        WorkloadSpec {
            nodes: 2,
            seed: Some(5),
            horizon_secs: Some(100_000.0),
            arrivals: ArrivalSpec::Trace {
                times_secs: times,
                templates: None,
            },
            templates,
            admission: None,
        }
    }

    #[test]
    fn a_single_arrival_runs_solo_and_finishes() {
        let spec = trace_spec(
            vec![0.0],
            vec![TemplateSpec {
                tenant: tenant("solo", 1.0, 2, 32),
                weight: None,
            }],
        );
        let report = serve(&spec, &GraphSet::new()).unwrap();
        assert_eq!(report.arrivals, 1);
        assert_eq!(report.admitted, 1);
        assert_eq!(report.rejected, 0);
        let t = &report.tenants[0];
        assert_eq!(t.decision, AdmissionDecision::Admitted);
        assert_eq!(t.iter_secs.len(), 2);
        assert!(t.finish_secs.unwrap() > 0.0);
        assert_eq!(t.queue_wait_secs, 0.0);
        assert!(report.mean_utilization > 0.0 && report.mean_utilization <= 1.0);
        assert!((report.makespan_secs - t.finish_secs.unwrap()).abs() < 1e-9);
    }

    #[test]
    fn contended_arrivals_queue_and_drain_deterministically() {
        // Several same-priority tenants arriving together on a small
        // cluster: some queue, all eventually finish, none rejected (the
        // wait stays within the default stretch bound for these tiny jobs
        // only if capacity frees fast — allow rejections, but require
        // determinism and conservation).
        let spec = trace_spec(
            vec![0.0, 0.0, 1.0, 2.0],
            vec![TemplateSpec {
                tenant: tenant("job", 1.0, 1, 32),
                weight: None,
            }],
        );
        let a = serve(&spec, &GraphSet::new()).unwrap();
        let b = serve(&spec, &GraphSet::new()).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "same seed, byte-identical report"
        );
        assert_eq!(a.arrivals, 4);
        assert_eq!(a.admitted + a.queued + a.rejected, 4);
        // Leases are exclusive: the utilization timeline never exceeds the
        // cluster.
        assert!(a.utilization.iter().all(|u| u.leased_gpus <= a.total_gpus));
    }

    #[test]
    fn admit_all_never_rejects() {
        let mut spec = trace_spec(
            vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            vec![TemplateSpec {
                tenant: tenant("burst", 1.0, 1, 32),
                weight: None,
            }],
        );
        spec.admission = Some(crate::workload::AdmissionSpec {
            max_stretch: None,
            admit_all: Some(true),
            preemption: None,
            min_benefit_ratio: None,
            probe_steps: None,
        });
        let report = serve(&spec, &GraphSet::new()).unwrap();
        assert_eq!(report.rejected, 0);
        assert!(
            report.tenants.iter().all(|t| t.finish_secs.is_some()),
            "everyone eventually served"
        );
    }

    #[test]
    fn a_high_priority_burst_preempts_a_low_priority_tenant() {
        // One long low-priority tenant holds the cluster's best mesh; a
        // 100x-priority arrival lands mid-run. The gate fires: victim
        // suspended at an iteration boundary, beneficiary served, victim
        // resumed and finished afterwards.
        let mut spec = trace_spec(
            Vec::new(),
            vec![
                TemplateSpec {
                    tenant: tenant("lowpri", 0.1, 12, 64),
                    weight: None,
                },
                TemplateSpec {
                    tenant: tenant("highpri", 10.0, 1, 32),
                    weight: None,
                },
            ],
        );
        spec.arrivals = ArrivalSpec::Trace {
            times_secs: vec![0.0, 5.0],
            templates: Some(vec![0, 1]),
        };
        let report = serve(&spec, &GraphSet::new()).unwrap();
        assert_eq!(report.arrivals, 2);
        let victim = &report.tenants[0];
        let burst = &report.tenants[1];
        assert!(report.preemptions >= 1, "gate should fire: {report:?}");
        assert!(victim.preemptions >= 1);
        assert_eq!(victim.iter_secs.len(), 12, "victim still ran everything");
        assert!(victim.finish_secs.is_some());
        assert!(burst.finish_secs.is_some());
        assert!(
            burst.finish_secs.unwrap() < victim.finish_secs.unwrap(),
            "the burst jumps ahead of the victim"
        );
        assert!(victim.segments.len() >= 2, "suspension splits the service");
    }

    #[test]
    fn infeasible_templates_are_rejected_at_arrival() {
        // A 70B actor cannot fit one 8-GPU node under any strategy.
        let mut spec = trace_spec(
            vec![0.0],
            vec![TemplateSpec {
                tenant: tenant("huge", 1.0, 1, 512),
                weight: None,
            }],
        );
        spec.nodes = 1;
        spec.templates[0].tenant.actor = Some("70b".into());
        let report = serve(&spec, &GraphSet::new()).unwrap();
        assert_eq!(report.rejected, 1);
        assert_eq!(
            report.tenants[0].decision,
            AdmissionDecision::Rejected {
                reason: RejectReason::Infeasible
            }
        );
    }
}
