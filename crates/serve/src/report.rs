//! The serving report: per-tenant lifecycles and the aggregate
//! service-quality numbers.
//!
//! [`ServeReport`] is pure serde data, and the serving loop is seeded
//! end to end — so *the same seed yields a byte-identical report*, which is
//! how `tests/serving.rs` pins down determinism (it compares the rendered
//! JSON of two runs). Per-tenant rows keep the full iteration-duration
//! vector and the service [`Segment`]s, so suspend/resume trajectories can
//! be compared bitwise against solo runs.

use crate::admission::AdmissionDecision;
use real_obs::profile::PercentileSummary;
use serde::{Deserialize, Serialize};

/// One contiguous service interval of a tenant on a leased mesh (the spans
/// between admission/resume and finish/suspension).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Wall-clock start of the lease (seconds on the serving clock).
    pub start_secs: f64,
    /// Wall-clock end of the lease.
    pub end_secs: f64,
    /// Iterations completed inside this segment.
    pub iters: usize,
    /// Reallocation-prologue seconds paid at the start of this segment
    /// (`0` when the tenant resumed on its old mesh, or never moved).
    pub realloc_secs: f64,
    /// The leased allocation, rendered (e.g. `node0`).
    pub allocation: String,
}

/// One arrival's full service lifecycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServedTenant {
    /// Tenant name, `{template}-{per-template sequence}`.
    pub name: String,
    /// Sequential arrival id (seeds the tenant's RNG substream).
    pub id: u64,
    /// Index into the workload's template list.
    pub template: usize,
    /// Priority weight.
    pub priority: f64,
    /// Iterations requested.
    pub iterations: usize,
    /// The admission verdict (`Admitted` = served immediately, `Queued` =
    /// waited then served, `Rejected` = never served).
    pub decision: AdmissionDecision,
    /// Arrival instant on the serving clock.
    pub arrival_secs: f64,
    /// First admission instant (`None` for rejected arrivals).
    pub admitted_secs: Option<f64>,
    /// Finish instant (`None` for rejected arrivals).
    pub finish_secs: Option<f64>,
    /// Total seconds spent waiting (initial queueing plus suspensions).
    pub queue_wait_secs: f64,
    /// Total seconds of iteration execution.
    pub service_secs: f64,
    /// Total reallocation-prologue seconds paid across resumes.
    pub realloc_secs: f64,
    /// Times this tenant was preempted (checkpoint-suspended).
    pub preemptions: usize,
    /// Realized stretch: (finish − arrival) over the estimated solo
    /// full-cluster service time. `0` for rejected arrivals.
    pub stretch: f64,
    /// The service intervals, in time order.
    pub segments: Vec<Segment>,
    /// Per-iteration durations on the session clock (bitwise comparable
    /// across runs — see the determinism contract in `real-runtime`'s
    /// session module).
    pub iter_secs: Vec<f64>,
}

/// One step of the leased-GPU timeline (recorded at every lease change).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilPoint {
    /// Instant of the lease change.
    pub at_secs: f64,
    /// GPUs leased from this instant until the next point.
    pub leased_gpus: u32,
}

/// The aggregate serving report (see the module docs for the byte-identity
/// guarantee).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// The workload seed.
    pub seed: u64,
    /// The arrival horizon in seconds (service drains past it).
    pub horizon_secs: f64,
    /// Total GPUs in the cluster.
    pub total_gpus: u32,
    /// Arrivals generated from the workload.
    pub arrivals: usize,
    /// Arrivals served immediately.
    pub admitted: usize,
    /// Arrivals that waited in the queue before service.
    pub queued: usize,
    /// Arrivals turned away (at arrival or while queued).
    pub rejected: usize,
    /// Fraction of arrivals eventually served.
    pub admission_rate: f64,
    /// Fraction of arrivals rejected.
    pub rejection_rate: f64,
    /// Checkpointed preemptions (victim suspensions).
    pub preemptions: usize,
    /// Plan-switching resumes (same-mesh resumes are free and not counted).
    pub resumes: usize,
    /// Arrivals whose preemption attempt failed the cost/benefit gate.
    pub gate_rejections: usize,
    /// Last finish instant across all served tenants.
    pub makespan_secs: f64,
    /// Priority-weighted flow time `Σᵢ pᵢ·(finishᵢ − arrivalᵢ)` over served
    /// tenants — the serving analogue of the scheduler's weighted makespan.
    pub weighted_flow_secs: f64,
    /// Worst realized stretch across served tenants.
    pub max_stretch: f64,
    /// Time-averaged leased-GPU fraction over the makespan.
    pub mean_utilization: f64,
    /// The leased-GPU step timeline.
    pub utilization: Vec<UtilPoint>,
    /// Queue-wait and stretch percentile summaries across served tenants.
    pub percentiles: Vec<PercentileSummary>,
    /// Per-arrival lifecycles, in arrival order.
    pub tenants: Vec<ServedTenant>,
}

/// Tenant rows shown in full before the human rendering elides the rest.
const RENDER_ROWS: usize = 32;

impl ServeReport {
    /// Renders the report as an aligned per-tenant table (elided past 32
    /// rows), the percentile summaries, and an aggregate footer.
    pub fn render(&self) -> String {
        let mut table = real_util::Table::new(vec![
            "tenant",
            "prio",
            "decision",
            "arrival (s)",
            "wait (s)",
            "stretch",
            "preempt",
            "allocation",
        ]);
        for t in self.tenants.iter().take(RENDER_ROWS) {
            table.row(vec![
                t.name.clone(),
                format!("{:.1}", t.priority),
                decision_label(&t.decision).to_string(),
                format!("{:.0}", t.arrival_secs),
                format!("{:.1}", t.queue_wait_secs),
                if t.finish_secs.is_some() {
                    format!("{:.2}", t.stretch)
                } else {
                    "-".into()
                },
                t.preemptions.to_string(),
                t.segments
                    .last()
                    .map(|s| s.allocation.clone())
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        let mut out = table.render();
        if self.tenants.len() > RENDER_ROWS {
            out.push_str(&format!(
                "... and {} more arrivals (see --json for all)\n",
                self.tenants.len() - RENDER_ROWS
            ));
        }
        out.push('\n');
        let mut pct =
            real_util::Table::new(vec!["percentile", "count", "p50", "p95", "p99", "max"]);
        for p in &self.percentiles {
            pct.row(vec![
                p.name.clone(),
                p.count.to_string(),
                format!("{:.3}", p.p50),
                format!("{:.3}", p.p95),
                format!("{:.3}", p.p99),
                format!("{:.3}", p.max),
            ]);
        }
        out.push_str(&pct.render());
        out.push_str(&format!(
            "\narrivals {}   admitted {}   queued {}   rejected {} ({:.1}%)   preemptions {}   gate-rejected {}\n\
             makespan {:.0}s   weighted flow {:.0}s   max stretch {:.2}   utilization {:.1}%\n",
            self.arrivals,
            self.admitted,
            self.queued,
            self.rejected,
            self.rejection_rate * 100.0,
            self.preemptions,
            self.gate_rejections,
            self.makespan_secs,
            self.weighted_flow_secs,
            self.max_stretch,
            self.mean_utilization * 100.0,
        ));
        out
    }
}

/// Short human label for a decision cell.
pub(crate) fn decision_label(d: &AdmissionDecision) -> &'static str {
    match d {
        AdmissionDecision::Admitted => "admitted",
        AdmissionDecision::Queued => "queued",
        AdmissionDecision::Rejected {
            reason: crate::admission::RejectReason::Infeasible,
        } => "rejected:infeasible",
        AdmissionDecision::Rejected {
            reason: crate::admission::RejectReason::StretchBound,
        } => "rejected:stretch",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::RejectReason;

    fn tenant(name: &str, decision: AdmissionDecision) -> ServedTenant {
        ServedTenant {
            name: name.into(),
            id: 0,
            template: 0,
            priority: 1.0,
            iterations: 2,
            decision,
            arrival_secs: 0.0,
            admitted_secs: Some(0.0),
            finish_secs: Some(10.0),
            queue_wait_secs: 0.0,
            service_secs: 10.0,
            realloc_secs: 0.0,
            preemptions: 0,
            stretch: 1.0,
            segments: vec![Segment {
                start_secs: 0.0,
                end_secs: 10.0,
                iters: 2,
                realloc_secs: 0.0,
                allocation: "node0".into(),
            }],
            iter_secs: vec![5.0, 5.0],
        }
    }

    fn report() -> ServeReport {
        let tenants = vec![
            tenant("a-0", AdmissionDecision::Admitted),
            tenant(
                "b-0",
                AdmissionDecision::Rejected {
                    reason: RejectReason::StretchBound,
                },
            ),
        ];
        ServeReport {
            seed: 1,
            horizon_secs: 100.0,
            total_gpus: 8,
            arrivals: 2,
            admitted: 1,
            queued: 0,
            rejected: 1,
            admission_rate: 0.5,
            rejection_rate: 0.5,
            preemptions: 0,
            resumes: 0,
            gate_rejections: 0,
            makespan_secs: 10.0,
            weighted_flow_secs: 10.0,
            max_stretch: 1.0,
            mean_utilization: 0.5,
            utilization: vec![UtilPoint {
                at_secs: 0.0,
                leased_gpus: 8,
            }],
            percentiles: vec![PercentileSummary::from_values("stretch", &[1.0])],
            tenants,
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report();
        let json = serde_json::to_string(&r).unwrap();
        let back: ServeReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        // Byte-identity building block: equal reports serialize equally.
        assert_eq!(json, serde_json::to_string(&back).unwrap());
    }

    #[test]
    fn render_names_decisions_and_aggregates() {
        let text = report().render();
        assert!(text.contains("admitted"), "{text}");
        assert!(text.contains("rejected:stretch"), "{text}");
        assert!(text.contains("max stretch 1.00"), "{text}");
        assert!(text.contains("stretch"), "{text}");
    }
}
