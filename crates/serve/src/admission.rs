//! Admission-time feasibility pricing and the preemption cost/benefit gate.
//!
//! Serving cannot afford a full scheduler pass per arrival: with thousands
//! of arrivals over a day-long horizon, admission must be near-free. The
//! trick is that arrivals are *templates* — every `prod-17` prices exactly
//! like every other `prod-*` — so the serving loop prices each template
//! **once** ([`price_template`]): for every §4 candidate mesh, a canonical
//! feasibility probe ([`real_estimator::probe::fit_plan`]) answers "does
//! the template fit here at all", and a short warm-started MCMC chain under
//! [`Estimator::allocation_cost`] refines it into a priced plan (the same
//! per-(tenant, mesh) candidate pipeline as `real-sched`'s allocation
//! search, sharing one `CostMemo` across the template's meshes). Each
//! arrival then probes the resulting [`TemplatePrices`] table against the
//! live free-GPU overlay in O(candidates).
//!
//! The admission verdict is an [`AdmissionDecision`]; the preemption
//! decision generalizes the re-plan gate's measured cost/benefit rule to
//! "is the preemption worth two prologues" ([`preemption_gate`]).

use real_cluster::DeviceMesh;
use real_dataflow::ExecutionPlan;
use real_estimator::{probe, CostMemo, Estimator};
use real_search::{search_warm_with_memo, McmcConfig, PruneLevel, SearchSpace};
use real_util::DeterministicRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::time::Duration;

/// The admission verdict for one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionDecision {
    /// Capacity was available (possibly via preemption): the tenant started
    /// service immediately.
    Admitted,
    /// No capacity now, but the projected stretch (queue wait included)
    /// stays within the bound: the tenant waits in the priority queue.
    Queued,
    /// The arrival was turned away.
    Rejected {
        /// Why it was turned away.
        reason: RejectReason,
    },
}

/// Why an arrival was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The template fits no candidate mesh of this cluster at all (out of
    /// device memory on every mesh).
    Infeasible,
    /// Projected stretch — (queue wait + service) over solo service —
    /// exceeds the `max_stretch` bound.
    StretchBound,
}

/// One priced placement candidate for a template.
#[derive(Debug, Clone)]
pub struct TemplateCandidate {
    /// The candidate allocation.
    pub mesh: DeviceMesh,
    /// The priced execution plan, confined to the mesh.
    pub plan: ExecutionPlan,
    /// Estimated per-iteration step seconds on the mesh.
    pub step_secs: f64,
}

/// The admission price table of one template: every feasible candidate
/// mesh with a plan and step estimate, fastest first.
#[derive(Debug, Clone)]
pub struct TemplatePrices {
    /// Feasible candidates, sorted by `step_secs` (ties: mesh coordinates).
    pub candidates: Vec<TemplateCandidate>,
    /// Estimated step seconds running alone on the full cluster (the
    /// stretch denominator).
    pub solo_step_secs: f64,
    /// Estimated cost of one reallocation prologue: moving every model of
    /// the template's graph to a fresh layout, priced as one inter-node
    /// parameter broadcast per distinct model (bf16).
    pub prologue_secs: f64,
}

impl TemplatePrices {
    /// The fastest candidate whose mesh is wholly free under the per-GPU
    /// occupancy overlay (`free[g]` true ⇔ `GpuId(g)` unleased), or `None`
    /// when nothing fits right now.
    pub fn fit_on<'a>(&'a self, free: &[bool]) -> Option<&'a TemplateCandidate> {
        self.candidates
            .iter()
            .find(|c| c.mesh.gpus().all(|g| free[g.0 as usize]))
    }

    /// The template's best-case step seconds (fastest candidate).
    pub fn best_step_secs(&self) -> f64 {
        self.candidates[0].step_secs
    }
}

/// Prices `template` on every §4 candidate mesh of the estimator's cluster:
/// canonical-probe pre-filter, then a `probe_steps`-bounded warm-started
/// MCMC chain per mesh, keeping memory-feasible contained plans only.
/// Returns `None` when no mesh fits — arrivals of this template are
/// rejected as [`RejectReason::Infeasible`].
///
/// Seeded by `(seed, template, mesh)` so a template's prices are
/// independent of co-template membership and of arrival order; `memo` is
/// shared across the template's meshes (and across re-pricing calls).
pub fn price_template(
    est: &Estimator,
    template: u64,
    seed: u64,
    probe_steps: u64,
    memo: &mut CostMemo,
) -> Option<TemplatePrices> {
    let cluster = est.cluster();
    let graph = est.graph();
    let all_meshes = DeviceMesh::enumerate(cluster);
    let full = DeviceMesh::full(cluster);
    let mut candidates = Vec::new();
    for (mesh_index, mesh) in all_meshes.iter().enumerate() {
        // Canonical feasibility probe: no strategy fits ⇒ skip the search.
        let Some(canonical) = probe::fit_plan(est, mesh) else {
            continue;
        };
        let inner = real_cluster::partition::meshes_within(cluster, mesh);
        let Ok(space) = SearchSpace::try_build_on(cluster, graph, PruneLevel::Aggressive, &inner)
        else {
            continue;
        };
        let mut rng = DeterministicRng::from_seed(seed)
            .derive("serve")
            .derive("price")
            .derive_index(template)
            .derive_index(mesh_index as u64);
        let cfg = McmcConfig {
            beta: 6.0,
            max_steps: probe_steps,
            // Step-bounded only: a wall-clock cutoff would make admission
            // depend on machine load and break replay.
            time_limit: Duration::from_secs(86_400),
            seed: rng.next_u64(),
            record_trace: false,
            memo: true,
        };
        let result = search_warm_with_memo(est, &space, &cfg, &canonical, memo);
        let cost = est.allocation_cost(&result.best_plan, mesh);
        if !result.feasible || !cost.feasible() {
            continue;
        }
        candidates.push(TemplateCandidate {
            mesh: *mesh,
            plan: result.best_plan,
            step_secs: cost.step_secs,
        });
    }
    if candidates.is_empty() {
        return None;
    }
    candidates.sort_by(|a, b| {
        a.step_secs
            .partial_cmp(&b.step_secs)
            .expect("step times are finite")
            .then_with(|| mesh_key(&a.mesh).cmp(&mesh_key(&b.mesh)))
    });
    let solo_step_secs = candidates
        .iter()
        .find(|c| c.mesh == full)
        .map(|c| c.step_secs)
        .unwrap_or(candidates[0].step_secs);

    // Prologue estimate: one inter-node broadcast of each distinct model's
    // bf16 parameters — the Fig. 6 reallocation a preempted tenant pays to
    // move off and back onto a mesh.
    let comm = est.comm();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut prologue_secs = 0.0;
    for call in graph.calls() {
        if seen.insert(call.model.name.as_str()) {
            let bytes = call.model.param_count() as f64 * 2.0;
            prologue_secs += comm.broadcast(bytes, 2, false);
        }
    }
    Some(TemplatePrices {
        candidates,
        solo_step_secs,
        prologue_secs,
    })
}

/// The generalized re-plan gate for checkpointed preemption: suspend a
/// running victim (priority `p_v`, `victim_remaining_secs` of estimated
/// service left) to admit a waiting arrival (priority `p_h`, estimated
/// service `arrival_service_secs` on the freed capacity) iff
///
/// ```text
/// p_h · W_v  >  p_v · S_h  +  γ · 2 · C_prologue
/// ```
///
/// — the priority-weighted wait the arrival avoids (it would otherwise sit
/// behind the victim's remaining work `W_v`) must exceed the
/// priority-weighted delay inflicted on the victim (`S_h`, which now runs
/// ahead of it) plus the reallocation overhead: *two* prologues (the victim
/// moves off and later back on), scaled by the `min_benefit_ratio` γ. With
/// γ = 0 this degrades to pure weighted-priority preemption; large γ
/// preempts only when the avoided wait dwarfs the switch cost — exactly the
/// role `min_benefit_ratio` plays in `master::run_replan`'s gate.
pub fn preemption_gate(
    p_high: f64,
    victim_remaining_secs: f64,
    p_victim: f64,
    arrival_service_secs: f64,
    prologue_secs: f64,
    gamma: f64,
) -> bool {
    p_high * victim_remaining_secs > p_victim * arrival_service_secs + gamma * 2.0 * prologue_secs
}

/// Deterministic total order on meshes for tie-breaking (mirrors the
/// scheduler's).
fn mesh_key(mesh: &DeviceMesh) -> (u32, u32, u32, u32) {
    (
        mesh.node_start(),
        mesh.n_nodes(),
        mesh.gpu_start(),
        mesh.gpu_width(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use real_cluster::ClusterSpec;
    use real_core::Experiment;
    use real_dataflow::algo::RlhfConfig;
    use real_model::ModelSpec;

    fn estimator(nodes: u32, batch: u64) -> Estimator {
        Experiment::dpo(
            ClusterSpec::h100(nodes),
            ModelSpec::llama3_7b(),
            RlhfConfig::instruct_gpt(batch),
        )
        .with_quick_profile()
        .prepare()
        .0
    }

    #[test]
    fn pricing_is_deterministic_and_sorted() {
        let est = estimator(2, 32);
        let mut memo = CostMemo::new();
        let a = price_template(&est, 0, 7, 150, &mut memo).unwrap();
        let b = price_template(&est, 0, 7, 150, &mut CostMemo::new()).unwrap();
        assert_eq!(a.candidates.len(), b.candidates.len());
        for (x, y) in a.candidates.iter().zip(&b.candidates) {
            assert_eq!(x.mesh, y.mesh);
            assert_eq!(x.step_secs.to_bits(), y.step_secs.to_bits());
            assert_eq!(x.plan, y.plan);
        }
        assert!(a
            .candidates
            .windows(2)
            .all(|w| w[0].step_secs <= w[1].step_secs));
        assert!(a.solo_step_secs > 0.0);
        assert!(a.prologue_secs > 0.0);
        // Re-pricing with the shared memo hits the cache.
        let _ = price_template(&est, 0, 7, 150, &mut memo).unwrap();
        assert!(memo.stats().hits > 0);
    }

    #[test]
    fn fit_on_respects_the_free_overlay() {
        let est = estimator(2, 32);
        let prices = price_template(&est, 0, 7, 150, &mut CostMemo::new()).unwrap();
        let all_free = vec![true; 16];
        assert!(prices.fit_on(&all_free).is_some());
        // Lease node 0 out: the fit must move wholly onto node 1.
        let mut half = vec![true; 16];
        for slot in half.iter_mut().take(8) {
            *slot = false;
        }
        if let Some(c) = prices.fit_on(&half) {
            assert!(c.mesh.gpus().all(|g| g.0 >= 8));
        }
        assert!(prices.fit_on(&vec![false; 16]).is_none());
    }

    #[test]
    fn gate_prefers_high_priority_over_long_victims() {
        // 10x-priority arrival vs a victim with lots of work left: preempt.
        assert!(preemption_gate(10.0, 1000.0, 0.5, 100.0, 10.0, 1.0));
        // Equal priorities: never worth paying two prologues.
        assert!(!preemption_gate(1.0, 100.0, 1.0, 100.0, 10.0, 1.0));
        // Victim nearly done: not worth it even for a high-priority burst.
        assert!(!preemption_gate(10.0, 1.0, 0.5, 100.0, 10.0, 1.0));
        // γ scales the prologue term: with γ=0 the borderline case flips.
        assert!(!preemption_gate(2.0, 60.0, 1.0, 100.0, 15.0, 1.0));
        assert!(preemption_gate(2.0, 60.0, 1.0, 100.0, 15.0, 0.0));
    }

    #[test]
    fn decisions_round_trip_through_serde() {
        for d in [
            AdmissionDecision::Admitted,
            AdmissionDecision::Queued,
            AdmissionDecision::Rejected {
                reason: RejectReason::Infeasible,
            },
            AdmissionDecision::Rejected {
                reason: RejectReason::StretchBound,
            },
        ] {
            let json = serde_json::to_string(&d).unwrap();
            let back: AdmissionDecision = serde_json::from_str(&json).unwrap();
            assert_eq!(back, d);
        }
    }
}
