//! The `workload.json` schema and the seeded arrival-trace generator.
//!
//! A [`WorkloadSpec`] describes an *open stream* of RLHF jobs: the cluster,
//! a set of tenant **templates** (each a `real-sched` [`TenantSpec`], so
//! everything `tenants.json` can express — algorithms, custom `graph`
//! files, fault plans — can arrive from the stream), and an
//! [`ArrivalSpec`] giving inter-arrival times either as a seeded Poisson
//! process (optionally modulated by a periodic [`BurstSpec`] square wave)
//! or as an explicit replayed trace. [`WorkloadSpec::arrivals`] expands the
//! spec into a concrete, deterministic arrival list on the virtual clock.
//!
//! # Determinism
//!
//! The generator is seeded and **prefix-stable**: arrival *k* consumes
//! exactly one draw from the inter-arrival substream and one from the
//! template-choice substream, in time order — so extending the horizon (or
//! raising the arrival cap) appends arrivals without perturbing the ones
//! already generated. Property-tested in `tests/serving.rs`.

use real_sched::TenantSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Upper bound on generated arrivals; a day-long trace at thousands of
/// arrivals sits far below it, and it keeps a typo'd rate from producing an
/// unbounded expansion.
pub const MAX_ARRIVALS: usize = 200_000;

/// An open-stream serving workload (the `workload.json` schema).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Cluster size in 8-GPU H100 nodes (positive power of two).
    pub nodes: u32,
    /// Seed for the arrival stream, admission pricing, and every tenant
    /// substream; defaults to `1`.
    pub seed: Option<u64>,
    /// Simulated horizon in seconds: arrivals later than this are not
    /// generated (running tenants drain to completion past it). Defaults to
    /// one day (`86400`).
    pub horizon_secs: Option<f64>,
    /// The inter-arrival process.
    pub arrivals: ArrivalSpec,
    /// Tenant templates sampled per arrival (weighted).
    pub templates: Vec<TemplateSpec>,
    /// Admission-control policy; omit for the defaults (see
    /// [`AdmissionConfig`]).
    pub admission: Option<AdmissionSpec>,
}

/// One weighted tenant template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemplateSpec {
    /// The tenant body (same schema as a `tenants.json` entry; its `id` is
    /// ignored — arrivals get sequential ids).
    pub tenant: TenantSpec,
    /// Sampling weight (default `1.0`).
    pub weight: Option<f64>,
}

/// The inter-arrival process of a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalSpec {
    /// Memoryless arrivals at `rate_per_hour`, optionally overridden by a
    /// periodic burst window.
    Poisson {
        /// Baseline arrival rate, arrivals per simulated hour (> 0).
        rate_per_hour: f64,
        /// Optional periodic burst modulation.
        burst: Option<BurstSpec>,
    },
    /// Replay explicit arrival instants (seconds; sorted internally).
    Trace {
        /// Arrival times in seconds since the stream start.
        times_secs: Vec<f64>,
        /// Optional per-arrival template indices (parallel to
        /// `times_secs`); omit to sample templates by weight. Replayed
        /// production traces know which job each arrival was — this pins
        /// it.
        templates: Option<Vec<usize>>,
    },
}

/// A periodic square-wave burst: every `every_secs`, the arrival rate
/// switches to `rate_per_hour` for `secs` seconds (the first burst starts
/// at `t = 0`). Models the "bursty high-priority arrival" regime the
/// preemption policy exists for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstSpec {
    /// Burst period in seconds (> 0).
    pub every_secs: f64,
    /// Burst duration in seconds (> 0, ≤ `every_secs`).
    pub secs: f64,
    /// Arrival rate inside the burst window, arrivals per hour (> 0).
    pub rate_per_hour: f64,
}

/// Admission-control knobs (all optional in JSON; see [`AdmissionConfig`]
/// for the resolved defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionSpec {
    /// Max projected stretch (queue wait included) before an arrival is
    /// rejected instead of queued. Default `4.0` — the scheduler's
    /// fairness bound.
    pub max_stretch: Option<f64>,
    /// Disable admission control: every arrival is admitted or queued, never
    /// rejected, and preemption is off. The ablation baseline. Default
    /// `false`.
    pub admit_all: Option<bool>,
    /// Allow checkpointed preemption of lower-priority running tenants.
    /// Default `true`.
    pub preemption: Option<bool>,
    /// γ in the preemption gate `p_h·W_v > p_v·S_h + γ·2·C_prologue`
    /// (see docs/SERVING.md). Default `1.0`.
    pub min_benefit_ratio: Option<f64>,
    /// MCMC steps per (template, mesh) candidate pricing chain. Default
    /// `200`.
    pub probe_steps: Option<u64>,
}

/// The resolved admission policy ([`AdmissionSpec`] with defaults filled).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Max projected stretch before rejection.
    pub max_stretch: f64,
    /// Admit-all baseline mode (no rejections, no preemption).
    pub admit_all: bool,
    /// Checkpointed preemption enabled.
    pub preemption: bool,
    /// γ in the preemption cost/benefit gate.
    pub min_benefit_ratio: f64,
    /// MCMC steps per candidate pricing chain.
    pub probe_steps: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_stretch: 4.0,
            admit_all: false,
            preemption: true,
            min_benefit_ratio: 1.0,
            probe_steps: 200,
        }
    }
}

/// One concrete arrival expanded from a [`WorkloadSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Arrival {
    /// Arrival instant, seconds on the serving clock.
    pub at: f64,
    /// Sequential arrival id (also the tenant id — it seeds the tenant's
    /// RNG substream, so a tenant's execution depends only on its own
    /// arrival index, not on co-arrivals).
    pub id: u64,
    /// Tenant name, `{template}-{per-template sequence}`.
    pub name: String,
    /// Index into [`WorkloadSpec::templates`].
    pub template: usize,
}

/// Why a [`WorkloadSpec`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadError(pub String);

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid workload spec: {}", self.0)
    }
}

impl std::error::Error for WorkloadError {}

impl WorkloadSpec {
    /// The effective seed (`1` when omitted).
    pub fn seed(&self) -> u64 {
        self.seed.unwrap_or(1)
    }

    /// The effective horizon in seconds (one day when omitted).
    pub fn horizon(&self) -> f64 {
        self.horizon_secs.unwrap_or(86_400.0)
    }

    /// The resolved admission policy.
    pub fn admission(&self) -> AdmissionConfig {
        let d = AdmissionConfig::default();
        let Some(a) = self.admission else { return d };
        AdmissionConfig {
            max_stretch: a.max_stretch.unwrap_or(d.max_stretch),
            admit_all: a.admit_all.unwrap_or(d.admit_all),
            preemption: a.preemption.unwrap_or(d.preemption),
            min_benefit_ratio: a.min_benefit_ratio.unwrap_or(d.min_benefit_ratio),
            probe_steps: a.probe_steps.unwrap_or(d.probe_steps),
        }
    }

    /// Validates the stream parameters (the per-template tenant bodies are
    /// validated later, when the serving loop builds their experiments).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] when the cluster size is not a positive
    /// power of two, there are no templates, a weight/rate/burst/horizon
    /// parameter is non-positive or non-finite, a trace instant is negative
    /// or non-finite, the admission knobs are out of range, or the expected
    /// arrival count exceeds [`MAX_ARRIVALS`].
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.nodes == 0 || !self.nodes.is_power_of_two() {
            return Err(WorkloadError(format!(
                "nodes must be a positive power of two, got {}",
                self.nodes
            )));
        }
        if self.templates.is_empty() {
            return Err(WorkloadError("template list is empty".into()));
        }
        for t in &self.templates {
            let w = t.weight.unwrap_or(1.0);
            if !w.is_finite() || w <= 0.0 {
                return Err(WorkloadError(format!(
                    "template `{}`: weight must be finite and > 0, got {w}",
                    t.tenant.name
                )));
            }
        }
        let horizon = self.horizon();
        if !horizon.is_finite() || horizon <= 0.0 {
            return Err(WorkloadError(format!(
                "horizon_secs must be finite and > 0, got {horizon}"
            )));
        }
        let mut expected: f64;
        match &self.arrivals {
            ArrivalSpec::Poisson {
                rate_per_hour,
                burst,
            } => {
                if !rate_per_hour.is_finite() || *rate_per_hour <= 0.0 {
                    return Err(WorkloadError(format!(
                        "Poisson rate_per_hour must be finite and > 0, got {rate_per_hour}"
                    )));
                }
                expected = rate_per_hour * horizon / 3600.0;
                if let Some(b) = burst {
                    if !b.every_secs.is_finite() || b.every_secs <= 0.0 {
                        return Err(WorkloadError(format!(
                            "burst every_secs must be finite and > 0, got {}",
                            b.every_secs
                        )));
                    }
                    if !b.secs.is_finite() || b.secs <= 0.0 || b.secs > b.every_secs {
                        return Err(WorkloadError(format!(
                            "burst secs must be in (0, every_secs], got {}",
                            b.secs
                        )));
                    }
                    if !b.rate_per_hour.is_finite() || b.rate_per_hour <= 0.0 {
                        return Err(WorkloadError(format!(
                            "burst rate_per_hour must be finite and > 0, got {}",
                            b.rate_per_hour
                        )));
                    }
                    let windows = (horizon / b.every_secs).ceil();
                    expected += windows * b.secs * b.rate_per_hour / 3600.0;
                }
            }
            ArrivalSpec::Trace {
                times_secs,
                templates,
            } => {
                for &t in times_secs {
                    if !t.is_finite() || t < 0.0 {
                        return Err(WorkloadError(format!(
                            "trace instants must be finite and ≥ 0, got {t}"
                        )));
                    }
                }
                if let Some(forced) = templates {
                    if forced.len() != times_secs.len() {
                        return Err(WorkloadError(format!(
                            "trace templates length {} must match times_secs length {}",
                            forced.len(),
                            times_secs.len()
                        )));
                    }
                    if let Some(&bad) = forced.iter().find(|&&k| k >= self.templates.len()) {
                        return Err(WorkloadError(format!(
                            "trace template index {bad} out of range (have {} templates)",
                            self.templates.len()
                        )));
                    }
                }
                expected = times_secs.len() as f64;
            }
        }
        if expected > MAX_ARRIVALS as f64 {
            return Err(WorkloadError(format!(
                "expected ~{expected:.0} arrivals exceeds the cap of {MAX_ARRIVALS}"
            )));
        }
        let a = self.admission();
        if !a.max_stretch.is_finite() || a.max_stretch < 1.0 {
            return Err(WorkloadError(format!(
                "admission max_stretch must be finite and ≥ 1, got {}",
                a.max_stretch
            )));
        }
        if !a.min_benefit_ratio.is_finite() || a.min_benefit_ratio < 0.0 {
            return Err(WorkloadError(format!(
                "admission min_benefit_ratio must be finite and ≥ 0, got {}",
                a.min_benefit_ratio
            )));
        }
        if a.probe_steps == 0 {
            return Err(WorkloadError("admission probe_steps must be > 0".into()));
        }
        Ok(())
    }

    /// Expands the spec into the concrete arrival list (sorted by time,
    /// capped at [`MAX_ARRIVALS`]): inter-arrival instants from the seeded
    /// process (or the sorted replay trace) up to the horizon, each with a
    /// weighted template choice. See the module docs for the
    /// prefix-stability guarantee.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`Self::validate`] — call it first.
    pub fn arrivals(&self) -> Vec<Arrival> {
        self.validate()
            .expect("spec must validate before expansion");
        let horizon = self.horizon();
        let base = real_util::DeterministicRng::from_seed(self.seed()).derive("workload");
        let mut time_rng = base.derive("arrival");
        let mut choice_rng = base.derive("template");

        let times: Vec<(f64, Option<usize>)> = match &self.arrivals {
            ArrivalSpec::Trace {
                times_secs,
                templates,
            } => {
                let mut t: Vec<(f64, Option<usize>)> = times_secs
                    .iter()
                    .enumerate()
                    .filter(|(_, &x)| x <= horizon)
                    .map(|(k, &x)| (x, templates.as_ref().map(|f| f[k])))
                    .collect();
                t.sort_by(|a, b| {
                    a.0.partial_cmp(&b.0)
                        .expect("validated finite")
                        .then(a.1.cmp(&b.1))
                });
                t.truncate(MAX_ARRIVALS);
                t
            }
            ArrivalSpec::Poisson {
                rate_per_hour,
                burst,
            } => {
                let mut out = Vec::new();
                let mut t = 0.0f64;
                // Current burst window index, tracked explicitly rather than
                // recomputed from `t` — deriving it with a floating-point
                // floor can hand back a zero-width segment when `t` lands
                // bitwise on a boundary, and the integration below would
                // never advance past it.
                let mut window = 0u64;
                while out.len() < MAX_ARRIVALS {
                    // One unit-exponential draw per arrival, integrated
                    // through the piecewise-constant rate profile — this is
                    // what makes the stream prefix-stable.
                    let mut e = -(1.0 - time_rng.uniform()).ln();
                    loop {
                        let (rate, seg_end) = match burst {
                            None => (*rate_per_hour, f64::INFINITY),
                            Some(b) => {
                                let burst_end = window as f64 * b.every_secs + b.secs;
                                let window_end = (window + 1) as f64 * b.every_secs;
                                if t < burst_end {
                                    (b.rate_per_hour, burst_end)
                                } else if t < window_end {
                                    (*rate_per_hour, window_end)
                                } else {
                                    window += 1;
                                    continue;
                                }
                            }
                        };
                        let rate_per_sec = rate / 3600.0;
                        let capacity = (seg_end - t) * rate_per_sec;
                        if e <= capacity {
                            t += e / rate_per_sec;
                            break;
                        }
                        e -= capacity;
                        t = seg_end;
                    }
                    if t > horizon {
                        break;
                    }
                    out.push((t, None));
                }
                out
            }
        };

        // Weighted template choice, one draw per arrival in time order.
        let weights: Vec<f64> = self
            .templates
            .iter()
            .map(|t| t.weight.unwrap_or(1.0))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut per_template = vec![0u64; self.templates.len()];
        times
            .into_iter()
            .enumerate()
            .map(|(i, (at, forced))| {
                let template = forced.unwrap_or_else(|| {
                    let mut pick = choice_rng.uniform() * total;
                    let mut template = self.templates.len() - 1;
                    for (k, w) in weights.iter().enumerate() {
                        if pick < *w {
                            template = k;
                            break;
                        }
                        pick -= w;
                    }
                    template
                });
                let seq = per_template[template];
                per_template[template] += 1;
                Arrival {
                    at,
                    id: i as u64,
                    name: format!("{}-{seq}", self.templates[template].tenant.name),
                    template,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template(name: &str, weight: Option<f64>) -> TemplateSpec {
        TemplateSpec {
            tenant: TenantSpec {
                name: name.into(),
                id: None,
                priority: None,
                algo: Some("dpo".into()),
                actor: Some("7b".into()),
                critic: None,
                batch: Some(32),
                graph: None,
                iterations: Some(1),
                faults: None,
                elastic: None,
            },
            weight,
        }
    }

    fn poisson_spec(rate: f64, horizon: f64) -> WorkloadSpec {
        WorkloadSpec {
            nodes: 1,
            seed: Some(7),
            horizon_secs: Some(horizon),
            arrivals: ArrivalSpec::Poisson {
                rate_per_hour: rate,
                burst: None,
            },
            templates: vec![template("a", None), template("b", Some(3.0))],
            admission: None,
        }
    }

    #[test]
    fn poisson_stream_is_deterministic_and_sorted() {
        let spec = poisson_spec(120.0, 3600.0);
        let a = spec.arrivals();
        let b = spec.arrivals();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(a.iter().all(|x| x.at <= 3600.0));
        // Rough rate sanity: 120/h over an hour ⇒ far from 0 or 10x.
        assert!(a.len() > 60 && a.len() < 240, "got {}", a.len());
    }

    #[test]
    fn horizon_extension_is_prefix_stable() {
        let short = poisson_spec(60.0, 1800.0).arrivals();
        let long = poisson_spec(60.0, 7200.0).arrivals();
        assert!(long.len() > short.len());
        assert_eq!(&long[..short.len()], &short[..]);
    }

    #[test]
    fn burst_windows_raise_the_rate() {
        let mut spec = poisson_spec(10.0, 7200.0);
        let quiet = spec.arrivals().len();
        spec.arrivals = ArrivalSpec::Poisson {
            rate_per_hour: 10.0,
            burst: Some(BurstSpec {
                every_secs: 1800.0,
                secs: 300.0,
                rate_per_hour: 600.0,
            }),
        };
        let bursty = spec.arrivals();
        // 4 bursts × 300 s × 600/h ≈ 200 extra arrivals.
        assert!(bursty.len() > quiet + 100, "{} vs {quiet}", bursty.len());
        // And they cluster inside the windows.
        let in_burst = bursty.iter().filter(|a| (a.at % 1800.0) < 300.0).count();
        assert!(in_burst * 2 > bursty.len(), "{in_burst}/{}", bursty.len());
    }

    #[test]
    fn weights_bias_template_choice() {
        let spec = poisson_spec(2000.0, 3600.0); // weights 1.0 vs 3.0
        let arrivals = spec.arrivals();
        let b_count = arrivals.iter().filter(|a| a.template == 1).count();
        let frac = b_count as f64 / arrivals.len() as f64;
        assert!((frac - 0.75).abs() < 0.08, "frac {frac}");
        // Names carry per-template sequence numbers.
        assert!(arrivals.iter().any(|a| a.name == "a-0"));
        assert!(arrivals.iter().any(|a| a.name == "b-0"));
    }

    #[test]
    fn trace_mode_replays_sorted_and_clipped() {
        let mut spec = poisson_spec(1.0, 100.0);
        spec.arrivals = ArrivalSpec::Trace {
            times_secs: vec![50.0, 10.0, 99.0, 150.0],
            templates: None,
        };
        let arrivals = spec.arrivals();
        let times: Vec<f64> = arrivals.iter().map(|a| a.at).collect();
        assert_eq!(times, vec![10.0, 50.0, 99.0]);
        assert_eq!(arrivals[0].id, 0);
    }

    #[test]
    fn trace_mode_pins_forced_templates() {
        let mut spec = poisson_spec(1.0, 100.0);
        spec.arrivals = ArrivalSpec::Trace {
            times_secs: vec![20.0, 5.0],
            templates: Some(vec![1, 0]),
        };
        let arrivals = spec.arrivals();
        // Sorted by time, indices follow their instants.
        assert_eq!(arrivals[0].at, 5.0);
        assert_eq!(arrivals[0].template, 0);
        assert_eq!(arrivals[1].template, 1);
        assert_eq!(arrivals[0].name, "a-0");
        assert_eq!(arrivals[1].name, "b-0");
        // Length mismatch and out-of-range indices are rejected.
        spec.arrivals = ArrivalSpec::Trace {
            times_secs: vec![1.0, 2.0],
            templates: Some(vec![0]),
        };
        assert!(spec.validate().is_err());
        spec.arrivals = ArrivalSpec::Trace {
            times_secs: vec![1.0],
            templates: Some(vec![9]),
        };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut bad = poisson_spec(0.0, 3600.0);
        assert!(bad.validate().is_err());
        bad = poisson_spec(60.0, -1.0);
        assert!(bad.validate().is_err());
        bad = poisson_spec(60.0, 3600.0);
        bad.templates.clear();
        assert!(bad.validate().is_err());
        bad = poisson_spec(60.0, 3600.0);
        bad.templates[0].weight = Some(0.0);
        assert!(bad.validate().is_err());
        bad = poisson_spec(60.0, 3600.0);
        bad.nodes = 3;
        assert!(bad.validate().is_err());
        bad = poisson_spec(1e9, 86_400.0);
        assert!(bad.validate().is_err(), "arrival cap");
        bad = poisson_spec(60.0, 3600.0);
        bad.arrivals = ArrivalSpec::Poisson {
            rate_per_hour: 10.0,
            burst: Some(BurstSpec {
                every_secs: 100.0,
                secs: 200.0,
                rate_per_hour: 60.0,
            }),
        };
        assert!(bad.validate().is_err(), "burst longer than period");
        bad = poisson_spec(60.0, 3600.0);
        bad.admission = Some(AdmissionSpec {
            max_stretch: Some(0.5),
            admit_all: None,
            preemption: None,
            min_benefit_ratio: None,
            probe_steps: None,
        });
        assert!(bad.validate().is_err(), "stretch below 1");
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = poisson_spec(60.0, 3600.0);
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
