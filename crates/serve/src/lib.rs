//! Cluster-as-a-service on the virtual clock: trace-driven arrivals,
//! admission control, and checkpointed preemption.
//!
//! `real-sched` packs a *closed* batch of tenants and runs them to
//! completion; this crate serves an *open stream*. A [`WorkloadSpec`]
//! (`workload.json`) describes tenant templates and a seeded arrival
//! process — Poisson with optional periodic bursts, or a replayed trace —
//! over a day-long horizon. The [`serve`] event loop prices each template
//! once ([`price_template`]) and gives every arrival an admission verdict:
//!
//! - **Admitted** — a priced candidate mesh is free; the tenant starts a
//!   private [`real_runtime::TenantSession`] immediately.
//! - **Queued** — no capacity, but the projected stretch (queue wait
//!   folded in) stays within the `max_stretch` bound.
//! - **Rejected** — the template fits no mesh at all, or the projected
//!   (or realized) stretch blows the bound.
//!
//! When a bursty high-priority arrival lands on a full cluster, the
//! [`preemption_gate`] — the re-plan gate's cost/benefit rule generalized
//! to "is the avoided wait worth two reallocation prologues" — may suspend
//! a low-priority tenant at its next iteration boundary via a
//! [`real_runtime::SessionCheckpoint`], lease its mesh out, and resume it
//! later (free on its old mesh; one Fig. 6 prologue elsewhere).
//!
//! The result is a byte-deterministic [`ServeReport`]: admission and
//! rejection rates, queue-wait and stretch percentiles, preemption counts,
//! a utilization timeline, and full per-tenant lifecycles. `real serve`
//! is the CLI surface; see docs/SERVING.md for the operator's guide.

pub mod admission;
pub mod obs;
pub mod report;
pub mod server;
pub mod workload;

pub use admission::{
    preemption_gate, price_template, AdmissionDecision, RejectReason, TemplateCandidate,
    TemplatePrices,
};
pub use obs::{serve_event_stream, serve_metrics};
pub use report::{Segment, ServeReport, ServedTenant, UtilPoint};
pub use server::{serve, ServeError};
pub use workload::{
    AdmissionConfig, AdmissionSpec, Arrival, ArrivalSpec, BurstSpec, TemplateSpec, WorkloadError,
    WorkloadSpec, MAX_ARRIVALS,
};
