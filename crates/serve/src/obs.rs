//! Observability for serving runs: the `serve/*` metrics namespace and
//! per-tenant Chrome-trace lifecycle lanes.
//!
//! [`serve_event_stream`] gives every arrival its own Chrome process row
//! (`tenant:<name>`, sharing the pid base with `real sched`'s per-tenant
//! groups) with one lifecycle lane: a `queued` span from arrival to first
//! admission, then per service [`Segment`](crate::report::Segment) an
//! optional `realloc` prologue span followed by the `serve` span. Open the
//! export in Perfetto and a preempted tenant reads as
//! queued → serve → (gap while suspended) → realloc → serve.
//!
//! Stretch and queue-wait histograms reuse the `real-sched` bucket bounds
//! ([`STRETCH_BOUNDS`], [`QUEUE_WAIT_BOUNDS`]) so dashboards can overlay
//! batch-scheduler and serving runs.

use crate::report::ServeReport;
use real_obs::{EventStream, LaneId, MetricsRegistry};
use real_sched::obs::{QUEUE_WAIT_BOUNDS, STRETCH_BOUNDS, TENANT_PID_BASE};

/// `serve/*` metrics for a finished serving run: admission counters and
/// rates, preemption/resume counters, makespan and weighted flow gauges,
/// utilization, and stretch/queue-wait histograms over served tenants.
pub fn serve_metrics(report: &ServeReport) -> MetricsRegistry {
    let mut m = MetricsRegistry::new();
    m.counter_add("serve/arrivals", &[], report.arrivals as f64);
    m.counter_add("serve/admitted", &[], report.admitted as f64);
    m.counter_add("serve/queued", &[], report.queued as f64);
    m.counter_add("serve/rejected", &[], report.rejected as f64);
    m.counter_add("serve/preemptions", &[], report.preemptions as f64);
    m.counter_add("serve/resumes", &[], report.resumes as f64);
    m.counter_add("serve/gate_rejections", &[], report.gate_rejections as f64);
    m.gauge_set("serve/admission_rate", &[], report.admission_rate);
    m.gauge_set("serve/rejection_rate", &[], report.rejection_rate);
    m.gauge_set("serve/makespan_seconds", &[], report.makespan_secs);
    m.gauge_set(
        "serve/weighted_flow_seconds",
        &[],
        report.weighted_flow_secs,
    );
    m.gauge_set("serve/max_stretch", &[], report.max_stretch);
    m.gauge_set("serve/mean_utilization", &[], report.mean_utilization);
    for t in &report.tenants {
        if t.finish_secs.is_none() {
            continue;
        }
        m.histogram_observe("serve/stretch_hist", &[], STRETCH_BOUNDS, t.stretch);
        m.histogram_observe(
            "serve/queue_wait_hist",
            &[],
            QUEUE_WAIT_BOUNDS,
            t.queue_wait_secs,
        );
    }
    m
}

/// One Chrome process group per arrival with a single lifecycle lane (see
/// the module docs). Rejected arrivals contribute a named but span-less
/// group, so a Perfetto view shows them turned away rather than missing.
pub fn serve_event_stream(report: &ServeReport) -> EventStream {
    let spans: usize = report
        .tenants
        .iter()
        .map(|t| t.segments.len() * 2 + 1)
        .sum();
    let mut stream = EventStream::with_capacity(spans * 2 + 16);
    for (index, t) in report.tenants.iter().enumerate() {
        let lane = LaneId {
            pid: TENANT_PID_BASE + index as u32,
            tid: 0,
        };
        stream.set_lane_name(lane, &format!("tenant:{}", t.name), "lifecycle");
        if let Some(admitted) = t.admitted_secs {
            if admitted > t.arrival_secs {
                stream.span(lane, "queued", "queue", t.arrival_secs, admitted);
            }
        }
        for (k, seg) in t.segments.iter().enumerate() {
            let mut start = seg.start_secs;
            if seg.realloc_secs > 0.0 {
                stream.span(lane, "realloc", "realloc", start, start + seg.realloc_secs);
                start += seg.realloc_secs;
            }
            stream.span(
                lane,
                &format!("serve#{k}@{}", seg.allocation),
                "serve",
                start,
                seg.end_secs,
            );
            // Suspension gap: queued again until the next segment starts.
            if let Some(next) = t.segments.get(k + 1) {
                stream.span(lane, "queued", "queue", seg.end_secs, next.start_secs);
            }
        }
    }
    stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionDecision;
    use crate::report::{Segment, ServedTenant, UtilPoint};
    use real_obs::profile::PercentileSummary;

    fn report() -> ServeReport {
        ServeReport {
            seed: 1,
            horizon_secs: 1000.0,
            total_gpus: 8,
            arrivals: 1,
            admitted: 0,
            queued: 1,
            rejected: 0,
            admission_rate: 1.0,
            rejection_rate: 0.0,
            preemptions: 1,
            resumes: 1,
            gate_rejections: 0,
            makespan_secs: 60.0,
            weighted_flow_secs: 55.0,
            max_stretch: 2.0,
            mean_utilization: 0.4,
            utilization: vec![UtilPoint {
                at_secs: 0.0,
                leased_gpus: 0,
            }],
            percentiles: vec![PercentileSummary::from_values("stretch", &[2.0])],
            tenants: vec![ServedTenant {
                name: "a-0".into(),
                id: 0,
                template: 0,
                priority: 1.0,
                iterations: 2,
                decision: AdmissionDecision::Queued,
                arrival_secs: 5.0,
                admitted_secs: Some(10.0),
                finish_secs: Some(60.0),
                queue_wait_secs: 15.0,
                service_secs: 35.0,
                realloc_secs: 4.0,
                preemptions: 1,
                stretch: 2.0,
                segments: vec![
                    Segment {
                        start_secs: 10.0,
                        end_secs: 30.0,
                        iters: 1,
                        realloc_secs: 0.0,
                        allocation: "node0".into(),
                    },
                    Segment {
                        start_secs: 40.0,
                        end_secs: 60.0,
                        iters: 1,
                        realloc_secs: 4.0,
                        allocation: "node1".into(),
                    },
                ],
                iter_secs: vec![20.0, 15.0],
            }],
        }
    }

    #[test]
    fn metrics_cover_admission_and_preemption_counters() {
        let m = serve_metrics(&report());
        assert_eq!(m.get("serve/arrivals", &[]).unwrap().scalar(), 1.0);
        assert_eq!(m.get("serve/preemptions", &[]).unwrap().scalar(), 1.0);
        assert_eq!(m.get("serve/resumes", &[]).unwrap().scalar(), 1.0);
        assert_eq!(m.get("serve/admission_rate", &[]).unwrap().scalar(), 1.0);
        assert_eq!(
            m.get("serve/weighted_flow_seconds", &[]).unwrap().scalar(),
            55.0
        );
    }

    #[test]
    fn event_stream_shows_the_preemption_lifecycle() {
        let stream = serve_event_stream(&report());
        let labels: Vec<&str> = stream
            .events()
            .iter()
            .filter_map(|e| match e {
                real_obs::StreamEvent::Begin { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        // queued → serve#0 → queued (suspension gap) → realloc → serve#1.
        assert!(labels.iter().filter(|l| **l == "queued").count() >= 2);
        assert!(labels.iter().any(|l| l.starts_with("serve#0")));
        assert!(labels.iter().any(|l| *l == "realloc"));
        assert!(labels.iter().any(|l| l.starts_with("serve#1")));
    }
}
