//! Virtual GPU timelines with per-category busy accounting.

use std::fmt;

/// What a busy interval was spent on. The split mirrors Fig. 11 of the
/// paper (compute kernels vs. TP collective communication vs. PP P2P
/// communication), with extra buckets for the smaller contributors it
/// mentions (broadcasts for data transfer and parameter reallocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Dense compute and memory-bound kernels.
    Compute,
    /// Kernel launch overhead (eliminated by CUDA graphs).
    Launch,
    /// Tensor-parallel collectives (all-reduce).
    TpComm,
    /// Pipeline-parallel point-to-point transfers.
    PpComm,
    /// Data-parallel gradient all-reduce / ZeRO collectives.
    DpComm,
    /// Parameter-reallocation broadcasts.
    Realloc,
    /// Inter-call data transfers.
    Transfer,
}

impl Category {
    /// All categories, for iteration in reports.
    pub const ALL: [Category; 7] = [
        Category::Compute,
        Category::Launch,
        Category::TpComm,
        Category::PpComm,
        Category::DpComm,
        Category::Realloc,
        Category::Transfer,
    ];

    fn index(self) -> usize {
        match self {
            Category::Compute => 0,
            Category::Launch => 1,
            Category::TpComm => 2,
            Category::PpComm => 3,
            Category::DpComm => 4,
            Category::Realloc => 5,
            Category::Transfer => 6,
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Category::Compute => "compute",
            Category::Launch => "launch",
            Category::TpComm => "tp-comm",
            Category::PpComm => "pp-comm",
            Category::DpComm => "dp-comm",
            Category::Realloc => "realloc",
            Category::Transfer => "transfer",
        };
        f.write_str(name)
    }
}

/// One device's busy-clock and per-category totals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GpuTimeline {
    busy_until: f64,
    busy: [f64; 7],
}

impl GpuTimeline {
    /// Creates an idle timeline at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The time at which this GPU becomes free.
    pub fn busy_until(&self) -> f64 {
        self.busy_until
    }

    /// Total seconds spent in `cat`.
    pub fn busy(&self, cat: Category) -> f64 {
        self.busy[cat.index()]
    }

    /// Total busy seconds across categories.
    pub fn total_busy(&self) -> f64 {
        self.busy.iter().sum()
    }

    /// Occupies the GPU for `duration` starting no earlier than `ready`,
    /// returning the interval `(start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is negative or not finite.
    pub fn advance(&mut self, ready: f64, duration: f64, cat: Category) -> (f64, f64) {
        assert!(
            duration >= 0.0 && duration.is_finite(),
            "bad duration {duration}"
        );
        let start = ready.max(self.busy_until);
        let end = start + duration;
        self.busy_until = end;
        self.busy[cat.index()] += duration;
        (start, end)
    }
}

/// The cluster-wide timeline collection.
#[derive(Debug, Clone, PartialEq)]
pub struct Timelines {
    gpus: Vec<GpuTimeline>,
}

impl Timelines {
    /// Creates timelines for `n` GPUs, all idle at t = 0.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one GPU");
        Self {
            gpus: vec![GpuTimeline::new(); n],
        }
    }

    /// Number of GPUs.
    pub fn len(&self) -> usize {
        self.gpus.len()
    }

    /// Whether there are no GPUs (never true; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.gpus.is_empty()
    }

    /// Immutable access to one GPU's timeline.
    ///
    /// # Panics
    ///
    /// Panics if `gpu` is out of range.
    pub fn gpu(&self, gpu: usize) -> &GpuTimeline {
        &self.gpus[gpu]
    }

    /// Seconds GPU `gpu` spent in `cat`.
    pub fn busy(&self, gpu: usize, cat: Category) -> f64 {
        self.gpus[gpu].busy(cat)
    }

    /// Serial work on a single GPU; returns the completion time.
    pub fn serial(&mut self, gpu: usize, ready: f64, duration: f64, cat: Category) -> f64 {
        self.gpus[gpu].advance(ready, duration, cat).1
    }

    /// A synchronizing collective over `gpus`: starts when every participant
    /// is free (and not before `ready`), occupies all of them for
    /// `duration`, and returns the common completion time.
    ///
    /// # Panics
    ///
    /// Panics if `gpus` is empty or contains duplicates.
    pub fn collective(&mut self, gpus: &[usize], ready: f64, duration: f64, cat: Category) -> f64 {
        assert!(!gpus.is_empty(), "collective needs participants");
        debug_assert!(
            {
                let mut sorted = gpus.to_vec();
                sorted.sort_unstable();
                sorted.windows(2).all(|w| w[0] != w[1])
            },
            "collective participants must be distinct"
        );
        let start = gpus
            .iter()
            .map(|&g| self.gpus[g].busy_until())
            .fold(ready, f64::max);
        for &g in gpus {
            self.gpus[g].advance(start, duration, cat);
        }
        start + duration
    }

    /// A point-to-point transfer occupying the source and destination; the
    /// transfer starts when both ends are free.
    pub fn p2p(&mut self, src: usize, dst: usize, ready: f64, duration: f64, cat: Category) -> f64 {
        if src == dst {
            return self.serial(src, ready, duration, cat);
        }
        self.collective(&[src, dst], ready, duration, cat)
    }

    /// Occupies each GPU in `gpus` from `max(from, busy_until)` up to
    /// `until` (skipping GPUs already busy past `until`), charging the time
    /// to `cat`, and returns the total GPU-seconds charged. Used by the
    /// resilient dispatcher to account work lost to a crashed or timed-out
    /// attempt: the attempt's effects are rolled back, then the wasted
    /// interval is re-occupied as dead time.
    pub fn occupy_until(&mut self, gpus: &[usize], from: f64, until: f64, cat: Category) -> f64 {
        let mut charged = 0.0;
        for &g in gpus {
            let start = from.max(self.gpus[g].busy_until());
            if start < until {
                self.gpus[g].advance(start, until - start, cat);
                charged += until - start;
            }
        }
        charged
    }

    /// The time every GPU is free (the makespan so far).
    pub fn makespan(&self) -> f64 {
        self.gpus
            .iter()
            .map(GpuTimeline::busy_until)
            .fold(0.0, f64::max)
    }

    /// Cluster-wide busy seconds per category.
    pub fn totals(&self) -> Vec<(Category, f64)> {
        Category::ALL
            .iter()
            .map(|&c| (c, self.gpus.iter().map(|g| g.busy(c)).sum()))
            .collect()
    }

    /// Total idle GPU-seconds up to the makespan.
    pub fn idle_total(&self) -> f64 {
        let span = self.makespan();
        self.gpus
            .iter()
            .map(|g| span - g.total_busy())
            .sum::<f64>()
            .max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn serial_work_queues_fifo() {
        let mut t = Timelines::new(1);
        assert_eq!(t.serial(0, 0.0, 2.0, Category::Compute), 2.0);
        // Ready earlier than busy_until: starts when free.
        assert_eq!(t.serial(0, 1.0, 3.0, Category::Compute), 5.0);
        // Ready later than busy_until: idle gap.
        assert_eq!(t.serial(0, 10.0, 1.0, Category::Compute), 11.0);
        assert_eq!(t.busy(0, Category::Compute), 6.0);
        assert!((t.idle_total() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn collective_waits_for_slowest_participant() {
        let mut t = Timelines::new(3);
        t.serial(1, 0.0, 4.0, Category::Compute);
        let end = t.collective(&[0, 1, 2], 0.0, 1.0, Category::TpComm);
        assert_eq!(end, 5.0);
        for g in 0..3 {
            assert_eq!(t.gpu(g).busy_until(), 5.0);
            assert_eq!(t.busy(g, Category::TpComm), 1.0);
        }
        // GPUs 0 and 2 idled for 4 seconds while GPU 1 computed.
        assert!((t.idle_total() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn p2p_occupies_both_ends() {
        let mut t = Timelines::new(2);
        let end = t.p2p(0, 1, 0.0, 2.0, Category::PpComm);
        assert_eq!(end, 2.0);
        assert_eq!(t.busy(0, Category::PpComm), 2.0);
        assert_eq!(t.busy(1, Category::PpComm), 2.0);
    }

    #[test]
    fn p2p_same_gpu_degenerates_to_serial() {
        let mut t = Timelines::new(1);
        assert_eq!(t.p2p(0, 0, 0.0, 2.0, Category::PpComm), 2.0);
    }

    #[test]
    fn totals_split_by_category() {
        let mut t = Timelines::new(2);
        t.serial(0, 0.0, 1.0, Category::Compute);
        t.serial(0, 0.0, 2.0, Category::TpComm);
        t.serial(1, 0.0, 3.0, Category::Realloc);
        let totals = t.totals();
        let get = |c: Category| totals.iter().find(|(k, _)| *k == c).unwrap().1;
        assert_eq!(get(Category::Compute), 1.0);
        assert_eq!(get(Category::TpComm), 2.0);
        assert_eq!(get(Category::Realloc), 3.0);
        assert_eq!(get(Category::DpComm), 0.0);
    }

    #[test]
    fn occupy_until_charges_only_the_gap() {
        let mut t = Timelines::new(3);
        t.serial(1, 0.0, 4.0, Category::Compute);
        t.serial(2, 0.0, 10.0, Category::Compute);
        // GPU 0 idle (charged 8 - 2 = 6), GPU 1 busy to 4 (charged
        // 8 - 4 = 4), GPU 2 busy past `until` (charged nothing, untouched).
        let charged = t.occupy_until(&[0, 1, 2], 2.0, 8.0, Category::Compute);
        assert!((charged - 10.0).abs() < 1e-12);
        assert_eq!(t.gpu(0).busy_until(), 8.0);
        assert_eq!(t.gpu(1).busy_until(), 8.0);
        assert_eq!(t.gpu(2).busy_until(), 10.0);
        assert_eq!(t.busy(0, Category::Compute), 6.0);
    }

    #[test]
    fn makespan_is_max_busy_until() {
        let mut t = Timelines::new(4);
        t.serial(2, 0.0, 7.5, Category::Compute);
        assert_eq!(t.makespan(), 7.5);
    }

    #[test]
    #[should_panic(expected = "bad duration")]
    fn negative_duration_panics() {
        Timelines::new(1).serial(0, 0.0, -1.0, Category::Compute);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_panics() {
        Timelines::new(0);
    }

    proptest! {
        #[test]
        fn busy_never_exceeds_makespan(ops in proptest::collection::vec((0usize..4, 0.0..10.0f64, 0.0..2.0f64), 1..40)) {
            let mut t = Timelines::new(4);
            for (gpu, ready, dur) in ops {
                t.serial(gpu, ready, dur, Category::Compute);
            }
            let span = t.makespan();
            for g in 0..4 {
                prop_assert!(t.gpu(g).total_busy() <= span + 1e-9);
            }
            prop_assert!(t.idle_total() >= 0.0);
        }

        #[test]
        fn collective_aligns_all_participants(pre in proptest::collection::vec(0.0..5.0f64, 3), dur in 0.0..3.0f64) {
            let mut t = Timelines::new(3);
            for (g, &d) in pre.iter().enumerate() {
                t.serial(g, 0.0, d, Category::Compute);
            }
            let end = t.collective(&[0, 1, 2], 0.0, dur, Category::TpComm);
            for g in 0..3 {
                prop_assert!((t.gpu(g).busy_until() - end).abs() < 1e-12);
            }
            let expected = pre.iter().cloned().fold(0.0, f64::max) + dur;
            prop_assert!((end - expected).abs() < 1e-12);
        }
    }
}
