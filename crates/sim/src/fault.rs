//! Fault injection on the virtual clock: GPU slowdown windows, worker
//! crash + restart events, and link-degradation intervals.
//!
//! A [`FaultPlan`] is a serde-loadable *schedule* of [`FaultEvent`]s, all
//! expressed in seconds of virtual time and carrying an explicit seed so a
//! faulted run replays bit-identically. The runtime engine compiles a plan
//! into a [`FaultClock`], which answers the three questions resilient
//! dispatch needs:
//!
//! - [`FaultClock::stretched`] — how long does `nominal` seconds of work
//!   take when it starts at `start` on these GPUs? (piecewise integration
//!   over the active slowdown / link-degradation windows),
//! - [`FaultClock::first_crash`] — does any participating worker crash
//!   while the request executes?
//! - [`FaultClock::available_from`] / [`FaultClock::quiet_after`] — when
//!   are all participants restarted, and when is the schedule permanently
//!   crash-free (the guaranteed-completion horizon for degraded mode)?
//!
//! Faults are *transient*: a crashed worker restarts `restart_after`
//! seconds later, which is when the master may re-dispatch to it.
//!
//! # Examples
//!
//! Build a plan with the fluent API, round-trip it through JSON, and
//! compile it:
//!
//! ```
//! use real_sim::{FaultClock, FaultPlan};
//!
//! let plan = FaultPlan::new(7)
//!     .slowdown(0, 1.0, 3.0, 2.0)     // GPU 0 runs 2x slower in [1, 3)
//!     .crash(1, 5.0, 2.5)             // GPU 1 down during [5, 7.5)
//!     .degrade_link(0, 2.0, 4.0, 4.0); // node 0's links 4x slower in [2, 4)
//! plan.validate().unwrap();
//!
//! let json = serde_json::to_string(&plan).unwrap();
//! let reloaded: FaultPlan = serde_json::from_str(&json).unwrap();
//! assert_eq!(plan, reloaded);
//!
//! let clock = FaultClock::new(&reloaded, 8, 8);
//! // Work on a healthy GPU is unaffected...
//! assert_eq!(clock.stretched(&[2], 1.0, 1.0, false), 1.0);
//! // ...while GPU 0 takes twice as long inside its slowdown window.
//! assert_eq!(clock.stretched(&[0], 1.0, 1.0, false), 2.0);
//! // GPU 1 is unavailable until its restart completes.
//! assert_eq!(clock.available_from(&[1], 6.0), 7.5);
//! ```

use real_util::DeterministicRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One scheduled fault on the virtual clock.
///
/// Times are seconds of virtual time; factors are multiplicative slowdowns
/// (`2.0` = twice as slow) and must be `>= 1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// A straggler window: the GPU executes everything `factor`x slower
    /// during `[start, end)`.
    Slowdown {
        /// Global GPU index.
        gpu: u32,
        /// Window start (seconds).
        start: f64,
        /// Window end (seconds).
        end: f64,
        /// Multiplicative slowdown (`>= 1`).
        factor: f64,
    },
    /// A worker crash: the GPU's model worker dies at `at` and finishes
    /// restarting `restart_after` seconds later. Requests in flight on the
    /// worker at the crash instant are lost.
    Crash {
        /// Global GPU index.
        gpu: u32,
        /// Crash instant (seconds).
        at: f64,
        /// Downtime until the restarted worker accepts requests (`> 0`).
        restart_after: f64,
    },
    /// A link-degradation window: every communication event touching the
    /// node runs `factor`x slower during `[start, end)`. Covers flapping
    /// NICs and congested fabrics; compute is unaffected.
    LinkDegrade {
        /// Node index.
        node: u32,
        /// Window start (seconds).
        start: f64,
        /// Window end (seconds).
        end: f64,
        /// Multiplicative slowdown (`>= 1`).
        factor: f64,
    },
}

/// Why a [`FaultPlan`] failed validation.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlanError {
    /// Index of the offending event in [`FaultPlan::events`].
    pub index: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault event #{}: {}", self.index, self.reason)
    }
}

impl std::error::Error for FaultPlanError {}

/// A deterministic, serde-loadable schedule of faults.
///
/// The `seed` does not drive the events below it (they are explicit); it
/// names the stream that *generated* them (see [`FaultPlan::random`]) and
/// is recorded so reports and traces can state which schedule ran.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed identifying this schedule (recorded for replay provenance).
    pub seed: u64,
    /// The scheduled faults, in no particular order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan tagged with `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            events: Vec::new(),
        }
    }

    /// Adds a GPU slowdown window (builder style).
    pub fn slowdown(mut self, gpu: u32, start: f64, end: f64, factor: f64) -> Self {
        self.events.push(FaultEvent::Slowdown {
            gpu,
            start,
            end,
            factor,
        });
        self
    }

    /// Adds a worker crash + restart (builder style).
    pub fn crash(mut self, gpu: u32, at: f64, restart_after: f64) -> Self {
        self.events.push(FaultEvent::Crash {
            gpu,
            at,
            restart_after,
        });
        self
    }

    /// Adds a node link-degradation window (builder style).
    pub fn degrade_link(mut self, node: u32, start: f64, end: f64, factor: f64) -> Self {
        self.events.push(FaultEvent::LinkDegrade {
            node,
            start,
            end,
            factor,
        });
        self
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Checks every event for well-formedness: finite times, `start < end`
    /// windows, positive downtime, factors `>= 1`.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultPlanError`] naming the first offending event.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        let err = |index: usize, reason: String| Err(FaultPlanError { index, reason });
        for (i, ev) in self.events.iter().enumerate() {
            match *ev {
                FaultEvent::Slowdown {
                    start, end, factor, ..
                }
                | FaultEvent::LinkDegrade {
                    start, end, factor, ..
                } => {
                    if !(start.is_finite() && end.is_finite() && start >= 0.0 && start < end) {
                        return err(i, format!("bad window [{start}, {end})"));
                    }
                    if !(factor.is_finite() && factor >= 1.0) {
                        return err(i, format!("factor {factor} must be finite and >= 1"));
                    }
                }
                FaultEvent::Crash {
                    at, restart_after, ..
                } => {
                    if !(at.is_finite() && at >= 0.0) {
                        return err(i, format!("bad crash instant {at}"));
                    }
                    if !(restart_after.is_finite() && restart_after > 0.0) {
                        return err(i, format!("restart_after {restart_after} must be > 0"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Generates a random-but-reproducible schedule: roughly
    /// `rate_per_min` fault events per minute of virtual time over
    /// `[0, horizon)`, mixing slowdowns (half), crashes (a third), and
    /// link degradations (the rest). Identical arguments always produce an
    /// identical plan.
    pub fn random(
        seed: u64,
        n_gpus: usize,
        gpus_per_node: usize,
        horizon: f64,
        rate_per_min: f64,
    ) -> Self {
        assert!(n_gpus > 0 && gpus_per_node > 0, "need a non-empty cluster");
        assert!(
            horizon.is_finite() && horizon >= 0.0 && rate_per_min >= 0.0,
            "need a finite horizon and a non-negative rate"
        );
        let n_nodes = n_gpus.div_ceil(gpus_per_node);
        let mut rng = DeterministicRng::from_seed(seed).derive("fault-plan");
        let n_events = (rate_per_min * horizon / 60.0).round() as usize;
        let mut plan = FaultPlan::new(seed);
        for _ in 0..n_events {
            let at = rng.uniform() * horizon;
            match rng.index(6) {
                // Straggler window: 5-30 s, 1.5x-4x slower.
                0..=2 => {
                    let gpu = rng.index(n_gpus) as u32;
                    let dur = 5.0 + rng.uniform() * 25.0;
                    let factor = 1.5 + rng.uniform() * 2.5;
                    plan = plan.slowdown(gpu, at, at + dur, factor);
                }
                // Crash: 5-20 s downtime.
                3 | 4 => {
                    let gpu = rng.index(n_gpus) as u32;
                    let downtime = 5.0 + rng.uniform() * 15.0;
                    plan = plan.crash(gpu, at, downtime);
                }
                // Link flap: 5-20 s, 2x-8x slower.
                _ => {
                    let node = rng.index(n_nodes) as u32;
                    let dur = 5.0 + rng.uniform() * 15.0;
                    let factor = 2.0 + rng.uniform() * 6.0;
                    plan = plan.degrade_link(node, at, at + dur, factor);
                }
            }
        }
        plan
    }
}

/// A half-open window `[start, end)` with a multiplicative factor.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Window {
    start: f64,
    end: f64,
    factor: f64,
}

/// A [`FaultPlan`] compiled for a concrete cluster: per-GPU slowdown and
/// crash-downtime windows plus per-node link windows, each sorted by start
/// time. Events naming GPUs or nodes outside the cluster are ignored.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultClock {
    /// `slow[gpu]` = that GPU's slowdown windows.
    slow: Vec<Vec<Window>>,
    /// `down[gpu]` = that GPU's crash downtime windows `[at, at + restart)`.
    down: Vec<Vec<(f64, f64)>>,
    /// `link[node]` = that node's link-degradation windows.
    link: Vec<Vec<Window>>,
    gpus_per_node: usize,
}

impl FaultClock {
    /// Compiles `plan` for a cluster of `n_gpus` GPUs, `gpus_per_node` per
    /// node.
    ///
    /// # Panics
    ///
    /// Panics if the cluster shape is empty or the plan fails
    /// [`FaultPlan::validate`].
    pub fn new(plan: &FaultPlan, n_gpus: usize, gpus_per_node: usize) -> Self {
        assert!(n_gpus > 0 && gpus_per_node > 0, "need a non-empty cluster");
        plan.validate().expect("fault plan must be well-formed");
        let n_nodes = n_gpus.div_ceil(gpus_per_node);
        let mut slow: Vec<Vec<Window>> = vec![Vec::new(); n_gpus];
        let mut down: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n_gpus];
        let mut link: Vec<Vec<Window>> = vec![Vec::new(); n_nodes];
        for ev in &plan.events {
            match *ev {
                FaultEvent::Slowdown {
                    gpu,
                    start,
                    end,
                    factor,
                } => {
                    if let Some(s) = slow.get_mut(gpu as usize) {
                        s.push(Window { start, end, factor });
                    }
                }
                FaultEvent::Crash {
                    gpu,
                    at,
                    restart_after,
                } => {
                    if let Some(d) = down.get_mut(gpu as usize) {
                        d.push((at, at + restart_after));
                    }
                }
                FaultEvent::LinkDegrade {
                    node,
                    start,
                    end,
                    factor,
                } => {
                    if let Some(l) = link.get_mut(node as usize) {
                        l.push(Window { start, end, factor });
                    }
                }
            }
        }
        let by_start = |a: &Window, b: &Window| a.start.partial_cmp(&b.start).expect("finite");
        for s in &mut slow {
            s.sort_by(by_start);
        }
        for d in &mut down {
            d.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        }
        for l in &mut link {
            l.sort_by(by_start);
        }
        Self {
            slow,
            down,
            link,
            gpus_per_node,
        }
    }

    /// Whether the compiled schedule contains no windows at all.
    pub fn is_empty(&self) -> bool {
        self.n_windows() == 0
    }

    /// Number of compiled fault windows (plan events whose target GPU or
    /// node exists in this cluster).
    pub fn n_windows(&self) -> usize {
        self.slow.iter().map(Vec::len).sum::<usize>()
            + self.down.iter().map(Vec::len).sum::<usize>()
            + self.link.iter().map(Vec::len).sum::<usize>()
    }

    /// The combined slowdown factor for `gpus` at instant `t`: the max
    /// active GPU slowdown, times (for communication events) the max active
    /// link degradation on the participating nodes.
    fn factor_at(&self, gpus: &[usize], t: f64, comm: bool) -> f64 {
        let mut f = 1.0f64;
        for &g in gpus {
            for w in &self.slow[g] {
                if w.start <= t && t < w.end {
                    f = f.max(w.factor);
                }
            }
        }
        if comm {
            let mut lf = 1.0f64;
            for &g in gpus {
                for w in &self.link[g / self.gpus_per_node] {
                    if w.start <= t && t < w.end {
                        lf = lf.max(w.factor);
                    }
                }
            }
            f *= lf;
        }
        f
    }

    /// Stretches `nominal` seconds of work starting at `start` on `gpus`
    /// through the active fault windows, returning the wall duration.
    /// `comm` selects whether link-degradation windows apply (they do for
    /// every communication category, not for compute). Without active
    /// windows this returns `nominal` exactly, so a fault-free schedule is
    /// bit-transparent.
    pub fn stretched(&self, gpus: &[usize], start: f64, nominal: f64, comm: bool) -> f64 {
        if nominal <= 0.0 {
            return nominal;
        }
        // Breakpoints where the factor can change, strictly after `start`.
        let mut cuts: Vec<f64> = Vec::new();
        for &g in gpus {
            for w in &self.slow[g] {
                cuts.push(w.start);
                cuts.push(w.end);
            }
            if comm {
                for w in &self.link[g / self.gpus_per_node] {
                    cuts.push(w.start);
                    cuts.push(w.end);
                }
            }
        }
        cuts.retain(|&c| c > start);
        cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        cuts.dedup();

        // Accumulate wall time per segment (not via `end - start`) so that
        // with no active windows the result is *exactly* `nominal * 1.0`,
        // keeping fault-free arithmetic bit-identical.
        let mut t = start;
        let mut wall = 0.0;
        let mut remaining = nominal;
        for cut in cuts {
            let f = self.factor_at(gpus, t, comm);
            let seg_wall = remaining * f;
            if t + seg_wall <= cut {
                return wall + seg_wall;
            }
            remaining -= (cut - t) / f;
            wall += cut - t;
            t = cut;
        }
        let f = self.factor_at(gpus, t, comm);
        wall + remaining * f
    }

    /// The earliest crash hitting any of `gpus` during `[start, end)`,
    /// as `(gpu, instant)`. A worker already down at `start` counts as
    /// crashing at `start` (the caller should have waited for
    /// [`Self::available_from`]).
    pub fn first_crash(&self, gpus: &[usize], start: f64, end: f64) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for &g in gpus {
            for &(a, b) in &self.down[g] {
                if a < end && b > start {
                    let at = a.max(start);
                    if best.is_none_or(|(_, t)| at < t) {
                        best = Some((g, at));
                    }
                }
            }
        }
        best
    }

    /// The earliest time `>= t` at which every GPU in `gpus` is up
    /// (outside every crash-downtime window).
    pub fn available_from(&self, gpus: &[usize], t: f64) -> f64 {
        let mut t = t;
        loop {
            let mut moved = false;
            for &g in gpus {
                for &(a, b) in &self.down[g] {
                    if a <= t && t < b {
                        t = b;
                        moved = true;
                    }
                }
            }
            if !moved {
                return t;
            }
        }
    }

    /// The time after which no crash window touches `gpus` ever again —
    /// the horizon past which a (degraded) dispatch is guaranteed not to be
    /// aborted by a crash.
    pub fn quiet_after(&self, gpus: &[usize]) -> f64 {
        gpus.iter()
            .flat_map(|&g| self.down[g].iter().map(|&(_, b)| b))
            .fold(0.0, f64::max)
    }

    /// The maximum slowdown factor affecting `gpu` anywhere in `[t0, t1)`,
    /// `1.0` when no window overlaps. The re-plan policy uses this to tag a
    /// straggler GPU with the factor a degraded-cluster estimate should
    /// assume over its look-ahead horizon.
    pub fn max_slowdown_in(&self, gpu: usize, t0: f64, t1: f64) -> f64 {
        self.slow
            .get(gpu)
            .map(|ws| {
                ws.iter()
                    .filter(|w| w.start < t1 && w.end > t0)
                    .map(|w| w.factor)
                    .fold(1.0, f64::max)
            })
            .unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn clock(plan: &FaultPlan) -> FaultClock {
        FaultClock::new(plan, 16, 8)
    }

    #[test]
    fn empty_plan_is_transparent() {
        let c = clock(&FaultPlan::new(1));
        assert!(c.is_empty());
        assert_eq!(c.stretched(&[0, 5, 15], 3.0, 2.5, true), 2.5);
        assert_eq!(c.first_crash(&[0, 1], 0.0, 100.0), None);
        assert_eq!(c.available_from(&[0], 7.0), 7.0);
        assert_eq!(c.quiet_after(&[0, 15]), 0.0);
    }

    #[test]
    fn slowdown_stretches_inside_window_only() {
        let c = clock(&FaultPlan::new(1).slowdown(0, 10.0, 20.0, 2.0));
        // Entirely before the window: unchanged.
        assert_eq!(c.stretched(&[0], 0.0, 5.0, false), 5.0);
        // Entirely inside: doubled.
        assert_eq!(c.stretched(&[0], 12.0, 3.0, false), 6.0);
        // Straddling the end: 2 s of work at 2x consumes [18, 20) for 1 s
        // of progress, the remaining 1 s runs at full speed.
        assert!((c.stretched(&[0], 18.0, 2.0, false) - 3.0).abs() < 1e-12);
        // Another GPU is unaffected.
        assert_eq!(c.stretched(&[1], 12.0, 3.0, false), 3.0);
        // A collective including the straggler is held back by it.
        assert_eq!(c.stretched(&[0, 1], 12.0, 3.0, false), 6.0);
    }

    #[test]
    fn link_degradation_applies_to_comm_only() {
        let c = clock(&FaultPlan::new(1).degrade_link(1, 0.0, 100.0, 4.0));
        // GPU 8 is on node 1.
        assert_eq!(c.stretched(&[8], 1.0, 2.0, false), 2.0);
        assert_eq!(c.stretched(&[8], 1.0, 2.0, true), 8.0);
        // Node 0 traffic is clean.
        assert_eq!(c.stretched(&[0], 1.0, 2.0, true), 2.0);
        // Cross-node collectives degrade when either endpoint's node does.
        assert_eq!(c.stretched(&[0, 8], 1.0, 2.0, true), 8.0);
    }

    #[test]
    fn slowdown_and_link_factors_compose() {
        let c = clock(
            &FaultPlan::new(1)
                .slowdown(0, 0.0, 100.0, 2.0)
                .degrade_link(0, 0.0, 100.0, 3.0),
        );
        assert_eq!(c.stretched(&[0], 0.0, 1.0, false), 2.0);
        assert_eq!(c.stretched(&[0], 0.0, 1.0, true), 6.0);
    }

    #[test]
    fn crash_detection_and_availability() {
        let c = clock(&FaultPlan::new(1).crash(3, 10.0, 5.0));
        assert_eq!(c.first_crash(&[3], 0.0, 9.0), None);
        assert_eq!(c.first_crash(&[3], 0.0, 12.0), Some((3, 10.0)));
        // Already down at dispatch: crashes at the dispatch instant.
        assert_eq!(c.first_crash(&[3], 11.0, 20.0), Some((3, 11.0)));
        assert_eq!(c.first_crash(&[2], 0.0, 100.0), None);
        assert_eq!(c.available_from(&[3], 11.0), 15.0);
        assert_eq!(c.available_from(&[3], 15.0), 15.0);
        assert_eq!(c.quiet_after(&[3]), 15.0);
        assert_eq!(c.quiet_after(&[2]), 0.0);
    }

    #[test]
    fn max_slowdown_in_scans_overlapping_windows() {
        let c = clock(
            &FaultPlan::new(1)
                .slowdown(2, 10.0, 20.0, 2.0)
                .slowdown(2, 15.0, 30.0, 3.5),
        );
        assert_eq!(c.max_slowdown_in(2, 0.0, 10.0), 1.0); // before both
        assert_eq!(c.max_slowdown_in(2, 10.0, 12.0), 2.0); // first only
        assert_eq!(c.max_slowdown_in(2, 0.0, 100.0), 3.5); // both
        assert_eq!(c.max_slowdown_in(2, 30.0, 40.0), 1.0); // after both
        assert_eq!(c.max_slowdown_in(3, 0.0, 100.0), 1.0); // other GPU
        assert_eq!(c.max_slowdown_in(999, 0.0, 100.0), 1.0); // out of range
    }

    #[test]
    fn chained_downtimes_resolve_to_a_fixed_point() {
        // Restart at 12 lands inside a second window [11, 20).
        let c = clock(&FaultPlan::new(1).crash(0, 10.0, 2.0).crash(0, 11.0, 9.0));
        assert_eq!(c.available_from(&[0], 10.5), 20.0);
        assert_eq!(c.quiet_after(&[0]), 20.0);
    }

    #[test]
    fn validation_rejects_malformed_events() {
        assert!(FaultPlan::new(1)
            .slowdown(0, 5.0, 5.0, 2.0)
            .validate()
            .is_err());
        assert!(FaultPlan::new(1)
            .slowdown(0, 0.0, 5.0, 0.5)
            .validate()
            .is_err());
        assert!(FaultPlan::new(1).crash(0, 1.0, 0.0).validate().is_err());
        assert!(FaultPlan::new(1)
            .degrade_link(0, 2.0, 1.0, 2.0)
            .validate()
            .is_err());
        assert!(FaultPlan::new(1)
            .slowdown(0, 0.0, f64::INFINITY, 2.0)
            .validate()
            .is_err());
        let err = FaultPlan::new(1)
            .crash(0, -1.0, 1.0)
            .validate()
            .unwrap_err();
        assert_eq!(err.index, 0);
        assert!(err.to_string().contains("crash instant"));
    }

    #[test]
    fn out_of_range_targets_are_ignored() {
        let c = clock(
            &FaultPlan::new(1)
                .slowdown(99, 0.0, 10.0, 2.0)
                .crash(99, 0.0, 10.0)
                .degrade_link(99, 0.0, 10.0, 2.0),
        );
        assert!(c.is_empty());
    }

    #[test]
    fn random_plans_are_reproducible_and_in_range() {
        let a = FaultPlan::random(9, 16, 8, 600.0, 2.0);
        let b = FaultPlan::random(9, 16, 8, 600.0, 2.0);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20); // 2/min over 10 minutes
        a.validate().unwrap();
        assert!(FaultPlan::random(9, 16, 8, 600.0, 0.0).is_empty());
        // Compiles without dropping anything: every target is in range.
        let c = FaultClock::new(&a, 16, 8);
        assert!(!c.is_empty());
        // A different seed gives a different schedule.
        assert_ne!(a, FaultPlan::random(10, 16, 8, 600.0, 2.0));
    }

    #[test]
    fn serde_roundtrip_preserves_every_variant() {
        let plan = FaultPlan::new(3)
            .slowdown(1, 0.5, 2.5, 3.0)
            .crash(2, 4.0, 1.5)
            .degrade_link(0, 1.0, 9.0, 2.0);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    proptest! {
        #[test]
        fn stretch_never_shrinks_and_empty_is_identity(
            start in 0.0..50.0f64,
            nominal in 0.0..10.0f64,
            windows in proptest::collection::vec((0.0..40.0f64, 0.1..20.0f64, 1.0..4.0f64), 0..6),
        ) {
            let mut plan = FaultPlan::new(1);
            for &(s, d, f) in &windows {
                plan = plan.slowdown(0, s, s + d, f);
            }
            let c = FaultClock::new(&plan, 2, 2);
            let wall = c.stretched(&[0], start, nominal, false);
            prop_assert!(wall >= nominal - 1e-12, "stretched {wall} < nominal {nominal}");
            // The worst-case factor bounds the stretch.
            let fmax = windows.iter().map(|w| w.2).fold(1.0, f64::max);
            prop_assert!(wall <= nominal * fmax + 1e-9);
            // GPU 1 has no windows: identity.
            prop_assert!((c.stretched(&[1], start, nominal, false) - nominal).abs() < 1e-12);
        }

        #[test]
        fn availability_is_outside_every_downtime(
            t in 0.0..60.0f64,
            crashes in proptest::collection::vec((0.0..50.0f64, 0.1..10.0f64), 0..5),
        ) {
            let mut plan = FaultPlan::new(1);
            for &(at, d) in &crashes {
                plan = plan.crash(0, at, d);
            }
            let c = FaultClock::new(&plan, 1, 1);
            let up = c.available_from(&[0], t);
            prop_assert!(up >= t);
            for &(at, d) in &crashes {
                prop_assert!(!(at <= up && up < at + d), "available {up} inside [{at}, {})", at + d);
            }
        }
    }
}
