//! Kernel-level trace recording (the data behind Fig. 10's simplified
//! kernel traces).

use crate::timeline::Category;

/// One recorded busy interval on one GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Global GPU index.
    pub gpu: usize,
    /// Interval start (seconds of virtual time).
    pub start: f64,
    /// Interval end.
    pub end: f64,
    /// Busy category.
    pub category: Category,
    /// Free-form label (e.g. `"layer_decode"`, `"tp_allreduce"`).
    pub label: &'static str,
}

/// A bounded trace recorder. Recording is opt-in because full traces of a
/// long run are large; the runtime engine only enables it for the trace
/// figures.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// A disabled trace that records nothing.
    pub fn disabled() -> Self {
        Self { events: Vec::new(), capacity: 0, dropped: 0 }
    }

    /// A trace recording up to `capacity` events; later events are counted
    /// but dropped.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { events: Vec::with_capacity(capacity.min(1 << 20)), capacity, dropped: 0 }
    }

    /// Whether this trace records anything.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records an event (no-op when disabled or full).
    pub fn record(&mut self, gpu: usize, start: f64, end: f64, category: Category, label: &'static str) {
        if self.events.len() < self.capacity {
            self.events.push(TraceEvent { gpu, start, end, category, label });
        } else if self.capacity > 0 {
            self.dropped += 1;
        }
    }

    /// The recorded events in record order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events dropped after the capacity filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events on one GPU, in record order.
    pub fn for_gpu(&self, gpu: usize) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.gpu == gpu).collect()
    }

    /// Renders an ASCII lane for one GPU over `[0, horizon]` with `width`
    /// character cells — the Fig. 10 visualization.
    pub fn render_lane(&self, gpu: usize, horizon: f64, width: usize) -> String {
        assert!(horizon > 0.0 && width > 0, "need a positive horizon and width");
        let mut lane = vec!['.'; width];
        for e in self.events.iter().filter(|e| e.gpu == gpu) {
            let glyph = match e.category {
                Category::Compute => '#',
                Category::Launch => 'l',
                Category::TpComm => 'T',
                Category::PpComm => 'P',
                Category::DpComm => 'D',
                Category::Realloc => 'R',
                Category::Transfer => 'x',
            };
            let a = ((e.start / horizon) * width as f64).floor() as usize;
            let b = ((e.end / horizon) * width as f64).ceil() as usize;
            for cell in lane.iter_mut().take(b.min(width)).skip(a.min(width)) {
                *cell = glyph;
            }
        }
        lane.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(0, 0.0, 1.0, Category::Compute, "k");
        assert!(t.events().is_empty());
        assert!(!t.enabled());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn capacity_bounds_recording() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.record(0, i as f64, i as f64 + 1.0, Category::Compute, "k");
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn per_gpu_filtering() {
        let mut t = Trace::with_capacity(10);
        t.record(0, 0.0, 1.0, Category::Compute, "a");
        t.record(1, 0.0, 1.0, Category::TpComm, "b");
        t.record(0, 1.0, 2.0, Category::PpComm, "c");
        assert_eq!(t.for_gpu(0).len(), 2);
        assert_eq!(t.for_gpu(1).len(), 1);
        assert_eq!(t.for_gpu(2).len(), 0);
    }

    #[test]
    fn lane_rendering_places_glyphs() {
        let mut t = Trace::with_capacity(10);
        t.record(0, 0.0, 0.5, Category::Compute, "k");
        t.record(0, 0.5, 1.0, Category::TpComm, "ar");
        let lane = t.render_lane(0, 1.0, 10);
        assert_eq!(lane.len(), 10);
        assert!(lane.starts_with("#####"));
        assert!(lane.ends_with("TTTTT"));
        // Empty lane elsewhere.
        assert_eq!(t.render_lane(3, 1.0, 4), "....");
    }

    #[test]
    #[should_panic(expected = "positive horizon")]
    fn lane_zero_horizon_panics() {
        Trace::with_capacity(1).render_lane(0, 0.0, 10);
    }
}

/// Serializes a trace to the Chrome trace-event JSON format, loadable in
/// `chrome://tracing` or Perfetto. Each GPU becomes a thread lane; times are
/// converted from seconds to microseconds.
pub fn to_chrome_trace(trace: &Trace) -> String {
    let mut out = String::from("[");
    for (i, e) in trace.events().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":{}}}",
            e.label,
            e.category,
            e.start * 1e6,
            (e.end - e.start) * 1e6,
            e.gpu,
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod chrome_tests {
    use super::*;

    #[test]
    fn chrome_trace_is_valid_shape() {
        let mut t = Trace::with_capacity(4);
        t.record(0, 0.0, 0.001, Category::Compute, "layer_fwd");
        t.record(1, 0.001, 0.003, Category::TpComm, "tp_allreduce");
        let json = to_chrome_trace(&t);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"name\":\"layer_fwd\""));
        assert!(json.contains("\"cat\":\"tp-comm\""));
        assert!(json.contains("\"tid\":1"));
        // Durations in microseconds.
        assert!(json.contains("\"dur\":1000.000"));
        assert!(json.contains("\"dur\":2000.000"));
    }

    #[test]
    fn empty_trace_serializes_to_empty_array() {
        assert_eq!(to_chrome_trace(&Trace::disabled()), "[]");
    }
}
