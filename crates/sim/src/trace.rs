//! Kernel-level trace recording (the data behind Fig. 10's simplified
//! kernel traces).

use crate::timeline::Category;

/// One recorded busy interval on one GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Global GPU index.
    pub gpu: usize,
    /// Interval start (seconds of virtual time).
    pub start: f64,
    /// Interval end.
    pub end: f64,
    /// Busy category.
    pub category: Category,
    /// Free-form label (e.g. `"layer_decode"`, `"tp_allreduce"`).
    pub label: &'static str,
}

/// A position in a [`Trace`], taken with [`Trace::checkpoint`] and restored
/// with [`Trace::rewind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCheckpoint {
    len: usize,
    dropped: u64,
}

/// A bounded trace recorder. Recording is opt-in because full traces of a
/// long run are large; the runtime engine only enables it for the trace
/// figures.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// A disabled trace that records nothing.
    pub fn disabled() -> Self {
        Self {
            events: Vec::new(),
            capacity: 0,
            dropped: 0,
        }
    }

    /// A trace recording up to `capacity` events; later events are counted
    /// but dropped.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            events: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            dropped: 0,
        }
    }

    /// Whether this trace records anything.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records an event (no-op when disabled or full).
    pub fn record(
        &mut self,
        gpu: usize,
        start: f64,
        end: f64,
        category: Category,
        label: &'static str,
    ) {
        if self.events.len() < self.capacity {
            self.events.push(TraceEvent {
                gpu,
                start,
                end,
                category,
                label,
            });
        } else if self.capacity > 0 {
            self.dropped += 1;
        }
    }

    /// Captures the current recording position so a speculative stretch of
    /// events can be discarded with [`Trace::rewind`].
    pub fn checkpoint(&self) -> TraceCheckpoint {
        TraceCheckpoint {
            len: self.events.len(),
            dropped: self.dropped,
        }
    }

    /// Discards every event recorded after `cp` was taken, restoring the
    /// drop counter too. Used by resilient dispatch to roll back the trace
    /// of an execution attempt aborted by a fault.
    ///
    /// # Panics
    ///
    /// Panics if `cp` is from a point *ahead* of the current state (i.e.
    /// the trace was already rewound past it).
    pub fn rewind(&mut self, cp: TraceCheckpoint) {
        assert!(
            cp.len <= self.events.len() && cp.dropped <= self.dropped,
            "checkpoint is ahead of the trace"
        );
        self.events.truncate(cp.len);
        self.dropped = cp.dropped;
    }

    /// The recorded events in record order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events dropped after the capacity filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events on one GPU, in record order.
    pub fn for_gpu(&self, gpu: usize) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.gpu == gpu).collect()
    }

    /// Renders an ASCII lane for one GPU over `[0, horizon]` with `width`
    /// character cells — the Fig. 10 visualization.
    pub fn render_lane(&self, gpu: usize, horizon: f64, width: usize) -> String {
        assert!(
            horizon > 0.0 && width > 0,
            "need a positive horizon and width"
        );
        let mut lane = vec!['.'; width];
        for e in self.events.iter().filter(|e| e.gpu == gpu) {
            let glyph = match e.category {
                Category::Compute => '#',
                Category::Launch => 'l',
                Category::TpComm => 'T',
                Category::PpComm => 'P',
                Category::DpComm => 'D',
                Category::Realloc => 'R',
                Category::Transfer => 'x',
            };
            let a = ((e.start / horizon) * width as f64).floor() as usize;
            let b = ((e.end / horizon) * width as f64).ceil() as usize;
            for cell in lane.iter_mut().take(b.min(width)).skip(a.min(width)) {
                *cell = glyph;
            }
        }
        lane.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(0, 0.0, 1.0, Category::Compute, "k");
        assert!(t.events().is_empty());
        assert!(!t.enabled());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn capacity_bounds_recording() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.record(0, i as f64, i as f64 + 1.0, Category::Compute, "k");
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn per_gpu_filtering() {
        let mut t = Trace::with_capacity(10);
        t.record(0, 0.0, 1.0, Category::Compute, "a");
        t.record(1, 0.0, 1.0, Category::TpComm, "b");
        t.record(0, 1.0, 2.0, Category::PpComm, "c");
        assert_eq!(t.for_gpu(0).len(), 2);
        assert_eq!(t.for_gpu(1).len(), 1);
        assert_eq!(t.for_gpu(2).len(), 0);
    }

    #[test]
    fn checkpoint_and_rewind_discard_speculative_events() {
        let mut t = Trace::with_capacity(2);
        t.record(0, 0.0, 1.0, Category::Compute, "keep");
        let cp = t.checkpoint();
        t.record(0, 1.0, 2.0, Category::Compute, "drop");
        t.record(0, 2.0, 3.0, Category::Compute, "over-capacity");
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 1);
        t.rewind(cp);
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.events()[0].label, "keep");
        assert_eq!(t.dropped(), 0);
        // Rewinding to the same point twice is a no-op.
        t.rewind(cp);
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    #[should_panic(expected = "checkpoint is ahead")]
    fn rewinding_past_a_stale_checkpoint_panics() {
        let mut t = Trace::with_capacity(4);
        t.record(0, 0.0, 1.0, Category::Compute, "a");
        let cp = t.checkpoint();
        t.rewind(TraceCheckpoint { len: 0, dropped: 0 });
        t.rewind(cp);
    }

    #[test]
    fn lane_rendering_places_glyphs() {
        let mut t = Trace::with_capacity(10);
        t.record(0, 0.0, 0.5, Category::Compute, "k");
        t.record(0, 0.5, 1.0, Category::TpComm, "ar");
        let lane = t.render_lane(0, 1.0, 10);
        assert_eq!(lane.len(), 10);
        assert!(lane.starts_with("#####"));
        assert!(lane.ends_with("TTTTT"));
        // Empty lane elsewhere.
        assert_eq!(t.render_lane(3, 1.0, 4), "....");
    }

    #[test]
    #[should_panic(expected = "positive horizon")]
    fn lane_zero_horizon_panics() {
        Trace::with_capacity(1).render_lane(0, 0.0, 10);
    }
}

/// Records a flat [`Trace`] into an existing [`real_obs::EventStream`]:
/// one span per recorded interval on lane `node{n}/gpu{g}` (lanes are named
/// via metadata), plus one utilization counter track per communication
/// category — the number of concurrently busy links over time, sampled at
/// every busy-interval edge.
///
/// Recording into a caller-owned stream lets the runtime engine compose the
/// GPU kernel lanes with its own master-lane spans, flow arrows, and memory
/// counter tracks in a single export.
pub fn record_event_stream(
    trace: &Trace,
    gpus_per_node: usize,
    stream: &mut real_obs::EventStream,
) {
    assert!(gpus_per_node > 0, "need at least one GPU per node");
    let mut named: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    for e in trace.events() {
        let node = (e.gpu / gpus_per_node) as u32;
        let gpu = (e.gpu % gpus_per_node) as u32;
        let lane = real_obs::LaneId::gpu(node, gpu);
        if named.insert(e.gpu) {
            stream.set_lane_name(lane, &format!("node{node}"), &format!("gpu{gpu}"));
        }
        stream.span(lane, e.label, &e.category.to_string(), e.start, e.end);
    }
    // Per-link utilization: for each comm category, a counter track sampling
    // how many links are simultaneously busy.
    for cat in [
        Category::TpComm,
        Category::PpComm,
        Category::DpComm,
        Category::Transfer,
    ] {
        let mut edges: Vec<(f64, i64)> = Vec::new();
        for e in trace.events().iter().filter(|e| e.category == cat) {
            edges.push((e.start, 1));
            edges.push((e.end, -1));
        }
        if edges.is_empty() {
            continue;
        }
        edges.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite times")
                .then(a.1.cmp(&b.1))
        });
        let mut active: i64 = 0;
        let track = format!("links/{cat}");
        for (ts, delta) in edges {
            active += delta;
            stream.counter(0, &track, ts, active as f64);
        }
    }
}

/// Converts a flat [`Trace`] into a fresh [`real_obs::EventStream`] sized to
/// hold every span and counter sample. See [`record_event_stream`].
pub fn to_event_stream(trace: &Trace, gpus_per_node: usize) -> real_obs::EventStream {
    let mut stream = real_obs::EventStream::with_capacity(
        trace.events().len() * 2 + Category::ALL.len() * trace.events().len() + 64,
    );
    record_event_stream(trace, gpus_per_node, &mut stream);
    stream
}

/// Serializes a trace to the Chrome trace-event JSON format, loadable in
/// `chrome://tracing` or Perfetto. Each GPU becomes a thread lane; times are
/// converted from seconds to microseconds.
///
/// Kept for backwards compatibility as a thin wrapper over the serde_json
/// exporter in `real-obs`; the old hand-rolled string concatenation
/// interpolated labels unescaped, so a label containing a quote could inject
/// arbitrary JSON fields.
pub fn to_chrome_trace(trace: &Trace) -> String {
    // Flat traces don't know the node topology; export on a single node.
    let stream = to_event_stream(trace, usize::MAX);
    real_obs::chrome::to_chrome_string(&stream)
}

#[cfg(test)]
mod chrome_tests {
    use super::*;
    use serde::Value;

    #[test]
    fn chrome_trace_is_valid_shape() {
        let mut t = Trace::with_capacity(4);
        t.record(0, 0.0, 0.001, Category::Compute, "layer_fwd");
        t.record(1, 0.001, 0.003, Category::TpComm, "tp_allreduce");
        let json = to_chrome_trace(&t);
        let parsed: Value = serde_json::from_str(&json).expect("export is valid JSON");
        let events = parsed.as_array().unwrap();
        let begin = |name: &str| {
            events
                .iter()
                .find(|e| e["ph"].as_str() == Some("B") && e["name"].as_str() == Some(name))
                .unwrap_or_else(|| panic!("no begin event `{name}`"))
        };
        assert_eq!(begin("layer_fwd")["cat"].as_str(), Some("compute"));
        let ar = begin("tp_allreduce");
        assert_eq!(ar["cat"].as_str(), Some("tp-comm"));
        assert_eq!(ar["tid"].as_u64(), Some(1));
        // Timestamps in microseconds.
        assert!((ar["ts"].as_f64().unwrap() - 1000.0).abs() < 1e-9);
        // The comm interval also produces a link-utilization counter track.
        assert!(events
            .iter()
            .any(|e| e["ph"].as_str() == Some("C") && e["name"].as_str() == Some("links/tp-comm")));
    }

    #[test]
    fn empty_trace_serializes_to_empty_array() {
        assert_eq!(to_chrome_trace(&Trace::disabled()), "[]");
    }

    #[test]
    fn hostile_labels_stay_inside_strings() {
        let mut t = Trace::with_capacity(2);
        // A &'static str label with JSON metacharacters must not be able to
        // inject fields (the bug in the old string-concatenation exporter).
        t.record(
            0,
            0.0,
            1.0,
            Category::Compute,
            "evil\",\"pid\":999,\"x\":\"",
        );
        let parsed: Value = serde_json::from_str(&to_chrome_trace(&t)).unwrap();
        let begin = parsed
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e["ph"].as_str() == Some("B"))
            .unwrap();
        assert_eq!(begin["name"].as_str(), Some("evil\",\"pid\":999,\"x\":\""));
        assert_eq!(begin["pid"].as_u64(), Some(0));
    }

    #[test]
    fn event_stream_has_lane_metadata_and_balanced_spans() {
        let mut t = Trace::with_capacity(16);
        t.record(0, 0.0, 1.0, Category::Compute, "a");
        t.record(9, 1.0, 2.0, Category::PpComm, "b");
        let stream = to_event_stream(&t, 8);
        stream.check_invariants().expect("balanced");
        let threads: Vec<_> = stream.thread_names().collect();
        // GPU 9 with 8 GPUs per node lands on node1/gpu1.
        assert!(threads.contains(&(0, 0, "gpu0")));
        assert!(threads.contains(&(1, 1, "gpu1")));
    }
}
