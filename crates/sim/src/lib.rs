//! Discrete-event simulation kernel for the runtime engine.
//!
//! The runtime engine (`real-runtime`) executes execution plans as events
//! on *virtual GPU timelines*: every kernel, collective, broadcast, or
//! transfer advances the busy-clock of the GPUs it occupies. This crate
//! provides that substrate:
//!
//! - [`Category`] — what a busy interval was spent on (compute, TP/PP/DP
//!   communication, launch overhead, reallocation, data transfer), the
//!   classification behind the paper's Fig. 10 kernel traces and Fig. 11
//!   GPU-time split,
//! - [`GpuTimeline`] — one device's busy-clock plus per-category totals,
//! - [`Timelines`] — the cluster-wide collection with serial, collective,
//!   and point-to-point advancement primitives,
//! - [`Trace`] — an optional kernel-level event recorder,
//! - [`FaultPlan`] / [`FaultClock`] — a deterministic fault schedule
//!   (straggler windows, worker crashes, link degradation) and its
//!   compiled query form, used by the runtime's resilient dispatch.
//!
//! # Examples
//!
//! ```
//! use real_sim::{Category, Timelines};
//! let mut t = Timelines::new(4);
//! // A collective over GPUs 0-3 starting when all are free.
//! let end = t.collective(&[0, 1, 2, 3], 0.0, 1.5, Category::TpComm);
//! assert_eq!(end, 1.5);
//! assert_eq!(t.busy(0, Category::TpComm), 1.5);
//! ```

pub mod fault;
pub mod timeline;
pub mod trace;

pub use fault::{FaultClock, FaultEvent, FaultPlan, FaultPlanError};
pub use timeline::{Category, GpuTimeline, Timelines};
pub use trace::{record_event_stream, to_event_stream, Trace, TraceCheckpoint, TraceEvent};
