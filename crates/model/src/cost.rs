//! Analytic per-operation cost model.
//!
//! This module plays the role of the paper's GPU kernels: every computation
//! and communication the runtime engine or the profiler "executes" is priced
//! here. The model is a roofline: dense GEMMs are compute-bound, while
//! auto-regressive decoding is bound by streaming the weight shard and the
//! KV cache through HBM — which is exactly the asymmetry that makes ReaL
//! prefer TP (shards the weights) over PP (re-reads them once per
//! micro-batch) for generation, and PP over TP for compute-bound training
//! (§8.2, Fig. 10).
//!
//! All times are in seconds; all `tokens`/`batch` arguments are *per model
//! replica* (i.e. after DP splitting) unless stated otherwise.

use crate::spec::{HeadKind, ModelSpec};
use real_cluster::{ClusterSpec, CommModel};
use serde::{Deserialize, Serialize};

/// Bytes per parameter/activation element (BF16).
pub const DTYPE_BYTES: u64 = 2;
/// Approximate kernel launches per transformer layer, forward pass.
pub const KERNELS_PER_LAYER_FWD: u32 = 12;
/// Approximate kernel launches per transformer layer, backward pass.
pub const KERNELS_PER_LAYER_BWD: u32 = 18;
/// Achievable fraction of HBM bandwidth for small-batch decode kernels.
const DECODE_MEM_EFFICIENCY: f64 = 0.7;
/// Bytes of optimizer state traffic per parameter for one Adam step
/// (read p32/m/v/g32, write p32/m/v/p16).
const ADAM_BYTES_PER_PARAM: f64 = 30.0;

/// The cost model: a model architecture priced on a cluster's hardware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    cluster: ClusterSpec,
    model: ModelSpec,
    comm: CommModel,
}

impl CostModel {
    /// Binds `model` to `cluster`'s hardware.
    pub fn new(cluster: ClusterSpec, model: ModelSpec) -> Self {
        let comm = CommModel::new(&cluster);
        Self {
            cluster,
            model,
            comm,
        }
    }

    /// The underlying model spec.
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// The underlying cluster spec.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The communication model shared with the runtime engine.
    pub fn comm(&self) -> &CommModel {
        &self.comm
    }

    // ---- per-layer compute ----

    /// Matmul parameters of one layer (norm vectors excluded — they are
    /// bandwidth-trivial).
    fn layer_mat_params(&self) -> u64 {
        self.model.layer_params() - 2 * self.model.hidden
    }

    /// Forward time of one transformer layer over `tokens` tokens whose
    /// average attention span is `kv_len` (callers pass `seq/2` for causal
    /// prefill/training, the current context length for decode batches).
    pub fn layer_fwd_time(&self, tokens: u64, kv_len: u64, tp: u32, cuda_graph: bool) -> f64 {
        let tp = f64::from(tp.max(1));
        let t = tokens as f64;
        let matmul = 2.0 * t * self.layer_mat_params() as f64 / tp;
        let attn = 4.0 * t * kv_len as f64 * self.model.hidden as f64 / tp;
        let flops = matmul + attn;
        let act_io = t
            * (4.0 * self.model.hidden as f64 + 2.0 * self.model.intermediate as f64)
            * DTYPE_BYTES as f64
            / tp;
        self.cluster.gpu.kernel_time(flops, act_io, true)
            + self.launch_cost(KERNELS_PER_LAYER_FWD, cuda_graph)
    }

    /// Backward time of one transformer layer (2× the forward FLOPs plus
    /// heavier activation traffic). CUDA graphs are not applied to training
    /// in the paper's system, so the launch overhead is always charged.
    pub fn layer_bwd_time(&self, tokens: u64, kv_len: u64, tp: u32) -> f64 {
        let tp_f = f64::from(tp.max(1));
        let t = tokens as f64;
        let matmul = 4.0 * t * self.layer_mat_params() as f64 / tp_f;
        let attn = 8.0 * t * kv_len as f64 * self.model.hidden as f64 / tp_f;
        let act_io = 2.0
            * t
            * (4.0 * self.model.hidden as f64 + 2.0 * self.model.intermediate as f64)
            * DTYPE_BYTES as f64
            / tp_f;
        self.cluster.gpu.kernel_time(matmul + attn, act_io, true)
            + self.launch_cost(KERNELS_PER_LAYER_BWD, false)
    }

    /// One decoding step of one layer for `batch` sequences whose current
    /// context length is `past_len`. Memory-bound: streams the layer's
    /// weight shard plus the KV-cache shard.
    pub fn layer_decode_time(&self, batch: u64, past_len: u64, tp: u32, cuda_graph: bool) -> f64 {
        self.layer_verify_time(batch, 1, past_len, tp, cuda_graph)
    }

    /// One verification forward of one layer: `new_tokens` fresh tokens per
    /// sequence scored against a `past_len` context, for `batch` sequences.
    ///
    /// This is the speculative-decoding primitive: the weight shard and the
    /// KV cache stream through HBM *once* and are amortized over all
    /// `new_tokens` positions, while compute scales with `batch ·
    /// new_tokens`. With `new_tokens = 1` this is exactly
    /// [`layer_decode_time`](Self::layer_decode_time) — plain decode is the
    /// degenerate verify — so a verify forward always costs at least one
    /// plain step and at most `new_tokens` of them.
    pub fn layer_verify_time(
        &self,
        batch: u64,
        new_tokens: u64,
        past_len: u64,
        tp: u32,
        cuda_graph: bool,
    ) -> f64 {
        let tp_f = f64::from(tp.max(1));
        let b = batch as f64;
        let t = b * new_tokens.max(1) as f64;
        let weights_io = self.layer_mat_params() as f64 * DTYPE_BYTES as f64 / tp_f;
        let kv_io =
            b * past_len as f64 * self.model.kv_dim() as f64 * 2.0 * DTYPE_BYTES as f64 / tp_f;
        let flops = t
            * (2.0 * self.layer_mat_params() as f64
                + 4.0 * past_len as f64 * self.model.hidden as f64)
            / tp_f;
        let io_time = (weights_io + kv_io) / (self.cluster.gpu.hbm_bw * DECODE_MEM_EFFICIENCY);
        io_time.max(self.cluster.gpu.compute_time(flops))
            + self.launch_cost(KERNELS_PER_LAYER_FWD, cuda_graph)
    }

    /// Input-embedding lookup for `tokens` tokens (bandwidth-bound gather).
    pub fn embed_time(&self, tokens: u64, tp: u32) -> f64 {
        let io =
            tokens as f64 * self.model.hidden as f64 * DTYPE_BYTES as f64 / f64::from(tp.max(1));
        self.cluster.gpu.kernel_time(0.0, io, true) + self.cluster.gpu.launch_overhead
    }

    /// Output-head time for `tokens` tokens: the vocabulary GEMM plus the
    /// fp32 softmax/log-prob traffic for LM heads (the paper's §8 footnote
    /// calls out this tensor's 250 GB footprint), or a trivial scalar
    /// projection for critic heads. `backward` doubles the GEMM.
    pub fn head_time(&self, tokens: u64, tp: u32, backward: bool) -> f64 {
        let tp_f = f64::from(tp.max(1));
        let t = tokens as f64;
        let (flops, io) = match self.model.head {
            HeadKind::LmHead => {
                let gemm = 2.0 * t * self.model.hidden as f64 * self.model.vocab as f64 / tp_f;
                // Softmax + cross-entropy: ~3 fp32 passes over the logits.
                let io = 3.0 * t * self.model.vocab as f64 * 4.0 / tp_f;
                (gemm, io)
            }
            HeadKind::ScalarHead => (2.0 * t * self.model.hidden as f64 / tp_f, t * 4.0),
        };
        let mult = if backward { 3.0 } else { 1.0 }; // fwd + 2x bwd
        self.cluster.gpu.kernel_time(mult * flops, mult * io, true)
            + self.cluster.gpu.launch_overhead
    }

    /// One Adam step over a `params_shard`-parameter shard (bandwidth-bound
    /// elementwise update).
    pub fn optim_step_time(&self, params_shard: u64) -> f64 {
        self.cluster
            .gpu
            .mem_io_time(params_shard as f64 * ADAM_BYTES_PER_PARAM)
            + self.cluster.gpu.launch_overhead
    }

    // ---- communication ----

    /// One TP all-reduce of layer activations for `tokens` tokens. A
    /// transformer layer forward issues two of these; backward two more.
    pub fn tp_allreduce_time(&self, tokens: u64, tp: u32, within_node: bool) -> f64 {
        let bytes = tokens as f64 * self.model.hidden as f64 * DTYPE_BYTES as f64;
        self.comm.all_reduce(bytes, tp, within_node)
    }

    /// Pipeline-parallel P2P transfer of boundary activations for `tokens`
    /// tokens (per micro-batch, per stage boundary). The activation is
    /// TP-sharded on the wire.
    pub fn pp_p2p_time(&self, tokens: u64, tp: u32, within_node: bool) -> f64 {
        let bytes =
            tokens as f64 * self.model.hidden as f64 * DTYPE_BYTES as f64 / f64::from(tp.max(1));
        self.comm.p2p(bytes, within_node)
    }

    /// Gradient all-reduce across the DP group after the backward pass
    /// (fp32 gradient buffer over the local shard).
    pub fn dp_grad_allreduce_time(&self, params_shard: u64, dp: u32, within_node: bool) -> f64 {
        let bytes = params_shard as f64 * 4.0;
        self.comm.all_reduce(bytes, dp, within_node)
    }

    /// ZeRO-3 per-layer weight all-gather (DeepSpeed-Chat's symmetric
    /// strategy pays this on every forward and again on every backward).
    pub fn zero3_allgather_time(&self, world: u32, within_node: bool) -> f64 {
        let bytes = self.layer_mat_params() as f64 * DTYPE_BYTES as f64;
        self.comm.all_gather(bytes, world, within_node)
    }

    /// ZeRO-3 per-layer gradient reduce-scatter during backward.
    pub fn zero3_reduce_scatter_time(&self, world: u32, within_node: bool) -> f64 {
        let bytes = self.layer_mat_params() as f64 * 4.0;
        self.comm.reduce_scatter(bytes, world, within_node)
    }

    // ---- helpers ----

    fn launch_cost(&self, kernels: u32, cuda_graph: bool) -> f64 {
        if cuda_graph {
            // Graph replay still pays one launch for the whole graph; charge
            // a single overhead shared across the layer's kernels.
            self.cluster.gpu.launch_overhead / 8.0
        } else {
            f64::from(kernels) * self.cluster.gpu.launch_overhead
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModelSpec;

    fn cm(model: ModelSpec) -> CostModel {
        CostModel::new(ClusterSpec::h100(2), model)
    }

    #[test]
    fn prefill_is_compute_bound_decode_is_memory_bound() {
        let c = cm(ModelSpec::llama3_7b());
        // Prefill: time should scale ~linearly with tokens (compute-bound).
        let t1 = c.layer_fwd_time(4096, 1024, 1, true);
        let t2 = c.layer_fwd_time(8192, 1024, 1, true);
        assert!((t2 / t1 - 2.0).abs() < 0.05, "ratio {}", t2 / t1);
        // Decode: doubling the batch at small sizes barely changes the time
        // (weight streaming dominates).
        let d1 = c.layer_decode_time(1, 512, 1, true);
        let d2 = c.layer_decode_time(2, 512, 1, true);
        assert!(d2 / d1 < 1.2, "ratio {}", d2 / d1);
    }

    #[test]
    fn decode_step_full_model_magnitude() {
        // One full decode step of 7B on one H100 ≈ weights/bandwidth ≈ 4-8ms.
        let c = cm(ModelSpec::llama3_7b());
        let per_layer = c.layer_decode_time(1, 1024, 1, true);
        let total = per_layer * 32.0;
        assert!(total > 3e-3 && total < 12e-3, "step {total}");
    }

    #[test]
    fn tp_shards_decode_time() {
        let c = cm(ModelSpec::llama3_7b());
        let d1 = c.layer_decode_time(8, 1024, 1, true);
        let d8 = c.layer_decode_time(8, 1024, 8, true);
        assert!(
            d1 / d8 > 4.0,
            "tp=8 should cut decode time well: {}",
            d1 / d8
        );
    }

    #[test]
    fn bwd_costs_roughly_twice_fwd() {
        let c = cm(ModelSpec::llama3_70b());
        let f = c.layer_fwd_time(16384, 1024, 8, true);
        let b = c.layer_bwd_time(16384, 1024, 8);
        let ratio = b / f;
        assert!(ratio > 1.7 && ratio < 2.5, "bwd/fwd {ratio}");
    }

    #[test]
    fn cuda_graph_reduces_decode_launch_overhead() {
        let c = cm(ModelSpec::llama3_7b());
        let with = c.layer_decode_time(4, 512, 8, true);
        let without = c.layer_decode_time(4, 512, 8, false);
        assert!(without > with);
        // For a small sharded decode, launch overhead is a visible fraction.
        assert!(
            (without - with) / with > 0.2,
            "overhead fraction {}",
            (without - with) / with
        );
    }

    #[test]
    fn lm_head_much_more_expensive_than_scalar() {
        let actor = cm(ModelSpec::llama3_7b());
        let critic = cm(ModelSpec::llama3_7b().critic());
        let a = actor.head_time(65536, 1, false);
        let s = critic.head_time(65536, 1, false);
        assert!(a / s > 100.0, "LM head should dominate: {}", a / s);
    }

    #[test]
    fn tp_comm_grows_with_group_and_crossing_nodes() {
        let c = cm(ModelSpec::llama3_7b());
        let t2 = c.tp_allreduce_time(4096, 2, true);
        let t8 = c.tp_allreduce_time(4096, 8, true);
        let t8x = c.tp_allreduce_time(4096, 8, false);
        assert!(t8 > t2);
        assert!(t8x > t8);
    }

    #[test]
    fn zero3_allgather_is_expensive_inter_node() {
        let c = cm(ModelSpec::llama3_7b());
        // Gathering a full layer's weights across 16 ranks over the fabric
        // costs milliseconds — this is why ZeRO-3 decode crawls without
        // a hybrid engine.
        let t = c.zero3_allgather_time(16, false);
        assert!(t > 1e-3, "allgather {t}");
    }

    #[test]
    fn optimizer_step_scales_with_shard() {
        let c = cm(ModelSpec::llama3_7b());
        let small = c.optim_step_time(1_000_000);
        let large = c.optim_step_time(100_000_000);
        assert!(large > small * 50.0);
    }

    #[test]
    fn long_context_raises_attention_share() {
        let c = cm(ModelSpec::llama3_7b());
        // Same token count, longer attention span => more time.
        let short = c.layer_fwd_time(8192, 1024, 1, true);
        let long = c.layer_fwd_time(8192, 4096, 1, true);
        assert!(long > short * 1.05, "short {short} long {long}");
    }

    #[test]
    fn pp_p2p_cheaper_than_tp_allreduce_for_same_tokens() {
        // The core training trade-off: one boundary P2P moves ~1/tp the bytes
        // of a single TP all-reduce, and a layer needs 4 all-reduces.
        let c = cm(ModelSpec::llama3_70b());
        let p2p = c.pp_p2p_time(8192, 2, false);
        let ar = 4.0 * c.tp_allreduce_time(8192, 8, false);
        assert!(ar > 3.0 * p2p, "ar {ar} p2p {p2p}");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn fwd_time_monotone_in_tokens(tokens in 64u64..1_000_000, kv in 64u64..4096) {
                let c = cm(ModelSpec::llama3_7b());
                let t1 = c.layer_fwd_time(tokens, kv, 2, true);
                let t2 = c.layer_fwd_time(tokens * 2, kv, 2, true);
                prop_assert!(t2 > t1);
            }

            #[test]
            fn fwd_time_decreases_with_tp(tokens in 1024u64..1_000_000) {
                let c = cm(ModelSpec::llama3_7b());
                let t1 = c.layer_fwd_time(tokens, 512, 1, true);
                let t8 = c.layer_fwd_time(tokens, 512, 8, true);
                prop_assert!(t8 < t1);
            }

            #[test]
            fn decode_time_monotone_in_context(batch in 1u64..256, past in 128u64..4096) {
                let c = cm(ModelSpec::llama3_7b());
                let short = c.layer_decode_time(batch, past, 4, true);
                let long = c.layer_decode_time(batch, past * 2, 4, true);
                prop_assert!(long >= short);
            }

            #[test]
            fn bwd_always_costs_more_than_fwd(tokens in 256u64..500_000, tp_pow in 0u32..4) {
                let c = cm(ModelSpec::llama3_34b());
                let tp = 1u32 << tp_pow;
                prop_assert!(c.layer_bwd_time(tokens, 512, tp) > c.layer_fwd_time(tokens, 512, tp, true));
            }

            #[test]
            fn all_costs_positive_and_finite(tokens in 1u64..100_000, tp_pow in 0u32..4) {
                let c = cm(ModelSpec::llama3_7b());
                let tp = 1u32 << tp_pow;
                for v in [
                    c.layer_fwd_time(tokens, 256, tp, true),
                    c.layer_bwd_time(tokens, 256, tp),
                    c.layer_decode_time(tokens.min(512), 256, tp, false),
                    c.embed_time(tokens, tp),
                    c.head_time(tokens, tp, true),
                    c.optim_step_time(tokens),
                ] {
                    prop_assert!(v.is_finite() && v > 0.0);
                }
            }
        }
    }
}
