//! LLM model substrate for `real-rs`.
//!
//! This crate models everything ReaL needs to know about the transformer
//! models it trains:
//!
//! - [`spec`] — architecture descriptions with the exact LLaMA-3 presets from
//!   Table 1 of the paper (7B/13B/34B/70B, actor and critic variants) and
//!   parameter counting that reproduces the table's numbers to the digit,
//! - [`parallel`] — 3D parallelization strategies `(dp, tp, pp)` plus the
//!   micro-batch count, their enumeration for a given GPU budget, and rank
//!   mapping onto device meshes (TP fastest, then DP, then PP — Megatron's
//!   order),
//! - [`cost`] — the analytic per-layer cost model (roofline GEMMs, attention,
//!   KV-cache IO, vocabulary head, kernel-launch overhead, TP/PP/DP
//!   communication) that plays the role of the paper's profiled hardware,
//! - [`memory`] — static (parameters/gradients/optimizer) and active
//!   (activations/KV-cache/logits) memory accounting used for the MaxMem
//!   estimate and OOM pruning,
//! - [`specdec`] — draft/verify speculative-decode pricing (acceptance
//!   curves, round times, the spec-vs-plain per-token comparison) built on
//!   the [`cost`] primitives.
//!
//! # Examples
//!
//! ```
//! use real_model::{ModelSpec, ParallelStrategy};
//! let m = ModelSpec::llama3_7b();
//! assert_eq!(m.param_count(), 8_030_261_248);
//! let s = ParallelStrategy::new(4, 2, 1, 4).unwrap();
//! assert_eq!(s.world_size(), 8);
//! ```

pub mod cost;
pub mod memory;
pub mod parallel;
pub mod spec;
pub mod specdec;

pub use cost::CostModel;
pub use memory::MemoryModel;
pub use parallel::ParallelStrategy;
pub use spec::ModelSpec;
pub use specdec::{AcceptanceCurve, SpecDecodeConfig};
