//! Transformer architecture specifications and parameter counting.
//!
//! The presets reproduce Table 1 of the paper exactly; the parameter-count
//! formulas are unit-tested against the table's `TotalParamCount` and
//! `ParamCount w./o. Output Embedding` columns.

use serde::{Deserialize, Serialize};

/// What the model's output head produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeadKind {
    /// A language-model head projecting to the vocabulary (actor, reference).
    LmHead,
    /// A scalar value head (critic, reward).
    ScalarHead,
}

/// A GPT-like transformer architecture (LLaMA-3 family).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Human-readable identifier, e.g. `"llama3-7b"`.
    pub name: String,
    /// Hidden size.
    pub hidden: u64,
    /// MLP intermediate size.
    pub intermediate: u64,
    /// Number of transformer layers.
    pub n_layers: u64,
    /// Number of attention heads.
    pub n_heads: u64,
    /// Number of key/value heads (grouped-query attention).
    pub n_kv_heads: u64,
    /// Vocabulary size.
    pub vocab: u64,
    /// Maximum sequence length.
    pub max_pos: u64,
    /// Output head kind: LM head for actor/reference, scalar for
    /// critic/reward.
    pub head: HeadKind,
}

impl ModelSpec {
    fn llama3(
        name: &str,
        hidden: u64,
        intermediate: u64,
        n_layers: u64,
        n_heads: u64,
        n_kv_heads: u64,
    ) -> Self {
        Self {
            name: name.to_string(),
            hidden,
            intermediate,
            n_layers,
            n_heads,
            n_kv_heads,
            vocab: 128_256,
            max_pos: 8192,
            head: HeadKind::LmHead,
        }
    }

    /// LLaMA-3 1B (draft-sized; not in Table 1 — used as the small draft
    /// model for speculative decoding).
    pub fn llama3_1b() -> Self {
        Self::llama3("llama3-1b", 2048, 8192, 16, 32, 8)
    }

    /// LLaMA-3 7B (Table 1, column "7B").
    pub fn llama3_7b() -> Self {
        Self::llama3("llama3-7b", 4096, 14336, 32, 32, 8)
    }

    /// LLaMA-3 13B (Table 1, column "13B").
    pub fn llama3_13b() -> Self {
        Self::llama3("llama3-13b", 5120, 13824, 40, 40, 40)
    }

    /// LLaMA-3 34B (Table 1, column "34B").
    pub fn llama3_34b() -> Self {
        Self::llama3("llama3-34b", 8192, 22016, 48, 64, 8)
    }

    /// LLaMA-3 70B (Table 1, column "70B").
    pub fn llama3_70b() -> Self {
        Self::llama3("llama3-70b", 8192, 28672, 80, 64, 8)
    }

    /// Looks a preset up by its short identifier (`"1b"`, `"7b"`, `"13b"`,
    /// `"34b"`, `"70b"`).
    pub fn by_size(size: &str) -> Option<Self> {
        match size.to_ascii_lowercase().as_str() {
            "1b" => Some(Self::llama3_1b()),
            "7b" => Some(Self::llama3_7b()),
            "13b" => Some(Self::llama3_13b()),
            "34b" => Some(Self::llama3_34b()),
            "70b" => Some(Self::llama3_70b()),
            _ => None,
        }
    }

    /// The critic/reward variant of this architecture: identical trunk but a
    /// scalar output head (the paper notes critics have output dimension 1).
    pub fn critic(&self) -> Self {
        let mut c = self.clone();
        c.name = format!("{}-critic", self.name);
        c.head = HeadKind::ScalarHead;
        c
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> u64 {
        self.hidden / self.n_heads
    }

    /// Key/value projection width (grouped-query attention).
    pub fn kv_dim(&self) -> u64 {
        self.head_dim() * self.n_kv_heads
    }

    /// Parameters in one transformer layer: Q/O projections, K/V projections
    /// (GQA-sized), gate/up/down MLP matrices, and two RMSNorm vectors.
    pub fn layer_params(&self) -> u64 {
        let attn = 2 * self.hidden * self.hidden + 2 * self.hidden * self.kv_dim();
        let mlp = 3 * self.hidden * self.intermediate;
        let norms = 2 * self.hidden;
        attn + mlp + norms
    }

    /// Parameters in the input embedding.
    pub fn embed_params(&self) -> u64 {
        self.vocab * self.hidden
    }

    /// Parameters in the output head (vocab projection or scalar head).
    pub fn head_params(&self) -> u64 {
        match self.head {
            HeadKind::LmHead => self.vocab * self.hidden,
            HeadKind::ScalarHead => self.hidden,
        }
    }

    /// Total parameter count, matching Table 1's `TotalParamCount` for
    /// LM-head presets.
    pub fn param_count(&self) -> u64 {
        self.n_layers * self.layer_params() + self.embed_params() + self.hidden + self.head_params()
    }

    /// Parameter count without the output embedding, matching Table 1's
    /// `ParamCount w./o. Output Embedding`. The paper uses this as the model
    /// identifier because critics have a 1-dimensional head.
    pub fn param_count_no_output_embed(&self) -> u64 {
        self.n_layers * self.layer_params() + self.embed_params() + self.hidden
    }

    /// Validates architecture invariants (divisibility of heads, non-zero
    /// sizes).
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.hidden == 0 || self.n_layers == 0 || self.n_heads == 0 || self.vocab == 0 {
            return Err("model dimensions must be non-zero".into());
        }
        if !self.hidden.is_multiple_of(self.n_heads) {
            return Err(format!(
                "hidden {} not divisible by n_heads {}",
                self.hidden, self.n_heads
            ));
        }
        if self.n_kv_heads == 0 || !self.n_heads.is_multiple_of(self.n_kv_heads) {
            return Err(format!(
                "n_heads {} not divisible by n_kv_heads {}",
                self.n_heads, self.n_kv_heads
            ));
        }
        Ok(())
    }

    /// Maximum tensor-parallel degree this architecture supports: TP shards
    /// attention by KV head groups and the MLP by columns, so it is bounded
    /// by the KV head count.
    pub fn max_tp(&self) -> u64 {
        self.n_kv_heads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1 of the paper, verbatim.
    const TABLE1: [(&str, u64, u64); 4] = [
        ("7b", 8_030_261_248, 7_504_924_672),
        ("13b", 14_001_525_760, 13_344_855_040),
        ("34b", 35_321_028_608, 34_270_355_456),
        ("70b", 70_553_706_496, 69_503_033_344),
    ];

    #[test]
    fn param_counts_match_table1_exactly() {
        for (size, total, no_embed) in TABLE1 {
            let m = ModelSpec::by_size(size).unwrap();
            assert_eq!(m.param_count(), total, "total for {size}");
            assert_eq!(
                m.param_count_no_output_embed(),
                no_embed,
                "no-embed for {size}"
            );
        }
    }

    #[test]
    fn critic_head_is_scalar() {
        let c = ModelSpec::llama3_7b().critic();
        assert_eq!(c.head, HeadKind::ScalarHead);
        assert_eq!(c.head_params(), c.hidden);
        // The paper identifies critics by the embedding-less count: a critic's
        // trunk matches the actor's.
        assert_eq!(
            c.param_count_no_output_embed(),
            ModelSpec::llama3_7b().param_count_no_output_embed()
        );
    }

    #[test]
    fn critic_total_smaller_than_actor() {
        let a = ModelSpec::llama3_70b();
        let c = a.critic();
        assert!(c.param_count() < a.param_count());
    }

    #[test]
    fn presets_validate() {
        for size in ["1b", "7b", "13b", "34b", "70b"] {
            ModelSpec::by_size(size).unwrap().validate().unwrap();
        }
    }

    #[test]
    fn draft_preset_is_small() {
        let d = ModelSpec::llama3_1b();
        assert!(d.param_count() < ModelSpec::llama3_7b().param_count() / 4);
        assert_eq!(d.max_tp(), 8);
    }

    #[test]
    fn by_size_unknown_is_none() {
        assert!(ModelSpec::by_size("3b").is_none());
        assert!(ModelSpec::by_size("").is_none());
    }

    #[test]
    fn by_size_is_case_insensitive() {
        assert_eq!(ModelSpec::by_size("70B").unwrap().name, "llama3-70b");
    }

    #[test]
    fn gqa_dimensions() {
        let m = ModelSpec::llama3_7b();
        assert_eq!(m.head_dim(), 128);
        assert_eq!(m.kv_dim(), 1024);
        assert_eq!(m.max_tp(), 8);
        // 13B uses MHA (kv == heads).
        let m13 = ModelSpec::llama3_13b();
        assert_eq!(m13.kv_dim(), m13.hidden);
        assert_eq!(m13.max_tp(), 40);
    }

    #[test]
    fn validate_rejects_bad_head_split() {
        let mut m = ModelSpec::llama3_7b();
        m.n_heads = 33;
        assert!(m.validate().is_err());
        let mut m = ModelSpec::llama3_7b();
        m.n_kv_heads = 7;
        assert!(m.validate().is_err());
        let mut m = ModelSpec::llama3_7b();
        m.n_kv_heads = 0;
        assert!(m.validate().is_err());
    }
}
