//! 3D parallelization strategies: `(dp, tp, pp)` degrees plus the number of
//! micro-batches (§2.2 and §4 of the paper).
//!
//! Rank mapping follows Megatron's convention: TP is the fastest-varying
//! dimension, then DP, then PP. Combined with the node-major rank order of
//! [`real_cluster::DeviceMesh`], this keeps TP groups on consecutive GPUs
//! (NVLink) whenever `tp` does not exceed the mesh's per-node width.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;

/// A parallelization strategy for one model function call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParallelStrategy {
    dp: u32,
    tp: u32,
    pp: u32,
    micro_batches: u32,
}

/// Error for invalid strategy shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidStrategy(pub String);

impl fmt::Display for InvalidStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid parallel strategy: {}", self.0)
    }
}

impl std::error::Error for InvalidStrategy {}

/// Coordinates of a rank inside a strategy grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coords {
    /// Data-parallel index.
    pub dp: u32,
    /// Tensor-parallel index.
    pub tp: u32,
    /// Pipeline-stage index.
    pub pp: u32,
}

impl ParallelStrategy {
    /// Creates a strategy with the given degrees and micro-batch count.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidStrategy`] if any degree or the micro-batch count is
    /// zero.
    pub fn new(dp: u32, tp: u32, pp: u32, micro_batches: u32) -> Result<Self, InvalidStrategy> {
        if dp == 0 || tp == 0 || pp == 0 {
            return Err(InvalidStrategy(format!(
                "degrees must be positive: ({dp},{tp},{pp})"
            )));
        }
        if micro_batches == 0 {
            return Err(InvalidStrategy("micro_batches must be positive".into()));
        }
        Ok(Self {
            dp,
            tp,
            pp,
            micro_batches,
        })
    }

    /// A single-GPU strategy with one micro-batch.
    pub fn single() -> Self {
        Self {
            dp: 1,
            tp: 1,
            pp: 1,
            micro_batches: 1,
        }
    }

    /// Data-parallel degree.
    pub fn dp(&self) -> u32 {
        self.dp
    }

    /// Tensor-parallel degree.
    pub fn tp(&self) -> u32 {
        self.tp
    }

    /// Pipeline-parallel degree.
    pub fn pp(&self) -> u32 {
        self.pp
    }

    /// Number of micro-batches data is split into.
    pub fn micro_batches(&self) -> u32 {
        self.micro_batches
    }

    /// Returns a copy with a different micro-batch count.
    pub fn with_micro_batches(mut self, micro_batches: u32) -> Self {
        assert!(micro_batches > 0, "micro_batches must be positive");
        self.micro_batches = micro_batches;
        self
    }

    /// Total GPUs the strategy occupies.
    pub fn world_size(&self) -> u32 {
        self.dp * self.tp * self.pp
    }

    /// Megatron rank mapping: TP fastest, then DP, then PP.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= world_size`.
    pub fn coords(&self, rank: u32) -> Coords {
        assert!(
            rank < self.world_size(),
            "rank {rank} >= world {}",
            self.world_size()
        );
        Coords {
            tp: rank % self.tp,
            dp: (rank / self.tp) % self.dp,
            pp: rank / (self.tp * self.dp),
        }
    }

    /// Inverse of [`Self::coords`].
    ///
    /// # Panics
    ///
    /// Panics if any coordinate exceeds its degree.
    pub fn rank_of(&self, c: Coords) -> u32 {
        assert!(
            c.dp < self.dp && c.tp < self.tp && c.pp < self.pp,
            "coords out of grid"
        );
        c.pp * (self.tp * self.dp) + c.dp * self.tp + c.tp
    }

    /// Splits `n_layers` transformer layers into `pp` contiguous stages, as
    /// evenly as possible (earlier stages take the remainder).
    ///
    /// # Panics
    ///
    /// Panics if `n_layers < pp`.
    pub fn stage_layers(&self, n_layers: u64) -> Vec<Range<u64>> {
        let pp = u64::from(self.pp);
        assert!(
            n_layers >= pp,
            "cannot split {n_layers} layers into {pp} stages"
        );
        let base = n_layers / pp;
        let extra = n_layers % pp;
        let mut out = Vec::with_capacity(self.pp as usize);
        let mut start = 0;
        for stage in 0..pp {
            let len = base + u64::from(stage < extra);
            out.push(start..start + len);
            start += len;
        }
        out
    }

    /// Layers held by one pipeline stage (the size of the widest stage).
    pub fn max_stage_layers(&self, n_layers: u64) -> u64 {
        n_layers / u64::from(self.pp) + u64::from(!n_layers.is_multiple_of(u64::from(self.pp)))
    }

    /// Enumerates all `(dp, tp, pp)` factorizations of `n_gpus` subject to
    /// `tp <= max_tp` and `pp <= max_pp`, each paired with every micro-batch
    /// count from `mbs_options`.
    ///
    /// `max_tp` should be `min(model.max_tp(), gpus_per_node)` — the paper
    /// prunes TP degrees exceeding the node size (§8.2); `max_pp` is bounded
    /// by the layer count.
    pub fn enumerate(n_gpus: u32, max_tp: u32, max_pp: u32, mbs_options: &[u32]) -> Vec<Self> {
        let mut out = Vec::new();
        for tp in divisors(n_gpus) {
            if tp > max_tp {
                continue;
            }
            let rest = n_gpus / tp;
            for pp in divisors(rest) {
                if pp > max_pp {
                    continue;
                }
                let dp = rest / pp;
                for &mbs in mbs_options {
                    if mbs == 0 {
                        continue;
                    }
                    out.push(Self {
                        dp,
                        tp,
                        pp,
                        micro_batches: mbs,
                    });
                }
            }
        }
        out
    }
}

impl fmt::Display for ParallelStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(dp={}, tp={}, pp={}, mbs={})",
            self.dp, self.tp, self.pp, self.micro_batches
        )
    }
}

/// All divisors of `n` in increasing order.
fn divisors(n: u32) -> Vec<u32> {
    let mut out = Vec::new();
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            out.push(d);
            if d != n / d {
                out.push(n / d);
            }
        }
        d += 1;
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructor_rejects_zeroes() {
        assert!(ParallelStrategy::new(0, 1, 1, 1).is_err());
        assert!(ParallelStrategy::new(1, 0, 1, 1).is_err());
        assert!(ParallelStrategy::new(1, 1, 0, 1).is_err());
        assert!(ParallelStrategy::new(1, 1, 1, 0).is_err());
    }

    #[test]
    fn world_size_is_product() {
        let s = ParallelStrategy::new(4, 2, 16, 2).unwrap();
        assert_eq!(s.world_size(), 128);
    }

    #[test]
    fn megatron_rank_order_tp_fastest() {
        let s = ParallelStrategy::new(2, 4, 2, 1).unwrap();
        // Rank 0..3 is the first TP group of dp=0, pp=0.
        for r in 0..4 {
            let c = s.coords(r);
            assert_eq!((c.dp, c.pp), (0, 0));
            assert_eq!(c.tp, r);
        }
        // Rank 4 starts dp=1.
        assert_eq!(
            s.coords(4),
            Coords {
                dp: 1,
                tp: 0,
                pp: 0
            }
        );
        // Rank 8 starts pp=1.
        assert_eq!(
            s.coords(8),
            Coords {
                dp: 0,
                tp: 0,
                pp: 1
            }
        );
    }

    #[test]
    fn coords_roundtrip() {
        let s = ParallelStrategy::new(3, 4, 5, 2).unwrap();
        for r in 0..s.world_size() {
            assert_eq!(s.rank_of(s.coords(r)), r);
        }
    }

    #[test]
    fn stage_layers_even_split() {
        let s = ParallelStrategy::new(1, 1, 4, 1).unwrap();
        let stages = s.stage_layers(80);
        assert_eq!(stages.len(), 4);
        assert!(stages.iter().all(|r| r.end - r.start == 20));
        assert_eq!(stages[0], 0..20);
        assert_eq!(stages[3], 60..80);
    }

    #[test]
    fn stage_layers_remainder_goes_early() {
        let s = ParallelStrategy::new(1, 1, 3, 1).unwrap();
        let stages = s.stage_layers(32);
        let lens: Vec<u64> = stages.iter().map(|r| r.end - r.start).collect();
        assert_eq!(lens, vec![11, 11, 10]);
        assert_eq!(s.max_stage_layers(32), 11);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn stage_layers_too_many_stages_panics() {
        ParallelStrategy::new(1, 1, 8, 1).unwrap().stage_layers(4);
    }

    #[test]
    fn enumerate_respects_bounds() {
        let opts = ParallelStrategy::enumerate(8, 4, 2, &[1, 2]);
        assert!(!opts.is_empty());
        for s in &opts {
            assert_eq!(s.world_size(), 8);
            assert!(s.tp() <= 4);
            assert!(s.pp() <= 2);
            assert!([1, 2].contains(&s.micro_batches()));
        }
        // (dp,tp,pp) for 8 with tp<=4, pp<=2:
        // tp=1: pp=1 dp=8; pp=2 dp=4
        // tp=2: pp=1 dp=4; pp=2 dp=2
        // tp=4: pp=1 dp=2; pp=2 dp=1
        // = 6 shapes x 2 mbs = 12.
        assert_eq!(opts.len(), 12);
    }

    #[test]
    fn enumerate_empty_when_overconstrained() {
        // 7 is prime: only tp in {1,7}; with max_tp=2 and max_pp=1 only
        // (7,1,1) remains.
        let opts = ParallelStrategy::enumerate(7, 2, 1, &[1]);
        assert_eq!(opts.len(), 1);
        assert_eq!(opts[0].dp(), 7);
    }

    #[test]
    fn divisors_of_12() {
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
    }

    #[test]
    fn display_format() {
        let s = ParallelStrategy::new(2, 4, 8, 16).unwrap();
        assert_eq!(s.to_string(), "(dp=2, tp=4, pp=8, mbs=16)");
    }

    proptest! {
        #[test]
        fn enumerated_strategies_fill_world(n_pow in 0u32..8, max_tp in 1u32..9, max_pp in 1u32..9) {
            let n = 1u32 << n_pow;
            for s in ParallelStrategy::enumerate(n, max_tp, max_pp, &[1]) {
                prop_assert_eq!(s.world_size(), n);
            }
        }

        #[test]
        fn stage_layers_partition(n_layers in 1u64..200, pp in 1u32..16) {
            prop_assume!(n_layers >= u64::from(pp));
            let s = ParallelStrategy::new(1, 1, pp, 1).unwrap();
            let stages = s.stage_layers(n_layers);
            prop_assert_eq!(stages.len(), pp as usize);
            // Contiguous, disjoint, and covering [0, n_layers).
            let mut cursor = 0;
            for r in &stages {
                prop_assert_eq!(r.start, cursor);
                prop_assert!(r.end > r.start);
                cursor = r.end;
            }
            prop_assert_eq!(cursor, n_layers);
            // Balanced within one layer.
            let lens: Vec<u64> = stages.iter().map(|r| r.end - r.start).collect();
            let min = *lens.iter().min().unwrap();
            let max = *lens.iter().max().unwrap();
            prop_assert!(max - min <= 1);
        }
    }
}
