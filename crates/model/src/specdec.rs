//! Draft/verify speculative-decode pricing.
//!
//! Speculative decoding replaces `k` sequential target-model decode steps
//! with one *round*: a small draft model decodes `k` tokens autoregressively,
//! then the target scores all `k` drafted tokens (plus one bonus position) in
//! a single verification forward. Because plain decode is bound by streaming
//! the weight shard through HBM ([`CostModel::layer_verify_time`] amortizes
//! that stream over every verified position), a round that accepts several
//! draft tokens emits them for roughly the price of one target step.
//!
//! The functions here compose the per-layer primitives of [`crate::cost`]
//! into full-model round prices. They are the single source of truth for
//! "is speculation profitable on this call?": the estimator, the search, and
//! the runtime master all call [`spec_decode_step_time`] with the same
//! arguments, so the three layers always agree on the spec-vs-plain
//! decision.
//!
//! Guarantees (property-tested):
//! - acceptance 0 ⇒ the per-token price equals plain decode exactly,
//! - the per-token price is monotone non-increasing in the acceptance rate,
//! - the per-token price never drops below the verify forward's floor
//!   (`verify / (k+1)` — one forward cannot emit more than `k+1` tokens).

use crate::cost::CostModel;
use crate::spec::ModelSpec;
use serde::{Deserialize, Serialize};

/// Per-position acceptance model for a (draft, target, task) pairing.
///
/// Position `i` (0-based) is the probability that the `i+1`-th drafted token
/// is accepted *given* all earlier draft tokens were accepted. A round's
/// expected emitted tokens (including the bonus token sampled from the
/// verify distribution) is [`AcceptanceCurve::expected_accepted`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AcceptanceCurve {
    /// One rate for every draft position.
    Constant(f64),
    /// Per-position rates; positions beyond the last entry reuse it.
    PerPosition(Vec<f64>),
}

impl AcceptanceCurve {
    /// The conditional acceptance rate at 0-based draft position `i`.
    pub fn rate_at(&self, i: u32) -> f64 {
        match self {
            AcceptanceCurve::Constant(a) => a.clamp(0.0, 1.0),
            AcceptanceCurve::PerPosition(v) => v
                .get(i as usize)
                .or_else(|| v.last())
                .copied()
                .unwrap_or(0.0)
                .clamp(0.0, 1.0),
        }
    }

    /// Expected tokens emitted per round with speculation length `k`:
    /// `1 + Σ_{i=1..k} Π_{j<i} rate_at(j)` — the `1` is the bonus token the
    /// verify forward always yields. Lies in `[1, k+1]`.
    pub fn expected_accepted(&self, k: u32) -> f64 {
        let mut expected = 1.0;
        let mut survive = 1.0;
        for i in 0..k {
            survive *= self.rate_at(i);
            expected += survive;
        }
        expected
    }

    /// Validates all rates lie in `[0, 1]` and per-position curves are
    /// non-empty.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let check = |a: f64| -> Result<(), String> {
            if !(0.0..=1.0).contains(&a) {
                return Err(format!("acceptance rate {a} outside [0, 1]"));
            }
            Ok(())
        };
        match self {
            AcceptanceCurve::Constant(a) => check(*a),
            AcceptanceCurve::PerPosition(v) => {
                if v.is_empty() {
                    return Err("per-position acceptance curve is empty".into());
                }
                v.iter().try_for_each(|&a| check(a))
            }
        }
    }

    /// A deterministic content hash (used by the estimator's memo keys).
    pub fn fingerprint(&self) -> u64 {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        fn mix(h: u64, w: u64) -> u64 {
            (h.rotate_left(5) ^ w).wrapping_mul(SEED)
        }
        match self {
            AcceptanceCurve::Constant(a) => mix(mix(SEED, 1), a.to_bits()),
            AcceptanceCurve::PerPosition(v) => {
                v.iter().fold(mix(SEED, 2), |h, a| mix(h, a.to_bits()))
            }
        }
    }
}

/// A speculative-decoding configuration: which draft model, how many tokens
/// it drafts per round, and the acceptance behaviour of the pairing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecDecodeConfig {
    /// The small draft model.
    pub draft_model: ModelSpec,
    /// Tokens drafted per round (`k`).
    pub speculation_len: u32,
    /// Acceptance-rate curve for this (draft, target, task) pairing.
    pub acceptance_curve: AcceptanceCurve,
}

impl SpecDecodeConfig {
    /// Expected tokens emitted per round.
    pub fn expected_tokens_per_round(&self) -> f64 {
        self.acceptance_curve
            .expected_accepted(self.speculation_len)
    }

    /// Validates the draft architecture, `k ≥ 1`, and the curve.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        self.draft_model.validate()?;
        if self.speculation_len == 0 {
            return Err("speculation_len must be ≥ 1".into());
        }
        self.acceptance_curve.validate()
    }

    /// A deterministic content hash over (draft architecture, `k`, curve) —
    /// the estimator's memo key component for a speculation choice.
    pub fn fingerprint(&self) -> u64 {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        let mut h = self.acceptance_curve.fingerprint();
        for b in self.draft_model.name.bytes() {
            h = (h.rotate_left(5) ^ u64::from(b)).wrapping_mul(SEED);
        }
        (h.rotate_left(5) ^ u64::from(self.speculation_len)).wrapping_mul(SEED)
    }
}

/// The decode working shape shared by every pricing call: per-replica batch,
/// current context length, and the kernel-launch regime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeShape {
    /// Sequences decoded together (per model replica, after DP splitting).
    pub batch: u64,
    /// Average context length during the priced window.
    pub past_len: u64,
    /// Whether decode kernels replay through CUDA graphs.
    pub cuda_graph: bool,
    /// Whether the TP group sits on one node (NVLink all-reduces).
    pub within_node: bool,
}

/// One full-model plain decode step: every layer's decode kernel plus its
/// two TP all-reduces, then the output head.
pub fn plain_step_time(m: &CostModel, shape: &DecodeShape, tp: u32) -> f64 {
    let layer = m.layer_decode_time(shape.batch, shape.past_len, tp, shape.cuda_graph)
        + 2.0 * m.tp_allreduce_time(shape.batch, tp, shape.within_node);
    m.model().n_layers as f64 * layer + m.head_time(shape.batch, tp, false)
}

/// One full-model verification forward scoring `new_tokens` positions per
/// sequence (the `k` drafted tokens plus the bonus position).
pub fn verify_fwd_time(m: &CostModel, shape: &DecodeShape, tp: u32, new_tokens: u64) -> f64 {
    let tokens = shape.batch * new_tokens.max(1);
    let layer = m.layer_verify_time(
        shape.batch,
        new_tokens,
        shape.past_len,
        tp,
        shape.cuda_graph,
    ) + 2.0 * m.tp_allreduce_time(tokens, tp, shape.within_node);
    m.model().n_layers as f64 * layer + m.head_time(tokens, tp, false)
}

/// One draft/verify round: the draft decodes `k` tokens sequentially, then
/// the target verifies `k + 1` positions in one forward.
pub fn spec_round_time(
    target: &CostModel,
    draft: &CostModel,
    cfg: &SpecDecodeConfig,
    shape: &DecodeShape,
    tp_target: u32,
    tp_draft: u32,
) -> f64 {
    let k = cfg.speculation_len;
    let draft_step = plain_step_time(draft, shape, tp_draft);
    f64::from(k) * draft_step + verify_fwd_time(target, shape, tp_target, u64::from(k) + 1)
}

/// The speculative per-token decode price: `min(plain, round / E[tokens])`.
///
/// The `min` models the runtime's fallback — a call where the round price
/// divided by the expected accepted tokens is worse than plain decode simply
/// runs plain decode, so speculation can never make a plan slower. At
/// acceptance 0 the expected tokens per round is exactly 1 and the round
/// (draft work plus a verify that costs at least one plain step) is strictly
/// more expensive, so this reduces to `plain_step_time` exactly.
pub fn spec_decode_step_time(
    target: &CostModel,
    draft: &CostModel,
    cfg: &SpecDecodeConfig,
    shape: &DecodeShape,
    tp_target: u32,
    tp_draft: u32,
) -> f64 {
    let plain = plain_step_time(target, shape, tp_target);
    let round = spec_round_time(target, draft, cfg, shape, tp_target, tp_draft);
    plain.min(round / cfg.expected_tokens_per_round())
}

#[cfg(test)]
mod tests {
    use super::*;
    use real_cluster::ClusterSpec;

    fn pair(target: ModelSpec, draft: ModelSpec) -> (CostModel, CostModel) {
        let cluster = ClusterSpec::h100(2);
        (
            CostModel::new(cluster.clone(), target),
            CostModel::new(cluster, draft),
        )
    }

    fn cfg(alpha: f64, k: u32) -> SpecDecodeConfig {
        SpecDecodeConfig {
            draft_model: ModelSpec::llama3_1b(),
            speculation_len: k,
            acceptance_curve: AcceptanceCurve::Constant(alpha),
        }
    }

    const SHAPE: DecodeShape = DecodeShape {
        batch: 8,
        past_len: 1024,
        cuda_graph: true,
        within_node: true,
    };

    #[test]
    fn expected_accepted_bounds() {
        for k in [1u32, 4, 8] {
            assert_eq!(AcceptanceCurve::Constant(0.0).expected_accepted(k), 1.0);
            let full = AcceptanceCurve::Constant(1.0).expected_accepted(k);
            assert!((full - f64::from(k + 1)).abs() < 1e-12);
        }
        // Geometric series for constant α.
        let e = AcceptanceCurve::Constant(0.5).expected_accepted(3);
        assert!((e - (1.0 + 0.5 + 0.25 + 0.125)).abs() < 1e-12);
    }

    #[test]
    fn per_position_curve_extends_last_rate() {
        let c = AcceptanceCurve::PerPosition(vec![0.9, 0.5]);
        assert_eq!(c.rate_at(0), 0.9);
        assert_eq!(c.rate_at(1), 0.5);
        assert_eq!(c.rate_at(7), 0.5);
    }

    #[test]
    fn acceptance_zero_reduces_to_plain_decode() {
        let (target, draft) = pair(ModelSpec::llama3_70b(), ModelSpec::llama3_7b());
        let plain = plain_step_time(&target, &SHAPE, 8);
        let spec = spec_decode_step_time(&target, &draft, &cfg(0.0, 5), &SHAPE, 8, 4);
        assert!((spec - plain).abs() < 1e-9, "spec {spec} plain {plain}");
    }

    #[test]
    fn verify_amortizes_but_never_undercuts_one_step() {
        let (target, _) = pair(ModelSpec::llama3_70b(), ModelSpec::llama3_7b());
        let one = verify_fwd_time(&target, &SHAPE, 8, 1);
        let six = verify_fwd_time(&target, &SHAPE, 8, 6);
        assert!(six >= one);
        assert!(six < 6.0 * one, "verify must amortize: {six} vs {one}");
        // new_tokens = 1 is exactly a plain step.
        assert_eq!(one, plain_step_time(&target, &SHAPE, 8));
    }

    #[test]
    fn high_acceptance_beats_plain_decode_for_7b_draft_on_70b() {
        let (target, draft) = pair(ModelSpec::llama3_70b(), ModelSpec::llama3_7b());
        let plain = plain_step_time(&target, &SHAPE, 8);
        let spec = spec_decode_step_time(&target, &draft, &cfg(0.9, 5), &SHAPE, 8, 4);
        assert!(
            spec < plain / 1.5,
            "α=0.9 k=5 should give ≥1.5× decode speedup: {} vs {}",
            spec,
            plain
        );
    }

    #[test]
    fn validate_catches_bad_configs() {
        assert!(cfg(0.5, 0).validate().is_err());
        assert!(cfg(1.5, 4).validate().is_err());
        assert!(AcceptanceCurve::PerPosition(vec![]).validate().is_err());
        assert!(cfg(0.8, 4).validate().is_ok());
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        assert_ne!(cfg(0.8, 4).fingerprint(), cfg(0.8, 5).fingerprint());
        assert_ne!(cfg(0.8, 4).fingerprint(), cfg(0.7, 4).fingerprint());
        let mut other = cfg(0.8, 4);
        other.draft_model = ModelSpec::llama3_7b();
        assert_ne!(cfg(0.8, 4).fingerprint(), other.fingerprint());
        assert_eq!(cfg(0.8, 4).fingerprint(), cfg(0.8, 4).fingerprint());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn step_time_monotone_non_increasing_in_acceptance(
                lo in 0.0f64..1.0, hi in 0.0f64..1.0, k in 1u32..8
            ) {
                let (a, b) = if lo <= hi { (lo, hi) } else { (hi, lo) };
                let (target, draft) = pair(ModelSpec::llama3_70b(), ModelSpec::llama3_7b());
                let t_lo = spec_decode_step_time(&target, &draft, &cfg(a, k), &SHAPE, 8, 4);
                let t_hi = spec_decode_step_time(&target, &draft, &cfg(b, k), &SHAPE, 8, 4);
                prop_assert!(t_hi <= t_lo + 1e-15, "α {a}→{b}: {t_lo} → {t_hi}");
            }

            #[test]
            fn never_prices_below_verify_floor(
                alpha in 0.0f64..1.0, k in 1u32..8, batch in 1u64..64
            ) {
                let shape = DecodeShape { batch, ..SHAPE };
                let (target, draft) = pair(ModelSpec::llama3_70b(), ModelSpec::llama3_7b());
                let spec = spec_decode_step_time(&target, &draft, &cfg(alpha, k), &shape, 8, 4);
                let floor = verify_fwd_time(&target, &shape, 8, u64::from(k) + 1)
                    / f64::from(k + 1);
                prop_assert!(
                    spec >= floor * (1.0 - 1e-9),
                    "spec {spec} below verify floor {floor}"
                );
            }

            #[test]
            fn zero_acceptance_exactly_plain_for_any_pairing(
                k in 1u32..8, batch in 1u64..64, past in 64u64..4096
            ) {
                let shape = DecodeShape { batch, past_len: past, ..SHAPE };
                let (target, draft) = pair(ModelSpec::llama3_13b(), ModelSpec::llama3_1b());
                let plain = plain_step_time(&target, &shape, 4);
                let spec = spec_decode_step_time(&target, &draft, &cfg(0.0, k), &shape, 4, 1);
                prop_assert!((spec - plain).abs() < 1e-9);
            }
        }
    }
}
