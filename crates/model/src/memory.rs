//! GPU memory accounting (§5.1 "Maximum Memory Allocated").
//!
//! The paper splits runtime memory into *static* memory (gradients and
//! optimizer state, resident for the whole experiment) and *active* memory
//! (parameters being reallocated, KV cache, activations, logits) that is
//! only present while a function call runs. This module provides both, per
//! GPU, for a given [`ParallelStrategy`].

use crate::parallel::ParallelStrategy;
use crate::spec::{HeadKind, ModelSpec};
use serde::{Deserialize, Serialize};

/// Bytes per BF16 element.
const BF16: u64 = 2;
/// Static training bytes per parameter: BF16 weights (2) + fp32 gradient
/// buffer (4) + fp32 master copy, momentum, variance (12).
const TRAIN_BYTES_PER_PARAM: u64 = 18;
/// Static training bytes per parameter excluding the weights themselves
/// (used when weights are counted as reallocable active memory).
const OPTIM_BYTES_PER_PARAM: u64 = 16;
/// Effective bytes per logit element for the vocab head (BF16 logits plus
/// fused vocab-parallel cross-entropy workspace).
const LOGIT_BYTES: u64 = 3;

/// Memory model for one architecture.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryModel {
    model: ModelSpec,
}

impl MemoryModel {
    /// Creates a memory model for `model`.
    pub fn new(model: ModelSpec) -> Self {
        Self { model }
    }

    /// The architecture being accounted.
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// Parameters held by the most loaded GPU under `s`: the widest pipeline
    /// stage (stage 0 carries the input embedding; the last stage carries
    /// the output head and final norm), divided across the TP group.
    pub fn params_per_gpu(&self, s: &ParallelStrategy) -> u64 {
        let stages = s.stage_layers(self.model.n_layers);
        let mut worst = 0u64;
        for (i, range) in stages.iter().enumerate() {
            let mut p = (range.end - range.start) * self.model.layer_params();
            if i == 0 {
                p += self.model.embed_params();
            }
            if i == stages.len() - 1 {
                p += self.model.head_params() + self.model.hidden;
            }
            worst = worst.max(p);
        }
        worst.div_ceil(u64::from(s.tp()))
    }

    /// Static bytes per GPU for a *trainable* model under Megatron-style 3D
    /// parallelism: weights + gradients + Adam state, sharded over TP×PP but
    /// replicated across DP.
    pub fn static_train_bytes(&self, s: &ParallelStrategy) -> u64 {
        self.params_per_gpu(s) * TRAIN_BYTES_PER_PARAM
    }

    /// Static optimizer-only bytes per GPU (gradients + Adam state), for
    /// accounting schemes that treat the BF16 weights as reallocable active
    /// memory.
    pub fn static_optim_bytes(&self, s: &ParallelStrategy) -> u64 {
        self.params_per_gpu(s) * OPTIM_BYTES_PER_PARAM
    }

    /// Static optimizer-only bytes per GPU under Megatron's *distributed
    /// optimizer* (ZeRO-1): fp32 gradients stay replicated across DP, the
    /// Adam state (master weights, momentum, variance — 12 B/param) shards
    /// over the DP group. NeMo-Aligner's training backend runs this way.
    pub fn static_optim_bytes_dist(&self, s: &ParallelStrategy) -> u64 {
        let p = self.params_per_gpu(s);
        p * 4 + (p * 12).div_ceil(u64::from(s.dp()))
    }

    /// Static bytes per GPU for a *frozen* model (reference/reward): BF16
    /// weights only.
    pub fn static_frozen_bytes(&self, s: &ParallelStrategy) -> u64 {
        self.params_per_gpu(s) * BF16
    }

    /// Static bytes per GPU under ZeRO-3: everything sharded over the full
    /// `world` (DeepSpeed-Chat's symmetric strategy).
    pub fn zero3_static_train_bytes(&self, world: u32) -> u64 {
        (self.model.param_count() * TRAIN_BYTES_PER_PARAM).div_ceil(u64::from(world.max(1)))
    }

    /// BF16 weight bytes per GPU (the payload parameter reallocation moves).
    pub fn weight_bytes_per_gpu(&self, s: &ParallelStrategy) -> u64 {
        self.params_per_gpu(s) * BF16
    }

    /// Activation bytes per GPU while training one micro-batch of
    /// `tokens_mb` tokens (per DP replica). With 1F1B pipelining up to
    /// `min(mbs, pp)` micro-batches are in flight on the first stage.
    pub fn train_activation_bytes(&self, s: &ParallelStrategy, tokens_mb: u64) -> u64 {
        let per_layer = tokens_mb * (2 * self.model.hidden + self.model.intermediate) * BF16
            / u64::from(s.tp());
        let layers = s.max_stage_layers(self.model.n_layers);
        let in_flight = u64::from(s.micro_batches().min(s.pp()));
        per_layer * layers * in_flight
    }

    /// Logit-tensor bytes per GPU for an LM-head forward over `tokens_mb`
    /// tokens — the paper's §8 footnote: this is the 250 GB tensor that
    /// forces micro-batching. Scalar heads cost nothing here.
    pub fn logits_bytes(&self, s: &ParallelStrategy, tokens_mb: u64) -> u64 {
        match self.model.head {
            HeadKind::LmHead => tokens_mb * self.model.vocab * LOGIT_BYTES / u64::from(s.tp()),
            HeadKind::ScalarHead => tokens_mb * 4,
        }
    }

    /// KV-cache bytes per GPU for `batch_mb` sequences of up to `max_len`
    /// tokens (one in-flight generation micro-batch).
    pub fn kv_cache_bytes(&self, s: &ParallelStrategy, batch_mb: u64, max_len: u64) -> u64 {
        let layers = s.max_stage_layers(self.model.n_layers);
        batch_mb * max_len * self.model.kv_dim() * 2 * BF16 * layers / u64::from(s.tp())
    }

    /// Peak active bytes per GPU for a training step: weights + the deeper
    /// of (activations, logits spike at the head).
    pub fn train_active_bytes(&self, s: &ParallelStrategy, tokens_replica: u64) -> u64 {
        let tokens_mb = tokens_replica.div_ceil(u64::from(s.micro_batches()));
        self.weight_bytes_per_gpu(s)
            + self.train_activation_bytes(s, tokens_mb)
            + self.logits_bytes(s, tokens_mb)
    }

    /// Peak active bytes per GPU for an inference (single forward) call.
    pub fn infer_active_bytes(&self, s: &ParallelStrategy, tokens_replica: u64) -> u64 {
        let tokens_mb = tokens_replica.div_ceil(u64::from(s.micro_batches()));
        let per_layer = tokens_mb * (2 * self.model.hidden) * BF16 / u64::from(s.tp());
        self.weight_bytes_per_gpu(s) + per_layer + self.logits_bytes(s, tokens_mb)
    }

    /// Peak active bytes per GPU for a generation call over `batch_replica`
    /// prompts (per DP replica) generating up to `total_len` tokens of
    /// context. Decoding keeps `min(pp, mbs)` micro-batches in flight — just
    /// enough to fill the pipeline stages (Table 2's `pp=4, mbs=4` plans) —
    /// and processes the remaining groups sequentially, which is the §4
    /// out-of-memory knob: raising `mbs` beyond `pp` shrinks the resident
    /// KV cache.
    pub fn gen_active_bytes(
        &self,
        s: &ParallelStrategy,
        batch_replica: u64,
        total_len: u64,
    ) -> u64 {
        let batch_mb = batch_replica.div_ceil(u64::from(s.micro_batches()));
        let in_flight = batch_mb * u64::from(s.pp().min(s.micro_batches()));
        self.weight_bytes_per_gpu(s)
            + self.kv_cache_bytes(s, in_flight.min(batch_replica), total_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModelSpec;
    use real_util::units::GIB;

    fn strat(dp: u32, tp: u32, pp: u32, mbs: u32) -> ParallelStrategy {
        ParallelStrategy::new(dp, tp, pp, mbs).unwrap()
    }

    #[test]
    fn params_per_gpu_unsharded_is_total() {
        let mm = MemoryModel::new(ModelSpec::llama3_7b());
        assert_eq!(
            mm.params_per_gpu(&strat(1, 1, 1, 1)),
            mm.model().param_count()
        );
    }

    #[test]
    fn tp_shards_params_evenly() {
        let mm = MemoryModel::new(ModelSpec::llama3_7b());
        let full = mm.params_per_gpu(&strat(1, 1, 1, 1));
        let tp8 = mm.params_per_gpu(&strat(1, 8, 1, 1));
        assert!(tp8 >= full / 8);
        assert!(tp8 <= full / 8 + 1);
    }

    #[test]
    fn dp_does_not_shard_static_memory() {
        let mm = MemoryModel::new(ModelSpec::llama3_7b());
        assert_eq!(
            mm.static_train_bytes(&strat(1, 2, 2, 1)),
            mm.static_train_bytes(&strat(4, 2, 2, 1))
        );
    }

    #[test]
    fn zero3_shards_everything() {
        let mm = MemoryModel::new(ModelSpec::llama3_70b());
        let z16 = mm.zero3_static_train_bytes(16);
        let z128 = mm.zero3_static_train_bytes(128);
        assert!(z16 > 7 * z128);
        // 70B over 128 GPUs: ~10 GB/GPU.
        assert!(z128 > 8 * GIB && z128 < 12 * GIB, "{z128}");
    }

    #[test]
    fn seventy_b_oom_on_single_node_but_fits_on_32_shards() {
        let mm = MemoryModel::new(ModelSpec::llama3_70b());
        // tp=8 only: 70B*18/8 = 157 GB/GPU >> 80 GB.
        assert!(mm.static_train_bytes(&strat(1, 8, 1, 1)) > 80 * GIB);
        // tp=8, pp=4 (32-way model sharding): ~40 GB/GPU, fits.
        assert!(mm.static_train_bytes(&strat(1, 8, 4, 1)) < 80 * GIB);
    }

    #[test]
    fn distributed_optimizer_shards_adam_state_over_dp() {
        let mm = MemoryModel::new(ModelSpec::llama3_7b());
        let s1 = strat(1, 8, 1, 1);
        let s8 = strat(8, 1, 1, 1);
        // dp=1: identical to the replicated accounting.
        assert_eq!(mm.static_optim_bytes_dist(&s1), mm.static_optim_bytes(&s1));
        // dp=8: 4 + 12/8 = 5.5 B/param instead of 16 B/param.
        let dist = mm.static_optim_bytes_dist(&s8);
        let full = mm.static_optim_bytes(&s8);
        let ratio = dist as f64 / full as f64;
        assert!((ratio - 5.5 / 16.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn frozen_model_is_nine_times_cheaper_than_trained() {
        let mm = MemoryModel::new(ModelSpec::llama3_7b());
        let s = strat(1, 2, 2, 1);
        assert_eq!(mm.static_train_bytes(&s), 9 * mm.static_frozen_bytes(&s));
    }

    #[test]
    fn logits_spike_matches_paper_footnote_magnitude() {
        // The paper: vocab 128k x batch 512 x ctx 2048 x 2B ≈ 250 GB for the
        // full batch. One GPU's share with tp=1 and one micro-batch over the
        // whole batch would be catastrophic; check the total magnitude.
        let mm = MemoryModel::new(ModelSpec::llama3_7b());
        let s = strat(1, 1, 1, 1);
        let tokens = 512 * 2048;
        let bytes = mm.logits_bytes(&s, tokens);
        assert!(bytes > 300 * GIB, "logits {bytes}"); // 3B/logit x 134G logits
    }

    #[test]
    fn micro_batching_reduces_active_memory() {
        let mm = MemoryModel::new(ModelSpec::llama3_7b());
        let one = mm.train_active_bytes(&strat(1, 8, 1, 1), 1 << 20);
        let eight = mm.train_active_bytes(&strat(1, 8, 1, 8), 1 << 20);
        assert!(one > 4 * eight, "one {one} eight {eight}");
    }

    #[test]
    fn kv_cache_scales_with_batch_and_len() {
        let mm = MemoryModel::new(ModelSpec::llama3_7b());
        let s = strat(1, 1, 1, 1);
        let a = mm.kv_cache_bytes(&s, 64, 1024);
        let b = mm.kv_cache_bytes(&s, 128, 1024);
        let c = mm.kv_cache_bytes(&s, 64, 2048);
        assert_eq!(b, 2 * a);
        assert_eq!(c, 2 * a);
        // 7B GQA: 64 seq x 1024 tokens x 1024 kv_dim x 2(KV) x 2B x 32 layers = 8 GiB.
        assert_eq!(a, 8 * GIB);
    }

    #[test]
    fn gen_microbatching_beyond_pp_shrinks_kv() {
        let mm = MemoryModel::new(ModelSpec::llama3_7b());
        // pp=1: each extra micro-batch group halves the resident cache.
        let m1 = mm.gen_active_bytes(&strat(1, 8, 1, 1), 256, 2048);
        let m4 = mm.gen_active_bytes(&strat(1, 8, 1, 4), 256, 2048);
        assert!(m4 < m1, "m1 {m1} m4 {m4}");
        // pp=4 with mbs=4: all micro-batches in flight to fill the pipeline
        // — same cache as one big batch (Table 2's generation plan shape).
        let piped = mm.gen_active_bytes(&strat(1, 2, 4, 4), 256, 2048);
        let mono = mm.gen_active_bytes(&strat(1, 2, 4, 1), 256, 2048);
        assert_eq!(piped, mono);
        // DP also shrinks the per-GPU cache.
        let dp2 = mm.gen_active_bytes(&strat(2, 8, 1, 1), 128, 2048);
        assert!(dp2 < m1);
    }

    #[test]
    fn critic_logits_negligible() {
        let mm = MemoryModel::new(ModelSpec::llama3_7b().critic());
        let s = strat(1, 1, 1, 1);
        assert!(mm.logits_bytes(&s, 1 << 20) < GIB);
    }

    #[test]
    fn pipeline_edge_stages_carry_embeddings() {
        let mm = MemoryModel::new(ModelSpec::llama3_7b());
        // With pp = n_layers each stage holds one layer; the last stage adds
        // the LM head plus final norm and is the widest (the head and the
        // input embedding have equal width, the norm breaks the tie).
        let s = strat(1, 1, 32, 1);
        let expected = mm.model().layer_params() + mm.model().head_params() + mm.model().hidden;
        assert_eq!(mm.params_per_gpu(&s), expected);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn params_partition_across_tp_pp(tp_pow in 0u32..4, pp_pow in 0u32..3) {
                let mm = MemoryModel::new(ModelSpec::llama3_7b());
                let tp = 1u32 << tp_pow;
                let pp = 1u32 << pp_pow;
                let s = strat(1, tp, pp, 1);
                let per = mm.params_per_gpu(&s);
                // Shards cover the model with bounded imbalance: the worst
                // GPU holds at least the even share and at most the even
                // share plus one layer and an embedding.
                let even = mm.model().param_count() / u64::from(tp * pp);
                prop_assert!(per >= even / 2);
                let slack = (mm.model().layer_params() + mm.model().embed_params())
                    / u64::from(tp);
                prop_assert!(per <= even + slack + 1);
            }

            #[test]
            fn active_memory_decreases_with_mbs(tokens in 4096u64..2_000_000) {
                let mm = MemoryModel::new(ModelSpec::llama3_7b());
                let one = mm.train_active_bytes(&strat(1, 4, 1, 1), tokens);
                let many = mm.train_active_bytes(&strat(1, 4, 1, 16), tokens);
                prop_assert!(many < one);
            }

            #[test]
            fn static_memory_independent_of_mbs_and_dp(mbs_pow in 0u32..5, dp_pow in 0u32..4) {
                let mm = MemoryModel::new(ModelSpec::llama3_7b());
                let base = mm.static_train_bytes(&strat(1, 2, 2, 1));
                let s = strat(1 << dp_pow, 2, 2, 1 << mbs_pow);
                prop_assert_eq!(mm.static_train_bytes(&s), base);
            }

            #[test]
            fn gen_active_never_below_weights(batch in 1u64..512, len in 128u64..4096) {
                let mm = MemoryModel::new(ModelSpec::llama3_7b());
                let s = strat(1, 4, 2, 4);
                prop_assert!(mm.gen_active_bytes(&s, batch, len) >= mm.weight_bytes_per_gpu(&s));
            }
        }
    }
}
