//! Experiment settings matching the paper's §8 grid.

use real_core::prelude::*;

/// One experimental configuration.
#[derive(Debug, Clone)]
pub struct Setting {
    /// Display name, e.g. `"7B+7B/16GPUs"`.
    pub name: String,
    /// Nodes in the cluster (8 GPUs each).
    pub nodes: u32,
    /// Actor (and reference) architecture.
    pub actor: ModelSpec,
    /// Critic (and reward) architecture.
    pub critic: ModelSpec,
    /// Workload configuration.
    pub cfg: RlhfConfig,
}

impl Setting {
    /// Builds a setting.
    pub fn new(nodes: u32, actor: ModelSpec, batch: u64) -> Self {
        let critic = ModelSpec::llama3_7b().critic();
        Self {
            name: format!(
                "{}+7B/{}GPUs",
                actor.name.trim_start_matches("llama3-").to_uppercase(),
                nodes * 8
            ),
            nodes,
            actor,
            critic,
            cfg: RlhfConfig::instruct_gpt(batch),
        }
    }

    /// The cluster for this setting.
    pub fn cluster(&self) -> ClusterSpec {
        ClusterSpec::h100(self.nodes)
    }

    /// Context-scaled variant (constant token budget, Appendix A).
    pub fn with_context_scale(mut self, factor: u64) -> Self {
        self.cfg = self.cfg.with_context_scale(factor);
        self.name = format!("{}/ctx{}", self.name, self.cfg.context_len());
        self
    }

    /// Tokens in the global batch per iteration.
    pub fn tokens_per_iter(&self) -> u64 {
        self.cfg.batch_size * self.cfg.context_len()
    }
}

/// The paper's weak-scaling grid (§8.1): 16→128 GPUs with 7B→70B actors and
/// batch 512→4096, 7B critics throughout.
pub fn weak_scaling() -> Vec<Setting> {
    vec![
        Setting::new(2, ModelSpec::llama3_7b(), 512),
        Setting::new(4, ModelSpec::llama3_13b(), 1024),
        Setting::new(8, ModelSpec::llama3_34b(), 2048),
        Setting::new(16, ModelSpec::llama3_70b(), 4096),
    ]
}

/// A PPO experiment for a setting, with the harness defaults (full
/// profiling grid, aggressive pruning).
pub fn ppo_experiment(s: &Setting) -> Experiment {
    Experiment::ppo(s.cluster(), s.actor.clone(), s.critic.clone(), s.cfg).with_seed(17)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_scaling_matches_paper_grid() {
        let grid = weak_scaling();
        assert_eq!(grid.len(), 4);
        assert_eq!(grid[0].nodes * 8, 16);
        assert_eq!(grid[3].nodes * 8, 128);
        assert_eq!(grid[3].cfg.batch_size, 4096);
        assert_eq!(grid[0].name, "7B+7B/16GPUs");
        assert_eq!(grid[3].name, "70B+7B/128GPUs");
    }

    #[test]
    fn context_scaling_preserves_tokens() {
        let s = Setting::new(2, ModelSpec::llama3_7b(), 512);
        let long = s.clone().with_context_scale(4);
        assert_eq!(s.tokens_per_iter(), long.tokens_per_iter());
        assert_eq!(long.cfg.context_len(), 8192);
        assert!(long.name.contains("ctx8192"));
    }

    #[test]
    fn experiment_builds_for_every_setting() {
        for s in weak_scaling() {
            let exp = ppo_experiment(&s);
            assert_eq!(exp.graph().n_calls(), 6);
        }
    }
}
