//! Shared harness for the figure/table regeneration benches.
//!
//! Every experiment in the paper's §8 maps to a function in the `figures`
//! bench target; this library holds the common machinery: the weak-scaling
//! settings grid, a plan cache (searching a setting once and reusing the
//! plan across figures), runners, and JSON persistence under
//! `target/figures/` so EXPERIMENTS.md numbers are regenerable.

pub mod cache;
pub mod settings;

pub use cache::PlanCache;
pub use settings::{ppo_experiment, weak_scaling, Setting};

use std::fs;
use std::path::PathBuf;

/// Directory where figure data is persisted.
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/figures");
    fs::create_dir_all(&dir).expect("can create target/figures");
    dir
}

/// Persists a serializable value as pretty JSON under `target/figures/`.
pub fn save_json<T: serde::Serialize>(name: &str, value: &T) {
    let path = figures_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("figure data serializes");
    fs::write(&path, json).expect("can write figure data");
}

/// Formats a throughput cell, using `OOM` for failed configurations (the
/// paper's red crosses).
pub fn cell(result: Option<f64>) -> String {
    match result {
        Some(v) => format!("{v:.0}"),
        None => "OOM".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_dir_exists_after_call() {
        assert!(figures_dir().is_dir());
    }

    #[test]
    fn cell_formats_oom() {
        assert_eq!(cell(None), "OOM");
        assert_eq!(cell(Some(1234.56)), "1235");
    }

    #[test]
    fn save_json_round_trips() {
        save_json("selftest", &vec![1, 2, 3]);
        let s = std::fs::read_to_string(figures_dir().join("selftest.json")).unwrap();
        let v: Vec<i32> = serde_json::from_str(&s).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
