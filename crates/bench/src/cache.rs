//! A per-process plan cache: the searched/heuristic plans of a setting are
//! reused across figures (profiling statistics are likewise reusable
//! across experiments within a model family, §8.2).

use crate::settings::{ppo_experiment, Setting};
use real_core::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

/// Cached planning artifacts for one setting.
#[derive(Debug, Clone)]
pub struct PlannedSetting {
    /// The MCMC-searched plan.
    pub searched: ExecutionPlan,
    /// The symmetric REAL-Heuristic plan.
    pub heuristic: ExecutionPlan,
    /// Search statistics.
    pub search: SearchResult,
    /// Simulated profiling seconds.
    pub profiling_secs: f64,
}

/// Cache keyed by setting name.
#[derive(Debug, Default)]
pub struct PlanCache {
    entries: HashMap<String, PlannedSetting>,
    /// Search wall-clock budget per setting.
    pub search_budget: Duration,
    /// Search step budget per setting.
    pub search_steps: u64,
}

impl PlanCache {
    /// Creates a cache with the default per-setting search budget.
    pub fn new() -> Self {
        Self {
            entries: HashMap::new(),
            search_budget: Duration::from_secs(45),
            search_steps: 40_000,
        }
    }

    /// The search configuration the cache uses.
    pub fn mcmc_config(&self) -> McmcConfig {
        McmcConfig {
            max_steps: self.search_steps,
            time_limit: self.search_budget,
            ..McmcConfig::default()
        }
    }

    /// Plans (or returns the cached plans for) a setting.
    ///
    /// # Panics
    ///
    /// Panics if the search cannot find a feasible plan — every paper
    /// setting is feasible, so that indicates a harness bug.
    pub fn plan(&mut self, s: &Setting) -> &PlannedSetting {
        let cfg = self.mcmc_config();
        self.entries.entry(s.name.clone()).or_insert_with(|| {
            let exp = ppo_experiment(s);
            let chains = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8);
            let planned = exp
                .plan_auto_parallel(&cfg, chains)
                .unwrap_or_else(|e| panic!("no feasible plan for {}: {e}", s.name));
            let heuristic = exp.plan_heuristic();
            PlannedSetting {
                searched: planned.plan,
                heuristic,
                search: planned.search,
                profiling_secs: planned.profiling_secs,
            }
        })
    }

    /// Runs a plan under a setting's PPO experiment, returning the report
    /// (or `None` on OOM).
    pub fn run(
        &self,
        s: &Setting,
        plan: &ExecutionPlan,
        engine: EngineConfig,
        iterations: usize,
    ) -> Option<ExperimentReport> {
        let exp = ppo_experiment(s).with_engine_config(engine);
        exp.run(plan, iterations).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::Setting;
    use real_core::real_model::ModelSpec;

    #[test]
    fn cache_reuses_entries() {
        let mut cache = PlanCache::new();
        cache.search_steps = 400;
        cache.search_budget = Duration::from_secs(10);
        let s = Setting::new(1, ModelSpec::llama3_7b(), 64);
        let first = cache.plan(&s).searched.clone();
        let second = cache.plan(&s).searched.clone();
        assert_eq!(first, second);
        assert_eq!(cache.entries.len(), 1);
    }
}
