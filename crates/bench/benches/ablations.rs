//! Ablations of the design choices DESIGN.md calls out:
//!
//! - MCMC temperature β sweep (with the scale-free relative energy),
//! - greedy-only vs MCMC vs MCMC + coordinate-descent polish,
//! - decode-chunk granularity (a pure simulation knob — results must be
//!   invariant),
//! - kernel-jitter sensitivity of the runtime engine,
//! - mesh buddy-alignment (admitting unaligned node spans grows the space
//!   without improving the plans found).
//!
//! Run: `cargo bench -p real-bench --bench ablations`

use real_bench::{ppo_experiment, Setting};
use real_core::prelude::*;
use real_core::real_model::ModelSpec;
use real_core::real_util::Table;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| name.contains(a.as_str()));

    let ablations: Vec<(&str, fn())> = vec![
        ("beta_sweep", beta_sweep),
        ("search_stages", search_stages),
        ("decode_chunk_invariance", decode_chunk_invariance),
        ("jitter_sensitivity", jitter_sensitivity),
        ("limitations_gen_length_skew", generation_length_skew),
        ("whatif_fabric", whatif_fabric),
        ("extra_algorithms", extra_algorithms),
        ("fault_rates", fault_rates),
        ("replan_ablation", replan_ablation),
        ("tenant_packing", tenant_packing),
        ("serve_admission", serve_admission),
        ("async_overlap", async_overlap),
        // Note: the "search_throughput" argument also matches the gate
        // (substring match); pass "search_throughput_gate" to run only it.
        ("search_throughput", search_throughput),
        ("search_throughput_gate", search_throughput_gate),
        ("spec_decode", spec_decode),
        ("spec_decode_gate", spec_decode_gate),
    ];
    for (name, f) in ablations {
        if !want(name) {
            continue;
        }
        let t = Instant::now();
        println!("\n================== ablation: {name} ==================");
        f();
        println!("[{name} done in {:.1}s]", t.elapsed().as_secs_f64());
    }
}

fn setting() -> Setting {
    Setting::new(2, ModelSpec::llama3_7b(), 512)
}

fn beta_sweep() {
    let exp = ppo_experiment(&setting());
    let (est, _) = exp.prepare();
    let space = exp.search_space();
    let mut table = Table::new(vec!["beta", "best TimeCost (s)", "acceptance"]);
    for beta in [0.5, 2.0, 6.0, 12.0, 48.0] {
        let cfg = McmcConfig {
            beta,
            max_steps: 10_000,
            time_limit: Duration::from_secs(30),
            record_trace: false,
            seed: 5,
            memo: true,
        };
        let r = search(&est, &space, &cfg);
        table.row(vec![
            format!("{beta}"),
            format!("{:.2}", r.best_time_cost),
            format!("{:.0}%", r.acceptance_rate() * 100.0),
        ]);
    }
    println!("{table}\n(too cold wanders, too hot hill-climbs into local minima)");
}

fn search_stages() {
    let exp = ppo_experiment(&setting());
    let (est, _) = exp.prepare();
    let space = exp.search_space();
    let mut table = Table::new(vec!["stage", "TimeCost (s)", "feasible"]);

    let greedy = greedy_plan(&est, &space);
    table.row(vec![
        "greedy seed".into(),
        format!("{:.2}", est.time_cost(&greedy)),
        est.mem_ok(&greedy).to_string(),
    ]);

    // MCMC without the polish: emulate by cutting the time budget right at
    // the step budget so the polish loop cannot run.
    let chain_only = search(
        &est,
        &space,
        &McmcConfig {
            max_steps: u64::MAX,
            time_limit: Duration::from_secs(6),
            record_trace: false,
            seed: 5,
            ..McmcConfig::default()
        },
    );
    table.row(vec![
        "MCMC chain (6s)".into(),
        format!("{:.2}", chain_only.best_time_cost),
        chain_only.feasible.to_string(),
    ]);

    let full = search(
        &est,
        &space,
        &McmcConfig {
            max_steps: 10_000,
            time_limit: Duration::from_secs(30),
            record_trace: false,
            seed: 5,
            ..McmcConfig::default()
        },
    );
    table.row(vec![
        "MCMC + polish".into(),
        format!("{:.2}", full.best_time_cost),
        full.feasible.to_string(),
    ]);
    println!("{table}");
}

fn decode_chunk_invariance() {
    let s = setting();
    let exp = ppo_experiment(&s);
    let heuristic = exp.plan_heuristic();
    let mut table = Table::new(vec!["decode_chunk", "iteration (s)"]);
    let mut base: Option<f64> = None;
    for chunk in [8u64, 32, 128] {
        let cfg = EngineConfig {
            decode_chunk: chunk,
            jitter_sigma: 0.0,
            ..EngineConfig::default()
        };
        let exp = ppo_experiment(&s).with_engine_config(cfg);
        let t = exp.run(&heuristic, 2).expect("fits").run.iter_time;
        table.row(vec![chunk.to_string(), format!("{t:.2}")]);
        let b = *base.get_or_insert(t);
        assert!(
            (t - b).abs() / b < 0.05,
            "decode chunking must not change measured time: {t} vs {b}"
        );
    }
    println!("{table}\n(simulation granularity knob — duration-equivalent by construction)");
}

fn jitter_sensitivity() {
    let s = setting();
    let exp = ppo_experiment(&s);
    let heuristic = exp.plan_heuristic();
    let mut table = Table::new(vec!["jitter sigma", "iteration (s)"]);
    for sigma in [0.0, 0.02, 0.1] {
        let cfg = EngineConfig {
            jitter_sigma: sigma,
            ..EngineConfig::default()
        };
        let exp = ppo_experiment(&s).with_engine_config(cfg);
        let t = exp.run(&heuristic, 3).expect("fits").run.iter_time;
        table.row(vec![format!("{sigma}"), format!("{t:.2}")]);
    }
    println!("{table}\n(measurements are stable under realistic kernel-time noise)");
}

/// §7 limitation experiment: the estimator assumes predictable function
/// calls; skewed generation lengths degrade its accuracy. (Registered in
/// `main` via the `limitations` name.)
fn generation_length_skew() {
    let s = setting();
    let exp = ppo_experiment(&s);
    let (est, _) = exp.prepare();
    let heuristic = exp.plan_heuristic();
    let estimated = est.time_cost(&heuristic);
    let mut table = Table::new(vec![
        "gen-length CV",
        "measured iter (s)",
        "estimator rel err",
    ]);
    for cv in [0.0, 0.2, 0.5, 1.0] {
        let cfg = EngineConfig {
            gen_len_cv: cv,
            ..EngineConfig::default()
        };
        let exp = ppo_experiment(&s).with_engine_config(cfg);
        let measured = exp.run(&heuristic, 3).expect("fits").run.iter_time;
        let rel = ((estimated - measured) / measured).abs();
        table.row(vec![
            format!("{cv}"),
            format!("{measured:.1}"),
            format!("{:.0}%", rel * 100.0),
        ]);
    }
    println!("{table}\n(the paper's §7 limitation: generation length drifting during training\n invalidates the profiled cost estimates — the error grows with the drift)");
}

/// Hardware what-if: slow the inter-node fabric and watch the searched plan
/// adapt (an extension beyond the paper — the simulator makes the
/// counterfactual cheap). Registered in `main` as `whatif_fabric`.
fn whatif_fabric() {
    let mut table = Table::new(vec![
        "inter-node Tbps",
        "searched tok/s",
        "heuristic tok/s",
        "gain",
        "gen strategy",
    ]);
    for tbps in [0.8f64, 3.2, 12.8] {
        let mut cluster = ClusterSpec::h100(2);
        cluster.inter_node_bw = tbps * 1e12 / 8.0 / 8.0; // per-GPU share
        let actor = ModelSpec::llama3_7b();
        let exp = Experiment::ppo(
            cluster.clone(),
            actor.clone(),
            actor.critic(),
            RlhfConfig::instruct_gpt(512),
        )
        .with_seed(17);
        let cfg = McmcConfig {
            max_steps: 20_000,
            time_limit: Duration::from_secs(20),
            record_trace: false,
            ..McmcConfig::default()
        };
        let Ok(planned) = exp.plan_auto(&cfg) else {
            table.row(vec![
                format!("{tbps}"),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        };
        let heuristic = exp.plan_heuristic();
        let searched = exp.run(&planned.plan, 2).expect("fits").tokens_per_sec;
        let baseline = exp.run(&heuristic, 2).expect("fits").tokens_per_sec;
        let gen = planned
            .plan
            .assignment(exp.graph().find("actor_gen").unwrap());
        table.row(vec![
            format!("{tbps}"),
            format!("{searched:.0}"),
            format!("{baseline:.0}"),
            format!("{:+.0}%", (searched / baseline - 1.0) * 100.0),
            gen.strategy.to_string(),
        ]);
    }
    println!("{table}\n(searched plans adapt to the fabric; the heuristic cannot)");
}

/// Fault-injection ablation: sweep the fault rate of a random
/// [`FaultPlan`] over the same workload and watch throughput degrade
/// gracefully while the resilient master keeps every iteration complete.
/// Also reports how injected faults erode the §5 estimator's accuracy —
/// the estimator prices the fault-free plan, so its relative error is a
/// direct measure of the degradation. Registered in `main` as
/// `fault_rates`.
fn fault_rates() {
    let s = setting();
    let exp = ppo_experiment(&s);
    let (est, _) = exp.prepare();
    let heuristic = exp.plan_heuristic();
    let estimated = est.time_cost(&heuristic);
    let iters = 2usize;
    // Generous horizon so late-run faults still land inside the schedule.
    let horizon = estimated * iters as f64 * 1.5;
    let n_gpus = exp.cluster().total_gpus() as usize;
    let gpus_per_node = exp.cluster().gpus_per_node as usize;

    let mut table = Table::new(vec![
        "faults/min",
        "tokens/s",
        "retries",
        "recovered",
        "degraded",
        "lost GPU-s",
        "estimator rel err",
    ]);
    for rate in [0.0f64, 0.5, 1.0, 2.0, 4.0] {
        let plan = FaultPlan::random(23, n_gpus, gpus_per_node, horizon, rate);
        let cfg = EngineConfig {
            seed: 17,
            fault_plan: Some(plan),
            ..EngineConfig::default()
        };
        let exp = ppo_experiment(&s).with_engine_config(cfg);
        let report = exp.run(&heuristic, iters).expect("fits");
        let faults = &report.run.faults;
        let rel = ((estimated - report.run.iter_time) / report.run.iter_time).abs();
        table.row(vec![
            format!("{rate}"),
            format!("{:.0}", report.tokens_per_sec),
            faults.retries.to_string(),
            faults.requests_recovered.to_string(),
            faults.requests_degraded.to_string(),
            format!("{:.1}", faults.lost_gpu_seconds),
            format!("{:.0}%", rel * 100.0),
        ]);
    }
    println!(
        "{table}\n(throughput degrades gracefully with the fault rate; retries stay bounded\n and the fault-free estimator grows optimistic as faults eat into the run)"
    );
}

/// Elastic re-planning ablation: the same workload with one mid-run worker
/// crash of increasing downtime, retry-only vs. with a [`ReplanPolicy`].
/// Short outages never trip the dead-worker trigger (the wait stays under
/// `dead_after`), medium ones are arbitrated by the cost/benefit gate, and
/// a permanent loss forces a switch to a plan searched on the surviving
/// GPUs. Registered in `main` as `replan_ablation`.
fn replan_ablation() {
    let s = setting();
    let exp = ppo_experiment(&s);
    let heuristic = exp.plan_heuristic();
    let iters = 2usize;
    // Steady-state `tokens_per_sec` hides a one-off stall, so compare
    // effective throughput over the whole run's makespan.
    let effective =
        |r: &ExperimentReport| r.tokens_per_iter as f64 * iters as f64 / r.run.total_time;
    let mut table = Table::new(vec![
        "downtime (s)",
        "retry-only tok/s",
        "replan tok/s",
        "gain",
        "evaluated",
        "switched",
        "gate-rejected",
    ]);
    for downtime in [60.0f64, 600.0, 1.0e6] {
        // GPU 3 dies in the middle of the first generation and stays down
        // for `downtime` virtual seconds.
        let cfg = EngineConfig {
            seed: 17,
            fault_plan: Some(FaultPlan::new(23).crash(3, 12.0, downtime)),
            ..EngineConfig::default()
        };
        let retry = ppo_experiment(&s)
            .with_engine_config(cfg.clone())
            .run(&heuristic, iters)
            .expect("fits");
        let policy = ReplanPolicy::new().with_search_steps(1_000);
        let replanned = ppo_experiment(&s)
            .with_engine_config(cfg)
            .with_replan_policy(policy)
            .run(&heuristic, iters)
            .expect("fits");
        let stats = &replanned.run.replan;
        let (base, elastic) = (effective(&retry), effective(&replanned));
        table.row(vec![
            format!("{downtime}"),
            format!("{base:.0}"),
            format!("{elastic:.0}"),
            format!("{:+.0}%", (elastic / base - 1.0) * 100.0),
            stats.evaluations.to_string(),
            stats.switches.to_string(),
            stats.gate_rejections.to_string(),
        ]);
    }
    println!(
        "{table}\n(the trigger ignores short outages, the gate arbitrates medium ones, and a\n permanent worker loss flips the run onto a plan searched over the survivors)"
    );
}

/// Fig. 16 extended to the workflows beyond the paper's four: RAFT and
/// iterative DPO, searched vs the symmetric heuristic. Registered in `main`
/// as `extra_algorithms`.
fn extra_algorithms() {
    let cluster = ClusterSpec::h100(2);
    let actor = ModelSpec::llama3_7b();
    let reward = ModelSpec::llama3_7b().critic();
    let cfg = RlhfConfig {
        grpo_group: 4,
        ..RlhfConfig::instruct_gpt(128)
    };
    let experiments = vec![
        (
            "RAFT",
            Experiment::raft(cluster.clone(), actor.clone(), reward.clone(), cfg),
        ),
        (
            "iterative-DPO",
            Experiment::iterative_dpo(cluster.clone(), actor.clone(), reward.clone(), cfg),
        ),
    ];
    let mut table = Table::new(vec!["algorithm", "heuristic tok/s", "ReaL tok/s", "gain"]);
    for (name, exp) in experiments {
        let exp = exp.with_seed(47);
        println!("--- {name} dataflow DAG ---\n{}", to_ascii(exp.graph()));
        let mcmc = McmcConfig {
            max_steps: 15_000,
            time_limit: Duration::from_secs(20),
            record_trace: false,
            ..McmcConfig::default()
        };
        let Ok(planned) = exp.plan_auto(&mcmc) else {
            println!("{name}: no feasible plan");
            continue;
        };
        let heuristic = exp.plan_heuristic();
        let h = exp
            .run(&heuristic, 2)
            .map(|r| r.tokens_per_sec)
            .unwrap_or(f64::NAN);
        let r = exp
            .run(&planned.plan, 2)
            .map(|r| r.tokens_per_sec)
            .unwrap_or(f64::NAN);
        table.row(vec![
            name.to_string(),
            format!("{h:.0}"),
            format!("{r:.0}"),
            format!("{:+.0}%", (r / h - 1.0) * 100.0),
        ]);
    }
    println!("{table}");
}

/// Multi-tenant packing: the `real-sched` allocation search vs the naive
/// equal static split (GPUs divided evenly in admission order, plans
/// searched per tenant with the same budget). The objective both are
/// measured on is the priority-weighted makespan `Σᵢ pᵢ·totalᵢ` of the
/// joint run. Registered in `main` as `tenant_packing`.
fn tenant_packing() {
    use real_core::real_cluster::partition;
    use real_core::real_runtime::{run_multi, TenantRun};
    use real_core::Tenant;
    use real_sched::{SchedConfig, Scheduler};

    struct Mix {
        name: &'static str,
        nodes: u32,
        // (tenant, actor size, batch, priority)
        tenants: Vec<(&'static str, &'static str, u64, f64)>,
    }
    let mixes = vec![
        Mix {
            name: "7B+7B equal",
            nodes: 2,
            tenants: vec![("a", "7b", 64, 1.0), ("b", "7b", 64, 1.0)],
        },
        Mix {
            name: "7B+34B",
            nodes: 2,
            tenants: vec![("big", "34b", 64, 1.0), ("small", "7b", 32, 1.0)],
        },
        Mix {
            name: "13B+7B+7B mixed-priority",
            nodes: 4,
            tenants: vec![
                ("prod", "13b", 64, 2.0),
                ("dev", "7b", 32, 1.0),
                ("nightly", "7b", 32, 0.5),
            ],
        },
        Mix {
            name: "4x7B mixed-priority",
            nodes: 2,
            tenants: vec![
                ("p1", "7b", 64, 2.0),
                ("p2", "7b", 32, 1.0),
                ("p3", "7b", 32, 1.0),
                ("p4", "7b", 32, 0.5),
            ],
        },
    ];

    // Naive equal split: tenant `i` of `n` gets the i-th consecutive
    // `total/n`-GPU slice, rounded down to a legal power-of-two mesh
    // (any remainder stays idle, as a static operator split would).
    let equal_mesh = |cluster: &ClusterSpec, i: u32, n: u32| -> DeviceMesh {
        let per = 1u32 << (cluster.total_gpus() / n).max(1).ilog2();
        let gpn = cluster.gpus_per_node;
        if per >= gpn {
            let nodes_per = per / gpn;
            DeviceMesh::whole_nodes(cluster, i * nodes_per, nodes_per).expect("aligned")
        } else {
            let node = (i * per) / gpn;
            DeviceMesh::sub_node(cluster, node, (i * per) % gpn, per).expect("aligned")
        }
    };

    let mut table = Table::new(vec![
        "mix",
        "naive weighted (s)",
        "packed weighted (s)",
        "gain",
        "packed fairness",
        "max stretch",
        "reallocs",
    ]);
    for mix in mixes {
        let cluster = ClusterSpec::h100(mix.nodes);
        let tenants: Vec<Tenant> = mix
            .tenants
            .iter()
            .enumerate()
            .map(|(i, (name, size, batch, prio))| {
                let exp = Experiment::dpo(
                    cluster.clone(),
                    ModelSpec::by_size(size).expect("preset exists"),
                    RlhfConfig::instruct_gpt(*batch),
                )
                .with_quick_profile();
                Tenant::new(*name, i as u64, exp).with_priority(*prio)
            })
            .collect();

        // Naive: equal static split, per-tenant search with the same
        // budget the scheduler's refinement gets. A slice with no
        // memory-feasible plan is the static split's OOM outcome
        // (the paper's Fig. 7 red cross).
        let n = tenants.len() as u32;
        let mut naive_runs = Vec::new();
        let mut naive_oom = false;
        for (i, t) in tenants.iter().enumerate() {
            let mesh = equal_mesh(&cluster, i as u32, n);
            let inner = partition::meshes_within(&cluster, &mesh);
            let result = SearchSpace::try_build_on(
                &cluster,
                t.experiment().graph(),
                PruneLevel::Aggressive,
                &inner,
            )
            .ok()
            .map(|space| {
                let (est, _) = t.experiment().prepare();
                search(
                    &est,
                    &space,
                    &McmcConfig {
                        max_steps: 1_500,
                        time_limit: Duration::from_secs(600),
                        record_trace: false,
                        seed: 5,
                        ..McmcConfig::default()
                    },
                )
            });
            let Some(result) = result.filter(|r| r.feasible) else {
                naive_oom = true;
                break;
            };
            naive_runs.push(TenantRun {
                id: t.id(),
                name: t.name().to_string(),
                graph: t.experiment().graph().clone(),
                plan: result.best_plan,
                config: t.experiment().engine_config().clone(),
                iterations: t.iterations(),
                allocation: mesh.gpus().collect(),
                solo_step_secs: 0.0,
                elastic: None,
            });
        }
        let naive_weighted: Option<f64> = if naive_oom {
            None
        } else {
            let reports = run_multi(&cluster, &naive_runs, 5).expect("naive split runs");
            Some(
                tenants
                    .iter()
                    .zip(&reports)
                    .map(|(t, r)| t.priority() * r.total_time)
                    .sum(),
            )
        };

        // Scheduler-packed allocation, same refinement budget and seed.
        let outcome = Scheduler::new(cluster)
            .with_config(SchedConfig {
                seed: 5,
                refine_steps: 1_500,
                ..SchedConfig::default()
            })
            .run(&tenants)
            .expect("scheduler packs the mix");
        let packed = &outcome.report;
        let (naive_cell, gain_cell) = match naive_weighted {
            Some(w) => (
                format!("{w:.1}"),
                format!("{:+.0}%", (w / packed.weighted_makespan_secs - 1.0) * 100.0),
            ),
            None => ("OOM".into(), "-".into()),
        };
        table.row(vec![
            mix.name.into(),
            naive_cell,
            format!("{:.1}", packed.weighted_makespan_secs),
            gain_cell,
            format!("{:.3}", packed.fairness_index),
            format!("{:.2}", packed.max_stretch),
            if packed.oversubscribed {
                format!("{} (shared)", packed.total_reallocs)
            } else {
                packed.total_reallocs.to_string()
            },
        ]);
    }
    println!(
        "{table}\n(gain is naive/packed - 1 on priority-weighted makespan; OOM marks an equal\n split whose slice has no memory-feasible plan; the scheduler wins where equal\n shares waste capacity on low-priority or small tenants)"
    );
}

/// Serving admission-control ablation: one bursty day-fraction workload
/// (steady low-priority training arrivals, hourly high-priority bursts)
/// served under three policies — full admission control with checkpointed
/// preemption, admission control alone, and the admit-all baseline. The
/// controlled policies must beat admit-all on priority-weighted flow while
/// keeping max stretch inside the bound; preemption's extra win is serving
/// every high-priority arrival instead of rejecting the ones that would
/// blow their stretch waiting. Registered in `main` as `serve_admission`.
fn serve_admission() {
    use real_sched::{GraphSet, TenantSpec};
    use real_serve::{serve, AdmissionSpec, ArrivalSpec, BurstSpec, TemplateSpec, WorkloadSpec};

    let tenant = |name: &str, prio: f64, iters: usize, batch: u64| TenantSpec {
        name: name.into(),
        id: None,
        priority: Some(prio),
        algo: Some("dpo".into()),
        actor: Some("7b".into()),
        critic: None,
        batch: Some(batch),
        graph: None,
        iterations: Some(iters),
        faults: None,
        elastic: None,
    };
    let mut spec = WorkloadSpec {
        nodes: 2,
        seed: Some(7),
        horizon_secs: Some(14_400.0),
        arrivals: ArrivalSpec::Poisson {
            rate_per_hour: 12.0,
            burst: Some(BurstSpec {
                every_secs: 3600.0,
                secs: 600.0,
                rate_per_hour: 120.0,
            }),
        },
        templates: vec![
            TemplateSpec {
                tenant: tenant("train", 1.0, 6, 64),
                weight: Some(4.0),
            },
            TemplateSpec {
                tenant: tenant("burst", 8.0, 1, 32),
                weight: Some(1.0),
            },
        ],
        admission: None,
    };

    let policies: Vec<(&str, Option<bool>, Option<bool>)> = vec![
        // (label, admit_all, preemption)
        ("admission + preemption", None, None),
        ("admission only", None, Some(false)),
        ("admit-all", Some(true), None),
    ];
    let mut table = Table::new(vec![
        "policy",
        "served",
        "rejected",
        "preempt",
        "weighted flow (s)",
        "max stretch",
        "high-pri wait (s)",
    ]);
    for (label, admit_all, preemption) in policies {
        spec.admission = Some(AdmissionSpec {
            max_stretch: None,
            admit_all,
            preemption,
            min_benefit_ratio: None,
            probe_steps: None,
        });
        let r = serve(&spec, &GraphSet::new()).expect("workload serves");
        let high: Vec<_> = r
            .tenants
            .iter()
            .filter(|t| t.priority > 1.0 && t.finish_secs.is_some())
            .collect();
        let hi_wait = if high.is_empty() {
            0.0
        } else {
            high.iter().map(|t| t.queue_wait_secs).sum::<f64>() / high.len() as f64
        };
        table.row(vec![
            label.into(),
            (r.admitted + r.queued).to_string(),
            r.rejected.to_string(),
            r.preemptions.to_string(),
            format!("{:.0}", r.weighted_flow_secs),
            format!("{:.2}", r.max_stretch),
            format!("{hi_wait:.2}"),
        ]);
    }
    println!(
        "{table}\n(priority-weighted flow Σ p·(finish-arrival) over served tenants; the stretch\n bound is 4.0 — admit-all blows through it, the controlled policies respect it\n and preemption serves every high-priority burst instead of rejecting some)"
    );
}

/// Asynchronous off-policy ablation: the same PPO workload on the same
/// gen/train split placement, synchronous master vs the staleness-bounded
/// async master at two model scales. The async column should approach
/// `max(gen, train-side)` per iteration instead of their sum; the realized
/// overlap is measured from the profiler's phase attribution, not inferred.
/// Registered in `main` as `async_overlap`.
fn async_overlap() {
    let mut table = Table::new(vec![
        "actor",
        "GPUs",
        "batch",
        "sync iter (s)",
        "async iter (s)",
        "gain",
        "overlap (s)",
        "max staleness",
    ]);
    for (size, nodes, batch) in [("7b", 1u32, 32u64), ("13b", 2, 128)] {
        let actor = ModelSpec::by_size(size).expect("preset exists");
        let exp = Experiment::ppo(
            ClusterSpec::h100(nodes),
            actor.clone(),
            actor.critic(),
            RlhfConfig::instruct_gpt(batch),
        )
        .with_quick_profile();
        let Some(plan) = exp.plan_split() else {
            println!("{size}: cluster cannot be split");
            continue;
        };
        let iters = 4usize;
        let sync = exp.run(&plan, iters).expect("fits");
        let async_exp = exp.with_async_offpolicy(1);
        let report = async_exp.run(&plan, iters).expect("fits");
        let overlap = real_core::real_obs::phase_overlap(
            &async_exp.event_stream(&report),
            real_core::real_obs::Phase::Generation,
            real_core::real_obs::Phase::Training,
        );
        table.row(vec![
            size.to_string(),
            (nodes * 8).to_string(),
            batch.to_string(),
            format!("{:.2}", sync.run.iter_time),
            format!("{:.2}", report.run.iter_time),
            format!(
                "{:+.0}%",
                (sync.run.iter_time / report.run.iter_time - 1.0) * 100.0
            ),
            format!("{overlap:.2}"),
            report.run.async_stats.max_observed_staleness.to_string(),
        ]);
    }
    println!(
        "{table}\n(same placement, same workload: relaxing generation to a one-version-stale\n snapshot hides it behind training; the overlap is realized GPU concurrency)"
    );
}

/// One memo-off vs memo-on search pair at a fixed step budget. Returns
/// `(off_secs, on_secs, hit_rate)` and asserts the plans are identical —
/// the fast path is an optimization, never a different search.
fn throughput_pair(nodes: u32, actor: ModelSpec, batch: u64, steps: u64) -> (f64, f64, f64) {
    let s = Setting::new(nodes, actor, batch);
    let exp = ppo_experiment(&s).with_quick_profile();
    let (est, _) = exp.prepare();
    let space = exp.search_space();
    let cfg = |memo: bool| McmcConfig {
        max_steps: steps,
        time_limit: Duration::from_secs(86_400), // step-bounded only
        record_trace: false,
        seed: 7,
        memo,
        ..McmcConfig::default()
    };
    let t = Instant::now();
    let off = search(&est, &space, &cfg(false));
    let off_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let on = search(&est, &space, &cfg(true));
    let on_secs = t.elapsed().as_secs_f64();
    assert_eq!(
        off.best_plan, on.best_plan,
        "memoization must not change the chosen plan"
    );
    assert_eq!(off.best_time_cost.to_bits(), on.best_time_cost.to_bits());
    (off_secs, on_secs, on.memo.hit_rate())
}

/// The fast-path headline: MCMC steps/sec with the incremental memoized
/// pricer vs from-scratch estimator pricing, from one node up to a
/// simulated 8192-GPU cluster (70B actor + 7B critic 4-model PPO).
fn search_throughput() {
    println!("memoized incremental pricing vs from-scratch (identical plans, seed 7)");
    let mut table = Table::new(vec![
        "GPUs",
        "steps",
        "off wall (s)",
        "on wall (s)",
        "off steps/s",
        "on steps/s",
        "speedup",
        "hit rate",
    ]);
    for (nodes, steps) in [(8u32, 4_000u64), (128, 1_000), (1_024, 400)] {
        let (off_secs, on_secs, hit_rate) =
            throughput_pair(nodes, ModelSpec::llama3_70b(), 4096, steps);
        table.row(vec![
            (nodes * 8).to_string(),
            steps.to_string(),
            format!("{off_secs:.2}"),
            format!("{on_secs:.2}"),
            format!("{:.0}", steps as f64 / off_secs),
            format!("{:.0}", steps as f64 / on_secs),
            format!("{:.1}x", off_secs / on_secs),
            format!("{:.0}%", hit_rate * 100.0),
        ]);
    }
    println!("{table}\n(speedup grows with cluster size: from-scratch MaxMem scans every GPU,\n the fast path re-prices only what the one-call perturbation touched)");
}

/// One speculative-vs-plain search at a fixed acceptance rate, sharing a
/// priced-call memo across the sweep (the spec-duration cache keys on the
/// full draft config fingerprint, acceptance curve included, so reuse is
/// sound). Returns the search result for throughput accounting.
fn spec_search_at(
    cluster: &ClusterSpec,
    est: &Estimator,
    space: &SearchSpace,
    draft: &ModelSpec,
    alpha: f64,
    memo: &mut CostMemo,
) -> SpecSearchResult {
    let menu = SpecMenu::build(
        cluster,
        vec![draft.clone()],
        vec![2, 4, 6, 8],
        SpecTask::RlhfRollout,
    )
    .with_curve(AcceptanceCurve::Constant(alpha));
    let cfg = McmcConfig {
        max_steps: 2_000,
        time_limit: Duration::from_secs(120),
        record_trace: false,
        seed: 7,
        ..McmcConfig::default()
    };
    search_speculative_with_memo(est, space, &menu, &cfg, memo)
}

/// A decode-dominant PPO experiment (long rollouts, short prompts): the
/// regime where draft/verify speculation can pay end-to-end.
fn spec_experiment(nodes: u32, target: &ModelSpec, batch: u64) -> Experiment {
    let rlhf = RlhfConfig {
        gen_len: 3072,
        prompt_len: 256,
        ..RlhfConfig::instruct_gpt(batch)
    };
    Experiment::ppo(
        ClusterSpec::h100(nodes),
        target.clone(),
        ModelSpec::llama3_7b().critic(),
        rlhf,
    )
    .with_seed(17)
    .with_quick_profile()
}

/// Speculative-decoding ablation: throughput vs acceptance rate against the
/// non-speculative incumbent, at two draft/target pairings. The incumbent
/// is the plain MCMC winner (identical seed and budget); the speculative
/// column is the same search with the draft menu enabled. Registered in
/// `main` as `spec_decode`.
fn spec_decode() {
    println!("draft/verify speculation vs plain decode (PPO, gen 3072 / prompt 256, seed 7)");
    let pairings = [
        (
            "1B draft / 13B target",
            2u32,
            ModelSpec::llama3_13b(),
            ModelSpec::llama3_1b(),
            64u64,
        ),
        (
            "7B draft / 70B target",
            8,
            ModelSpec::llama3_70b(),
            ModelSpec::llama3_7b(),
            256,
        ),
    ];
    for (label, nodes, target, draft, batch) in pairings {
        let exp = spec_experiment(nodes, &target, batch);
        let (est, _) = exp.prepare();
        let space = exp.search_space();
        let cluster = exp.cluster().clone();
        let tokens = (batch * (3072 + 256)) as f64;
        let mut memo = CostMemo::new();
        let mut table = Table::new(vec![
            "acceptance",
            "plain tok/s",
            "spec tok/s",
            "gain",
            "chosen draft",
        ]);
        for alpha in [0.5, 0.6, 0.7, 0.8, 0.9] {
            let r = spec_search_at(&cluster, &est, &space, &draft, alpha, &mut memo);
            let chosen = r
                .best_plan
                .spec_choices()
                .map(|(_, c)| {
                    format!(
                        "{} k={}",
                        c.config.draft_model.name, c.config.speculation_len
                    )
                })
                .next()
                .unwrap_or_else(|| "(plain)".into());
            table.row(vec![
                format!("{alpha}"),
                format!("{:.0}", tokens / r.base.best_time_cost),
                format!("{:.0}", tokens / r.best_time_cost),
                format!("{:+.0}%", (r.speedup_over_base() - 1.0) * 100.0),
                chosen,
            ]);
        }
        println!("--- {label} ({} GPUs) ---\n{table}", nodes * 8);
    }
    println!("(the polish strips speculation whenever it does not strictly beat plain decode,\n so the low-acceptance rows fall back to the incumbent instead of regressing)");
}

/// CI-sized speculation gate (see docs/SPECULATION.md): on the small
/// decode-dominant pairing, the searched speculative plan must beat the
/// plain incumbent by >= 25% at acceptance 0.8 and must fall back to plain
/// decode at acceptance 0.3. Registered in `main` as `spec_decode_gate`.
fn spec_decode_gate() {
    let target = ModelSpec::llama3_7b();
    let exp = spec_experiment(2, &target, 32);
    let (est, _) = exp.prepare();
    let space = exp.search_space();
    let cluster = exp.cluster().clone();
    let draft = ModelSpec::llama3_1b();
    let mut memo = CostMemo::new();

    let high = spec_search_at(&cluster, &est, &space, &draft, 0.8, &mut memo);
    let speedup = high.speedup_over_base();
    println!(
        "alpha 0.8: plain {:.2}s, speculative {:.2}s -> {speedup:.2}x",
        high.base.best_time_cost, high.best_time_cost
    );
    assert!(
        high.best_plan.has_speculation(),
        "alpha=0.8 must keep a draft"
    );
    assert!(
        speedup >= 1.25,
        "speculation regressed: only {speedup:.2}x over plain decode at alpha=0.8"
    );

    let low = spec_search_at(&cluster, &est, &space, &draft, 0.3, &mut memo);
    println!(
        "alpha 0.3: plain {:.2}s, speculative path {:.2}s (speculation stripped: {})",
        low.base.best_time_cost,
        low.best_time_cost,
        !low.best_plan.has_speculation()
    );
    assert!(
        !low.best_plan.has_speculation(),
        "alpha=0.3 must fall back to plain decode"
    );
    assert!(low.best_time_cost <= low.base.best_time_cost + 1e-9);
}

/// CI-sized regression gate for the fast path: same plan, and the memoized
/// search must beat from-scratch pricing by a conservative margin on the
/// quick config (the full ablation shows far larger wins at scale).
fn search_throughput_gate() {
    // The 1024-GPU pair: big enough that the per-GPU MaxMem scan dominates
    // the from-scratch path (measured ~2.7x on the reference machine, so a
    // 1.5x floor has real margin), small enough to finish in ~15s of CI.
    let (off_secs, on_secs, hit_rate) = throughput_pair(128, ModelSpec::llama3_70b(), 4096, 1_000);
    let speedup = off_secs / on_secs;
    println!(
        "memo off {off_secs:.2}s, on {on_secs:.2}s -> {speedup:.1}x (hit rate {:.0}%)",
        hit_rate * 100.0
    );
    assert!(hit_rate > 0.5, "memo hit rate collapsed: {:.2}", hit_rate);
    assert!(
        speedup > 1.5,
        "fast path regressed: only {speedup:.2}x over from-scratch pricing"
    );
}
