//! Criterion micro-benchmarks for the hot components: the per-plan cost
//! estimate (the MCMC inner loop), search-space construction, Algorithm 1,
//! and reallocation planning.

use criterion::{criterion_group, criterion_main, Criterion};
use real_core::prelude::*;

fn setup() -> (Estimator, SearchSpace, ExecutionPlan) {
    let cluster = ClusterSpec::h100(2);
    let actor = ModelSpec::llama3_7b();
    let critic = actor.critic();
    let graph = algo::ppo(&actor, &critic, &RlhfConfig::instruct_gpt(512));
    let mut profiler = Profiler::new(cluster.clone(), ProfileConfig::quick(), 1);
    let profiles = vec![profiler.profile(&actor), profiler.profile(&critic)];
    let est = Estimator::new(cluster.clone(), graph.clone(), profiles).unwrap();
    let space = SearchSpace::build(&cluster, &graph, PruneLevel::Aggressive);
    let plan = greedy_plan(&est, &space);
    (est, space, plan)
}

fn bench_estimator(c: &mut Criterion) {
    let (est, _, plan) = setup();
    // The paper: evaluating one candidate plan takes hundreds of
    // microseconds.
    c.bench_function("estimator_cost_per_plan", |b| {
        b.iter(|| std::hint::black_box(est.cost(&plan)))
    });
    c.bench_function("estimator_max_mem", |b| {
        b.iter(|| std::hint::black_box(est.max_mem(&plan)))
    });
}

fn bench_space(c: &mut Criterion) {
    let cluster = ClusterSpec::h100(2);
    let actor = ModelSpec::llama3_7b();
    let graph = algo::ppo(&actor, &actor.critic(), &RlhfConfig::instruct_gpt(512));
    c.bench_function("search_space_build_2nodes", |b| {
        b.iter(|| {
            std::hint::black_box(SearchSpace::build(&cluster, &graph, PruneLevel::Aggressive))
        })
    });
}

fn bench_mcmc(c: &mut Criterion) {
    let (est, space, _) = setup();
    c.bench_function("mcmc_1000_steps", |b| {
        b.iter(|| {
            let cfg = McmcConfig {
                max_steps: 1000,
                time_limit: std::time::Duration::from_secs(60),
                record_trace: false,
                ..McmcConfig::default()
            };
            std::hint::black_box(search(&est, &space, &cfg).steps)
        })
    });
}

fn bench_runtime(c: &mut Criterion) {
    let cluster = ClusterSpec::h100(1);
    let actor = ModelSpec::llama3_7b();
    let graph = algo::ppo(&actor, &actor.critic(), &RlhfConfig::instruct_gpt(64));
    let a = CallAssignment::new(
        DeviceMesh::full(&cluster),
        ParallelStrategy::new(1, 8, 1, 8).unwrap(),
    )
    .unwrap();
    let plan = ExecutionPlan::new(&graph, &cluster, vec![a; graph.n_calls()]).unwrap();
    let engine = RuntimeEngine::new(cluster, graph, EngineConfig::default());
    c.bench_function("runtime_ppo_iteration_8gpu", |b| {
        b.iter(|| std::hint::black_box(engine.run(&plan, 1).unwrap().iter_time))
    });
}

fn bench_mesh_enumeration(c: &mut Criterion) {
    let big = ClusterSpec::h100(128); // 1024 GPUs
    c.bench_function("mesh_enumeration_1024gpus", |b| {
        b.iter(|| std::hint::black_box(DeviceMesh::enumerate(&big).len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_estimator, bench_space, bench_mcmc, bench_runtime, bench_mesh_enumeration
}
criterion_main!(benches);
