//! Regenerates every table and figure of the paper's evaluation (§8).
//!
//! Run all: `cargo bench -p real-bench --bench figures`
//! Run some: `cargo bench -p real-bench --bench figures -- fig07 table6`
//!
//! Each figure prints the paper-style rows/series and persists its data as
//! JSON under `target/figures/`. Absolute numbers come from the simulated
//! cluster; the *shapes* (who wins, by what factor, where crossovers fall)
//! are the reproduction targets recorded in EXPERIMENTS.md.

// Figure tables are ad-hoc row shapes; naming each tuple would obscure them.
#![allow(clippy::type_complexity)]

use real_bench::{cell, ppo_experiment, save_json, weak_scaling, PlanCache, Setting};
use real_core::prelude::*;
use real_util::Table;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| name.contains(a.as_str()));

    let mut cache = PlanCache::new();
    let figures: Vec<(&str, fn(&mut PlanCache))> = vec![
        ("table1_models", table1_models),
        ("fig01_timelines", fig01_timelines),
        ("fig07_end2end", fig07_end2end),
        ("fig08_longctx", fig08_longctx),
        ("fig02_opportunity", fig02_opportunity),
        ("fig09_progressive", fig09_progressive),
        ("fig10_traces", fig10_traces),
        ("fig11_kernelstats", fig11_kernelstats),
        ("fig12_estimator", fig12_estimator),
        ("fig13_search", fig13_search),
        ("fig14_pruning", fig14_pruning),
        ("fig15_optimality", fig15_optimality),
        ("fig16_algorithms", fig16_algorithms),
        ("fig17_scaling", fig17_scaling),
        ("table2to5_plans", table2to5_plans),
        ("table6_breakdown", table6_breakdown),
    ];
    for (name, f) in figures {
        if !want(name) {
            continue;
        }
        let t = Instant::now();
        println!("\n================== {name} ==================");
        f(&mut cache);
        println!("[{name} done in {:.1}s]", t.elapsed().as_secs_f64());
    }
}

/// Representative small/large pair used by the breakdown figures
/// (7B+7B on 2 nodes, 70B+7B on 16 nodes — Table 6's two cases).
fn breakdown_settings() -> Vec<Setting> {
    let ws = weak_scaling();
    vec![ws[0].clone(), ws[3].clone()]
}

// ---------------------------------------------------------------- Table 1

fn table1_models(_: &mut PlanCache) {
    let mut t = Table::new(vec![
        "identifier",
        "hidden",
        "intermediate",
        "layers",
        "heads",
        "kv-heads",
        "total params",
        "params w/o out-embed",
    ]);
    for size in ["7b", "13b", "34b", "70b"] {
        let m = ModelSpec::by_size(size).unwrap();
        t.row(vec![
            size.to_uppercase(),
            m.hidden.to_string(),
            m.intermediate.to_string(),
            m.n_layers.to_string(),
            m.n_heads.to_string(),
            m.n_kv_heads.to_string(),
            m.param_count().to_string(),
            m.param_count_no_output_embed().to_string(),
        ]);
    }
    println!("{t}");
}

// ----------------------------------------------------------------- Fig. 1

fn fig01_timelines(cache: &mut PlanCache) {
    let s = weak_scaling()[0].clone();
    let planned = cache.plan(&s).clone();
    let exp = ppo_experiment(&s);
    let graph = exp.graph().clone();

    let mut rows: Vec<(String, Vec<(String, f64, f64)>)> = Vec::new();
    // Symmetric (heuristic), asymmetric (OpenRLHF placement), ReaL.
    let variants: Vec<(&str, Option<ExecutionPlan>, EngineConfig)> = {
        let base = EngineConfig::default();
        let openrlhf = baselines::openrlhf(&s.cluster(), &graph, &base).ok();
        vec![
            (
                "symmetric (heuristic)",
                Some(planned.heuristic.clone()),
                base.clone(),
            ),
            (
                "asymmetric (OpenRLHF-style)",
                openrlhf.as_ref().map(|b| b.plan.clone()),
                openrlhf.map(|b| b.config).unwrap_or_else(|| base.clone()),
            ),
            ("ReaL (searched)", Some(planned.searched.clone()), base),
        ]
    };
    for (name, plan, cfg) in variants {
        let Some(plan) = plan else {
            println!("{name}: OOM");
            continue;
        };
        let Some(report) = cache.run(&s, &plan, cfg, 1) else {
            println!("{name}: OOM");
            continue;
        };
        println!("--- {name}: iteration {:.1}s ---", report.run.iter_time);
        let horizon = report.run.total_time;
        let mut timeline: Vec<(String, f64, f64)> = Vec::new();
        for t in &report.run.timings {
            let w = 60.0;
            let a = (t.start / horizon * w) as usize;
            let b = ((t.end / horizon * w) as usize).max(a + 1).min(60);
            let mut bar = vec![' '; 60];
            for c in bar.iter_mut().take(b).skip(a) {
                *c = '#';
            }
            println!("{:>14} |{}|", t.call_name, bar.iter().collect::<String>());
            timeline.push((t.call_name.clone(), t.start, t.end));
        }
        rows.push((name.to_string(), timeline));
    }
    save_json("fig01_timelines", &rows);
}

// ----------------------------------------------------------------- Fig. 7

fn fig07_end2end(cache: &mut PlanCache) {
    let mut table = Table::new(vec![
        "setting",
        "DeepSpeed-Chat",
        "OpenRLHF",
        "NeMo-Aligner",
        "veRL",
        "ReaL-Heuristic",
        "ReaL",
        "best speedup",
    ]);
    let mut data: Vec<(String, Vec<(String, Option<f64>)>)> = Vec::new();
    for s in weak_scaling() {
        let planned = cache.plan(&s).clone();
        let exp = ppo_experiment(&s);
        let graph = exp.graph().clone();
        let base = EngineConfig::default();
        let mut row: Vec<(String, Option<f64>)> = Vec::new();
        for (name, setup) in baselines::all(&s.cluster(), &graph, &base) {
            let tput = match setup {
                Ok(b) => {
                    let r = cache.run(&s, &b.plan, b.config, 2);
                    if r.is_none() {
                        eprintln!("[fig07] {name} @ {}: runtime memcheck OOM", s.name);
                    }
                    r.map(|r| r.tokens_per_sec)
                }
                Err(e) => {
                    eprintln!("[fig07] {name} @ {}: {e}", s.name);
                    None
                }
            };
            row.push((name.to_string(), tput));
        }
        let heuristic = cache
            .run(&s, &planned.heuristic, base.clone(), 2)
            .map(|r| r.tokens_per_sec);
        let real = cache
            .run(&s, &planned.searched, base, 2)
            .map(|r| r.tokens_per_sec);
        row.push(("ReaL-Heuristic".into(), heuristic));
        row.push(("ReaL".into(), real));

        let real_v = real.unwrap_or(0.0);
        let worst = row
            .iter()
            .take(4)
            .filter_map(|(_, v)| *v)
            .fold(f64::INFINITY, f64::min);
        let speedup = if worst.is_finite() && worst > 0.0 {
            format!("{:.2}x", real_v / worst)
        } else {
            "n/a".into()
        };
        table.row(
            std::iter::once(s.name.clone())
                .chain(row.iter().map(|(_, v)| cell(*v)))
                .chain(std::iter::once(speedup))
                .collect(),
        );
        data.push((s.name.clone(), row));
    }
    println!(
        "{table}\n(tokens/s; OOM marks configurations that do not fit, the paper's red crosses)"
    );
    save_json("fig07_end2end", &data);
}

// ----------------------------------------------------------------- Fig. 8

fn fig08_longctx(cache: &mut PlanCache) {
    let mut table = Table::new(vec![
        "setting",
        "ctx",
        "heuristic tok/s",
        "ReaL tok/s",
        "gain",
    ]);
    let mut data = Vec::new();
    for base_setting in [weak_scaling()[0].clone(), weak_scaling()[3].clone()] {
        for factor in [1u64, 2, 4] {
            let s = base_setting.clone().with_context_scale(factor);
            let planned = cache.plan(&s).clone();
            let cfg = EngineConfig::default();
            let h = cache
                .run(&s, &planned.heuristic, cfg.clone(), 2)
                .map(|r| r.tokens_per_sec);
            let r = cache
                .run(&s, &planned.searched, cfg, 2)
                .map(|r| r.tokens_per_sec);
            let gain = match (h, r) {
                (Some(h), Some(r)) if h > 0.0 => format!("{:.0}%", (r / h - 1.0) * 100.0),
                _ => "n/a".into(),
            };
            table.row(vec![
                s.name.clone(),
                s.cfg.context_len().to_string(),
                cell(h),
                cell(r),
                gain.clone(),
            ]);
            data.push((s.name.clone(), s.cfg.context_len(), h, r));
        }
    }
    println!("{table}");
    save_json("fig08_longctx", &data);
}

// ------------------------------------------------------- Fig. 2 & Fig. 9

/// Progressive optimization: start from the heuristic plan and adopt the
/// searched assignments call-group by call-group.
fn progressive(cache: &mut PlanCache, s: &Setting, label: &str) -> Vec<(String, f64)> {
    let planned = cache.plan(s).clone();
    let exp = ppo_experiment(s);
    let graph = exp.graph().clone();
    let stages: Vec<(&str, Box<dyn Fn(&CallType) -> bool>)> = vec![
        (
            "+ generation plan",
            Box::new(|c: &CallType| matches!(c, CallType::Generate { .. })),
        ),
        (
            "+ training plans",
            Box::new(|c: &CallType| matches!(c, CallType::TrainStep { .. })),
        ),
        (
            "+ inference plans",
            Box::new(|c: &CallType| matches!(c, CallType::Inference { .. })),
        ),
    ];

    let mut rows = Vec::new();
    let no_graph = EngineConfig {
        cuda_graph: false,
        ..EngineConfig::default()
    };
    if let Some(r) = cache.run(s, &planned.heuristic, no_graph, 2) {
        rows.push(("heuristic (no CUDA graphs)".to_string(), r.run.iter_time));
    }
    let mut plan = planned.heuristic.clone();
    if let Some(r) = cache.run(s, &plan, EngineConfig::default(), 2) {
        rows.push(("+ CUDA-graph generation".to_string(), r.run.iter_time));
    }
    // Intermediate mixes of heuristic and searched assignments are
    // synthetic waypoints, not launchable plans; their memory peaks are
    // transitional, so the check is skipped (endpoints are real plans).
    let relaxed = EngineConfig {
        skip_mem_check: true,
        ..EngineConfig::default()
    };
    for (name, selector) in stages {
        for (id, def) in graph.iter() {
            if selector(&def.call_type) {
                plan = plan
                    .with_assignment(id, *planned.searched.assignment(id))
                    .expect("searched assignments are valid");
            }
        }
        if let Some(r) = cache.run(s, &plan, relaxed.clone(), 2) {
            rows.push((name.to_string(), r.run.iter_time));
        } else {
            rows.push((format!("{name} (OOM)"), f64::NAN));
        }
    }

    let mut table = Table::new(vec!["optimization", "iteration (s)"]);
    for (name, t) in &rows {
        table.row(vec![name.clone(), format!("{t:.1}")]);
    }
    println!("--- {label} ({}) ---\n{table}", s.name);
    rows
}

fn fig02_opportunity(cache: &mut PlanCache) {
    let s = weak_scaling()[3].clone();
    let rows = progressive(
        cache,
        &s,
        "Fig. 2: optimization opportunity over 3D parallelism",
    );
    if let (Some(first), Some(last)) = (rows.first(), rows.last()) {
        println!("end-to-end improvement: {:.2}x", first.1 / last.1);
    }
    save_json("fig02_opportunity", &rows);
}

fn fig09_progressive(cache: &mut PlanCache) {
    let mut data = Vec::new();
    for s in breakdown_settings() {
        let rows = progressive(cache, &s, "Fig. 9: progressive optimizations");
        data.push((s.name.clone(), rows));
    }
    save_json("fig09_progressive", &data);
}

// ---------------------------------------------------------------- Fig. 10

fn fig10_traces(cache: &mut PlanCache) {
    let s = weak_scaling()[0].clone();
    let planned = cache.plan(&s).clone();
    let mut data = Vec::new();
    for (name, plan) in [
        ("ReaL", &planned.searched),
        ("heuristic", &planned.heuristic),
    ] {
        let cfg = EngineConfig {
            trace_capacity: 200_000,
            ..EngineConfig::default()
        };
        let Some(report) = cache.run(&s, plan, cfg, 1) else {
            continue;
        };
        let horizon = report.run.total_time;
        println!("--- {name}: GPU 0 lane over {horizon:.1}s ---");
        println!("legend: #=compute l=launch T=tp-comm P=pp-comm D=dp-comm R=realloc x=transfer");
        let lane = report.run.trace.render_lane(0, horizon, 100);
        println!("{lane}");
        data.push((name.to_string(), lane));
    }
    save_json("fig10_traces", &data);
}

// ---------------------------------------------------------------- Fig. 11

fn fig11_kernelstats(cache: &mut PlanCache) {
    let mut table = Table::new(vec![
        "setting",
        "plan",
        "compute",
        "tp-comm",
        "pp-comm",
        "dp-comm",
        "launch",
        "realloc+xfer",
    ]);
    let mut data = Vec::new();
    for s in breakdown_settings() {
        let planned = cache.plan(&s).clone();
        for (name, plan) in [
            ("ReaL", &planned.searched),
            ("heuristic", &planned.heuristic),
        ] {
            let Some(report) = cache.run(&s, plan, EngineConfig::default(), 2) else {
                continue;
            };
            let frac = report.run.category_fractions();
            let get = |c: Category| {
                frac.iter()
                    .find(|(k, _)| *k == c)
                    .map(|(_, f)| *f)
                    .unwrap_or(0.0)
            };
            table.row(vec![
                s.name.clone(),
                name.to_string(),
                format!("{:.1}%", get(Category::Compute) * 100.0),
                format!("{:.1}%", get(Category::TpComm) * 100.0),
                format!("{:.1}%", get(Category::PpComm) * 100.0),
                format!("{:.1}%", get(Category::DpComm) * 100.0),
                format!("{:.1}%", get(Category::Launch) * 100.0),
                format!(
                    "{:.2}%",
                    (get(Category::Realloc) + get(Category::Transfer)) * 100.0
                ),
            ]);
            let frac_named: Vec<(String, f64)> =
                frac.iter().map(|&(c, f)| (c.to_string(), f)).collect();
            data.push((s.name.clone(), name.to_string(), frac_named));
        }
    }
    println!("{table}\n(GPU busy-time split; broadcasts should be much smaller than compute)");
    save_json("fig11_kernelstats", &data);
}

// ---------------------------------------------------------------- Fig. 12

fn fig12_estimator(cache: &mut PlanCache) {
    // Left: profiling cost per model family.
    let mut left = Table::new(vec!["model", "profiling (simulated)"]);
    let mut left_data = Vec::new();
    for size in ["7b", "13b", "34b", "70b"] {
        let model = ModelSpec::by_size(size).unwrap();
        let mut profiler = Profiler::new(ClusterSpec::h100(1), ProfileConfig::paper(), 17);
        let db = profiler.profile(&model);
        left.row(vec![
            size.to_uppercase(),
            format!("{:.0}s", db.profiling_secs()),
        ]);
        left_data.push((size.to_string(), db.profiling_secs()));
    }
    println!("{left}\n(paper: < 4 minutes per model)");

    // Right: estimated vs simulated-run time for searched and heuristic
    // plans in every weak-scaling setting.
    let mut right = Table::new(vec![
        "setting",
        "plan",
        "estimated (s)",
        "measured (s)",
        "rel err",
    ]);
    let mut right_data = Vec::new();
    let mut ordering_ok = true;
    for s in weak_scaling() {
        let planned = cache.plan(&s).clone();
        let exp = ppo_experiment(&s);
        let (est, _) = exp.prepare();
        let mut pair = Vec::new();
        for (name, plan) in [
            ("ReaL", &planned.searched),
            ("heuristic", &planned.heuristic),
        ] {
            let estimated = est.time_cost(plan);
            let measured = cache
                .run(&s, plan, EngineConfig::default(), 2)
                .map(|r| r.run.iter_time)
                .unwrap_or(f64::NAN);
            let rel = ((estimated - measured) / measured).abs();
            right.row(vec![
                s.name.clone(),
                name.to_string(),
                format!("{estimated:.1}"),
                format!("{measured:.1}"),
                format!("{:.0}%", rel * 100.0),
            ]);
            pair.push((estimated, measured));
            right_data.push((s.name.clone(), name.to_string(), estimated, measured));
        }
        // Order preservation: estimator ranks searched below heuristic iff
        // the runtime does.
        if pair.len() == 2 {
            ordering_ok &= (pair[0].0 < pair[1].0) == (pair[0].1 < pair[1].1);
        }
    }
    println!("{right}\nrelative ordering preserved across plans: {ordering_ok}");
    save_json("fig12_estimator", &(left_data, right_data));
}

// ---------------------------------------------------------------- Fig. 13

fn fig13_search(cache: &mut PlanCache) {
    let mut table = Table::new(vec!["setting", "t (s)", "best TimeCost (s)", "improvement"]);
    let mut data = Vec::new();
    for s in weak_scaling() {
        let planned = cache.plan(&s).clone();
        let trace = &planned.search.trace;
        // Reference for the improvement ratio: the worst point of the trace
        // (the greedy seed may be OOM-penalized, making its raw TimeCost an
        // unrepresentative reference).
        let reference = trace.iter().map(|&(_, c)| c).fold(f64::NAN, f64::max);
        for &(t, c) in trace.iter() {
            table.row(vec![
                s.name.clone(),
                format!("{t:.1}"),
                format!("{c:.1}"),
                format!("{:.2}x", reference / c),
            ]);
        }
        data.push((s.name.clone(), trace.clone()));
    }
    println!("{table}\n(improvement ratio vs the worst visited feasible-best, per setting)");
    save_json("fig13_search", &data);
}

// ---------------------------------------------------------------- Fig. 14

fn fig14_pruning(_: &mut PlanCache) {
    // 1024 GPUs: 128 nodes, 70B actor.
    let s = Setting::new(128, ModelSpec::llama3_70b(), 4096 * 8);
    let cluster = s.cluster();
    let exp = ppo_experiment(&s);
    let graph = exp.graph().clone();
    let (est, _) = exp.prepare();

    let mut table = Table::new(vec![
        "prune level",
        "log10(plans)",
        "best TimeCost after budget (s)",
        "feasible",
    ]);
    let mut data = Vec::new();
    for level in [
        PruneLevel::Aggressive,
        PruneLevel::Moderate,
        PruneLevel::Light,
    ] {
        let space = SearchSpace::build(&cluster, &graph, level);
        let cfg = McmcConfig {
            max_steps: 8_000,
            time_limit: Duration::from_secs(45),
            record_trace: false,
            ..McmcConfig::default()
        };
        let result = search(&est, &space, &cfg);
        table.row(vec![
            format!("{level:?}"),
            format!("{:.0}", space.log10_size()),
            format!("{:.1}", result.best_time_cost),
            result.feasible.to_string(),
        ]);
        data.push((
            format!("{level:?}"),
            space.log10_size(),
            result.best_time_cost,
        ));
    }
    println!("{table}\n(tighter pruning → faster convergence at 1024 GPUs)");
    save_json("fig14_pruning", &data);
}

// ---------------------------------------------------------------- Fig. 15

fn fig15_optimality(_: &mut PlanCache) {
    let cases = vec![
        ("bs64/ctx2048", RlhfConfig::instruct_gpt(64)),
        (
            "bs128/ctx1024",
            RlhfConfig::instruct_gpt(128).with_context_scale(1),
        ),
        ("bs32/ctx4096", {
            let mut c = RlhfConfig::instruct_gpt(128);
            c = c.with_context_scale(4);
            c
        }),
    ];
    let mut table = Table::new(vec![
        "setting",
        "budget",
        "MCMC best (s)",
        "brute-force optimum (s)",
        "ratio",
    ]);
    let mut data = Vec::new();
    for (name, mut cfg) in cases {
        if name == "bs128/ctx1024" {
            cfg.prompt_len = 512;
            cfg.gen_len = 512;
        }
        let exp = Experiment::ppo(
            ClusterSpec::h100(1),
            ModelSpec::llama3_7b(),
            ModelSpec::llama3_7b().critic(),
            cfg,
        )
        .with_seed(23);
        let (est, _) = exp.prepare();
        let space = exp.search_space();
        let brute = brute_force(
            &est,
            &space,
            &BruteConfig {
                top_k: 6,
                time_limit: Duration::from_secs(180),
            },
        );
        for steps in [200u64, 2_000, 20_000] {
            let cfg = McmcConfig {
                max_steps: steps,
                time_limit: Duration::from_secs(120),
                record_trace: false,
                ..McmcConfig::default()
            };
            let r = search(&est, &space, &cfg);
            table.row(vec![
                name.to_string(),
                format!("{steps} steps"),
                format!("{:.2}", r.best_time_cost),
                format!("{:.2}", brute.best_time_cost),
                format!("{:.3}", brute.best_time_cost / r.best_time_cost),
            ]);
            data.push((
                name.to_string(),
                steps,
                r.best_time_cost,
                brute.best_time_cost,
            ));
        }
    }
    println!("{table}\n(ratio ≥ ~0.95 reproduces the paper's near-optimality claim; MCMC searches the full pruned space and may beat the truncated brute force)");
    save_json("fig15_optimality", &data);
}

// ---------------------------------------------------------------- Fig. 16

fn fig16_algorithms(_: &mut PlanCache) {
    let cluster = ClusterSpec::h100(16);
    let actor = ModelSpec::llama3_70b();
    let reward = ModelSpec::llama3_7b().critic();
    let cfg = RlhfConfig::instruct_gpt(512);
    let grpo_cfg = RlhfConfig {
        grpo_group: 8,
        ..RlhfConfig::instruct_gpt(64)
    };

    let experiments = vec![
        ("DPO", Experiment::dpo(cluster.clone(), actor.clone(), cfg)),
        (
            "ReMax",
            Experiment::remax(cluster.clone(), actor.clone(), reward.clone(), cfg),
        ),
        (
            "GRPO",
            Experiment::grpo(cluster.clone(), actor.clone(), reward.clone(), grpo_cfg),
        ),
    ];
    let mut table = Table::new(vec!["algorithm", "heuristic tok/s", "ReaL tok/s", "gain"]);
    let mut data = Vec::new();
    for (name, exp) in experiments {
        let exp = exp.with_seed(29);
        println!("--- {name} dataflow DAG ---\n{}", to_ascii(exp.graph()));
        let mcmc = McmcConfig {
            max_steps: 40_000,
            time_limit: Duration::from_secs(20),
            ..McmcConfig::default()
        };
        let planned = match exp.plan_auto(&mcmc) {
            Ok(p) => p,
            Err(_) => {
                println!("{name}: no feasible searched plan");
                continue;
            }
        };
        let heuristic = exp.plan_heuristic();
        let h = exp.run(&heuristic, 2).ok().map(|r| r.tokens_per_sec);
        let r = exp.run(&planned.plan, 2).ok().map(|r| r.tokens_per_sec);
        let gain = match (h, r) {
            (Some(h), Some(r)) if h > 0.0 => format!("{:.0}%", (r / h - 1.0) * 100.0),
            _ => "n/a".into(),
        };
        table.row(vec![name.to_string(), cell(h), cell(r), gain]);
        data.push((name.to_string(), h, r));
    }
    println!("{table}\n(paper: avg ~87% gain; ReMax largest via concurrent generations, GRPO most modest)");
    save_json("fig16_algorithms", &data);
}

// ---------------------------------------------------------------- Fig. 17

fn fig17_scaling(cache: &mut PlanCache) {
    let mut table = Table::new(vec![
        "actor",
        "GPUs",
        "tok/s",
        "scaling vs half",
        "static mem util",
    ]);
    let mut data = Vec::new();
    for (size, node_range) in [
        ("7b", vec![1u32, 2, 4, 8]),
        ("13b", vec![1, 2, 4, 8]),
        ("34b", vec![2, 4, 8, 16]),
        ("70b", vec![4, 8, 16]),
    ] {
        let mut prev: Option<f64> = None;
        for nodes in node_range {
            let s = Setting::new(nodes, ModelSpec::by_size(size).unwrap(), 512);
            let planned = cache.plan(&s).clone();
            let Some(report) = cache.run(&s, &planned.searched, EngineConfig::default(), 2) else {
                continue;
            };
            let tput = report.tokens_per_sec;
            let scaling = prev
                .map(|p| format!("{:.2}x", tput / p))
                .unwrap_or_else(|| "-".into());
            table.row(vec![
                size.to_uppercase(),
                (nodes * 8).to_string(),
                format!("{tput:.0}"),
                scaling,
                format!("{:.0}%", report.run.static_utilization * 100.0),
            ]);
            data.push((
                size.to_string(),
                nodes * 8,
                tput,
                report.run.static_utilization,
            ));
            prev = Some(tput);
        }
    }
    println!("{table}\n(>2x per doubling = super-linear; small models flatten early — Fig. 17)");
    save_json("fig17_scaling", &data);
}

// ------------------------------------------------------------ Tables 2–5

fn table2to5_plans(cache: &mut PlanCache) {
    for s in breakdown_settings() {
        let planned = cache.plan(&s).clone();
        let exp = ppo_experiment(&s);
        println!("--- {}: searched plan (Tables 2/4 analogue) ---", s.name);
        println!("{}", planned.searched.render(exp.graph()));
        println!("--- {}: heuristic plan (Tables 3/5 analogue) ---", s.name);
        println!("{}", planned.heuristic.render(exp.graph()));
    }
}

// -------------------------------------------------------------- Table 6

fn table6_breakdown(cache: &mut PlanCache) {
    let mut data = Vec::new();
    for s in breakdown_settings() {
        let planned = cache.plan(&s).clone();
        let mut table = Table::new(vec![
            "call",
            "ReaL",
            "heuristic",
            "ReaL (no graphs)",
            "heuristic (no graphs)",
        ]);
        let configs = [
            ("ReaL", &planned.searched, true),
            ("heuristic", &planned.heuristic, true),
            ("ReaL-ng", &planned.searched, false),
            ("heuristic-ng", &planned.heuristic, false),
        ];
        let mut reports = Vec::new();
        for (_, plan, graphed) in configs {
            let cfg = EngineConfig {
                cuda_graph: graphed,
                ..EngineConfig::default()
            };
            reports.push(cache.run(&s, plan, cfg, 2));
        }
        let names: Vec<String> = ppo_experiment(&s)
            .graph()
            .calls()
            .iter()
            .map(|c| c.call_name.clone())
            .collect();
        for name in &names {
            let cells: Vec<String> = reports
                .iter()
                .map(|r| {
                    r.as_ref()
                        .and_then(|r| r.run.call_mean(name))
                        .map(|v| format!("{v:.1}"))
                        .unwrap_or_else(|| "OOM".into())
                })
                .collect();
            table.row(std::iter::once(name.clone()).chain(cells).collect());
        }
        let e2e: Vec<String> = reports
            .iter()
            .map(|r| {
                r.as_ref()
                    .map(|r| format!("{:.1}", r.run.iter_time))
                    .unwrap_or_else(|| "OOM".into())
            })
            .collect();
        table.row(
            std::iter::once("end2end".to_string())
                .chain(e2e.clone())
                .collect(),
        );
        println!("--- {} wall-time breakdown (s) ---\n{table}", s.name);
        data.push((s.name.clone(), e2e));
    }
    save_json("table6_breakdown", &data);
}
