//! Serde-loadable tenant-set specification — the `tenants.json` format
//! behind `real sched --tenants` (and the template entries of
//! `real serve --workload`).
//!
//! A [`SchedSpec`] names the cluster size, a scheduler seed, and one
//! [`TenantSpec`] per tenant. Each tenant spec mirrors the single-run CLI
//! flags (`--algo`, `--actor`, `--critic`, `--batch`) plus the scheduling
//! fields: `priority`, `iterations`, an optional deterministic
//! [`FaultPlan`], and `elastic` (opt the tenant into the re-plan gate so it
//! can absorb freed capacity). Instead of `actor`/`algo`, a tenant may name
//! a user-defined dataflow via `graph` (a `graph.json` [`GraphSpec`] file,
//! the same DSL as `real run --graph`). Optional fields may be omitted from
//! the JSON; [`SchedSpec::build`] fills the defaults.
//!
//! Graph files are *not* read by this module: the CLI pre-loads every
//! referenced file through its `load_json` helper (so malformed specs
//! report `path:line:col`) and hands the parsed set to
//! [`SchedSpec::build_with_graphs`].
//!
//! ```
//! let json = r#"{
//!   "nodes": 2,
//!   "tenants": [
//!     {"name": "prod",  "actor": "7b", "algo": "dpo", "batch": 64, "priority": 2.0},
//!     {"name": "dev",   "actor": "7b", "algo": "dpo", "batch": 32},
//!     {"name": "batch", "actor": "7b", "algo": "dpo", "batch": 32, "iterations": 3}
//!   ]
//! }"#;
//! let spec: real_sched::SchedSpec = serde_json::from_str(json).unwrap();
//! let (cluster, tenants) = spec.build().unwrap();
//! assert_eq!(cluster.total_gpus(), 16);
//! assert_eq!(tenants.len(), 3);
//! assert_eq!(tenants[0].priority(), 2.0);
//! ```

use real_cluster::ClusterSpec;
use real_core::{Experiment, Tenant};
use real_dataflow::algo::RlhfConfig;
use real_dataflow::GraphSpec;
use real_model::ModelSpec;
use real_runtime::ReplanPolicy;
use real_sim::FaultPlan;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Pre-parsed `graph.json` specs keyed by the path string the tenant spec
/// used to reference them (see [`SchedSpec::build_with_graphs`]).
pub type GraphSet = HashMap<String, GraphSpec>;

/// A multi-tenant workload specification (the `tenants.json` schema).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedSpec {
    /// Cluster size in 8-GPU H100 nodes (positive power of two).
    pub nodes: u32,
    /// Scheduler / runtime seed; defaults to `1` when omitted.
    pub seed: Option<u64>,
    /// The tenant workloads to pack.
    pub tenants: Vec<TenantSpec>,
}

/// One tenant's workload and service parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Display name (must be unique within the spec).
    pub name: String,
    /// Stable tenant identity; seeds the tenant's RNG substream. Defaults
    /// to the tenant's list position. Give explicit ids when you want a
    /// tenant's random stream to survive co-tenant additions/removals.
    pub id: Option<u64>,
    /// Priority weight for the weighted-makespan objective (default `1.0`).
    pub priority: Option<f64>,
    /// RLHF algorithm: `ppo|dpo|grpo|remax|raft|itdpo` (default `ppo`).
    pub algo: Option<String>,
    /// Actor model size: `7b|13b|34b|70b`. Required unless `graph` is set.
    pub actor: Option<String>,
    /// Critic model size (defaults to the actor size; ignored by `dpo`).
    pub critic: Option<String>,
    /// Global batch size (default `64`).
    pub batch: Option<u64>,
    /// Path to a user-defined `graph.json` workflow ([`GraphSpec`] DSL,
    /// see docs/DATAFLOWS.md) used instead of `algo`/`actor`/`critic`/
    /// `batch`. Mutually exclusive with `actor`.
    pub graph: Option<String>,
    /// RLHF iterations to run (default `2`).
    pub iterations: Option<usize>,
    /// Deterministic fault schedule confined to this tenant's fault domain.
    pub faults: Option<FaultPlan>,
    /// Opt into elastic rebalancing: the tenant re-plans through the
    /// re-plan gate when the scheduler offers it freed capacity.
    pub elastic: Option<bool>,
}

/// Why a [`SchedSpec`] could not be turned into tenants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid tenant spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

impl TenantSpec {
    /// Builds this tenant's [`Experiment`] on `cluster`: either the named
    /// built-in algorithm or the referenced `graph` file (looked up in
    /// `graphs`, which the caller pre-loaded — see [`GraphSet`]).
    /// Experiments are created with quick profiling (the scheduler profiles
    /// every tenant before it can plan, so the full profile grid would
    /// dominate admission time).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when a model size or algorithm is unknown, a
    /// batch size is zero, both (or neither of) `actor` and `graph` are
    /// set, a referenced graph is missing from `graphs` or fails DSL
    /// validation, or a fault plan fails validation.
    pub fn build_experiment(
        &self,
        cluster: &ClusterSpec,
        seed: u64,
        graphs: &GraphSet,
    ) -> Result<Experiment, SpecError> {
        let mut exp = match (&self.graph, &self.actor) {
            (Some(path), None) => {
                let spec = graphs.get(path).ok_or_else(|| {
                    SpecError(format!(
                        "tenant `{}`: graph file `{path}` was not pre-loaded \
                         (pass it via build_with_graphs; the CLI loads it for you)",
                        self.name
                    ))
                })?;
                Experiment::from_graph(cluster.clone(), spec)
                    .map_err(|e| SpecError(format!("tenant `{}`: {path}: {e}", self.name)))?
            }
            (None, Some(actor)) => {
                let actor = model_size(actor)?;
                let critic = match &self.critic {
                    Some(size) => model_size(size)?.critic(),
                    None => actor.critic(),
                };
                let batch = self.batch.unwrap_or(64);
                if batch == 0 {
                    return Err(SpecError(format!(
                        "tenant `{}`: batch must be > 0",
                        self.name
                    )));
                }
                let cfg = RlhfConfig::instruct_gpt(batch);
                let algo = self.algo.as_deref().unwrap_or("ppo");
                match algo {
                    "ppo" => Experiment::ppo(cluster.clone(), actor, critic, cfg),
                    "dpo" => Experiment::dpo(cluster.clone(), actor, cfg),
                    "grpo" => Experiment::grpo(cluster.clone(), actor, critic, cfg),
                    "remax" => Experiment::remax(cluster.clone(), actor, critic, cfg),
                    "raft" => Experiment::raft(cluster.clone(), actor, critic, cfg),
                    "itdpo" => Experiment::iterative_dpo(cluster.clone(), actor, critic, cfg),
                    other => {
                        return Err(SpecError(format!(
                        "tenant `{}`: unknown algo `{other}` (expected ppo|dpo|grpo|remax|raft|itdpo)",
                        self.name
                    )))
                    }
                }
            }
            (Some(_), Some(_)) => {
                return Err(SpecError(format!(
                    "tenant `{}`: `graph` and `actor` are mutually exclusive",
                    self.name
                )))
            }
            (None, None) => {
                return Err(SpecError(format!(
                    "tenant `{}`: needs either `actor` or `graph`",
                    self.name
                )))
            }
        };
        exp = exp.with_seed(seed).with_quick_profile();
        if let Some(plan) = &self.faults {
            plan.validate()
                .map_err(|e| SpecError(format!("tenant `{}`: {e}", self.name)))?;
            exp = exp.with_fault_plan(plan.clone());
        }
        if self.elastic.unwrap_or(false) {
            exp = exp.with_replan_policy(ReplanPolicy::default());
        }
        Ok(exp)
    }
}

impl SchedSpec {
    /// The effective seed (`1` when the field is omitted).
    pub fn seed(&self) -> u64 {
        self.seed.unwrap_or(1)
    }

    /// [`SchedSpec::build_with_graphs`] with an empty graph set — enough
    /// for specs whose tenants all use the built-in algorithms.
    ///
    /// # Errors
    ///
    /// See [`SchedSpec::build_with_graphs`]; additionally errors when any
    /// tenant references a `graph` file (none are pre-loaded here).
    pub fn build(&self) -> Result<(ClusterSpec, Vec<Tenant>), SpecError> {
        self.build_with_graphs(&GraphSet::new())
    }

    /// Validates the spec and constructs the cluster plus one [`Tenant`]
    /// per entry, resolving `graph` references against the pre-parsed
    /// `graphs` set.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when the cluster size is not a positive power
    /// of two, the tenant list is empty, names/ids collide, or any
    /// per-tenant build fails ([`TenantSpec::build_experiment`]).
    pub fn build_with_graphs(
        &self,
        graphs: &GraphSet,
    ) -> Result<(ClusterSpec, Vec<Tenant>), SpecError> {
        if self.nodes == 0 || !self.nodes.is_power_of_two() {
            return Err(SpecError(format!(
                "nodes must be a positive power of two, got {}",
                self.nodes
            )));
        }
        if self.tenants.is_empty() {
            return Err(SpecError("tenant list is empty".into()));
        }
        let cluster = ClusterSpec::h100(self.nodes);
        let mut tenants = Vec::with_capacity(self.tenants.len());
        for (index, t) in self.tenants.iter().enumerate() {
            let id = t.id.unwrap_or(index as u64);
            if tenants.iter().any(|prev: &Tenant| prev.id() == id) {
                return Err(SpecError(format!("duplicate tenant id {id}")));
            }
            if tenants.iter().any(|prev: &Tenant| prev.name() == t.name) {
                return Err(SpecError(format!("duplicate tenant name `{}`", t.name)));
            }
            let exp = t.build_experiment(&cluster, self.seed(), graphs)?;
            tenants.push(
                Tenant::new(&t.name, id, exp)
                    .with_priority(t.priority.unwrap_or(1.0))
                    .with_iterations(t.iterations.unwrap_or(2)),
            );
        }
        Ok((cluster, tenants))
    }
}

fn model_size(size: &str) -> Result<ModelSpec, SpecError> {
    ModelSpec::by_size(size).ok_or_else(|| {
        SpecError(format!(
            "unknown model size `{size}` (expected 7b|13b|34b|70b)"
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant(name: &str) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            id: None,
            priority: None,
            algo: Some("dpo".into()),
            actor: Some("7b".into()),
            critic: None,
            batch: Some(32),
            graph: None,
            iterations: None,
            faults: None,
            elastic: None,
        }
    }

    #[test]
    fn defaults_fill_in() {
        let spec = SchedSpec {
            nodes: 1,
            seed: None,
            tenants: vec![tenant("a"), tenant("b")],
        };
        let (cluster, tenants) = spec.build().unwrap();
        assert_eq!(cluster.total_gpus(), 8);
        assert_eq!(spec.seed(), 1);
        assert_eq!(tenants[0].id(), 0);
        assert_eq!(tenants[1].id(), 1);
        assert_eq!(tenants[0].priority(), 1.0);
        assert_eq!(tenants[0].iterations(), 2);
        assert!(tenants[0].experiment().replan_policy().is_none());
    }

    #[test]
    fn elastic_attaches_replan_policy() {
        let mut t = tenant("a");
        t.elastic = Some(true);
        let spec = SchedSpec {
            nodes: 1,
            seed: Some(7),
            tenants: vec![t],
        };
        let (_, tenants) = spec.build().unwrap();
        assert!(tenants[0].experiment().replan_policy().is_some());
    }

    #[test]
    fn rejects_bad_specs() {
        let empty = SchedSpec {
            nodes: 1,
            seed: None,
            tenants: vec![],
        };
        assert!(empty.build().is_err());

        let odd_nodes = SchedSpec {
            nodes: 3,
            seed: None,
            tenants: vec![tenant("a")],
        };
        assert!(odd_nodes.build().is_err());

        let mut dup = tenant("a");
        dup.id = Some(0);
        let dup_ids = SchedSpec {
            nodes: 1,
            seed: None,
            tenants: vec![tenant("a"), dup],
        };
        assert!(dup_ids.build().is_err());

        let mut bad_model = tenant("a");
        bad_model.actor = Some("9000b".into());
        let bad = SchedSpec {
            nodes: 1,
            seed: None,
            tenants: vec![bad_model],
        };
        assert!(bad.build().is_err());

        let mut bad_algo = tenant("a");
        bad_algo.algo = Some("sarsa".into());
        let bad = SchedSpec {
            nodes: 1,
            seed: None,
            tenants: vec![bad_algo],
        };
        assert!(bad.build().is_err());
    }

    #[test]
    fn graph_field_routes_through_the_preloaded_set() {
        let graph_json = r#"{
            "models": [{"role": "m", "arch": "7b"}],
            "data": ["prompts"],
            "calls": [
                {"name": "m_inf", "model": "m", "kind": "inf",
                 "batch": 32, "seq_len": 256, "inputs": ["prompts"], "outputs": ["s"]},
                {"name": "m_train", "model": "m", "kind": "train",
                 "batch": 32, "seq_len": 256, "inputs": ["s"]}
            ]
        }"#;
        let gspec: GraphSpec = serde_json::from_str(graph_json).unwrap();
        let mut t = tenant("g");
        t.actor = None;
        t.algo = None;
        t.batch = None;
        t.graph = Some("my-graph.json".into());
        let spec = SchedSpec {
            nodes: 1,
            seed: None,
            tenants: vec![t.clone()],
        };
        // Not pre-loaded: a named error, not a panic.
        let err = spec.build().unwrap_err();
        assert!(err.to_string().contains("my-graph.json"), "{err}");
        // Pre-loaded: the tenant gets the user-defined graph.
        let mut graphs = GraphSet::new();
        graphs.insert("my-graph.json".into(), gspec);
        let (_, tenants) = spec.build_with_graphs(&graphs).unwrap();
        assert_eq!(tenants[0].experiment().graph().n_calls(), 2);
    }

    #[test]
    fn graph_and_actor_are_mutually_exclusive() {
        let mut both = tenant("x");
        both.graph = Some("g.json".into());
        let spec = SchedSpec {
            nodes: 1,
            seed: None,
            tenants: vec![both],
        };
        let err = spec.build().unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");

        let mut neither = tenant("y");
        neither.actor = None;
        let spec = SchedSpec {
            nodes: 1,
            seed: None,
            tenants: vec![neither],
        };
        let err = spec.build().unwrap_err();
        assert!(err.to_string().contains("either"), "{err}");
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = SchedSpec {
            nodes: 2,
            seed: Some(3),
            tenants: vec![tenant("a"), tenant("b")],
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: SchedSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
