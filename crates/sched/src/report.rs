//! The aggregated multi-tenant run report.
//!
//! [`SchedReport`] folds the schedule and the per-tenant
//! [`RunReport`]s into the numbers an operator
//! cares about: measured step time and throughput per tenant, realized
//! stretch (measured step vs. the estimated solo full-cluster step), the
//! priority-weighted makespan the scheduler optimized, and a Jain fairness
//! index over inverse stretches — `1.0` means every tenant is slowed down
//! equally, lower values mean the slowdown is concentrated on few tenants.

use crate::obs::queue_wait_secs;
use crate::scheduler::Schedule;
use real_estimator::MemoStats;
use real_obs::profile::PercentileSummary;
use real_runtime::RunReport;
use serde::{Deserialize, Serialize};

/// One tenant's measured outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantOutcome {
    /// Tenant display name.
    pub name: String,
    /// Stable tenant id.
    pub id: u64,
    /// Priority weight.
    pub priority: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Allocated mesh, rendered (e.g. `node0`, `node[0-1]`).
    pub allocation: String,
    /// GPUs in the allocation.
    pub gpus: u32,
    /// Scheduler-estimated step seconds on the allocation.
    pub est_step_secs: f64,
    /// Estimated step seconds running alone on the full cluster.
    pub solo_step_secs: f64,
    /// Measured steady-state step seconds.
    pub measured_step_secs: f64,
    /// Virtual seconds until the tenant's last GPU went idle.
    pub total_secs: f64,
    /// Realized slowdown: measured step over solo step.
    pub stretch: f64,
    /// Measured RLHF iterations per second.
    pub steps_per_sec: f64,
    /// Elastic re-plan switches committed (freed-capacity grabs).
    pub reallocs: u64,
    /// Fault events injected into this tenant's fault domain.
    pub faults_injected: usize,
    /// Whether the allocation was time-shared with another tenant.
    pub time_shared: bool,
}

/// The aggregated multi-tenant report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedReport {
    /// Per-tenant outcomes, in admission order.
    pub tenants: Vec<TenantOutcome>,
    /// Measured makespan: the last tenant's finish time.
    pub makespan_secs: f64,
    /// Measured priority-weighted makespan `Σᵢ pᵢ·totalᵢ`.
    pub weighted_makespan_secs: f64,
    /// Worst realized per-tenant stretch.
    pub max_stretch: f64,
    /// Jain fairness index over inverse stretches, in `(0, 1]`.
    pub fairness_index: f64,
    /// Total committed elastic re-plan switches.
    pub total_reallocs: u64,
    /// Whether any allocation was time-shared.
    pub oversubscribed: bool,
    /// Planning-time memo-cache statistics, carried over from
    /// [`Schedule::memo`]: the admission sweep's shared per-tenant caches.
    pub memo: MemoStats,
    /// Stretch and queue-wait p50/p95/p99 summaries across the tenants
    /// (the same rows `real serve` reports, so batch and serving runs can
    /// be compared percentile-for-percentile).
    pub percentiles: Vec<PercentileSummary>,
}

impl SchedReport {
    /// Folds a finished run. `reports` must parallel `schedule.tenants`
    /// (as produced by [`Scheduler::run`](crate::Scheduler::run)).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn new(schedule: &Schedule, reports: &[RunReport]) -> Self {
        assert_eq!(
            schedule.tenants.len(),
            reports.len(),
            "one report per scheduled tenant"
        );
        let tenants: Vec<TenantOutcome> = schedule
            .tenants
            .iter()
            .zip(reports)
            .map(|(placed, run)| {
                let stretch = if placed.solo_step_secs > 0.0 {
                    run.iter_time / placed.solo_step_secs
                } else {
                    1.0
                };
                TenantOutcome {
                    name: placed.name.clone(),
                    id: placed.id,
                    priority: placed.priority,
                    iterations: run.iterations,
                    allocation: placed.allocation.to_string(),
                    gpus: placed.allocation.n_gpus(),
                    est_step_secs: placed.est_step_secs,
                    solo_step_secs: placed.solo_step_secs,
                    measured_step_secs: run.iter_time,
                    total_secs: run.total_time,
                    stretch,
                    steps_per_sec: if run.total_time > 0.0 {
                        run.iterations as f64 / run.total_time
                    } else {
                        0.0
                    },
                    reallocs: run.replan.switches,
                    faults_injected: run.faults.injected,
                    time_shared: placed.time_shared,
                }
            })
            .collect();
        let makespan_secs = tenants.iter().map(|t| t.total_secs).fold(0.0, f64::max);
        let weighted_makespan_secs = tenants.iter().map(|t| t.priority * t.total_secs).sum();
        let max_stretch = tenants.iter().map(|t| t.stretch).fold(0.0, f64::max);
        let total_reallocs = tenants.iter().map(|t| t.reallocs).sum();
        let oversubscribed = tenants.iter().any(|t| t.time_shared);
        let stretches: Vec<f64> = tenants.iter().map(|t| t.stretch).collect();
        let waits: Vec<f64> = tenants.iter().map(queue_wait_secs).collect();
        Self {
            fairness_index: jain_index(&tenants),
            percentiles: vec![
                PercentileSummary::from_values("stretch", &stretches),
                PercentileSummary::from_values("queue-wait-seconds", &waits),
            ],
            tenants,
            makespan_secs,
            weighted_makespan_secs,
            max_stretch,
            total_reallocs,
            oversubscribed,
            memo: schedule.memo,
        }
    }

    /// Renders the report as an aligned table plus aggregate summary.
    pub fn render(&self) -> String {
        let mut table = real_util::Table::new(vec![
            "tenant",
            "prio",
            "allocation",
            "step (s)",
            "stretch",
            "steps/s",
            "total (s)",
            "reallocs",
            "faults",
            "shared",
        ]);
        for t in &self.tenants {
            table.row(vec![
                t.name.clone(),
                format!("{:.1}", t.priority),
                t.allocation.clone(),
                format!("{:.3}", t.measured_step_secs),
                format!("{:.2}", t.stretch),
                format!("{:.4}", t.steps_per_sec),
                format!("{:.1}", t.total_secs),
                t.reallocs.to_string(),
                t.faults_injected.to_string(),
                if t.time_shared { "yes" } else { "no" }.to_string(),
            ]);
        }
        let mut out = table.render();
        if !self.percentiles.is_empty() {
            let mut pct =
                real_util::Table::new(vec!["percentile", "count", "p50", "p95", "p99", "max"]);
            for p in &self.percentiles {
                pct.row(vec![
                    p.name.clone(),
                    p.count.to_string(),
                    format!("{:.3}", p.p50),
                    format!("{:.3}", p.p95),
                    format!("{:.3}", p.p99),
                    format!("{:.3}", p.max),
                ]);
            }
            out.push('\n');
            out.push_str(&pct.render());
        }
        out.push_str(&format!(
            "\nmakespan {:.1}s   weighted {:.1}s   max stretch {:.2}   fairness {:.3}   reallocs {}{}\n",
            self.makespan_secs,
            self.weighted_makespan_secs,
            self.max_stretch,
            self.fairness_index,
            self.total_reallocs,
            if self.oversubscribed {
                "   [oversubscribed]"
            } else {
                ""
            },
        ));
        out
    }
}

/// Jain fairness index over inverse stretches: `(Σx)² / (n·Σx²)` with
/// `xᵢ = 1/stretchᵢ`. Equal slowdowns give `1.0`; one starved tenant among
/// `n` drives it toward `1/n`.
fn jain_index(tenants: &[TenantOutcome]) -> f64 {
    if tenants.is_empty() {
        return 1.0;
    }
    let xs: Vec<f64> = tenants
        .iter()
        .map(|t| {
            if t.stretch > 0.0 {
                1.0 / t.stretch
            } else {
                0.0
            }
        })
        .collect();
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(name: &str, stretch: f64) -> TenantOutcome {
        TenantOutcome {
            name: name.into(),
            id: 0,
            priority: 1.0,
            iterations: 2,
            allocation: "node0".into(),
            gpus: 8,
            est_step_secs: 1.0,
            solo_step_secs: 1.0,
            measured_step_secs: stretch,
            total_secs: 2.0 * stretch,
            stretch,
            steps_per_sec: 1.0 / stretch,
            reallocs: 0,
            faults_injected: 0,
            time_shared: false,
        }
    }

    #[test]
    fn jain_index_is_one_for_equal_stretch_and_drops_when_skewed() {
        let equal = vec![outcome("a", 2.0), outcome("b", 2.0)];
        assert!((jain_index(&equal) - 1.0).abs() < 1e-12);
        let skewed = vec![outcome("a", 1.0), outcome("b", 10.0)];
        let j = jain_index(&skewed);
        assert!(
            j < 1.0 && j > 0.5,
            "two tenants bound j in (1/2, 1), got {j}"
        );
    }

    #[test]
    fn empty_and_degenerate_inputs_do_not_divide_by_zero() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[outcome("a", 0.0)]), 1.0);
    }
}
