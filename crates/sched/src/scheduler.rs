//! The top-level allocation search and the joint run driver.
//!
//! [`Scheduler::plan`] partitions the cluster between tenants:
//!
//! 1. **Candidate generation** — for every §4 buddy-aligned mesh, build the
//!    tenant's restricted [`SearchSpace`] (assignments confined to meshes
//!    nested in the candidate allocation) and price it with a short MCMC
//!    chain under [`Estimator::allocation_cost`]. The chain is deliberately
//!    short ([`SchedConfig::score_steps`]): the allocation search evaluates
//!    dozens of (tenant, mesh) pairs and only needs a consistent relative
//!    ranking plus a memory-feasible plan (the greedy start alone is
//!    usually memory-infeasible — the §5.2 caveat); the winning split is
//!    refined with a longer warm-started chain afterwards.
//! 2. **Split search** — enumerate pairwise-disjoint combinations of the
//!    candidate meshes ([`partition::enumerate_splits`]) and keep the split
//!    minimizing priority-weighted makespan `Σᵢ pᵢ·stepᵢ·itersᵢ` among
//!    those whose worst per-tenant stretch (vs. running alone on the full
//!    cluster) stays within [`SchedConfig::max_stretch`]. If every split
//!    violates the bound, the bound is relaxed (recorded in
//!    [`Schedule::stretch_relaxed`]) rather than rejecting the workload.
//! 3. **Oversubscription fallback** — when no disjoint split exists, the
//!    cluster is oversubscribed: tenants are placed greedily in priority
//!    order, preferring disjoint meshes but sharing when they must
//!    ([`TenantPlan::time_shared`]). Shared meshes serialize on the FIFO
//!    timelines at run time — slower, never deadlocked.
//! 4. **Refinement** — each placed tenant's greedy plan seeds a
//!    warm-started MCMC chain over its restricted space (budget
//!    [`SchedConfig::refine_steps`]), seeded per tenant id so results are
//!    reproducible and independent of co-tenant membership.
//!
//! [`Scheduler::run`] executes the schedule under
//! [`real_runtime::run_multi`] and folds the per-tenant [`RunReport`]s into
//! a [`SchedReport`].

use crate::report::SchedReport;
use real_cluster::{partition, ClusterSpec, DeviceMesh};
use real_core::Tenant;
use real_dataflow::ExecutionPlan;
use real_estimator::{CostMemo, Estimator, MemoStats};
use real_runtime::{run_multi, RunError, RunReport, TenantElastic, TenantRun};
use real_search::{search_warm_with_memo, search_with_memo, McmcConfig, PruneLevel, SearchSpace};
use real_util::DeterministicRng;
use std::fmt;
use std::time::Duration;

/// Tunables for the allocation search.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedConfig {
    /// Prune level for the per-tenant restricted search spaces.
    pub prune: PruneLevel,
    /// MCMC budget for pricing each candidate (tenant, mesh) pair during
    /// the allocation search. Short on purpose — it only needs a
    /// memory-feasible plan and a stable relative ranking.
    pub score_steps: u64,
    /// MCMC budget for refining each tenant's plan on its final
    /// allocation. `0` keeps the scoring plans.
    pub refine_steps: u64,
    /// MCMC sampling temperature for refinement.
    pub beta: f64,
    /// Fairness bound: no tenant's estimated step may exceed `max_stretch`
    /// times its solo (full-cluster) step. Relaxed when infeasible.
    pub max_stretch: f64,
    /// Cap on the number of disjoint splits scored (deterministic prefix
    /// of the lexicographic enumeration).
    pub max_splits: usize,
    /// Seed for refinement chains and the joint run.
    pub seed: u64,
    /// Kernel-trace capacity applied to every tenant at run time (`0`
    /// leaves each tenant's own engine-config capacity untouched).
    pub trace_capacity: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self {
            prune: PruneLevel::Aggressive,
            score_steps: 300,
            refine_steps: 2_000,
            beta: 6.0,
            max_stretch: 4.0,
            max_splits: 20_000,
            seed: 1,
            trace_capacity: 0,
        }
    }
}

/// Why scheduling failed.
#[derive(Debug)]
pub enum SchedError {
    /// The tenant list was empty.
    NoTenants,
    /// A tenant's experiment targets a different cluster than the
    /// scheduler manages.
    ClusterMismatch {
        /// Offending tenant name.
        tenant: String,
    },
    /// Two tenants share an id (ids seed RNG substreams, so they must be
    /// unique).
    DuplicateId(u64),
    /// No candidate mesh can hold the tenant within device memory.
    Infeasible {
        /// Offending tenant name.
        tenant: String,
    },
    /// The joint run failed.
    Run(RunError),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::NoTenants => write!(f, "no tenants to schedule"),
            SchedError::ClusterMismatch { tenant } => write!(
                f,
                "tenant `{tenant}` targets a different cluster than the scheduler"
            ),
            SchedError::DuplicateId(id) => write!(f, "duplicate tenant id {id}"),
            SchedError::Infeasible { tenant } => write!(
                f,
                "tenant `{tenant}` fits no candidate allocation (out of device memory)"
            ),
            SchedError::Run(e) => write!(f, "joint run failed: {e}"),
        }
    }
}

impl std::error::Error for SchedError {}

impl From<RunError> for SchedError {
    fn from(e: RunError) -> Self {
        SchedError::Run(e)
    }
}

/// One tenant's placement in a [`Schedule`].
#[derive(Debug, Clone)]
pub struct TenantPlan {
    /// Tenant display name.
    pub name: String,
    /// Stable tenant id.
    pub id: u64,
    /// Priority weight.
    pub priority: f64,
    /// Iterations the tenant will run.
    pub iterations: usize,
    /// The allocated mesh (other tenants may share it when
    /// [`time_shared`](Self::time_shared)).
    pub allocation: DeviceMesh,
    /// The refined execution plan, confined to the allocation.
    pub plan: ExecutionPlan,
    /// Estimated per-iteration step time on the allocation.
    pub est_step_secs: f64,
    /// Estimated step time running alone on the full cluster.
    pub solo_step_secs: f64,
    /// Whether the allocation overlaps another tenant's (oversubscribed
    /// time-sharing).
    pub time_shared: bool,
}

impl TenantPlan {
    /// Estimated slowdown versus running alone on the full cluster.
    pub fn stretch(&self) -> f64 {
        if self.solo_step_secs > 0.0 {
            self.est_step_secs / self.solo_step_secs
        } else {
            1.0
        }
    }
}

/// The allocation search's output: per-tenant placements plus the
/// objective values they were chosen on.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Placements, in tenant admission order.
    pub tenants: Vec<TenantPlan>,
    /// Estimated priority-weighted makespan `Σᵢ pᵢ·stepᵢ·itersᵢ`.
    pub weighted_makespan: f64,
    /// Worst estimated per-tenant stretch.
    pub max_stretch: f64,
    /// Whether any allocation is time-shared (no disjoint split existed).
    pub oversubscribed: bool,
    /// Whether the stretch bound had to be relaxed to place every tenant.
    pub stretch_relaxed: bool,
    /// Memo-cache statistics summed over every per-(tenant, mesh)
    /// candidate probe and refinement search. Each tenant shares one
    /// [`CostMemo`] across all its probes, so the admission sweep re-prices
    /// a `(call, assignment)` pair at most once per health epoch.
    pub memo: MemoStats,
}

impl Schedule {
    /// Renders the schedule as an aligned table plus objective summary —
    /// the `real sched --dry-run` output.
    pub fn render(&self) -> String {
        let mut table = real_util::Table::new(vec![
            "tenant",
            "prio",
            "iters",
            "allocation",
            "gpus",
            "est step (s)",
            "solo (s)",
            "stretch",
            "shared",
        ]);
        for t in &self.tenants {
            table.row(vec![
                t.name.clone(),
                format!("{:.1}", t.priority),
                t.iterations.to_string(),
                t.allocation.to_string(),
                t.allocation.n_gpus().to_string(),
                format!("{:.3}", t.est_step_secs),
                format!("{:.3}", t.solo_step_secs),
                format!("{:.2}", t.stretch()),
                if t.time_shared { "yes" } else { "no" }.to_string(),
            ]);
        }
        let mut out = table.render();
        out.push_str(&format!(
            "\npriority-weighted makespan: {:.3}s   max stretch: {:.2}{}{}\n",
            self.weighted_makespan,
            self.max_stretch,
            if self.oversubscribed {
                "   [oversubscribed: time-sharing]"
            } else {
                ""
            },
            if self.stretch_relaxed {
                "   [stretch bound relaxed]"
            } else {
                ""
            },
        ));
        out.push_str(&format!(
            "plan memo: {} hits / {} misses (hit rate {:.1}%)\n",
            self.memo.hits,
            self.memo.misses,
            self.memo.hit_rate() * 100.0,
        ));
        out
    }
}

/// A finished joint run: the schedule it executed, the per-tenant raw
/// [`RunReport`]s, and the folded [`SchedReport`].
#[derive(Debug, Clone)]
pub struct SchedOutcome {
    /// The schedule that ran.
    pub schedule: Schedule,
    /// Per-tenant runtime reports, in admission order.
    pub reports: Vec<RunReport>,
    /// Aggregated multi-tenant report.
    pub report: SchedReport,
}

/// One candidate placement: a mesh, the greedy plan on it, and its price.
struct Candidate {
    mesh: DeviceMesh,
    plan: ExecutionPlan,
    step: f64,
}

/// The multi-tenant scheduler for one cluster.
#[derive(Debug, Clone)]
pub struct Scheduler {
    cluster: ClusterSpec,
    config: SchedConfig,
}

impl Scheduler {
    /// A scheduler with default [`SchedConfig`].
    pub fn new(cluster: ClusterSpec) -> Self {
        Self {
            cluster,
            config: SchedConfig::default(),
        }
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: SchedConfig) -> Self {
        self.config = config;
        self
    }

    /// The managed cluster.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The active configuration.
    pub fn config(&self) -> &SchedConfig {
        &self.config
    }

    /// Runs the allocation search. See the module docs for the algorithm.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError`] when the tenant list is empty or inconsistent
    /// with the cluster, or when some tenant fits no candidate mesh.
    pub fn plan(&self, tenants: &[Tenant]) -> Result<Schedule, SchedError> {
        self.plan_prepared(tenants).map(|(schedule, _)| schedule)
    }

    /// Plans and then executes the schedule under
    /// [`real_runtime::run_multi`].
    ///
    /// # Errors
    ///
    /// Propagates planning errors ([`Scheduler::plan`]) and runtime errors
    /// as [`SchedError::Run`].
    pub fn run(&self, tenants: &[Tenant]) -> Result<SchedOutcome, SchedError> {
        let (schedule, ests) = self.plan_prepared(tenants)?;
        let mut runs = Vec::with_capacity(tenants.len());
        for (i, (tenant, placed)) in tenants.iter().zip(&schedule.tenants).enumerate() {
            let exp = tenant.experiment();
            let mut config = exp.engine_config().clone();
            if self.config.trace_capacity > 0 {
                config.trace_capacity = config.trace_capacity.max(self.config.trace_capacity);
            }
            // Resilient dispatch derives request deadlines from predicted
            // call costs; fill them from the estimator exactly as the
            // single-tenant `Experiment::run` does.
            if config.fault_plan.is_some() && config.predicted_secs.is_empty() {
                config.predicted_secs = exp
                    .graph()
                    .iter()
                    .map(|(id, def)| {
                        (
                            def.call_name.clone(),
                            ests[i].call_duration(id, placed.plan.assignment(id)),
                        )
                    })
                    .collect();
            }
            let elastic = exp.replan_policy().map(|policy| TenantElastic {
                policy: policy.clone(),
                estimator: ests[i].clone(),
            });
            runs.push(TenantRun {
                id: tenant.id(),
                name: tenant.name().to_string(),
                graph: exp.graph().clone(),
                plan: placed.plan.clone(),
                config,
                iterations: tenant.iterations(),
                allocation: placed.allocation.gpus().collect(),
                solo_step_secs: placed.solo_step_secs,
                elastic,
            });
        }
        let reports = run_multi(&self.cluster, &runs, self.config.seed)?;
        let report = SchedReport::new(&schedule, &reports);
        Ok(SchedOutcome {
            schedule,
            reports,
            report,
        })
    }

    /// The planning pipeline, also returning the per-tenant estimators so
    /// [`Scheduler::run`] does not profile twice.
    fn plan_prepared(&self, tenants: &[Tenant]) -> Result<(Schedule, Vec<Estimator>), SchedError> {
        if tenants.is_empty() {
            return Err(SchedError::NoTenants);
        }
        for t in tenants {
            if t.experiment().cluster() != &self.cluster {
                return Err(SchedError::ClusterMismatch {
                    tenant: t.name().to_string(),
                });
            }
        }
        for (i, t) in tenants.iter().enumerate() {
            if tenants[..i].iter().any(|prev| prev.id() == t.id()) {
                return Err(SchedError::DuplicateId(t.id()));
            }
        }

        let ests: Vec<Estimator> = tenants.iter().map(|t| t.experiment().prepare().0).collect();
        // One shared memo cache per tenant: every candidate probe below
        // prices the same calls on overlapping (mesh, strategy) options, so
        // later meshes mostly hit entries the earlier ones populated.
        let mut memos: Vec<CostMemo> = tenants.iter().map(|_| CostMemo::new()).collect();

        // Candidate generation: price every feasible (tenant, mesh) pair.
        let all_meshes = DeviceMesh::enumerate(&self.cluster);
        let full = DeviceMesh::full(&self.cluster);
        let mut candidates: Vec<Vec<Candidate>> = Vec::with_capacity(tenants.len());
        let mut solo: Vec<f64> = Vec::with_capacity(tenants.len());
        for (i, tenant) in tenants.iter().enumerate() {
            let graph = tenant.experiment().graph();
            let mut cands = Vec::new();
            for (mesh_index, mesh) in all_meshes.iter().enumerate() {
                let inner = partition::meshes_within(&self.cluster, mesh);
                let Ok(space) =
                    SearchSpace::try_build_on(&self.cluster, graph, self.config.prune, &inner)
                else {
                    continue;
                };
                // Seeded by (seed, tenant id, mesh): a tenant's candidate
                // prices are independent of co-tenant membership.
                let mut rng = DeterministicRng::from_seed(self.config.seed)
                    .derive("alloc")
                    .derive_index(tenant.id())
                    .derive_index(mesh_index as u64);
                let cfg = McmcConfig {
                    beta: self.config.beta,
                    max_steps: self.config.score_steps,
                    time_limit: Duration::from_secs(86_400),
                    seed: rng.next_u64(),
                    record_trace: false,
                    memo: true,
                };
                let result = search_with_memo(&ests[i], &space, &cfg, &mut memos[i]);
                let cost = ests[i].allocation_cost(&result.best_plan, mesh);
                if !result.feasible || !cost.feasible() {
                    continue;
                }
                cands.push(Candidate {
                    mesh: *mesh,
                    plan: result.best_plan,
                    step: cost.step_secs,
                });
            }
            if cands.is_empty() {
                return Err(SchedError::Infeasible {
                    tenant: tenant.name().to_string(),
                });
            }
            // Fastest first, so the capped split enumeration explores good
            // placements before hitting `max_splits`. Ties break on mesh
            // coordinates for determinism.
            cands.sort_by(|a, b| {
                a.step
                    .partial_cmp(&b.step)
                    .expect("step times are finite")
                    .then_with(|| mesh_key(&a.mesh).cmp(&mesh_key(&b.mesh)))
            });
            let solo_step = cands
                .iter()
                .find(|c| c.mesh == full)
                .map(|c| c.step)
                .unwrap_or(cands[0].step);
            solo.push(solo_step);
            candidates.push(cands);
        }

        // Split search over disjoint placements.
        let options: Vec<Vec<DeviceMesh>> = candidates
            .iter()
            .map(|cands| cands.iter().map(|c| c.mesh).collect())
            .collect();
        let splits = partition::enumerate_splits(&options, self.config.max_splits);

        let step_of = |tenant: usize, mesh: &DeviceMesh| -> f64 {
            candidates[tenant]
                .iter()
                .find(|c| &c.mesh == mesh)
                .expect("split meshes come from the candidate list")
                .step
        };
        let objective = |split: &[DeviceMesh]| -> (f64, f64) {
            let mut weighted = 0.0;
            let mut worst = 0.0f64;
            for (i, mesh) in split.iter().enumerate() {
                let step = step_of(i, mesh);
                weighted += tenants[i].priority() * step * tenants[i].iterations() as f64;
                worst = worst.max(step / solo[i]);
            }
            (weighted, worst)
        };

        let mut stretch_relaxed = false;
        let chosen: Vec<(DeviceMesh, bool)> = if splits.is_empty() {
            // Oversubscribed: no disjoint split exists. Place greedily in
            // priority order (ties: admission order), sharing when forced.
            self.place_oversubscribed(tenants, &candidates)
        } else {
            let best_bounded = splits
                .iter()
                .map(|s| (s, objective(s)))
                .filter(|(_, (_, worst))| *worst <= self.config.max_stretch)
                .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("finite objective"));
            let (split, _) = match best_bounded {
                Some(found) => found,
                None => {
                    stretch_relaxed = true;
                    splits
                        .iter()
                        .map(|s| (s, objective(s)))
                        .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("finite objective"))
                        .expect("splits is non-empty")
                }
            };
            split.iter().map(|mesh| (*mesh, false)).collect()
        };

        // Refinement: warm-started MCMC per tenant on the final allocation.
        let mut placements = Vec::with_capacity(tenants.len());
        for (i, tenant) in tenants.iter().enumerate() {
            let (mesh, time_shared) = chosen[i];
            let incumbent = candidates[i]
                .iter()
                .find(|c| c.mesh == mesh)
                .expect("chosen mesh comes from the candidate list");
            let mut plan = incumbent.plan.clone();
            let mut step = incumbent.step;
            if self.config.refine_steps > 0 {
                let inner = partition::meshes_within(&self.cluster, &mesh);
                let space = SearchSpace::try_build_on(
                    &self.cluster,
                    tenant.experiment().graph(),
                    self.config.prune,
                    &inner,
                )
                .expect("candidate meshes already built this space");
                // Seeded per tenant id, not list position: co-tenant
                // membership must not perturb a tenant's refined plan.
                let mut rng = DeterministicRng::from_seed(self.config.seed)
                    .derive("sched")
                    .derive_index(tenant.id());
                let cfg = McmcConfig {
                    beta: self.config.beta,
                    max_steps: self.config.refine_steps,
                    // Step-bounded only: wall-clock cutoffs would make the
                    // schedule depend on machine load.
                    time_limit: Duration::from_secs(86_400),
                    seed: rng.next_u64(),
                    record_trace: false,
                    memo: true,
                };
                let refined = search_warm_with_memo(&ests[i], &space, &cfg, &plan, &mut memos[i]);
                let cost = ests[i].allocation_cost(&refined.best_plan, &mesh);
                if cost.feasible() && cost.step_secs < step {
                    plan = refined.best_plan;
                    step = cost.step_secs;
                }
            }
            placements.push(TenantPlan {
                name: tenant.name().to_string(),
                id: tenant.id(),
                priority: tenant.priority(),
                iterations: tenant.iterations(),
                allocation: mesh,
                plan,
                est_step_secs: step,
                solo_step_secs: solo[i],
                time_shared,
            });
        }

        let weighted_makespan = placements
            .iter()
            .map(|p| p.priority * p.est_step_secs * p.iterations as f64)
            .sum();
        let max_stretch = placements
            .iter()
            .map(TenantPlan::stretch)
            .fold(0.0f64, f64::max);
        let oversubscribed = placements.iter().any(|p| p.time_shared);
        let memo = memos
            .iter()
            .fold(MemoStats::default(), |acc, m| acc.merged(m.stats()));
        Ok((
            Schedule {
                tenants: placements,
                weighted_makespan,
                max_stretch,
                oversubscribed,
                stretch_relaxed,
                memo,
            },
            ests,
        ))
    }

    /// Greedy placement for oversubscribed clusters: tenants in priority
    /// order pick their fastest candidate disjoint from everything already
    /// placed, falling back to their overall fastest (shared) mesh.
    fn place_oversubscribed(
        &self,
        tenants: &[Tenant],
        candidates: &[Vec<Candidate>],
    ) -> Vec<(DeviceMesh, bool)> {
        let mut order: Vec<usize> = (0..tenants.len()).collect();
        order.sort_by(|&a, &b| {
            tenants[b]
                .priority()
                .partial_cmp(&tenants[a].priority())
                .expect("priorities are finite")
                .then_with(|| a.cmp(&b))
        });
        let mut chosen: Vec<Option<(DeviceMesh, bool)>> = vec![None; tenants.len()];
        for &idx in &order {
            let placed: Vec<DeviceMesh> = chosen
                .iter()
                .filter_map(|c| c.map(|(mesh, _)| mesh))
                .collect();
            let disjoint = candidates[idx]
                .iter()
                .find(|c| placed.iter().all(|p| !p.overlaps(&c.mesh)));
            match disjoint {
                Some(c) => chosen[idx] = Some((c.mesh, false)),
                None => {
                    // Forced to share: take the fastest mesh and mark every
                    // overlapped tenant as time-shared too.
                    let mesh = candidates[idx][0].mesh;
                    for other in chosen.iter_mut().flatten() {
                        if other.0.overlaps(&mesh) {
                            other.1 = true;
                        }
                    }
                    chosen[idx] = Some((mesh, true));
                }
            }
        }
        chosen
            .into_iter()
            .map(|c| c.expect("every tenant was placed"))
            .collect()
    }
}

/// Deterministic total order on meshes for tie-breaking.
fn mesh_key(mesh: &DeviceMesh) -> (u32, u32, u32, u32) {
    (
        mesh.node_start(),
        mesh.n_nodes(),
        mesh.gpu_start(),
        mesh.gpu_width(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use real_core::Experiment;
    use real_dataflow::algo::RlhfConfig;
    use real_model::ModelSpec;

    fn quick_config() -> SchedConfig {
        SchedConfig {
            refine_steps: 200,
            ..SchedConfig::default()
        }
    }

    fn dpo_tenant(cluster: &ClusterSpec, name: &str, id: u64, batch: u64) -> Tenant {
        let exp = Experiment::dpo(
            cluster.clone(),
            ModelSpec::llama3_7b(),
            RlhfConfig::instruct_gpt(batch),
        )
        .with_quick_profile();
        Tenant::new(name, id, exp)
    }

    #[test]
    fn two_tenants_get_disjoint_allocations() {
        let cluster = ClusterSpec::h100(2);
        let tenants = vec![
            dpo_tenant(&cluster, "a", 0, 64).with_priority(2.0),
            dpo_tenant(&cluster, "b", 1, 32),
        ];
        let schedule = Scheduler::new(cluster)
            .with_config(quick_config())
            .plan(&tenants)
            .unwrap();
        assert_eq!(schedule.tenants.len(), 2);
        assert!(!schedule.oversubscribed);
        assert!(!schedule.tenants[0]
            .allocation
            .overlaps(&schedule.tenants[1].allocation));
        for t in &schedule.tenants {
            assert!(t.est_step_secs > 0.0);
            assert!(t.stretch() >= 1.0 - 1e-9);
            assert!(!t.time_shared);
        }
        assert!(schedule.weighted_makespan > 0.0);
        let rendered = schedule.render();
        assert!(rendered.contains("a") && rendered.contains("weighted makespan"));
    }

    #[test]
    fn admission_probes_share_the_per_tenant_memo_cache() {
        let cluster = ClusterSpec::h100(2);
        let tenants = vec![
            dpo_tenant(&cluster, "a", 0, 64),
            dpo_tenant(&cluster, "b", 1, 32),
        ];
        let schedule = Scheduler::new(cluster)
            .with_config(quick_config())
            .plan(&tenants)
            .unwrap();
        // Candidate probes over overlapping meshes re-price the same
        // (call, assignment) pairs, so the shared cache must report reuse.
        assert!(schedule.memo.hits > 0, "memo stats: {:?}", schedule.memo);
        assert!(schedule.memo.misses > 0);
        assert!(schedule.memo.hit_rate() > 0.0);
        assert_eq!(schedule.memo.invalidations, 0);
        assert!(schedule.render().contains("plan memo:"));
    }

    #[test]
    fn planning_is_deterministic() {
        let cluster = ClusterSpec::h100(2);
        let tenants = vec![
            dpo_tenant(&cluster, "a", 0, 64),
            dpo_tenant(&cluster, "b", 1, 32),
        ];
        let sched = Scheduler::new(cluster).with_config(quick_config());
        let s1 = sched.plan(&tenants).unwrap();
        let s2 = sched.plan(&tenants).unwrap();
        assert_eq!(
            s1.weighted_makespan.to_bits(),
            s2.weighted_makespan.to_bits()
        );
        for (a, b) in s1.tenants.iter().zip(&s2.tenants) {
            assert_eq!(a.allocation, b.allocation);
            assert_eq!(a.est_step_secs.to_bits(), b.est_step_secs.to_bits());
        }
    }

    #[test]
    fn bad_tenant_sets_are_rejected() {
        let cluster = ClusterSpec::h100(1);
        let sched = Scheduler::new(cluster.clone());
        assert!(matches!(sched.plan(&[]), Err(SchedError::NoTenants)));

        let dup = vec![
            dpo_tenant(&cluster, "a", 0, 32),
            dpo_tenant(&cluster, "b", 0, 32),
        ];
        assert!(matches!(sched.plan(&dup), Err(SchedError::DuplicateId(0))));

        let other = vec![dpo_tenant(&ClusterSpec::h100(2), "a", 0, 32)];
        assert!(matches!(
            sched.plan(&other),
            Err(SchedError::ClusterMismatch { .. })
        ));
    }
}
