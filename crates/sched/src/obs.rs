//! Observability for multi-tenant runs: per-tenant Chrome-trace process
//! groups and the `sched/*` metrics namespace.
//!
//! Single-tenant traces map nodes to Chrome processes; with several
//! tenants sharing one cluster that grouping interleaves unrelated
//! workloads. [`sched_event_stream`] instead gives every tenant its own
//! process row (`tenant:<name>`), with one thread lane per GPU the tenant
//! actually touched — open the export in Perfetto and each tenant reads as
//! an isolated program, including any time-shared GPUs appearing in two
//! process groups at disjoint times.

use crate::report::SchedReport;
use crate::scheduler::Schedule;
use real_obs::{EventStream, LaneId, MetricsRegistry};
use real_runtime::RunReport;

/// First Chrome process id used for tenant groups. High enough that node
/// pids (small integers) and the runtime's synthetic lanes (near
/// `u32::MAX`) can never collide with a tenant row.
pub const TENANT_PID_BASE: u32 = 1 << 20;

/// Builds one event stream with a Chrome process group per tenant, spans
/// taken from each tenant's kernel trace. Tenants whose engine config left
/// tracing disabled contribute an empty (but named) process group.
///
/// # Panics
///
/// Panics if `reports` does not parallel `schedule.tenants`.
pub fn sched_event_stream(schedule: &Schedule, reports: &[RunReport]) -> EventStream {
    assert_eq!(
        schedule.tenants.len(),
        reports.len(),
        "one report per scheduled tenant"
    );
    let total: usize = reports.iter().map(|r| r.trace.events().len()).sum();
    let mut stream = EventStream::with_capacity(total * 2 + reports.len() * 8 + 16);
    for (index, (placed, report)) in schedule.tenants.iter().zip(reports).enumerate() {
        let pid = TENANT_PID_BASE + index as u32;
        let process = format!("tenant:{}", placed.name);
        // Name every lane in the tenant's allocation up front so even an
        // idle or untraced tenant shows its process group.
        for gpu in placed.allocation.gpus() {
            let lane = LaneId { pid, tid: gpu.0 };
            stream.set_lane_name(lane, &process, &format!("{gpu}"));
        }
        for ev in report.trace.events() {
            let lane = LaneId {
                pid,
                tid: ev.gpu as u32,
            };
            stream.span(lane, ev.label, &ev.category.to_string(), ev.start, ev.end);
        }
    }
    stream
}

/// `sched/*` metrics for a finished multi-tenant run: aggregate gauges
/// (tenant count, weighted makespan, fairness index, max stretch) plus
/// per-tenant labeled stretch/step/total gauges and realloc counters.
pub fn sched_metrics(report: &SchedReport) -> MetricsRegistry {
    let mut m = MetricsRegistry::new();
    m.gauge_set("sched/tenants", &[], report.tenants.len() as f64);
    m.gauge_set("sched/makespan_seconds", &[], report.makespan_secs);
    m.gauge_set(
        "sched/weighted_makespan_seconds",
        &[],
        report.weighted_makespan_secs,
    );
    m.gauge_set("sched/max_stretch", &[], report.max_stretch);
    m.gauge_set("sched/fairness_index", &[], report.fairness_index);
    m.counter_add("sched/reallocs", &[], report.total_reallocs as f64);
    m.gauge_set(
        "sched/oversubscribed",
        &[],
        if report.oversubscribed { 1.0 } else { 0.0 },
    );
    for t in &report.tenants {
        let labels = [("tenant", t.name.as_str())];
        m.gauge_set("sched/stretch", &labels, t.stretch);
        m.gauge_set("sched/step_seconds", &labels, t.measured_step_secs);
        m.gauge_set("sched/total_seconds", &labels, t.total_secs);
        m.gauge_set("sched/steps_per_sec", &labels, t.steps_per_sec);
        m.counter_add("sched/reallocs", &labels, t.reallocs as f64);
        m.counter_add("sched/faults_injected", &labels, t.faults_injected as f64);
    }
    m
}
