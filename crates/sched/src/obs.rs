//! Observability for multi-tenant runs: per-tenant Chrome-trace process
//! groups and the `sched/*` metrics namespace.
//!
//! Single-tenant traces map nodes to Chrome processes; with several
//! tenants sharing one cluster that grouping interleaves unrelated
//! workloads. [`sched_event_stream`] instead gives every tenant its own
//! process row (`tenant:<name>`), with one thread lane per GPU the tenant
//! actually touched — open the export in Perfetto and each tenant reads as
//! an isolated program, including any time-shared GPUs appearing in two
//! process groups at disjoint times.

use crate::report::{SchedReport, TenantOutcome};
use crate::scheduler::Schedule;
use real_obs::profile::PercentileSummary;
use real_obs::{EventStream, LaneId, MetricsRegistry};
use real_runtime::RunReport;

/// First Chrome process id used for tenant groups. High enough that node
/// pids (small integers) and the runtime's synthetic lanes (near
/// `u32::MAX`) can never collide with a tenant row.
pub const TENANT_PID_BASE: u32 = 1 << 20;

/// Thread-id base for a tenant's master control lanes (one per call),
/// placed far above any global GPU index so the two never collide inside
/// one tenant process group.
pub const TENANT_MASTER_TID_BASE: u32 = 1 << 16;

/// Histogram bucket bounds for per-tenant stretch observations
/// (`sched/stretch_hist`): stretch 1.0 is a solo-speed run, the top bucket
/// collects pathological starvation.
pub const STRETCH_BOUNDS: &[f64] = &[1.0, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0, 25.0];

/// Histogram bucket bounds for per-tenant queue-wait seconds
/// (`sched/queue_wait_hist`).
pub const QUEUE_WAIT_BOUNDS: &[f64] = &[0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0];

/// Seconds a tenant spent not making step progress: total wall time minus
/// the time its iterations actually took. Time-shared or preempted tenants
/// accumulate this as queue wait.
pub fn queue_wait_secs(t: &TenantOutcome) -> f64 {
    (t.total_secs - t.iterations as f64 * t.measured_step_secs).max(0.0)
}

/// Stretch and queue-wait percentile summaries across the run's tenants.
/// [`SchedReport::new`] now computes and embeds these
/// ([`SchedReport::percentiles`], rendered by `real sched` and mirrored in
/// `--json`); this accessor remains for callers holding only a report.
pub fn sched_percentiles(report: &SchedReport) -> Vec<PercentileSummary> {
    report.percentiles.clone()
}

/// Builds one event stream with a Chrome process group per tenant, spans
/// taken from each tenant's kernel trace. Tenants whose engine config left
/// tracing disabled contribute an empty (but named) process group.
///
/// # Panics
///
/// Panics if `reports` does not parallel `schedule.tenants`.
pub fn sched_event_stream(schedule: &Schedule, reports: &[RunReport]) -> EventStream {
    assert_eq!(
        schedule.tenants.len(),
        reports.len(),
        "one report per scheduled tenant"
    );
    let total: usize = reports.iter().map(|r| r.trace.events().len()).sum();
    let requests: usize = reports.iter().map(|r| r.master_log.requests.len()).sum();
    let mut stream = EventStream::with_capacity(total * 2 + requests * 2 + reports.len() * 8 + 16);
    for (index, (placed, report)) in schedule.tenants.iter().zip(reports).enumerate() {
        let pid = TENANT_PID_BASE + index as u32;
        let process = format!("tenant:{}", placed.name);
        // Name every lane in the tenant's allocation up front so even an
        // idle or untraced tenant shows its process group.
        for gpu in placed.allocation.gpus() {
            let lane = LaneId { pid, tid: gpu.0 };
            stream.set_lane_name(lane, &process, &format!("{gpu}"));
        }
        for ev in report.trace.events() {
            let lane = LaneId {
                pid,
                tid: ev.gpu as u32,
            };
            stream.span(lane, ev.label, &ev.category.to_string(), ev.start, ev.end);
        }
        // Master control lanes: one span per dispatched request, tagged with
        // its call phase so `real profile` can attribute tenant makespans.
        // Tenant plans carry no dataflow graph, so the phase is read off the
        // call-name suffix convention.
        for req in &report.master_log.requests {
            let Some(resp) = report.master_log.response(req.call, req.iter) else {
                continue;
            };
            let lane = LaneId {
                pid,
                tid: TENANT_MASTER_TID_BASE + req.call.0 as u32,
            };
            stream.set_lane_name(lane, &process, &format!("master:{}", req.handle));
            stream.span(
                lane,
                &format!("{}#{}", req.handle, req.iter),
                real_obs::profile::call_category_for_name(&req.handle),
                req.dispatch_time,
                resp.completed_at,
            );
        }
    }
    stream
}

/// `sched/*` metrics for a finished multi-tenant run: aggregate gauges
/// (tenant count, weighted makespan, fairness index, max stretch) plus
/// per-tenant labeled stretch/step/total gauges and realloc counters.
pub fn sched_metrics(report: &SchedReport) -> MetricsRegistry {
    let mut m = MetricsRegistry::new();
    m.gauge_set("sched/tenants", &[], report.tenants.len() as f64);
    m.gauge_set("sched/makespan_seconds", &[], report.makespan_secs);
    m.gauge_set(
        "sched/weighted_makespan_seconds",
        &[],
        report.weighted_makespan_secs,
    );
    m.gauge_set("sched/max_stretch", &[], report.max_stretch);
    m.gauge_set("sched/fairness_index", &[], report.fairness_index);
    m.counter_add("sched/reallocs", &[], report.total_reallocs as f64);
    m.gauge_set(
        "sched/oversubscribed",
        &[],
        if report.oversubscribed { 1.0 } else { 0.0 },
    );
    // Planning-time memo-cache effectiveness: the admission sweep shares
    // one pricing cache per tenant across every candidate-mesh probe, so a
    // healthy schedule shows a hit rate well above zero.
    m.counter_add("sched/memo_hits", &[], report.memo.hits as f64);
    m.counter_add("sched/memo_misses", &[], report.memo.misses as f64);
    m.ratio_gauge(
        "sched/memo_hit_rate",
        &[],
        report.memo.hits as f64,
        (report.memo.hits + report.memo.misses) as f64,
    );
    for t in &report.tenants {
        let labels = [("tenant", t.name.as_str())];
        m.gauge_set("sched/stretch", &labels, t.stretch);
        m.histogram_observe("sched/stretch_hist", &[], STRETCH_BOUNDS, t.stretch);
        m.histogram_observe(
            "sched/queue_wait_hist",
            &[],
            QUEUE_WAIT_BOUNDS,
            queue_wait_secs(t),
        );
        m.gauge_set("sched/step_seconds", &labels, t.measured_step_secs);
        m.gauge_set("sched/total_seconds", &labels, t.total_secs);
        m.gauge_set("sched/steps_per_sec", &labels, t.steps_per_sec);
        m.counter_add("sched/reallocs", &labels, t.reallocs as f64);
        m.counter_add("sched/faults_injected", &labels, t.faults_injected as f64);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use real_estimator::MemoStats;

    #[test]
    fn sched_metrics_expose_the_planning_memo_hit_rate() {
        let report = SchedReport {
            tenants: Vec::new(),
            makespan_secs: 0.0,
            weighted_makespan_secs: 0.0,
            max_stretch: 0.0,
            fairness_index: 1.0,
            total_reallocs: 0,
            oversubscribed: false,
            memo: MemoStats {
                hits: 30,
                misses: 10,
                invalidations: 1,
                entries: 10,
            },
            percentiles: Vec::new(),
        };
        let m = sched_metrics(&report);
        assert_eq!(m.get("sched/memo_hits", &[]).unwrap().scalar(), 30.0);
        assert_eq!(m.get("sched/memo_misses", &[]).unwrap().scalar(), 10.0);
        assert_eq!(m.get("sched/memo_hit_rate", &[]).unwrap().scalar(), 0.75);
    }
}
