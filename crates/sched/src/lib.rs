//! # real-sched — multi-tenant cluster scheduling
//!
//! Packs several concurrent [`Tenant`](real_core::Tenant) experiments onto
//! one simulated cluster. The paper's planner (§5) optimizes a single
//! experiment on a dedicated [`DeviceMesh`](real_cluster::DeviceMesh); this
//! crate lifts that machinery one level up:
//!
//! 1. **Allocation search** ([`Scheduler::plan`]): enumerate buddy-aligned
//!    mesh splits of the cluster ([`real_cluster::partition`]), score each
//!    candidate split with per-tenant greedy plans on the restricted
//!    [`SearchSpace`](real_search::SearchSpace), and pick the split
//!    minimizing the *priority-weighted makespan*
//!    `Σᵢ priorityᵢ · stepᵢ · iterationsᵢ` subject to a max-stretch
//!    fairness bound (no tenant may run more than `max_stretch` times
//!    slower than it would alone on the full cluster). The winning split's
//!    per-tenant plans are then refined by warm-started MCMC.
//! 2. **Joint execution** ([`Scheduler::run`]): the refined schedule runs
//!    under [`real_runtime::run_multi`] — tenant timelines interleave on
//!    one shared virtual clock, fault domains stay per-tenant, and freed
//!    capacity flows to the highest-stretch survivor through the elastic
//!    re-plan gate.
//!
//! Oversubscription is handled by construction: when no disjoint split
//! exists, tenants time-share meshes and the shared FIFO timelines
//! serialize their kernels (slower, never deadlocked).
//!
//! Tenant sets load from a serde spec ([`SchedSpec`], `tenants.json` on the
//! CLI), and results surface as a [`SchedReport`] (per-tenant stretch,
//! throughput, Jain fairness index, reallocation counts) plus per-tenant
//! Chrome-trace process groups and `sched/*` metrics ([`obs`]).

pub mod obs;
pub mod report;
pub mod scheduler;
pub mod spec;

pub use report::{SchedReport, TenantOutcome};
pub use scheduler::{SchedConfig, SchedError, SchedOutcome, Schedule, Scheduler, TenantPlan};
pub use spec::{GraphSet, SchedSpec, SpecError, TenantSpec};
