//! `MaxMem(G_p)` (§5.1): peak per-GPU memory of an execution plan.
//!
//! Following §5.1 exactly: static memory "consists of the gradients and
//! optimizer states" and lives on a trainable model's training mesh for the
//! whole experiment; *all* weights are reallocable active memory, charged —
//! together with activations, logits, and KV cache — per call on the call's
//! mesh. Calls sharing a GPU serialize, so per GPU the peak active term is
//! the max over that GPU's calls.

use real_cluster::{ClusterSpec, DeviceMesh};
use real_dataflow::{CallAssignment, CallType, DataflowGraph, ExecutionPlan, ModelFunctionCallDef};
use real_model::MemoryModel;

/// Static (gradient + optimizer-state) bytes per GPU that a trainable
/// model's training call pins on every GPU of its mesh. Pure in
/// `(def, assignment)` — the memo cache keys on exactly those.
pub(crate) fn anchor_static_bytes(def: &ModelFunctionCallDef, a: &CallAssignment) -> u64 {
    MemoryModel::new(def.model.clone()).static_optim_bytes(&a.strategy)
}

/// Active bytes one call charges on every GPU of its mesh while running:
/// weights, activations, logits and KV cache per §5.1. Pure in
/// `(def, assignment)`.
pub(crate) fn call_active_bytes(def: &ModelFunctionCallDef, a: &CallAssignment) -> u64 {
    let mm = MemoryModel::new(def.model.clone());
    let dp = u64::from(a.strategy.dp());
    match def.call_type {
        CallType::Generate {
            batch,
            prompt_len,
            gen_len,
        } => mm.gen_active_bytes(&a.strategy, batch.div_ceil(dp), prompt_len + gen_len),
        CallType::Inference { batch, seq_len } => {
            mm.infer_active_bytes(&a.strategy, batch.div_ceil(dp) * seq_len)
        }
        CallType::TrainStep {
            batch,
            seq_len,
            n_minibatches,
        } => {
            let per_mini = batch.div_ceil(dp).div_ceil(u64::from(n_minibatches.max(1)));
            mm.train_active_bytes(&a.strategy, per_mini * seq_len)
        }
    }
}

/// Appends a mesh's global-GPU index ranges to `out`. Every valid mesh is a
/// union of at most `node_count` contiguous ranges (one per node); a
/// whole-width mesh collapses to a single range.
fn mesh_ranges(mesh: &DeviceMesh, out: &mut Vec<(u64, u64)>) {
    let gpn = u64::from(mesh.gpus_per_node());
    if u64::from(mesh.gpu_width()) == gpn {
        let start = u64::from(mesh.node_start()) * gpn;
        out.push((start, start + u64::from(mesh.n_gpus())));
        return;
    }
    for node in mesh.node_start()..mesh.node_start() + mesh.n_nodes() {
        let start = u64::from(node) * gpn + u64::from(mesh.gpu_start());
        out.push((start, start + u64::from(mesh.gpu_width())));
    }
}

/// Peak per-GPU bytes from per-mesh contributions, without materializing a
/// per-GPU array: `statics` sum on every GPU their mesh covers, `actives`
/// max (calls sharing a GPU serialize, §5.1). Exact — an interval sweep
/// over range boundaries visits a superset of the distinct per-GPU sums, so
/// the result is bit-identical to the `O(total_gpus)` reference above while
/// costing `O(contributions²)`; at 8192 GPUs that's the difference between
/// touching tens of bytes and tens of kilobytes per MCMC proposal.
pub(crate) fn peak_from_contributions(
    statics: &[(DeviceMesh, u64)],
    actives: &[(DeviceMesh, u64)],
) -> u64 {
    let mut ranges: Vec<(u64, u64)> = Vec::with_capacity(statics.len() + actives.len() * 2);
    let mut static_ranges: Vec<(u64, u64, u64)> = Vec::with_capacity(statics.len() * 2);
    let mut active_ranges: Vec<(u64, u64, u64)> = Vec::with_capacity(actives.len() * 2);
    for (mesh, bytes) in statics {
        let at = ranges.len();
        mesh_ranges(mesh, &mut ranges);
        static_ranges.extend(ranges[at..].iter().map(|&(s, e)| (s, e, *bytes)));
    }
    for (mesh, bytes) in actives {
        let at = ranges.len();
        mesh_ranges(mesh, &mut ranges);
        active_ranges.extend(ranges[at..].iter().map(|&(s, e)| (s, e, *bytes)));
    }
    // Elementary intervals: between consecutive boundaries the covering set
    // is constant, so probing each interval start sees every distinct sum.
    let mut bounds: Vec<u64> = ranges.iter().map(|&(s, _)| s).collect();
    bounds.sort_unstable();
    bounds.dedup();
    let mut peak = 0u64;
    for &x in &bounds {
        let s: u64 = static_ranges
            .iter()
            .filter(|&&(lo, hi, _)| lo <= x && x < hi)
            .map(|&(_, _, b)| b)
            .sum();
        let a: u64 = active_ranges
            .iter()
            .filter(|&&(lo, hi, _)| lo <= x && x < hi)
            .map(|&(_, _, b)| b)
            .max()
            .unwrap_or(0);
        peak = peak.max(s + a);
    }
    peak
}

/// Per-GPU static bytes implied by the plan.
fn static_bytes_per_gpu(
    cluster: &ClusterSpec,
    graph: &DataflowGraph,
    plan: &ExecutionPlan,
) -> Vec<u64> {
    let n = cluster.total_gpus() as usize;
    let mut static_mem = vec![0u64; n];
    for model_name in graph.model_names() {
        if !graph.is_trainable(model_name) {
            // Frozen models (reference/reward) hold no gradients or
            // optimizer state; their weights are active memory charged by
            // their calls.
            continue;
        }
        let calls = graph.calls_of_model(model_name);
        let anchor = calls
            .iter()
            .copied()
            .find(|&c| graph.call(c).call_type.is_training())
            .expect("trainable models have a training call");
        let def = graph.call(anchor);
        let a = plan.assignment(anchor);
        let bytes = anchor_static_bytes(def, a);
        for gpu in a.mesh.gpus() {
            static_mem[gpu.0 as usize] += bytes;
        }
    }
    static_mem
}

/// The training call anchoring each trainable model's static memory, in
/// [`DataflowGraph::model_names`] order — the calls whose assignments the
/// fast path turns into static contributions.
pub(crate) fn static_anchors(graph: &DataflowGraph) -> Vec<real_dataflow::CallId> {
    graph
        .model_names()
        .into_iter()
        .filter(|m| graph.is_trainable(m))
        .map(|m| {
            graph
                .calls_of_model(m)
                .into_iter()
                .find(|&c| graph.call(c).call_type.is_training())
                .expect("trainable models have a training call")
        })
        .collect()
}

/// Peak bytes over all GPUs: static plus the worst single call's active
/// bytes on each GPU. Speculative generation calls additionally pin their
/// draft model's weights + KV cache on the draft mesh; drafts stay resident
/// while speculation is enabled, so those bytes *sum* with colocated
/// contributions like static memory does.
pub fn max_mem(cluster: &ClusterSpec, graph: &DataflowGraph, plan: &ExecutionPlan) -> u64 {
    let n = cluster.total_gpus() as usize;
    let mut static_mem = static_bytes_per_gpu(cluster, graph, plan);
    for (id, choice) in plan.spec_choices() {
        let bytes = crate::spec::draft_active_bytes(&graph.call(id).call_type, choice);
        for gpu in choice.assignment.mesh.gpus() {
            static_mem[gpu.0 as usize] += bytes;
        }
    }
    let mut peak_active = vec![0u64; n];

    for (id, def) in graph.iter() {
        let a = plan.assignment(id);
        let active = call_active_bytes(def, a);
        for gpu in a.mesh.gpus() {
            let slot = &mut peak_active[gpu.0 as usize];
            *slot = (*slot).max(active);
        }
    }

    static_mem
        .iter()
        .zip(&peak_active)
        .map(|(s, a)| s + a)
        .max()
        .unwrap_or(0)
}

/// Mean static-memory utilization over GPUs that hold any static memory
/// (Fig. 17 right: the paper's heuristic for spotting over-provisioning).
pub fn static_utilization(
    cluster: &ClusterSpec,
    graph: &DataflowGraph,
    plan: &ExecutionPlan,
) -> f64 {
    let static_mem = static_bytes_per_gpu(cluster, graph, plan);
    let cap = cluster.gpu.mem_capacity as f64;
    let used: Vec<f64> = static_mem.iter().map(|&b| b as f64 / cap).collect();
    let total: f64 = used.iter().sum();
    total / used.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use real_cluster::DeviceMesh;
    use real_dataflow::{algo, CallAssignment};
    use real_model::{ModelSpec, ParallelStrategy};
    use real_util::units::GIB;

    fn setup(nodes: u32, batch: u64) -> (ClusterSpec, DataflowGraph) {
        let cluster = ClusterSpec::h100(nodes);
        let actor = ModelSpec::llama3_7b();
        let graph = algo::ppo(
            &actor,
            &actor.critic(),
            &algo::RlhfConfig::instruct_gpt(batch),
        );
        (cluster, graph)
    }

    fn symmetric(
        cluster: &ClusterSpec,
        graph: &DataflowGraph,
        dp: u32,
        tp: u32,
        mbs: u32,
    ) -> ExecutionPlan {
        let a = CallAssignment::new(
            DeviceMesh::full(cluster),
            ParallelStrategy::new(dp, tp, 1, mbs).unwrap(),
        )
        .unwrap();
        ExecutionPlan::new(graph, cluster, vec![a; graph.n_calls()]).unwrap()
    }

    #[test]
    fn seven_b_ppo_fits_a_node_with_microbatching() {
        let (cluster, graph) = setup(1, 128);
        let plan = symmetric(&cluster, &graph, 1, 8, 8);
        let peak = max_mem(&cluster, &graph, &plan);
        assert!(peak < 80 * GIB, "peak {}", peak / GIB);
        // But it is not trivially small either: four 7B models live here.
        assert!(peak > 20 * GIB, "peak {}", peak / GIB);
    }

    #[test]
    fn unsharded_training_ooms() {
        let (cluster, graph) = setup(1, 512);
        // Pure DP: every GPU holds full actor + critic optimizer state
        // (~240 GiB) — the reason DeepSpeed-Chat needs ZeRO-3.
        let plan = symmetric(&cluster, &graph, 8, 1, 1);
        assert!(max_mem(&cluster, &graph, &plan) > 200 * GIB);
        // Sharding 8-way with micro-batching fits.
        let ok = symmetric(&cluster, &graph, 1, 8, 16);
        assert!(max_mem(&cluster, &graph, &ok) < 80 * GIB);
    }

    #[test]
    fn disjoint_meshes_split_static_memory() {
        let (cluster, graph) = setup(2, 128);
        // Everything on node 0 vs actor-family on node 0, critic-family on
        // node 1.
        let full = symmetric(&cluster, &graph, 2, 8, 8);
        let node0 = CallAssignment::new(
            DeviceMesh::whole_nodes(&cluster, 0, 1).unwrap(),
            ParallelStrategy::new(1, 8, 1, 8).unwrap(),
        )
        .unwrap();
        let node1 = CallAssignment::new(
            DeviceMesh::whole_nodes(&cluster, 1, 1).unwrap(),
            ParallelStrategy::new(1, 8, 1, 8).unwrap(),
        )
        .unwrap();
        let mut assignments = Vec::new();
        for (_, def) in graph.iter() {
            if def.model_name == "actor" || def.model_name == "reference" {
                assignments.push(node0);
            } else {
                assignments.push(node1);
            }
        }
        let split = ExecutionPlan::new(&graph, &cluster, assignments).unwrap();
        let peak_full = max_mem(&cluster, &graph, &full);
        let peak_split = max_mem(&cluster, &graph, &split);
        // DP does not shard static memory, so per-model shards are the same
        // in both plans — but the symmetric plan stacks all four models on
        // every GPU while the split plan spreads two per node. Splitting
        // therefore lowers the peak (the asymmetric-strategy memory
        // advantage that OpenRLHF-style placements exploit).
        assert!(
            peak_split < peak_full,
            "split {peak_split} full {peak_full}"
        );
    }

    #[test]
    fn static_utilization_in_unit_range_and_scales_down_with_gpus() {
        let (c1, g1) = setup(1, 128);
        let (c2, g2) = setup(2, 128);
        let p1 = symmetric(&c1, &g1, 1, 8, 8);
        let p2 = symmetric(&c2, &g2, 2, 8, 8);
        let u1 = static_utilization(&c1, &g1, &p1);
        let u2 = static_utilization(&c2, &g2, &p2);
        assert!(u1 > 0.0 && u1 < 1.0);
        assert!(u2 < u1, "doubling GPUs must cut static utilization");
    }

    #[test]
    fn only_trainable_models_hold_static_memory() {
        let (cluster, graph) = setup(1, 64);
        let plan = symmetric(&cluster, &graph, 1, 8, 8);
        let static_mem = static_bytes_per_gpu(&cluster, &graph, &plan);
        // Exactly actor + critic optimizer state (§5.1: static = gradients
        // and optimizer states); frozen reference/reward contribute nothing.
        let s = ParallelStrategy::new(1, 8, 1, 8).unwrap();
        let actor = MemoryModel::new(ModelSpec::llama3_7b()).static_optim_bytes(&s);
        let critic = MemoryModel::new(ModelSpec::llama3_7b().critic()).static_optim_bytes(&s);
        assert_eq!(static_mem[0], actor + critic);
    }
}
