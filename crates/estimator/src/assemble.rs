//! Assembly of per-call durations from profiled per-layer statistics.
//!
//! The closed-form pipeline formulas here are deliberately *coarser* than
//! the runtime engine's event-level simulation: prefill/training use the
//! classic `(mbs + pp - 1) · stage` 1F1B makespan, decoding uses a
//! steady-state round model, and all per-layer times come from the noisy
//! interpolated [`ProfileDb`]. This is the paper's §5.1 estimator.

use real_cluster::CommModel;
use real_dataflow::{CallAssignment, CallType, ModelFunctionCallDef};
use real_model::MemoryModel;
use real_profiler::{OpKind, ProfileDb, ProfileKey};

/// Estimated duration in seconds for one model function call.
pub fn call_duration(
    call: &ModelFunctionCallDef,
    a: &CallAssignment,
    db: &ProfileDb,
    comm: &CommModel,
) -> f64 {
    match call.call_type {
        CallType::Generate {
            batch,
            prompt_len,
            gen_len,
        } => generate_duration(call, a, db, comm, batch, prompt_len, gen_len),
        CallType::Inference { batch, seq_len } => {
            inference_duration(call, a, db, comm, batch, seq_len)
        }
        CallType::TrainStep {
            batch,
            seq_len,
            n_minibatches,
        } => train_duration(call, a, db, comm, batch, seq_len, n_minibatches),
    }
}

/// Tokens-per-element all-reduce for one layer: a layer forward issues two
/// TP all-reduces over the activation (§2.2).
fn tp_ar(comm: &CommModel, call: &ModelFunctionCallDef, a: &CallAssignment, tokens: u64) -> f64 {
    let bytes = tokens as f64 * call.model.hidden as f64 * 2.0;
    comm.all_reduce(bytes, a.strategy.tp(), a.tp_within_node())
}

/// Pipeline boundary P2P of TP-sharded activations.
fn pp_p2p(comm: &CommModel, call: &ModelFunctionCallDef, a: &CallAssignment, tokens: u64) -> f64 {
    if a.strategy.pp() <= 1 {
        return 0.0;
    }
    let bytes = tokens as f64 * call.model.hidden as f64 * 2.0 / f64::from(a.strategy.tp());
    comm.p2p(bytes, a.pp_within_node())
}

fn lookup(db: &ProfileDb, op: OpKind, tp: u32, x: f64) -> f64 {
    db.lookup(ProfileKey { op, tp }, x)
        .expect("profile db covers all op kinds for profiled models")
}

/// Per-DP-replica sequence count.
fn replica_batch(batch: u64, a: &CallAssignment) -> u64 {
    batch.div_ceil(u64::from(a.strategy.dp()))
}

fn generate_duration(
    call: &ModelFunctionCallDef,
    a: &CallAssignment,
    db: &ProfileDb,
    comm: &CommModel,
    batch: u64,
    prompt_len: u64,
    gen_len: u64,
) -> f64 {
    let (prefill, decode) = generate_split_duration(call, a, db, comm, batch, prompt_len, gen_len);
    prefill + decode
}

/// [`call_duration`]'s generation price split into its `(prefill, decode)`
/// phases. The sum is the plain generation duration; speculative-decoding
/// pricing rescales only the decode phase (the draft/verify rounds replace
/// the plain decode rounds, while prefill is identical), so the split is the
/// seam the spec-aware estimator plugs into.
pub fn generate_split_duration(
    call: &ModelFunctionCallDef,
    a: &CallAssignment,
    db: &ProfileDb,
    comm: &CommModel,
    batch: u64,
    prompt_len: u64,
    gen_len: u64,
) -> (f64, f64) {
    let s = &a.strategy;
    let tp = s.tp();
    let mbs = u64::from(s.micro_batches());
    let pp = u64::from(s.pp());
    let batch_r = replica_batch(batch, a);
    let batch_mb = batch_r.div_ceil(mbs).max(1);
    let stage_layers = s.max_stage_layers(call.model.n_layers) as f64;

    // Prefill: 1F1B-style forward-only pipeline over micro-batches.
    let tokens_mb = batch_mb * prompt_len;
    let seq_bucket = ProfileDb::nearest_bucket(&db.seq_buckets(), prompt_len);
    let layer_fwd = lookup(db, OpKind::LayerFwd { seq_bucket }, tp, tokens_mb as f64);
    let prefill_stage = stage_layers * (layer_fwd + 2.0 * tp_ar(comm, call, a, tokens_mb))
        + pp_p2p(comm, call, a, tokens_mb)
        + (lookup(db, OpKind::EmbedFwd, tp, tokens_mb as f64)
            + lookup(db, OpKind::HeadFwd, tp, batch_mb as f64))
            / pp as f64;
    let prefill = (mbs + pp - 1) as f64 * prefill_stage;

    // Decode: steady-state rounds; every micro-batch advances one token per
    // round, pipelined over the stages. Each micro-batch pass re-streams
    // the stage's weights, which is why decoding punishes `pp·mbs`.
    let past_bucket = ProfileDb::nearest_bucket(&db.past_buckets(), prompt_len + gen_len / 2);
    let layer_dec = lookup(db, OpKind::LayerDecode { past_bucket }, tp, batch_mb as f64);
    let per_mb = stage_layers * (layer_dec + 2.0 * tp_ar(comm, call, a, batch_mb))
        + pp_p2p(comm, call, a, batch_mb)
        + lookup(db, OpKind::HeadFwd, tp, batch_mb as f64);
    let round = mbs.max(pp) as f64 * per_mb;
    (prefill, gen_len as f64 * round)
}

fn inference_duration(
    call: &ModelFunctionCallDef,
    a: &CallAssignment,
    db: &ProfileDb,
    comm: &CommModel,
    batch: u64,
    seq_len: u64,
) -> f64 {
    let s = &a.strategy;
    let tp = s.tp();
    let mbs = u64::from(s.micro_batches());
    let pp = u64::from(s.pp());
    let batch_r = replica_batch(batch, a);
    let batch_mb = batch_r.div_ceil(mbs).max(1);
    let tokens_mb = batch_mb * seq_len;
    let stage_layers = s.max_stage_layers(call.model.n_layers) as f64;
    let seq_bucket = ProfileDb::nearest_bucket(&db.seq_buckets(), seq_len);
    let layer_fwd = lookup(db, OpKind::LayerFwd { seq_bucket }, tp, tokens_mb as f64);
    let stage = stage_layers * (layer_fwd + 2.0 * tp_ar(comm, call, a, tokens_mb))
        + pp_p2p(comm, call, a, tokens_mb)
        + (lookup(db, OpKind::EmbedFwd, tp, tokens_mb as f64)
            + lookup(db, OpKind::HeadFwd, tp, tokens_mb as f64))
            / pp as f64;
    (mbs + pp - 1) as f64 * stage
}

fn train_duration(
    call: &ModelFunctionCallDef,
    a: &CallAssignment,
    db: &ProfileDb,
    comm: &CommModel,
    batch: u64,
    seq_len: u64,
    n_minibatches: u32,
) -> f64 {
    let s = &a.strategy;
    let tp = s.tp();
    let mbs = u64::from(s.micro_batches());
    let pp = u64::from(s.pp());
    let n_mini = u64::from(n_minibatches.max(1));
    let batch_r = replica_batch(batch, a);
    let batch_mini = batch_r.div_ceil(n_mini).max(1);
    let batch_mb = batch_mini.div_ceil(mbs).max(1);
    let tokens_mb = batch_mb * seq_len;
    let stage_layers = s.max_stage_layers(call.model.n_layers) as f64;
    let seq_bucket = ProfileDb::nearest_bucket(&db.seq_buckets(), seq_len);

    let layer_fwd = lookup(db, OpKind::LayerFwd { seq_bucket }, tp, tokens_mb as f64);
    let layer_bwd = lookup(db, OpKind::LayerBwd { seq_bucket }, tp, tokens_mb as f64);
    // Forward 2 + backward 2 TP all-reduces per layer; two boundary P2Ps.
    let stage = stage_layers * (layer_fwd + layer_bwd + 4.0 * tp_ar(comm, call, a, tokens_mb))
        + 2.0 * pp_p2p(comm, call, a, tokens_mb)
        + (lookup(db, OpKind::EmbedFwd, tp, tokens_mb as f64)
            + lookup(db, OpKind::HeadBwd, tp, tokens_mb as f64))
            / pp as f64;
    let pipeline = (mbs + pp - 1) as f64 * stage;

    // Per mini-batch: gradient all-reduce across DP plus the optimizer step
    // (PPO mini-batches are sequential parameter updates, §2.1).
    let shard = MemoryModel::new(call.model.clone()).params_per_gpu(s);
    let grad_ar = comm.all_reduce(shard as f64 * 4.0, s.dp(), a.dp_within_node());
    let optim = lookup(db, OpKind::OptimStep, 1, shard as f64);

    n_mini as f64 * (pipeline + grad_ar + optim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use real_cluster::{ClusterSpec, DeviceMesh};
    use real_model::{ModelSpec, ParallelStrategy};
    use real_profiler::{ProfileConfig, Profiler};

    fn db(cluster: &ClusterSpec) -> ProfileDb {
        Profiler::new(cluster.clone(), ProfileConfig::paper(), 11).profile(&ModelSpec::llama3_7b())
    }

    fn gen_call(batch: u64) -> ModelFunctionCallDef {
        ModelFunctionCallDef::new(
            "g",
            "actor",
            ModelSpec::llama3_7b(),
            CallType::Generate {
                batch,
                prompt_len: 1024,
                gen_len: 1024,
            },
            &["prompts"],
            &["seq"],
        )
    }

    fn train_call(batch: u64, n_minibatches: u32) -> ModelFunctionCallDef {
        ModelFunctionCallDef::new(
            "t",
            "actor",
            ModelSpec::llama3_7b(),
            CallType::TrainStep {
                batch,
                seq_len: 2048,
                n_minibatches,
            },
            &["seq"],
            &[],
        )
    }

    fn assign(cluster: &ClusterSpec, dp: u32, tp: u32, pp: u32, mbs: u32) -> CallAssignment {
        CallAssignment::new(
            DeviceMesh::full(cluster),
            ParallelStrategy::new(dp, tp, pp, mbs).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn decode_prefers_tp_over_pp_on_one_node() {
        // 8 GPUs, one node: tp=8 decode beats pp=8 decode (the Fig. 10
        // kernel-trace observation). PP re-reads weights once per
        // micro-batch and pays per-stage latencies.
        let cluster = ClusterSpec::h100(1);
        let db = db(&cluster);
        let comm = db.comm_model();
        let call = gen_call(128);
        let tp8 = call_duration(&call, &assign(&cluster, 1, 8, 1, 1), &db, &comm);
        let pp8 = call_duration(&call, &assign(&cluster, 1, 1, 8, 8), &db, &comm);
        assert!(pp8 > 1.2 * tp8, "tp8 {tp8} pp8 {pp8}");
    }

    #[test]
    fn training_prefers_pp_over_tp_across_nodes() {
        // 2 nodes: tp=16 spans nodes and drowns in all-reduce traffic;
        // pp=2 with micro-batches pipelines cleanly.
        let cluster = ClusterSpec::h100(2);
        let db = db(&cluster);
        let comm = db.comm_model();
        let call = train_call(256, 1);
        // tp can't exceed max_tp=8 for 7B; compare tp8 (intra-node) x pp1 vs
        // tp8 x pp2 across nodes vs tp4 x pp4.
        let tp8pp2 = call_duration(&call, &assign(&cluster, 1, 8, 2, 8), &db, &comm);
        let tp8dp2 = call_duration(&call, &assign(&cluster, 2, 8, 1, 8), &db, &comm);
        assert!(tp8pp2.is_finite() && tp8dp2.is_finite());
        // DP over nodes (grad all-reduce once per step) beats doubling the
        // model shard for a 7B that fits.
        assert!(tp8dp2 < tp8pp2, "dp {tp8dp2} pp {tp8pp2}");
    }

    #[test]
    fn generation_dominates_ppo_iteration() {
        // Fig. 1 / Table 6: generation is the longest call under a
        // symmetric plan.
        let cluster = ClusterSpec::h100(1);
        let db = db(&cluster);
        let comm = db.comm_model();
        let a = assign(&cluster, 1, 8, 1, 4);
        let gen = call_duration(&gen_call(128), &a, &db, &comm);
        let train = call_duration(&train_call(128, 8), &a, &db, &comm);
        assert!(gen > train, "gen {gen} train {train}");
    }

    #[test]
    fn ppo_minibatches_cost_more_than_one_big_step() {
        let cluster = ClusterSpec::h100(1);
        let db = db(&cluster);
        let comm = db.comm_model();
        let a = assign(&cluster, 1, 8, 1, 1);
        let one = call_duration(&train_call(128, 1), &a, &db, &comm);
        let eight = call_duration(&train_call(128, 8), &a, &db, &comm);
        // Eight sequential updates pay 8 optimizer steps + 8 grad syncs.
        assert!(eight > one, "eight {eight} one {one}");
    }

    #[test]
    fn inference_scales_with_batch() {
        let cluster = ClusterSpec::h100(1);
        let db = db(&cluster);
        let comm = db.comm_model();
        let a = assign(&cluster, 1, 8, 1, 4);
        let small = ModelFunctionCallDef::new(
            "i",
            "m",
            ModelSpec::llama3_7b(),
            CallType::Inference {
                batch: 64,
                seq_len: 2048,
            },
            &["seq"],
            &["out"],
        );
        let mut big = small.clone();
        big.call_type = CallType::Inference {
            batch: 256,
            seq_len: 2048,
        };
        let ts = call_duration(&small, &a, &db, &comm);
        let tb = call_duration(&big, &a, &db, &comm);
        assert!(tb > 2.5 * ts, "small {ts} big {tb}");
    }

    #[test]
    fn more_dp_replicas_cut_generation_time() {
        let cluster = ClusterSpec::h100(2);
        let db = db(&cluster);
        let comm = db.comm_model();
        let call = gen_call(256);
        let dp2 = call_duration(&call, &assign(&cluster, 2, 8, 1, 1), &db, &comm);
        let dp8 = call_duration(&call, &assign(&cluster, 8, 2, 1, 1), &db, &comm);
        // dp=8 with tp=2: more replicas, less weight-streaming per step
        // than... actually weights per GPU are larger; decode is dominated
        // by weights/tp so this is a real trade-off. Just require both
        // finite and positive here; the search decides the winner.
        assert!(dp2 > 0.0 && dp8 > 0.0);
    }
}
