//! Construction of the augmented dataflow graph `G_p` (§4, Fig. 5): the
//! per-iteration call nodes plus parameter-reallocation and data-transfer
//! nodes, unrolled over a fixed number of iterations.

use crate::Estimator;
use real_cluster::DeviceMesh;
use real_dataflow::{CallId, DataflowGraph, ExecutionPlan};
use real_model::MemoryModel;

/// What an augmented node does.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// A model function call.
    Call {
        /// The underlying call.
        call: CallId,
        /// Which unrolled iteration it belongs to.
        iter: usize,
    },
    /// Moving a model's parameters from one layout to another.
    Realloc {
        /// Owning model name.
        model: String,
        /// Iteration of the *destination* call.
        iter: usize,
    },
    /// Moving output data between producer and consumer meshes.
    Transfer {
        /// Producer call.
        from: CallId,
        /// Consumer call.
        to: CallId,
        /// Iteration.
        iter: usize,
    },
}

/// A node of the augmented graph, ready for Algorithm 1.
#[derive(Debug, Clone)]
pub struct AugNode {
    /// Node role (for debugging and breakdowns).
    pub kind: NodeKind,
    /// Estimated duration in seconds.
    pub duration: f64,
    /// Device meshes the node occupies (one for calls; source + destination
    /// for reallocations and transfers).
    pub meshes: Vec<DeviceMesh>,
    /// Indices of parent nodes within the node list.
    pub parents: Vec<usize>,
}

impl AugNode {
    /// Whether this node contends for devices with `other` (any mesh pair
    /// overlapping).
    pub fn overlaps(&self, other: &AugNode) -> bool {
        self.meshes
            .iter()
            .any(|a| other.meshes.iter().any(|b| a.overlaps(b)))
    }
}

/// Estimated cost of reallocating `model`'s BF16 weights from the source
/// assignment to the destination assignment.
///
/// Per §5.1 the estimator "approximates the time with the data size and the
/// bandwidth": every destination GPU must receive its destination shard; the
/// broadcasts run in parallel, so the cost is the per-destination shard over
/// the slowest link involved, plus a latency per pipeline-stage pair.
pub fn realloc_cost(
    est: &Estimator,
    model: &real_model::ModelSpec,
    src: &real_dataflow::CallAssignment,
    dst: &real_dataflow::CallAssignment,
) -> f64 {
    if src == dst {
        return 0.0;
    }
    let mm = MemoryModel::new(model.clone());
    let shard_bytes = mm.weight_bytes_per_gpu(&dst.strategy) as f64;
    // Same single node for both meshes → NVLink; anything else is
    // conservatively priced at fabric bandwidth.
    let within = src.mesh.n_nodes() == 1
        && dst.mesh.n_nodes() == 1
        && src.mesh.node_start() == dst.mesh.node_start();
    let stage_pairs = f64::from(src.strategy.pp() * dst.strategy.pp());
    est.comm().broadcast(shard_bytes, 2, within) + stage_pairs * est.comm().p2p(0.0, within)
}

/// Estimated cost of transferring one call's outputs to a consumer on a
/// different mesh. Token ids, log-probs and scalar rewards are small (§6
/// notes this cost is minor); we price 8 bytes per token of payload.
pub fn transfer_cost(
    est: &Estimator,
    graph: &DataflowGraph,
    from: CallId,
    plan: &ExecutionPlan,
    to: CallId,
) -> f64 {
    transfer_cost_between(est, graph, from, plan.assignment(from), plan.assignment(to))
}

/// [`transfer_cost`] with the producer/consumer assignments given directly
/// instead of read off a plan — the form the memo cache keys on.
pub fn transfer_cost_between(
    est: &Estimator,
    graph: &DataflowGraph,
    from: CallId,
    a: &real_dataflow::CallAssignment,
    b: &real_dataflow::CallAssignment,
) -> f64 {
    if a.mesh == b.mesh && a.strategy == b.strategy {
        return 0.0;
    }
    let call = graph.call(from);
    let bytes = call.call_type.total_tokens() as f64 * 8.0;
    let within = a.mesh.n_nodes() == 1
        && b.mesh.n_nodes() == 1
        && a.mesh.node_start() == b.mesh.node_start();
    // Split across DP producers broadcasting in parallel.
    let per_src = bytes / f64::from(a.strategy.dp());
    est.comm().broadcast(per_src, 2, within)
}

/// Edge-cost oracle for [`Template::instantiate`].
///
/// The template fixes the *structure* of the augmented graph; an
/// implementation of this trait supplies the three per-edge prices. The
/// direct implementation ([`DirectCosts`]) calls the estimator's pricing
/// functions; the memoized one ([`crate::memo::CostMemo`] via
/// [`crate::PlanPricer`]) consults its cache first. Both must return
/// bit-identical values for the two paths to produce bit-identical
/// makespans.
pub trait NodeCosts {
    /// Duration of `call` under assignment `a` (seconds).
    fn duration(&mut self, call: CallId, a: &real_dataflow::CallAssignment) -> f64;
    /// Cost of reallocating the model of `dst_call` from layout `src` to
    /// layout `dst` (seconds).
    fn realloc(
        &mut self,
        dst_call: CallId,
        src: &real_dataflow::CallAssignment,
        dst: &real_dataflow::CallAssignment,
    ) -> f64;
    /// Cost of moving `from`'s outputs (under `a`) to a consumer under `b`
    /// (seconds).
    fn transfer(
        &mut self,
        from: CallId,
        a: &real_dataflow::CallAssignment,
        b: &real_dataflow::CallAssignment,
    ) -> f64;
}

/// The unmemoized [`NodeCosts`]: every query goes straight to the
/// estimator's pricing functions.
pub struct DirectCosts<'a> {
    /// The backing estimator.
    pub est: &'a Estimator,
}

impl NodeCosts for DirectCosts<'_> {
    fn duration(&mut self, call: CallId, a: &real_dataflow::CallAssignment) -> f64 {
        self.est.call_duration(call, a)
    }

    fn realloc(
        &mut self,
        dst_call: CallId,
        src: &real_dataflow::CallAssignment,
        dst: &real_dataflow::CallAssignment,
    ) -> f64 {
        realloc_cost(self.est, &self.est.graph().call(dst_call).model, src, dst)
    }

    fn transfer(
        &mut self,
        from: CallId,
        a: &real_dataflow::CallAssignment,
        b: &real_dataflow::CallAssignment,
    ) -> f64 {
        transfer_cost_between(self.est, self.est.graph(), from, a, b)
    }
}

/// The plan-independent structure of the augmented graph: topological order
/// plus each call's parameter-version predecessor links, precomputed once
/// per (graph, iterations) pair.
///
/// [`build`] recomputed this structure on every invocation — including a
/// quadratic "which model call precedes me" scan — which the MCMC search
/// paid per proposal. A `Template` hoists all of it out of the hot loop:
/// [`Template::instantiate`] only walks the precomputed links and asks a
/// [`NodeCosts`] oracle for edge prices, so re-pricing a plan does no graph
/// analysis at all.
#[derive(Debug, Clone)]
pub struct Template {
    iterations: usize,
    topo: Vec<CallId>,
    /// Per call: the same model's previous call within one iteration.
    prev_in_iter: Vec<Option<CallId>>,
    /// Per call: the same model's last call in topological order (the
    /// cross-iteration wrap-around predecessor).
    model_last: Vec<CallId>,
}

impl Template {
    /// Precomputes the augmented-graph structure for `iterations` unrolled
    /// iterations of `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn new(graph: &DataflowGraph, iterations: usize) -> Self {
        assert!(iterations > 0, "must unroll at least one iteration");
        let topo = graph.topo_order().expect("validated graphs are acyclic");
        let n = graph.n_calls();
        let mut prev_in_iter = vec![None; n];
        let mut model_last = vec![CallId(usize::MAX); n];
        for model_name in graph.model_names() {
            let model_calls = graph.calls_of_model(model_name);
            let order: Vec<CallId> = topo
                .iter()
                .filter(|c| model_calls.contains(c))
                .copied()
                .collect();
            let last = *order.last().expect("models have at least one call");
            for (pos, &call) in order.iter().enumerate() {
                if pos > 0 {
                    prev_in_iter[call.0] = Some(order[pos - 1]);
                }
                model_last[call.0] = last;
            }
        }
        Self {
            iterations,
            topo,
            prev_in_iter,
            model_last,
        }
    }

    /// Number of unrolled iterations the template was built for.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Materializes the augmented node list for one plan, with assignments
    /// supplied by `assign` (so a one-call perturbation needs no plan clone)
    /// and edge prices supplied by `costs`.
    ///
    /// Node order and contents are bit-identical to [`build`] on the
    /// equivalent plan.
    pub fn instantiate<F>(
        &self,
        graph: &DataflowGraph,
        assign: F,
        costs: &mut dyn NodeCosts,
    ) -> Vec<AugNode>
    where
        F: Fn(CallId) -> real_dataflow::CallAssignment,
    {
        let n = graph.n_calls();
        let mut nodes: Vec<AugNode> = Vec::with_capacity(self.iterations * n * 2);
        // call_node[iter][call] = node index.
        let mut call_node = vec![vec![usize::MAX; n]; self.iterations];

        for iter in 0..self.iterations {
            for &call in &self.topo {
                let def = graph.call(call);
                let a = assign(call);
                let mut parents: Vec<usize> = Vec::new();

                // Data dependencies (+ transfer nodes when layouts differ).
                for &dep in graph.deps(call) {
                    let dep_node = call_node[iter][dep.0];
                    debug_assert_ne!(dep_node, usize::MAX, "topo order places deps first");
                    let cost = costs.transfer(dep, &assign(dep), &a);
                    if cost > 0.0 {
                        // Transfers occupy the consumer mesh only; the
                        // producer sends from copy engines (mirrors the
                        // runtime engine).
                        nodes.push(AugNode {
                            kind: NodeKind::Transfer {
                                from: dep,
                                to: call,
                                iter,
                            },
                            duration: cost,
                            meshes: vec![a.mesh],
                            parents: vec![dep_node],
                        });
                        parents.push(nodes.len() - 1);
                    } else {
                        parents.push(dep_node);
                    }
                }

                // Parameter availability: the model's previous call in this
                // iteration, or (for the first call of the iteration) its
                // parameter-version parents in the previous iteration.
                let prev: Option<(usize, CallId)> = if let Some(p) = self.prev_in_iter[call.0] {
                    Some((iter, p))
                } else if iter > 0 {
                    // Wrap around: last call of the model in the previous
                    // iteration (captures the parameter-version edge when it
                    // is a training call, and the layout chain otherwise).
                    Some((iter - 1, self.model_last[call.0]))
                } else {
                    None
                };
                if let Some((piter, pcall)) = prev {
                    let pnode = call_node[piter][pcall.0];
                    debug_assert_ne!(pnode, usize::MAX);
                    let pa = assign(pcall);
                    let cost = costs.realloc(call, &pa, &a);
                    if cost > 0.0 {
                        nodes.push(AugNode {
                            kind: NodeKind::Realloc {
                                model: def.model_name.clone(),
                                iter,
                            },
                            duration: cost,
                            meshes: vec![pa.mesh, a.mesh],
                            parents: vec![pnode],
                        });
                        parents.push(nodes.len() - 1);
                    } else {
                        parents.push(pnode);
                    }
                }

                parents.sort_unstable();
                parents.dedup();
                nodes.push(AugNode {
                    kind: NodeKind::Call { call, iter },
                    duration: costs.duration(call, &a),
                    meshes: vec![a.mesh],
                    parents,
                });
                call_node[iter][call.0] = nodes.len() - 1;
            }
        }
        nodes
    }
}

/// Builds the augmented node list for `iterations` unrolled iterations.
///
/// Node order: for each iteration, every call preceded by its transfer and
/// reallocation nodes. Parameter-version edges connect a model's training
/// call in iteration `t` to its calls in iteration `t+1` (through the
/// reallocation node when layouts differ).
///
/// Equivalent to [`Template::new`] + [`Template::instantiate`] with
/// [`DirectCosts`]; callers pricing many plans against one graph should
/// build the template once instead.
pub fn build(
    graph: &DataflowGraph,
    plan: &ExecutionPlan,
    est: &Estimator,
    iterations: usize,
) -> Vec<AugNode> {
    Template::new(graph, iterations).instantiate(
        graph,
        |id| *plan.assignment(id),
        &mut DirectCosts { est },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use real_cluster::ClusterSpec;
    use real_dataflow::{algo, CallAssignment};
    use real_model::{ModelSpec, ParallelStrategy};
    use real_profiler::{ProfileConfig, Profiler};

    fn setup() -> (ClusterSpec, DataflowGraph, Estimator) {
        let cluster = ClusterSpec::h100(2);
        let actor = ModelSpec::llama3_7b();
        let critic = actor.critic();
        let graph = algo::ppo(&actor, &critic, &algo::RlhfConfig::instruct_gpt(64));
        let mut profiler = Profiler::new(cluster.clone(), ProfileConfig::quick(), 5);
        let profiles = vec![profiler.profile(&actor), profiler.profile(&critic)];
        let est = Estimator::new(cluster.clone(), graph.clone(), profiles).unwrap();
        (cluster, graph, est)
    }

    fn symmetric(cluster: &ClusterSpec, graph: &DataflowGraph) -> ExecutionPlan {
        let a = CallAssignment::new(
            DeviceMesh::full(cluster),
            ParallelStrategy::new(2, 8, 1, 4).unwrap(),
        )
        .unwrap();
        ExecutionPlan::new(graph, cluster, vec![a; graph.n_calls()]).unwrap()
    }

    #[test]
    fn symmetric_plan_has_no_realloc_or_transfer_nodes() {
        let (cluster, graph, est) = setup();
        let plan = symmetric(&cluster, &graph);
        let nodes = build(&graph, &plan, &est, 1);
        assert_eq!(nodes.len(), graph.n_calls());
        assert!(nodes
            .iter()
            .all(|n| matches!(n.kind, NodeKind::Call { .. })));
    }

    #[test]
    fn asymmetric_plan_adds_realloc_nodes() {
        let (cluster, graph, est) = setup();
        let mut plan = symmetric(&cluster, &graph);
        // Move actor training to a different strategy on the same mesh.
        let train = graph.find("actor_train").unwrap();
        let new = CallAssignment::new(
            DeviceMesh::full(&cluster),
            ParallelStrategy::new(1, 8, 2, 8).unwrap(),
        )
        .unwrap();
        plan = plan.with_assignment(train, new).unwrap();
        let nodes = build(&graph, &plan, &est, 1);
        let reallocs = nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Realloc { .. }))
            .count();
        assert!(reallocs >= 1, "expected a realloc before actor_train");
    }

    #[test]
    fn unrolling_two_iterations_doubles_call_nodes() {
        let (cluster, graph, est) = setup();
        let plan = symmetric(&cluster, &graph);
        let nodes = build(&graph, &plan, &est, 2);
        let calls = nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Call { .. }))
            .count();
        assert_eq!(calls, 2 * graph.n_calls());
        // Second-iteration generation depends (transitively) on
        // first-iteration actor training.
        let gen2 = nodes
            .iter()
            .position(|n| {
                matches!(n.kind, NodeKind::Call { call, iter: 1 }
                if call == graph.find("actor_gen").unwrap())
            })
            .unwrap();
        assert!(!nodes[gen2].parents.is_empty());
    }

    #[test]
    fn realloc_cost_zero_for_identical_layouts() {
        let (cluster, _, est) = setup();
        let a = CallAssignment::new(
            DeviceMesh::full(&cluster),
            ParallelStrategy::new(2, 8, 1, 4).unwrap(),
        )
        .unwrap();
        assert_eq!(realloc_cost(&est, &ModelSpec::llama3_7b(), &a, &a), 0.0);
    }

    #[test]
    fn realloc_cost_positive_for_layout_change() {
        let (cluster, _, est) = setup();
        let a = CallAssignment::new(
            DeviceMesh::full(&cluster),
            ParallelStrategy::new(2, 8, 1, 4).unwrap(),
        )
        .unwrap();
        let b = CallAssignment::new(
            DeviceMesh::full(&cluster),
            ParallelStrategy::new(1, 8, 2, 4).unwrap(),
        )
        .unwrap();
        let c = realloc_cost(&est, &ModelSpec::llama3_7b(), &a, &b);
        assert!(c > 0.0);
        // Moving a 7B shard over the fabric: milliseconds-to-seconds scale,
        // far below a full generation call.
        assert!(c < 5.0, "realloc {c}");
    }

    #[test]
    fn parents_reference_earlier_nodes_only() {
        let (cluster, graph, est) = setup();
        let plan = symmetric(&cluster, &graph);
        let nodes = build(&graph, &plan, &est, 3);
        for (i, n) in nodes.iter().enumerate() {
            for &p in &n.parents {
                assert!(p < i, "node {i} has forward parent {p}");
            }
        }
    }
}
