//! The lightweight runtime estimator (§5.1 of the paper).
//!
//! Given an execution plan, the estimator predicts
//!
//! - `TimeCost(G_p)` — by assembling per-call durations from profiled
//!   per-layer statistics ([`assemble`]), augmenting the dataflow graph with
//!   parameter-reallocation and data-transfer nodes ([`augment`]), and
//!   simulating the schedule with the paper's Algorithm 1
//!   ([`algorithm1`]), and
//! - `MaxMem(G_p)` — the per-GPU peak of static plus active memory
//!   ([`maxmem`]),
//!
//! combining both into the §5.2 search cost
//! `cost = TimeCost · (OOM ? α : 1)`.
//!
//! Estimates consume only the noisy power-of-two [`real_profiler::ProfileDb`]
//! grid and coarse closed-form pipeline formulas; the runtime engine
//! (`real-runtime`) simulates the same plan event-by-event. Their
//! disagreement is the estimator error reported in Fig. 12.
//!
//! # Examples
//!
//! ```
//! use real_cluster::{ClusterSpec, DeviceMesh};
//! use real_dataflow::{algo, CallAssignment, ExecutionPlan};
//! use real_estimator::Estimator;
//! use real_model::{ModelSpec, ParallelStrategy};
//! use real_profiler::{ProfileConfig, Profiler};
//!
//! let cluster = ClusterSpec::h100(1);
//! let actor = ModelSpec::llama3_7b();
//! let critic = actor.critic();
//! let graph = algo::ppo(&actor, &critic, &algo::RlhfConfig::instruct_gpt(64));
//! let mut profiler = Profiler::new(cluster.clone(), ProfileConfig::quick(), 1);
//! let profiles = vec![profiler.profile(&actor), profiler.profile(&critic)];
//! let est = Estimator::new(cluster.clone(), graph.clone(), profiles).unwrap();
//!
//! let a = CallAssignment::new(
//!     DeviceMesh::full(&cluster),
//!     ParallelStrategy::new(1, 8, 1, 4).unwrap(),
//! ).unwrap();
//! let plan = ExecutionPlan::new(&graph, &cluster, vec![a; graph.n_calls()]).unwrap();
//! assert!(est.time_cost(&plan) > 0.0);
//! ```

pub mod algorithm1;
pub mod assemble;
pub mod augment;
pub mod maxmem;
pub mod memo;
pub mod probe;
pub mod spec;

pub use memo::{CostMemo, MemoSnapshot, MemoStats, PlanPricer};

use real_cluster::{ClusterHealth, ClusterSpec, CommModel};
use real_dataflow::{CallId, DataflowGraph, ExecutionPlan};
use real_profiler::ProfileDb;
use std::collections::HashMap;
use std::fmt;

/// Default number of unrolled iterations for Algorithm 1 — two, so
/// cross-iteration overlap (Fig. 4) is visible while the schedule stays
/// cheap to simulate.
pub const DEFAULT_ITERATIONS: usize = 2;

/// The §5.2 out-of-memory penalty multiplier α.
pub const OOM_PENALTY: f64 = 1000.0;

/// Errors building an [`Estimator`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EstimatorError {
    /// No profile was supplied for a model architecture used by the graph.
    MissingProfile(String),
}

impl fmt::Display for EstimatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimatorError::MissingProfile(m) => {
                write!(f, "no profile supplied for architecture {m}")
            }
        }
    }
}

impl std::error::Error for EstimatorError {}

/// The runtime estimator bound to one cluster, workflow, and profile set.
#[derive(Debug, Clone)]
pub struct Estimator {
    cluster: ClusterSpec,
    graph: DataflowGraph,
    /// Profile per *architecture* name (`ModelSpec::name`), shared by models
    /// with identical architectures (actor/reference, critic/reward) — the
    /// paper reuses profiles within a model family.
    profiles: HashMap<String, ProfileDb>,
    /// Communication model from *measured* link parameters.
    comm: CommModel,
    iterations: usize,
    /// Optional live health overlay: when present, per-call durations are
    /// scaled by the mesh's slowdown factor so re-plan searches avoid slow
    /// or dead hardware.
    health: Option<ClusterHealth>,
}

impl Estimator {
    /// Builds an estimator. `profiles` must cover every distinct
    /// architecture in `graph` (keyed by `ModelSpec::name`).
    ///
    /// # Errors
    ///
    /// Returns [`EstimatorError::MissingProfile`] when an architecture has
    /// no profile.
    pub fn new(
        cluster: ClusterSpec,
        graph: DataflowGraph,
        profiles: Vec<ProfileDb>,
    ) -> Result<Self, EstimatorError> {
        let map: HashMap<String, ProfileDb> = profiles
            .into_iter()
            .map(|p| (p.model_name().to_string(), p))
            .collect();
        for call in graph.calls() {
            if !map.contains_key(&call.model.name) {
                return Err(EstimatorError::MissingProfile(call.model.name.clone()));
            }
        }
        let comm = map
            .values()
            .next()
            .map(|p| p.comm_model())
            .unwrap_or_else(|| CommModel::new(&cluster));
        Ok(Self {
            cluster,
            graph,
            profiles: map,
            comm,
            iterations: DEFAULT_ITERATIONS,
            health: None,
        })
    }

    /// Overlays live cluster health: per-call durations are multiplied by
    /// [`ClusterHealth::mesh_factor`] of the call's mesh, so the §5.2 cost
    /// ranks plans by *degraded* throughput. Memory estimates are
    /// unaffected.
    pub fn with_health(mut self, health: ClusterHealth) -> Self {
        self.health = Some(health);
        self
    }

    /// The health overlay, if any.
    pub fn health(&self) -> Option<&ClusterHealth> {
        self.health.as_ref()
    }

    /// Digest of the health overlay the estimator prices under — the tag a
    /// [`CostMemo`] binds its entries to (`0` for no overlay; a real
    /// overlay's [`ClusterHealth::fingerprint`] otherwise, nudged off `0`
    /// so "no overlay" and "some overlay" can never alias).
    pub fn health_fingerprint(&self) -> u64 {
        match &self.health {
            None => 0,
            Some(h) => h.fingerprint().max(1),
        }
    }

    /// Digest of the full pricing context *except* the health overlay:
    /// cluster shape, iteration count, every call's name/model/workload, and
    /// the profile databases (including their measurement noise, so a
    /// re-profiled run never reuses stale prices). A persisted
    /// [`CostMemo`] snapshot is only restorable against an estimator with
    /// the same fingerprint; health drift is tracked separately via
    /// [`Estimator::health_fingerprint`].
    pub fn context_fingerprint(&self) -> u64 {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        fn mix(h: u64, w: u64) -> u64 {
            (h.rotate_left(5) ^ w).wrapping_mul(SEED)
        }
        fn mix_str(mut h: u64, s: &str) -> u64 {
            for b in s.bytes() {
                h = mix(h, u64::from(b));
            }
            mix(h, 0xff)
        }
        let mut h = mix(SEED, u64::from(self.cluster.total_gpus()));
        h = mix(h, self.cluster.gpu.mem_capacity);
        h = mix(h, self.iterations as u64);
        for (_, def) in self.graph.iter() {
            h = mix_str(h, &def.call_name);
            h = mix_str(h, &def.model.name);
            h = mix(h, def.model.param_count());
            h = mix(h, def.call_type.total_tokens());
        }
        let mut names: Vec<&String> = self.profiles.keys().collect();
        names.sort();
        for name in names {
            let db = &self.profiles[name];
            h = mix_str(h, name);
            h = mix(h, db.n_tables() as u64);
            h = mix(h, db.n_samples());
            h = mix(h, db.profiling_secs().to_bits());
        }
        h
    }

    /// Overrides the number of iterations Algorithm 1 unrolls.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        assert!(iterations > 0, "must simulate at least one iteration");
        self.iterations = iterations;
        self
    }

    /// The workflow this estimator serves.
    pub fn graph(&self) -> &DataflowGraph {
        &self.graph
    }

    /// The number of iterations Algorithm 1 unrolls.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The cluster this estimator serves.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The measured-link communication model.
    pub fn comm(&self) -> &CommModel {
        &self.comm
    }

    pub(crate) fn profile_for(&self, call: CallId) -> &ProfileDb {
        let arch = &self.graph.call(call).model.name;
        self.profiles
            .get(arch)
            .expect("constructor verified every architecture has a profile")
    }

    /// Estimated duration of one call under `assignment` (§5.1 assembly of
    /// profiled per-layer statistics).
    pub fn call_duration(&self, call: CallId, assignment: &real_dataflow::CallAssignment) -> f64 {
        let d = assemble::call_duration(
            self.graph.call(call),
            assignment,
            self.profile_for(call),
            &self.comm,
        );
        match &self.health {
            Some(h) => d * h.mesh_factor(&assignment.mesh),
            None => d,
        }
    }

    /// [`Estimator::call_duration`] of a generation call decoding
    /// speculatively under `choice`: the prefill price unchanged, the decode
    /// price scaled by the draft/verify round economics, plus the draft's
    /// own prefill (see [`spec`]). Under a health overlay the duration
    /// stretches by the *worse* of the target and draft meshes — a slow GPU
    /// on either stalls the round.
    pub fn spec_call_duration(
        &self,
        call: CallId,
        assignment: &real_dataflow::CallAssignment,
        choice: &real_dataflow::SpecChoice,
    ) -> f64 {
        let d = spec::spec_generate_duration(self, call, assignment, choice);
        match &self.health {
            Some(h) => {
                d * h
                    .mesh_factor(&assignment.mesh)
                    .max(h.mesh_factor(&choice.assignment.mesh))
            }
            None => d,
        }
    }

    /// Rewrites the augmented nodes of a speculative plan's generation
    /// calls: the spec-aware duration replaces the plain one, and the draft
    /// mesh joins the node's occupied meshes so Algorithm 1 serializes
    /// colocated work against the draft. No-op for speculation-free plans.
    fn patch_spec_nodes(&self, plan: &ExecutionPlan, nodes: &mut [augment::AugNode]) {
        for node in nodes.iter_mut() {
            if let augment::NodeKind::Call { call, .. } = node.kind {
                if let Some(choice) = plan.spec_choice(call) {
                    node.duration = self.spec_call_duration(call, plan.assignment(call), choice);
                    node.meshes.push(choice.assignment.mesh);
                }
            }
        }
    }

    /// `TimeCost(G_p)`: the Algorithm 1 makespan of the augmented graph
    /// unrolled over the configured iterations, divided by the iteration
    /// count (steady-state per-iteration time).
    pub fn time_cost(&self, plan: &ExecutionPlan) -> f64 {
        let mut nodes = augment::build(&self.graph, plan, self, self.iterations);
        if plan.has_speculation() {
            self.patch_spec_nodes(plan, &mut nodes);
        }
        algorithm1::makespan(&nodes) / self.iterations as f64
    }

    /// [`Estimator::time_cost`] with observability: records Algorithm 1's
    /// queue telemetry (see [`algorithm1::makespan_instrumented`]) plus an
    /// `estimator/call_seconds{call=<name>}` gauge per function call — the
    /// estimator side of the per-category Fig. 12 divergence comparison
    /// against the runtime's measured call durations.
    pub fn time_cost_instrumented(
        &self,
        plan: &ExecutionPlan,
        metrics: &mut real_obs::MetricsRegistry,
    ) -> f64 {
        for (id, def) in self.graph.iter() {
            let secs = match plan.spec_choice(id) {
                Some(choice) => self.spec_call_duration(id, plan.assignment(id), choice),
                None => self.call_duration(id, plan.assignment(id)),
            };
            metrics.gauge_set("estimator/call_seconds", &[("call", &def.call_name)], secs);
        }
        let mut nodes = augment::build(&self.graph, plan, self, self.iterations);
        if plan.has_speculation() {
            self.patch_spec_nodes(plan, &mut nodes);
        }
        let per_iter = algorithm1::makespan_instrumented(&nodes, metrics) / self.iterations as f64;
        metrics.gauge_set("estimator/time_cost_seconds", &[], per_iter);
        per_iter
    }

    /// `MaxMem(G_p)`: peak bytes over all GPUs.
    pub fn max_mem(&self, plan: &ExecutionPlan) -> u64 {
        maxmem::max_mem(&self.cluster, &self.graph, plan)
    }

    /// Whether the plan fits device memory.
    pub fn mem_ok(&self, plan: &ExecutionPlan) -> bool {
        self.max_mem(plan) <= self.cluster.gpu.mem_capacity
    }

    /// The §5.2 search cost: `TimeCost`, multiplied by [`OOM_PENALTY`] when
    /// `MaxMem` exceeds capacity.
    pub fn cost(&self, plan: &ExecutionPlan) -> f64 {
        self.cost_checked(plan).0
    }

    /// [`Estimator::cost`] plus whether the OOM penalty was applied — lets
    /// the search count penalty hits without a second memory pass.
    pub fn cost_checked(&self, plan: &ExecutionPlan) -> (f64, bool) {
        let t = self.time_cost(plan);
        if self.mem_ok(plan) {
            (t, false)
        } else {
            (t * OOM_PENALTY, true)
        }
    }

    /// Mean static-memory utilization across GPUs (Fig. 17 right).
    pub fn static_mem_utilization(&self, plan: &ExecutionPlan) -> f64 {
        maxmem::static_utilization(&self.cluster, &self.graph, plan)
    }

    /// Costs a plan *as an allocation candidate* for the multi-tenant
    /// scheduler: the steady-state step time, whether it fits device memory,
    /// and whether every call's mesh stays inside `allocation` — the
    /// containment check the top-level allocation search uses to reject
    /// plans that leak onto a co-tenant's GPUs.
    pub fn allocation_cost(
        &self,
        plan: &ExecutionPlan,
        allocation: &real_cluster::DeviceMesh,
    ) -> AllocationCost {
        let contained = self
            .graph
            .iter()
            .all(|(id, _)| allocation.contains_mesh(&plan.assignment(id).mesh))
            && plan
                .spec_choices()
                .all(|(_, c)| allocation.contains_mesh(&c.assignment.mesh));
        AllocationCost {
            step_secs: self.time_cost(plan),
            mem_ok: self.mem_ok(plan),
            contained,
        }
    }
}

/// Per-allocation cost summary returned by [`Estimator::allocation_cost`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocationCost {
    /// Estimated steady-state per-iteration time of the plan (seconds).
    pub step_secs: f64,
    /// Whether the plan's peak memory fits device capacity.
    pub mem_ok: bool,
    /// Whether every call's mesh is contained in the candidate allocation.
    pub contained: bool,
}

impl AllocationCost {
    /// Whether the candidate is usable: fits memory and stays inside its
    /// allocation.
    pub fn feasible(&self) -> bool {
        self.mem_ok && self.contained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use real_cluster::DeviceMesh;
    use real_dataflow::{algo, CallAssignment};
    use real_model::{ModelSpec, ParallelStrategy};
    use real_profiler::{ProfileConfig, Profiler};

    fn setup(nodes: u32, batch: u64) -> (ClusterSpec, DataflowGraph, Estimator) {
        let cluster = ClusterSpec::h100(nodes);
        let actor = ModelSpec::llama3_7b();
        let critic = actor.critic();
        let graph = algo::ppo(&actor, &critic, &algo::RlhfConfig::instruct_gpt(batch));
        let mut profiler = Profiler::new(cluster.clone(), ProfileConfig::quick(), 3);
        let profiles = vec![profiler.profile(&actor), profiler.profile(&critic)];
        let est = Estimator::new(cluster.clone(), graph.clone(), profiles).unwrap();
        (cluster, graph, est)
    }

    fn symmetric_plan(
        cluster: &ClusterSpec,
        graph: &DataflowGraph,
        dp: u32,
        tp: u32,
        pp: u32,
        mbs: u32,
    ) -> ExecutionPlan {
        let a = CallAssignment::new(
            DeviceMesh::full(cluster),
            ParallelStrategy::new(dp, tp, pp, mbs).unwrap(),
        )
        .unwrap();
        ExecutionPlan::new(graph, cluster, vec![a; graph.n_calls()]).unwrap()
    }

    #[test]
    fn missing_profile_is_rejected() {
        let cluster = ClusterSpec::h100(1);
        let actor = ModelSpec::llama3_7b();
        let graph = algo::dpo(&actor, &algo::RlhfConfig::instruct_gpt(64));
        let err = Estimator::new(cluster, graph, vec![]).unwrap_err();
        assert_eq!(err, EstimatorError::MissingProfile("llama3-7b".into()));
    }

    #[test]
    fn time_cost_positive_and_finite() {
        let (cluster, graph, est) = setup(1, 64);
        let plan = symmetric_plan(&cluster, &graph, 1, 8, 1, 4);
        let t = est.time_cost(&plan);
        assert!(t.is_finite() && t > 0.0, "time {t}");
    }

    #[test]
    fn oom_plans_are_penalized() {
        let (cluster, graph, est) = setup(1, 512);
        // One micro-batch over the whole batch blows the logits/activation
        // budget.
        let bad = symmetric_plan(&cluster, &graph, 8, 1, 1, 1);
        let good = symmetric_plan(&cluster, &graph, 1, 8, 1, 16);
        assert!(est.mem_ok(&good), "good plan should fit");
        assert!(!est.mem_ok(&bad), "bad plan should OOM");
        assert!(est.cost(&bad) > est.time_cost(&bad) * 100.0);
        assert_eq!(est.cost(&good), est.time_cost(&good));
    }

    #[test]
    fn allocation_cost_checks_containment_and_memory() {
        let (cluster, graph, est) = setup(2, 64);
        let plan = symmetric_plan(&cluster, &graph, 2, 8, 1, 4);
        let full = DeviceMesh::full(&cluster);
        let cost = est.allocation_cost(&plan, &full);
        assert!(cost.feasible());
        assert_eq!(cost.step_secs, est.time_cost(&plan));
        // The same full-cluster plan leaks out of a one-node allocation.
        let node0 = DeviceMesh::whole_nodes(&cluster, 0, 1).unwrap();
        let leaked = est.allocation_cost(&plan, &node0);
        assert!(!leaked.contained && !leaked.feasible());
        assert!(leaked.mem_ok);
    }

    #[test]
    fn more_gpus_make_iterations_faster() {
        // Same workload on 1 vs 2 nodes with an analogous symmetric plan.
        let (c1, g1, e1) = setup(1, 64);
        let (c2, g2, e2) = setup(2, 64);
        let p1 = symmetric_plan(&c1, &g1, 1, 8, 1, 8);
        let p2 = symmetric_plan(&c2, &g2, 2, 8, 1, 8);
        assert!(e2.time_cost(&p2) < e1.time_cost(&p1));
    }

    #[test]
    fn estimator_is_deterministic() {
        let (cluster, graph, est) = setup(1, 64);
        let plan = symmetric_plan(&cluster, &graph, 1, 8, 1, 4);
        assert_eq!(est.time_cost(&plan), est.time_cost(&plan));
    }

    #[test]
    fn instrumented_time_cost_matches_plain() {
        let (cluster, graph, est) = setup(1, 64);
        let plan = symmetric_plan(&cluster, &graph, 1, 8, 1, 4);
        let mut m = real_obs::MetricsRegistry::new();
        let inst = est.time_cost_instrumented(&plan, &mut m);
        assert_eq!(inst, est.time_cost(&plan));
        assert_eq!(
            m.get("estimator/time_cost_seconds", &[]).unwrap().scalar(),
            inst
        );
        // One gauge per call, matching the closed-form duration.
        for (id, def) in graph.iter() {
            let got = m
                .get("estimator/call_seconds", &[("call", &def.call_name)])
                .expect("per-call gauge present")
                .scalar();
            assert_eq!(got, est.call_duration(id, plan.assignment(id)));
        }
        // The symmetric plan serializes every colocated call: pops recorded.
        let pops = m
            .get("estimator/queue_pops", &[("kind", "call")])
            .unwrap()
            .scalar();
        assert_eq!(pops, (graph.n_calls() * est.iterations()) as f64);
    }

    #[test]
    fn health_overlay_scales_degraded_plans_only() {
        use real_cluster::{ClusterHealth, GpuId};
        let (cluster, graph, est) = setup(1, 64);
        let plan = symmetric_plan(&cluster, &graph, 1, 8, 1, 4);
        let base = est.time_cost(&plan);

        // A healthy overlay changes nothing.
        let healthy = est.clone().with_health(ClusterHealth::healthy(&cluster));
        assert_eq!(healthy.time_cost(&plan), base);

        // Slowing one member GPU of the (full-cluster) mesh stretches every
        // call placed on it.
        let mut h = ClusterHealth::healthy(&cluster);
        h.mark_slow(GpuId(0), 2.0);
        let slowed = est.clone().with_health(h);
        assert!(slowed.time_cost(&plan) > base);
        for (id, def) in graph.iter() {
            let _ = def;
            let a = plan.assignment(id);
            assert_eq!(slowed.call_duration(id, a), 2.0 * est.call_duration(id, a));
        }
        // Memory estimates are unaffected.
        assert_eq!(slowed.max_mem(&plan), est.max_mem(&plan));
    }

    #[test]
    fn estimate_is_fast_enough_for_search() {
        // The paper: evaluating a candidate plan takes hundreds of
        // microseconds. Allow a generous 10 ms in unoptimized builds.
        let (cluster, graph, est) = setup(2, 512);
        let plan = symmetric_plan(&cluster, &graph, 2, 8, 1, 8);
        let start = std::time::Instant::now();
        let n = 100;
        for _ in 0..n {
            let _ = est.cost(&plan);
        }
        let per = start.elapsed().as_secs_f64() / f64::from(n);
        assert!(per < 10e-3, "per-estimate {per}s");
    }
}
