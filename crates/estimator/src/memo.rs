//! Memoized Algorithm-1 sub-results: the search-hot-path cache (§5.2).
//!
//! One MCMC proposal perturbs a single call's (mesh, strategy), yet the
//! naive pricing path re-assembled every call duration, re-priced every
//! realloc/transfer edge, and re-scanned a per-GPU array the size of the
//! cluster. All of those sub-results are pure functions of at most a
//! `(call, assignment)` pair — so [`CostMemo`] caches them under exactly
//! those keys and [`PlanPricer`] re-prices a whole plan from cache hits
//! plus the handful of entries the perturbation actually changed.
//!
//! # Invalidation
//!
//! Cached prices bake in the estimator's health overlay (dead and slowed
//! GPUs scale call durations). The memo therefore carries the overlay's
//! [`fingerprint`](real_cluster::ClusterHealth::fingerprint); attaching the
//! memo to an estimator with a different fingerprint drops every entry and
//! counts one invalidation in [`MemoStats`]. Profiles, the communication
//! model, and the graph are fixed at estimator construction, so the health
//! overlay is the only input that can drift under a live cache.
//!
//! # Sharing
//!
//! A memo is keyed by call ids, so it may only be shared across estimators
//! with the same graph, profiles, and cluster — e.g. the scheduler's
//! per-(tenant, mesh) candidate probes, which all price one tenant's
//! experiment against nested mesh regions and therefore revisit the same
//! `(call, assignment)` keys constantly.

use crate::augment::{self, NodeCosts, NodeKind, Template};
use crate::{algorithm1, maxmem, Estimator, OOM_PENALTY};
use real_cluster::DeviceMesh;
use real_dataflow::{CallAssignment, CallId, ExecutionPlan, SpecChoice};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Hit/miss/invalidation counters of a [`CostMemo`], cheap to copy and
/// merge. Counters are cumulative over the memo's lifetime; callers that
/// want per-search numbers snapshot before and after and take
/// [`MemoStats::since`].
///
/// ```
/// use real_estimator::memo::MemoStats;
///
/// let a = MemoStats { hits: 8, misses: 2, invalidations: 0, entries: 2 };
/// let b = MemoStats { hits: 2, misses: 8, invalidations: 1, entries: 8 };
/// assert_eq!(a.hit_rate(), 0.8);
/// let merged = a.merged(b);
/// assert_eq!(merged.hits, 10);
/// assert_eq!(merged.misses, 10);
/// assert_eq!(merged.entries, 10);
/// assert_eq!(merged.hit_rate(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoStats {
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that had to compute (and then cached) the value.
    pub misses: u64,
    /// Times the whole cache was dropped by a health-overlay change.
    pub invalidations: u64,
    /// Entries currently resident across all tables.
    pub entries: u64,
}

impl MemoStats {
    /// Fraction of lookups served from cache, `0.0` when nothing was looked
    /// up yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Sums counters of two snapshots (entry counts add: merging is for
    /// stats of *distinct* memos, e.g. one per parallel chain).
    pub fn merged(self, other: Self) -> Self {
        Self {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            invalidations: self.invalidations + other.invalidations,
            entries: self.entries + other.entries,
        }
    }

    /// Counter deltas accumulated after the `earlier` snapshot of the *same*
    /// memo. Entries reflect the current (later) residency.
    pub fn since(self, earlier: Self) -> Self {
        Self {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            invalidations: self.invalidations - earlier.invalidations,
            entries: self.entries,
        }
    }
}

/// An Fx-style multiplicative hasher for the memo tables. The keys are
/// short tuples of small integers hashed on the search's innermost loop,
/// where the default SipHash's HashDoS resistance buys nothing (the keys
/// come from the search space, not from untrusted input) and costs more
/// than the table lookup itself.
#[derive(Default)]
struct FxHasher(u64);

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

type FxBuild = std::hash::BuildHasherDefault<FxHasher>;

/// The explicit cache of Algorithm-1 sub-results, keyed by
/// `(call, assignment)` pairs (plus the source assignment for edge costs).
///
/// All five tables store outputs of pure pricing functions, so a hit is
/// bit-identical to recomputation — the property the search's
/// memo-on/memo-off equivalence tests pin down. Create one per
/// (graph, profiles, cluster) context and reuse it across every search and
/// admission probe in that context; see the module docs for the
/// invalidation rule.
#[derive(Debug, Clone, Default)]
pub struct CostMemo {
    durations: HashMap<(CallId, CallAssignment), f64, FxBuild>,
    reallocs: HashMap<(CallId, CallAssignment, CallAssignment), f64, FxBuild>,
    transfers: HashMap<(CallId, CallAssignment, CallAssignment), f64, FxBuild>,
    actives: HashMap<(CallId, CallAssignment), u64, FxBuild>,
    statics: HashMap<(CallId, CallAssignment), u64, FxBuild>,
    /// Speculative generation durations, keyed by the call, its (target)
    /// assignment, the draft's assignment, and the
    /// [`SpecDecodeConfig`](real_model::SpecDecodeConfig) fingerprint —
    /// everything [`Estimator::spec_call_duration`] depends on.
    spec_durations: HashMap<(CallId, CallAssignment, CallAssignment, u64), f64, FxBuild>,
    /// Health fingerprint the cached entries were priced under; `None`
    /// until first attached to an estimator.
    health_tag: Option<u64>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl CostMemo {
    /// An empty cache, not yet bound to any health overlay.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current counters and residency.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits,
            misses: self.misses,
            invalidations: self.invalidations,
            entries: (self.durations.len()
                + self.reallocs.len()
                + self.transfers.len()
                + self.actives.len()
                + self.statics.len()
                + self.spec_durations.len()) as u64,
        }
    }

    /// Binds the cache to a health fingerprint, dropping all entries if it
    /// changed since the last bind (the health/fault-overlay invalidation
    /// rule). First bind of a fresh cache is free.
    pub fn sync_health(&mut self, tag: u64) {
        if self.health_tag == Some(tag) {
            return;
        }
        if self.health_tag.is_some() {
            self.invalidations += 1;
        }
        self.durations.clear();
        self.reallocs.clear();
        self.transfers.clear();
        self.actives.clear();
        self.statics.clear();
        self.spec_durations.clear();
        self.health_tag = Some(tag);
    }

    fn duration(&mut self, est: &Estimator, call: CallId, a: &CallAssignment) -> f64 {
        match self.durations.get(&(call, *a)) {
            Some(&v) => {
                self.hits += 1;
                v
            }
            None => {
                self.misses += 1;
                let v = est.call_duration(call, a);
                self.durations.insert((call, *a), v);
                v
            }
        }
    }

    fn realloc(
        &mut self,
        est: &Estimator,
        dst_call: CallId,
        src: &CallAssignment,
        dst: &CallAssignment,
    ) -> f64 {
        match self.reallocs.get(&(dst_call, *src, *dst)) {
            Some(&v) => {
                self.hits += 1;
                v
            }
            None => {
                self.misses += 1;
                let v = augment::realloc_cost(est, &est.graph().call(dst_call).model, src, dst);
                self.reallocs.insert((dst_call, *src, *dst), v);
                v
            }
        }
    }

    fn transfer(
        &mut self,
        est: &Estimator,
        from: CallId,
        a: &CallAssignment,
        b: &CallAssignment,
    ) -> f64 {
        match self.transfers.get(&(from, *a, *b)) {
            Some(&v) => {
                self.hits += 1;
                v
            }
            None => {
                self.misses += 1;
                let v = augment::transfer_cost_between(est, est.graph(), from, a, b);
                self.transfers.insert((from, *a, *b), v);
                v
            }
        }
    }

    fn active_bytes(&mut self, est: &Estimator, call: CallId, a: &CallAssignment) -> u64 {
        match self.actives.get(&(call, *a)) {
            Some(&v) => {
                self.hits += 1;
                v
            }
            None => {
                self.misses += 1;
                let v = maxmem::call_active_bytes(est.graph().call(call), a);
                self.actives.insert((call, *a), v);
                v
            }
        }
    }

    fn static_bytes(&mut self, est: &Estimator, anchor: CallId, a: &CallAssignment) -> u64 {
        match self.statics.get(&(anchor, *a)) {
            Some(&v) => {
                self.hits += 1;
                v
            }
            None => {
                self.misses += 1;
                let v = maxmem::anchor_static_bytes(est.graph().call(anchor), a);
                self.statics.insert((anchor, *a), v);
                v
            }
        }
    }

    fn spec_duration(
        &mut self,
        est: &Estimator,
        call: CallId,
        a: &CallAssignment,
        choice: &SpecChoice,
    ) -> f64 {
        let key = (call, *a, choice.assignment, choice.config.fingerprint());
        match self.spec_durations.get(&key) {
            Some(&v) => {
                self.hits += 1;
                v
            }
            None => {
                self.misses += 1;
                let v = est.spec_call_duration(call, a, choice);
                self.spec_durations.insert(key, v);
                v
            }
        }
    }

    /// Serializes the cache for cross-process reuse (`real plan
    /// --memo-out`). `context` must be the owning estimator's
    /// [`Estimator::context_fingerprint`]; entries are emitted in a sorted,
    /// deterministic order and `f64` prices as raw bits, so a warm restore
    /// is bit-identical to the live cache.
    pub fn snapshot(&self, context: u64) -> MemoSnapshot {
        fn a_key(a: &CallAssignment) -> (u32, u32, u32, u32, u32, u32, u32, u32) {
            (
                a.mesh.node_start(),
                a.mesh.n_nodes(),
                a.mesh.gpu_start(),
                a.mesh.gpu_width(),
                a.strategy.dp(),
                a.strategy.tp(),
                a.strategy.pp(),
                a.strategy.micro_batches(),
            )
        }
        let mut durations: Vec<DurationEntry> = self
            .durations
            .iter()
            .map(|(&(c, a), &v)| DurationEntry {
                call: c.0 as u64,
                a,
                secs_bits: v.to_bits(),
            })
            .collect();
        durations.sort_by_key(|e| (e.call, a_key(&e.a)));
        let edge = |map: &HashMap<(CallId, CallAssignment, CallAssignment), f64, FxBuild>| {
            let mut out: Vec<EdgeEntry> = map
                .iter()
                .map(|(&(c, src, dst), &v)| EdgeEntry {
                    call: c.0 as u64,
                    src,
                    dst,
                    secs_bits: v.to_bits(),
                })
                .collect();
            out.sort_by_key(|e| (e.call, a_key(&e.src), a_key(&e.dst)));
            out
        };
        let bytes = |map: &HashMap<(CallId, CallAssignment), u64, FxBuild>| {
            let mut out: Vec<BytesEntry> = map
                .iter()
                .map(|(&(c, a), &v)| BytesEntry {
                    call: c.0 as u64,
                    a,
                    bytes: v,
                })
                .collect();
            out.sort_by_key(|e| (e.call, a_key(&e.a)));
            out
        };
        let mut spec_durations: Vec<SpecDurationEntry> = self
            .spec_durations
            .iter()
            .map(|(&(c, a, draft, config), &v)| SpecDurationEntry {
                call: c.0 as u64,
                a,
                draft,
                config,
                secs_bits: v.to_bits(),
            })
            .collect();
        spec_durations.sort_by_key(|e| (e.call, a_key(&e.a), a_key(&e.draft), e.config));
        MemoSnapshot {
            context,
            health_tag: self.health_tag,
            durations,
            reallocs: edge(&self.reallocs),
            transfers: edge(&self.transfers),
            actives: bytes(&self.actives),
            statics: bytes(&self.statics),
            spec_durations,
        }
    }

    /// Restores a cache from a snapshot, verifying it was taken under the
    /// same pricing context (cluster, graph, model specs, profiles).
    /// Returns `None` on a context mismatch — the caller starts cold. The
    /// snapshot's health tag is preserved, so attaching the restored memo to
    /// an estimator with a different health overlay still drops every entry
    /// through the normal [`CostMemo::sync_health`] rule.
    pub fn from_snapshot(snap: &MemoSnapshot, context: u64) -> Option<Self> {
        if snap.context != context {
            return None;
        }
        let mut memo = Self {
            health_tag: snap.health_tag,
            ..Self::default()
        };
        for e in &snap.durations {
            memo.durations
                .insert((CallId(e.call as usize), e.a), f64::from_bits(e.secs_bits));
        }
        for e in &snap.reallocs {
            memo.reallocs.insert(
                (CallId(e.call as usize), e.src, e.dst),
                f64::from_bits(e.secs_bits),
            );
        }
        for e in &snap.transfers {
            memo.transfers.insert(
                (CallId(e.call as usize), e.src, e.dst),
                f64::from_bits(e.secs_bits),
            );
        }
        for e in &snap.actives {
            memo.actives.insert((CallId(e.call as usize), e.a), e.bytes);
        }
        for e in &snap.statics {
            memo.statics.insert((CallId(e.call as usize), e.a), e.bytes);
        }
        for e in &snap.spec_durations {
            memo.spec_durations.insert(
                (CallId(e.call as usize), e.a, e.draft, e.config),
                f64::from_bits(e.secs_bits),
            );
        }
        Some(memo)
    }
}

/// A serialized [`CostMemo`]: the persistence format behind `real plan
/// --memo-out/--memo-in`. Prices are stored as raw `f64` bits and entries
/// in a deterministic sorted order; the embedded context fingerprint and
/// health tag gate restoration (see [`CostMemo::from_snapshot`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoSnapshot {
    context: u64,
    health_tag: Option<u64>,
    durations: Vec<DurationEntry>,
    reallocs: Vec<EdgeEntry>,
    transfers: Vec<EdgeEntry>,
    actives: Vec<BytesEntry>,
    statics: Vec<BytesEntry>,
    spec_durations: Vec<SpecDurationEntry>,
}

impl MemoSnapshot {
    /// The pricing-context fingerprint this snapshot was taken under.
    pub fn context(&self) -> u64 {
        self.context
    }

    /// Total entries across all tables.
    pub fn n_entries(&self) -> usize {
        self.durations.len()
            + self.reallocs.len()
            + self.transfers.len()
            + self.actives.len()
            + self.statics.len()
            + self.spec_durations.len()
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct DurationEntry {
    call: u64,
    a: CallAssignment,
    secs_bits: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct EdgeEntry {
    call: u64,
    src: CallAssignment,
    dst: CallAssignment,
    secs_bits: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct BytesEntry {
    call: u64,
    a: CallAssignment,
    bytes: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SpecDurationEntry {
    call: u64,
    a: CallAssignment,
    draft: CallAssignment,
    config: u64,
    secs_bits: u64,
}

/// Memo-backed [`NodeCosts`] oracle for [`Template::instantiate`].
struct MemoCosts<'a, 'b> {
    est: &'a Estimator,
    memo: &'b mut CostMemo,
}

impl NodeCosts for MemoCosts<'_, '_> {
    fn duration(&mut self, call: CallId, a: &CallAssignment) -> f64 {
        self.memo.duration(self.est, call, a)
    }

    fn realloc(&mut self, dst_call: CallId, src: &CallAssignment, dst: &CallAssignment) -> f64 {
        self.memo.realloc(self.est, dst_call, src, dst)
    }

    fn transfer(&mut self, from: CallId, a: &CallAssignment, b: &CallAssignment) -> f64 {
        self.memo.transfer(self.est, from, a, b)
    }
}

/// The incremental fast path over one estimator: a precomputed augmented
/// [`Template`] plus a [`CostMemo`], pricing plans — and one-call
/// perturbations of plans without cloning them — bit-identically to
/// [`Estimator::cost_checked`] and friends.
///
/// The peak-memory check additionally swaps the `O(total_gpus)` per-GPU
/// scan for an exact interval sweep over the plan's (at most a few dozen)
/// mesh contributions, which is what makes per-proposal pricing flat in
/// cluster size.
///
/// ```
/// use real_cluster::{ClusterSpec, DeviceMesh};
/// use real_dataflow::{algo, CallAssignment, ExecutionPlan};
/// use real_estimator::{Estimator, PlanPricer};
/// use real_model::{ModelSpec, ParallelStrategy};
/// use real_profiler::{ProfileConfig, Profiler};
///
/// let cluster = ClusterSpec::h100(1);
/// let actor = ModelSpec::llama3_7b();
/// let critic = actor.critic();
/// let graph = algo::ppo(&actor, &critic, &algo::RlhfConfig::instruct_gpt(64));
/// let mut profiler = Profiler::new(cluster.clone(), ProfileConfig::quick(), 1);
/// let profiles = vec![profiler.profile(&actor), profiler.profile(&critic)];
/// let est = Estimator::new(cluster.clone(), graph.clone(), profiles).unwrap();
///
/// let a = CallAssignment::new(
///     DeviceMesh::full(&cluster),
///     ParallelStrategy::new(1, 8, 1, 4).unwrap(),
/// ).unwrap();
/// let plan = ExecutionPlan::new(&graph, &cluster, vec![a; graph.n_calls()]).unwrap();
///
/// let mut pricer = PlanPricer::new(&est);
/// // Bit-identical to the plain estimator, hot or cold.
/// assert_eq!(pricer.cost_checked(&plan), est.cost_checked(&plan));
/// assert_eq!(pricer.cost_checked(&plan), est.cost_checked(&plan));
/// assert!(pricer.memo_stats().hits > 0);
/// ```
pub struct PlanPricer<'a> {
    est: &'a Estimator,
    template: Template,
    anchors: Vec<CallId>,
    memo: CostMemo,
}

impl<'a> PlanPricer<'a> {
    /// A pricer with a fresh cache.
    pub fn new(est: &'a Estimator) -> Self {
        Self::with_memo(est, CostMemo::new())
    }

    /// A pricer reusing an existing cache (e.g. shared across a scheduler's
    /// candidate probes). The memo is re-bound to `est`'s health
    /// fingerprint, dropping its entries if the overlay changed.
    pub fn with_memo(est: &'a Estimator, mut memo: CostMemo) -> Self {
        memo.sync_health(est.health_fingerprint());
        Self {
            est,
            template: Template::new(est.graph(), est.iterations()),
            anchors: maxmem::static_anchors(est.graph()),
            memo,
        }
    }

    /// The backing estimator.
    pub fn estimator(&self) -> &'a Estimator {
        self.est
    }

    /// Counters and residency of the cache.
    pub fn memo_stats(&self) -> MemoStats {
        self.memo.stats()
    }

    /// Releases the cache for reuse by a later pricer.
    pub fn into_memo(self) -> CostMemo {
        self.memo
    }

    fn time_cost_at<F>(&mut self, plan: &ExecutionPlan, assign: F) -> f64
    where
        F: Fn(CallId) -> CallAssignment,
    {
        let mut nodes = self.template.instantiate(
            self.est.graph(),
            &assign,
            &mut MemoCosts {
                est: self.est,
                memo: &mut self.memo,
            },
        );
        if plan.has_speculation() {
            // Mirror `Estimator::patch_spec_nodes` through the memo: swap in
            // the speculative duration and occupy the draft mesh.
            for node in nodes.iter_mut() {
                if let NodeKind::Call { call, .. } = node.kind {
                    if let Some(choice) = plan.spec_choice(call) {
                        node.duration =
                            self.memo
                                .spec_duration(self.est, call, &assign(call), choice);
                        node.meshes.push(choice.assignment.mesh);
                    }
                }
            }
        }
        algorithm1::makespan(&nodes) / self.est.iterations() as f64
    }

    fn max_mem_at<F>(&mut self, plan: &ExecutionPlan, assign: F) -> u64
    where
        F: Fn(CallId) -> CallAssignment,
    {
        let graph = self.est.graph();
        let mut statics: Vec<(DeviceMesh, u64)> = Vec::with_capacity(self.anchors.len());
        for i in 0..self.anchors.len() {
            let anchor = self.anchors[i];
            let a = assign(anchor);
            let bytes = self.memo.static_bytes(self.est, anchor, &a);
            statics.push((a.mesh, bytes));
        }
        // Draft residency sums like static memory (see `maxmem::max_mem`).
        for (id, choice) in plan.spec_choices() {
            let bytes = crate::spec::draft_active_bytes(&graph.call(id).call_type, choice);
            statics.push((choice.assignment.mesh, bytes));
        }
        let mut actives: Vec<(DeviceMesh, u64)> = Vec::with_capacity(graph.n_calls());
        for id in 0..graph.n_calls() {
            let id = CallId(id);
            let a = assign(id);
            let bytes = self.memo.active_bytes(self.est, id, &a);
            actives.push((a.mesh, bytes));
        }
        maxmem::peak_from_contributions(&statics, &actives)
    }

    fn cost_checked_at<F>(&mut self, plan: &ExecutionPlan, assign: F) -> (f64, bool)
    where
        F: Fn(CallId) -> CallAssignment,
    {
        let t = self.time_cost_at(plan, &assign);
        let cap = self.est.cluster().gpu.mem_capacity;
        if self.max_mem_at(plan, &assign) <= cap {
            (t, false)
        } else {
            (t * OOM_PENALTY, true)
        }
    }

    /// `TimeCost` of the plan; bit-identical to [`Estimator::time_cost`].
    pub fn time_cost(&mut self, plan: &ExecutionPlan) -> f64 {
        self.time_cost_at(plan, |id| *plan.assignment(id))
    }

    /// `MaxMem` of the plan; bit-identical to [`Estimator::max_mem`].
    pub fn max_mem(&mut self, plan: &ExecutionPlan) -> u64 {
        self.max_mem_at(plan, |id| *plan.assignment(id))
    }

    /// Whether the plan fits device memory.
    pub fn mem_ok(&mut self, plan: &ExecutionPlan) -> bool {
        self.max_mem(plan) <= self.est.cluster().gpu.mem_capacity
    }

    /// The §5.2 search cost; bit-identical to [`Estimator::cost`].
    pub fn cost(&mut self, plan: &ExecutionPlan) -> f64 {
        self.cost_checked(plan).0
    }

    /// The §5.2 search cost plus whether the OOM penalty applied;
    /// bit-identical to [`Estimator::cost_checked`].
    pub fn cost_checked(&mut self, plan: &ExecutionPlan) -> (f64, bool) {
        self.cost_checked_at(plan, |id| *plan.assignment(id))
    }

    /// [`PlanPricer::cost_checked`] of `plan` with `call` reassigned to `a`,
    /// without materializing the perturbed plan — the MCMC proposal shape.
    /// The plan's speculation choices ride along unchanged. Bit-identical to
    /// pricing `plan.with_assignment(call, a)`.
    pub fn cost_checked_perturbed(
        &mut self,
        plan: &ExecutionPlan,
        call: CallId,
        a: CallAssignment,
    ) -> (f64, bool) {
        self.cost_checked_at(plan, |id| if id == call { a } else { *plan.assignment(id) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use real_cluster::{ClusterHealth, ClusterSpec, GpuId};
    use real_dataflow::{algo, DataflowGraph};
    use real_model::{ModelSpec, ParallelStrategy};
    use real_profiler::{ProfileConfig, Profiler};
    use std::sync::OnceLock;

    fn setup() -> &'static (ClusterSpec, DataflowGraph, Estimator) {
        static CTX: OnceLock<(ClusterSpec, DataflowGraph, Estimator)> = OnceLock::new();
        CTX.get_or_init(|| {
            let cluster = ClusterSpec::h100(2);
            let actor = ModelSpec::llama3_7b();
            let critic = actor.critic();
            let graph = algo::ppo(&actor, &critic, &algo::RlhfConfig::instruct_gpt(64));
            let mut profiler = Profiler::new(cluster.clone(), ProfileConfig::quick(), 5);
            let profiles = vec![profiler.profile(&actor), profiler.profile(&critic)];
            let est = Estimator::new(cluster.clone(), graph.clone(), profiles).unwrap();
            (cluster, graph, est)
        })
    }

    /// Every `(mesh, strategy)` option a random plan can draw from.
    fn options(cluster: &ClusterSpec) -> Vec<CallAssignment> {
        let mut out = Vec::new();
        for mesh in DeviceMesh::enumerate(cluster) {
            for s in ParallelStrategy::enumerate(mesh.n_gpus(), 8, 8, &[1, 2, 4]) {
                out.push(CallAssignment::new(mesh, s).unwrap());
            }
        }
        out
    }

    fn plan_from(picks: &[usize]) -> ExecutionPlan {
        let (cluster, graph, _) = setup();
        let opts = options(cluster);
        let assignments: Vec<CallAssignment> =
            picks.iter().map(|&p| opts[p % opts.len()]).collect();
        ExecutionPlan::new(graph, cluster, assignments).unwrap()
    }

    #[test]
    fn memo_agrees_with_estimator_on_repeated_queries() {
        let (_, _, est) = setup();
        let plan = plan_from(&[0; 6]);
        let mut pricer = PlanPricer::new(est);
        for _ in 0..3 {
            assert_eq!(pricer.cost_checked(&plan), est.cost_checked(&plan));
            assert_eq!(
                pricer.time_cost(&plan).to_bits(),
                est.time_cost(&plan).to_bits()
            );
            assert_eq!(pricer.max_mem(&plan), est.max_mem(&plan));
        }
        let stats = pricer.memo_stats();
        assert!(stats.hits > 0, "repeat queries must hit: {stats:?}");
        assert!(stats.entries > 0);
    }

    #[test]
    fn perturbed_pricing_matches_materialized_plan() {
        let (cluster, graph, est) = setup();
        let plan = plan_from(&[1, 9, 17, 33, 65, 129]);
        let opts = options(cluster);
        let mut pricer = PlanPricer::new(est);
        for call in 0..graph.n_calls() {
            let a = opts[(call * 37 + 5) % opts.len()];
            let materialized = plan.with_assignment(CallId(call), a).unwrap();
            assert_eq!(
                pricer.cost_checked_perturbed(&plan, CallId(call), a),
                est.cost_checked(&materialized),
            );
        }
    }

    #[test]
    fn health_change_invalidates_the_cache() {
        let (cluster, _, est) = setup();
        let plan = plan_from(&[0; 6]);
        let mut memo = CostMemo::new();
        let mut pricer = PlanPricer::with_memo(est, memo);
        pricer.cost_checked(&plan);
        memo = pricer.into_memo();
        assert!(memo.stats().entries > 0);

        let mut health = ClusterHealth::healthy(cluster);
        health.mark_slow(GpuId(0), 2.0);
        let degraded = est.clone().with_health(health);
        let pricer = PlanPricer::with_memo(&degraded, memo);
        let stats = pricer.memo_stats();
        assert_eq!(stats.entries, 0, "health change must drop entries");
        assert_eq!(stats.invalidations, 1);

        // Same overlay again: no further invalidation.
        let memo = pricer.into_memo();
        let pricer = PlanPricer::with_memo(&degraded, memo);
        assert_eq!(pricer.memo_stats().invalidations, 1);
    }

    #[test]
    fn degraded_estimator_prices_correctly_through_the_memo() {
        let (cluster, _, est) = setup();
        let plan = plan_from(&[0; 6]);
        let mut health = ClusterHealth::healthy(cluster);
        // Plan `[0; 6]` sits on the first enumerated mesh, which contains
        // GPU 0 — slowing it must change the price.
        health.mark_slow(GpuId(0), 3.0);
        let degraded = est.clone().with_health(health);
        let mut pricer = PlanPricer::new(&degraded);
        assert_eq!(pricer.cost_checked(&plan), degraded.cost_checked(&plan));
        assert_ne!(
            pricer.cost(&plan).to_bits(),
            est.cost(&plan).to_bits(),
            "slowdown must change the price"
        );
    }

    fn spec_plan(plan: &ExecutionPlan) -> ExecutionPlan {
        let (cluster, graph, _) = setup();
        let choice = SpecChoice {
            config: real_model::SpecDecodeConfig {
                draft_model: real_model::ModelSpec::llama3_1b(),
                speculation_len: 4,
                acceptance_curve: real_model::AcceptanceCurve::Constant(0.8),
            },
            assignment: CallAssignment::new(
                DeviceMesh::sub_node(cluster, 0, 0, 2).unwrap(),
                ParallelStrategy::new(1, 2, 1, 1).unwrap(),
            )
            .unwrap(),
        };
        plan.with_spec(graph.find("actor_gen").unwrap(), Some(choice))
            .unwrap()
    }

    #[test]
    fn speculative_plans_price_bit_identically_through_the_memo() {
        let (_, _, est) = setup();
        let plan = spec_plan(&plan_from(&[1, 9, 17, 33, 65, 129]));
        assert!(plan.has_speculation());
        let mut pricer = PlanPricer::new(est);
        for _ in 0..2 {
            let fast = pricer.cost_checked(&plan);
            let slow = est.cost_checked(&plan);
            assert_eq!(fast.0.to_bits(), slow.0.to_bits());
            assert_eq!(fast.1, slow.1);
            assert_eq!(pricer.max_mem(&plan), est.max_mem(&plan));
        }
        assert!(pricer.memo_stats().hits > 0);
    }

    #[test]
    fn spec_perturbed_pricing_matches_materialized_plan() {
        let (cluster, _, est) = setup();
        let plan = spec_plan(&plan_from(&[1, 9, 17, 33, 65, 129]));
        let opts = options(cluster);
        let mut pricer = PlanPricer::new(est);
        for call in 0..6 {
            let a = opts[(call * 41 + 3) % opts.len()];
            let materialized = plan.with_assignment(CallId(call), a).unwrap();
            assert_eq!(
                pricer.cost_checked_perturbed(&plan, CallId(call), a),
                est.cost_checked(&materialized),
            );
        }
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let (_, _, est) = setup();
        let plan = spec_plan(&plan_from(&[2, 7, 19, 40, 77, 200]));
        let mut pricer = PlanPricer::new(est);
        let want = pricer.cost_checked(&plan);
        let memo = pricer.into_memo();
        let ctx = est.context_fingerprint();

        let snap = memo.snapshot(ctx);
        assert!(snap.n_entries() > 0);
        assert_eq!(snap.context(), ctx);
        let json = serde_json::to_string(&snap).unwrap();
        let back: MemoSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);

        // Warm restore answers from cache, bit-identically.
        let restored = CostMemo::from_snapshot(&back, ctx).unwrap();
        let before = restored.stats();
        assert_eq!(before.entries, memo.stats().entries);
        let mut warm = PlanPricer::with_memo(est, restored);
        assert_eq!(warm.memo_stats().entries, before.entries, "no invalidation");
        let got = warm.cost_checked(&plan);
        assert_eq!(got.0.to_bits(), want.0.to_bits());
        assert_eq!(got.1, want.1);
        assert_eq!(warm.memo_stats().misses, 0, "warm run must be all hits");

        // A different context refuses restoration.
        assert!(CostMemo::from_snapshot(&back, ctx ^ 1).is_none());
    }

    #[test]
    fn snapshot_is_deterministic_bytes() {
        let (_, _, est) = setup();
        let plan = spec_plan(&plan_from(&[3, 5, 8, 13, 21, 34]));
        let ctx = est.context_fingerprint();
        let mut p1 = PlanPricer::new(est);
        p1.cost_checked(&plan);
        let mut p2 = PlanPricer::new(est);
        p2.cost_checked(&plan);
        let s1 = serde_json::to_string(&p1.into_memo().snapshot(ctx)).unwrap();
        let s2 = serde_json::to_string(&p2.into_memo().snapshot(ctx)).unwrap();
        assert_eq!(s1, s2);
    }

    proptest::proptest! {
        /// The headline contract: memoized and unmemoized pricing agree
        /// bit-for-bit on random plans, cold cache and warm.
        #[test]
        fn memoized_pricing_is_bit_identical_on_random_plans(
            picks in proptest::collection::vec(0usize..10_000, 6),
            perturb in 0usize..6,
            alt in 0usize..10_000,
        ) {
            let (cluster, _, est) = setup();
            let plan = plan_from(&picks);
            let mut pricer = PlanPricer::new(est);
            // Cold.
            let fast = pricer.cost_checked(&plan);
            let slow = est.cost_checked(&plan);
            proptest::prop_assert_eq!(fast.0.to_bits(), slow.0.to_bits());
            proptest::prop_assert_eq!(fast.1, slow.1);
            proptest::prop_assert_eq!(pricer.max_mem(&plan), est.max_mem(&plan));
            // Warm + perturbed.
            let opts = options(cluster);
            let a = opts[alt % opts.len()];
            let call = CallId(perturb);
            let fast = pricer.cost_checked_perturbed(&plan, call, a);
            let slow = est.cost_checked(&plan.with_assignment(call, a).unwrap());
            proptest::prop_assert_eq!(fast.0.to_bits(), slow.0.to_bits());
            proptest::prop_assert_eq!(fast.1, slow.1);
        }
    }
}
